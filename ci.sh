#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root:
#
#   ./ci.sh          # full gate: build, tests, docs, lints
#   ./ci.sh quick    # skip the release build (debug tests + docs + lints)
#
# Every step must pass with zero warnings.
set -euo pipefail

quick="${1:-}"

echo "==> cargo build --release"
if [ "$quick" != "quick" ]; then
    cargo build --release
fi

echo "==> cargo test -q (unit + integration + doc tests)"
cargo test -q

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> cargo clippy --all-targets (warnings are errors)"
cargo clippy --all-targets -- -D warnings

echo "==> bench smoke: tape vs tree microbenches (substrate/tape_vs_tree)"
if [ "$quick" != "quick" ]; then
    cargo bench --bench substrate_micro -- substrate/tape_vs_tree
fi

echo "==> ci.sh: all green"
