#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root:
#
#   ./ci.sh          # full gate: fmt, build, tests, docs, lints,
#                    # scenario-regression, bench smoke + bench-regression
#   ./ci.sh quick    # skip the release build, the scenario-regression run,
#                    # and the bench stages (debug tests + docs + lints)
#
# Every step must pass with zero warnings.
set -euo pipefail

quick="${1:-}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
if [ "$quick" != "quick" ]; then
    cargo build --release
fi

echo "==> cargo build --examples"
if [ "$quick" != "quick" ]; then
    cargo build --release --examples
else
    cargo build --examples
fi

echo "==> cargo test -q (unit + integration + doc tests)"
cargo test -q

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> cargo clippy --all-targets (warnings are errors)"
cargo clippy --all-targets -- -D warnings

# --- scenario-regression ----------------------------------------------------
# Run the batch verifier over the whole scenario registry and diff verdicts
# and witness/certificate fingerprints against the checked-in baseline.  Any
# drift fails the gate; after an *intended* semantic change, regenerate with:
#
#   cargo run --release --bin nncps-batch -- --write-expected SCENARIOS_expected.json
if [ "$quick" != "quick" ]; then
    echo "==> scenario-regression: nncps-batch --check SCENARIOS_expected.json"
    cargo run --release --bin nncps-batch -- --quiet --check SCENARIOS_expected.json
else
    echo "==> scenario-regression: (skipped in quick mode)"
fi

if [ "$quick" != "quick" ]; then
    echo "==> bench smoke: tape-vs-tree + specialization microbenches"
    cargo bench --bench substrate_micro -- substrate/tape_vs_tree
    cargo bench --bench substrate_micro -- substrate/specialize/eval_box
else
    echo "==> bench smoke: (skipped in quick mode)"
fi

# --- bench-regression -------------------------------------------------------
# Re-measure the two headline solver benches — the default decrease query
# (region specialization + derivative-guided cuts on) and the pre-compiled
# specialized+newton path — and fail if either median regresses more than
# 25% against the BENCH_pr4.json record (tolerance overridable via
# NNCPS_BENCH_TOLERANCE_PCT for noisy hosts).
if [ "$quick" != "quick" ]; then
    echo "==> bench-regression: decrease-query headlines vs BENCH_pr4.json"
    # Absolute path: cargo runs bench binaries with the *package* directory
    # as cwd, so a relative CRITERION_JSON would land in crates/bench/.
    bench_json="$PWD/target/bench_current.jsonl"
    rm -f "$bench_json"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/deltasat/decrease_query/50"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/specialize/decrease_query_50"
    cargo run --release -p nncps_bench --bin bench-compare -- \
        "$bench_json" BENCH_pr4.json
    cargo run --release -p nncps_bench --bin bench-compare -- \
        --bench "substrate/specialize/decrease_query_50/specialized_newton" \
        "$bench_json" BENCH_pr4.json
else
    echo "==> bench-regression: (skipped in quick mode)"
fi

echo "==> ci.sh: all green"
