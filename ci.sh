#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root:
#
#   ./ci.sh          # full gate: fmt, build, tests, docs, lints,
#                    # scenario-regression, bench smoke + bench-regression
#   ./ci.sh quick    # skip the release build, the scenario-regression run,
#                    # and the bench stages (debug tests + docs + lints)
#
# Every step must pass with zero warnings.
set -euo pipefail

quick="${1:-}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
if [ "$quick" != "quick" ]; then
    cargo build --release
fi

echo "==> cargo build --examples"
if [ "$quick" != "quick" ]; then
    cargo build --release --examples
else
    cargo build --examples
fi

echo "==> cargo test -q (unit + integration + doc tests)"
cargo test -q

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> cargo clippy --all-targets (warnings are errors)"
cargo clippy --all-targets -- -D warnings

# --- scenario-regression ----------------------------------------------------
# Run the batch verifier over the whole scenario registry and diff verdicts
# and witness/certificate fingerprints against the checked-in baseline.  Any
# drift fails the gate; after an *intended* semantic change, regenerate with:
#
#   cargo run --release --bin nncps-batch -- --write-expected SCENARIOS_expected.json
if [ "$quick" != "quick" ]; then
    echo "==> scenario-regression: nncps-batch --check SCENARIOS_expected.json"
    cargo run --release --bin nncps-batch -- --quiet --check SCENARIOS_expected.json
else
    echo "==> scenario-regression: (skipped in quick mode)"
fi

# --- family-sweep regression -------------------------------------------------
# Sweep the 24-member CI family (contraction rate x X0 x solver precision
# over the rotation-contraction system) with warm-start caching.  The run
# itself gates on the family's pinned verdict counts (12 certified / 12
# inconclusive, declared in `builtin_families()` — nncps-batch exits nonzero
# on count drift), and a second run must produce a byte-identical
# deterministic report: warm-start reuse and scenario-level threading are
# required to be bit-invisible.
if [ "$quick" != "quick" ]; then
    echo "==> family-sweep: nncps-batch --family linear-ci-grid (counts + determinism)"
    sweep_a="$PWD/target/family_sweep_a.json"
    sweep_b="$PWD/target/family_sweep_b.json"
    cargo run --release --bin nncps-batch -- \
        --family linear-ci-grid --quiet --threads 1 --out-deterministic "$sweep_a"
    cargo run --release --bin nncps-batch -- \
        --family linear-ci-grid --quiet --threads 2 --cold --out-deterministic "$sweep_b"
    cmp "$sweep_a" "$sweep_b" \
        || { echo "family sweep is not deterministic across runs/threads/warm-start"; exit 1; }
    echo "    family sweep byte-identical across warm/cold and 1/2 threads"
else
    echo "==> family-sweep: (skipped in quick mode)"
fi

# --- chaos: fault injection ---------------------------------------------------
# Build with the fault-injection feature, arm exactly one deterministic panic
# (first solver box pop, single-threaded => first member of the 24-member CI
# family), and require the structured failure surface: 23 verdicts + 1
# crashed row in the report and the dedicated "crashed members" exit code 3.
# Then re-run the same featured build UNARMED: its deterministic report must
# be byte-identical to the default build's pinned form from the family-sweep
# stage — the compiled-in hooks are bit-invisible until armed.
if [ "$quick" != "quick" ]; then
    echo "==> chaos: seeded panic in 1 of 24 linear-ci-grid members (fault-injection build)"
    chaos_report="$PWD/target/chaos_sweep.json"
    unarmed_report="$PWD/target/chaos_unarmed.json"
    set +e
    NNCPS_FAULTS="solver.box_pop=panic:nth=1" \
        cargo run --release --features fault-injection --bin nncps-batch -- \
        --family linear-ci-grid --quiet --threads 1 --out-deterministic "$chaos_report"
    chaos_code=$?
    set -e
    [ "$chaos_code" -eq 3 ] \
        || { echo "chaos run exited $chaos_code, expected 3 (crashed members)"; exit 1; }
    verdicts=$(grep -c '"verdict"' "$chaos_report")
    crashes=$(grep -c '"payload"' "$chaos_report")
    [ "$verdicts" -eq 23 ] && [ "$crashes" -eq 1 ] \
        || { echo "chaos run produced $verdicts verdicts + $crashes crash rows, expected 23 + 1"; exit 1; }
    cargo run --release --features fault-injection --bin nncps-batch -- \
        --family linear-ci-grid --quiet --threads 1 --out-deterministic "$unarmed_report"
    cmp "$sweep_a" "$unarmed_report" \
        || { echo "unarmed fault-injection build drifts from the pinned deterministic report"; exit 1; }
    echo "    chaos: 23 verdicts + 1 crashed row, exit 3; unarmed featured build byte-identical"
else
    echo "==> chaos: (skipped in quick mode)"
fi

# --- serve: verification-as-a-service round trip ------------------------------
# Start the daemon on an ephemeral port with an on-disk store, submit the CI
# family twice through the nncps-batch client, and require both reports
# byte-identical to the in-process sweep pinned by the family-sweep stage.
# Then SIGTERM the daemon (no clean-shutdown request): the content-addressed
# store must survive — a restarted daemon over the same directory serves the
# identical report from disk, and honours a protocol-level shutdown.
if [ "$quick" != "quick" ]; then
    echo "==> serve: daemon double-submission + SIGTERM + disk-warm restart"
    serve_store="$PWD/target/serve_store"
    serve_log="$PWD/target/serve_banner.txt"
    serve_a="$PWD/target/serve_sweep_a.json"
    serve_b="$PWD/target/serve_sweep_b.json"
    serve_c="$PWD/target/serve_sweep_c.json"
    rm -rf "$serve_store"

    scrape_addr() {
        addr=""
        for _ in $(seq 1 100); do
            addr=$(sed -n 's/^nncps-serve: listening on //p' "$serve_log" | head -n 1)
            [ -n "$addr" ] && return 0
            sleep 0.1
        done
        echo "nncps-serve never printed its banner:"; cat "$serve_log"
        return 1
    }

    ./target/release/nncps-serve --store "$serve_store" --threads 2 > "$serve_log" &
    serve_pid=$!
    scrape_addr || { kill "$serve_pid" 2>/dev/null; exit 1; }
    ./target/release/nncps-batch --connect "$addr" --family linear-ci-grid \
        --quiet --out-deterministic "$serve_a"
    ./target/release/nncps-batch --connect "$addr" --family linear-ci-grid \
        --quiet --out-deterministic "$serve_b"
    cmp "$sweep_a" "$serve_a" \
        || { echo "served report drifts from the in-process sweep"; kill "$serve_pid"; exit 1; }
    cmp "$serve_a" "$serve_b" \
        || { echo "warm resubmission is not byte-identical"; kill "$serve_pid"; exit 1; }
    kill -TERM "$serve_pid"
    wait "$serve_pid" 2>/dev/null || true

    ./target/release/nncps-serve --store "$serve_store" --threads 2 > "$serve_log" &
    serve_pid=$!
    scrape_addr || { kill "$serve_pid" 2>/dev/null; exit 1; }
    ./target/release/nncps-batch --connect "$addr" --family linear-ci-grid \
        --quiet --out-deterministic "$serve_c" --shutdown
    wait "$serve_pid" \
        || { echo "daemon exited nonzero after a protocol shutdown"; exit 1; }
    cmp "$serve_a" "$serve_c" \
        || { echo "disk-warm restarted daemon drifts from the pinned report"; exit 1; }
    rm -rf "$serve_store"
    echo "    serve: double submission + disk-warm restart byte-identical; store survived SIGTERM"
else
    echo "==> serve: (skipped in quick mode)"
fi

if [ "$quick" != "quick" ]; then
    echo "==> bench smoke: tape-vs-tree + specialization microbenches"
    cargo bench --bench substrate_micro -- substrate/tape_vs_tree
    cargo bench --bench substrate_micro -- substrate/specialize/eval_box
else
    echo "==> bench smoke: (skipped in quick mode)"
fi

# --- bench-regression -------------------------------------------------------
# Re-measure the headline benches — the decrease query (region
# specialization + derivative-guided cuts on), the pre-compiled
# specialized+newton path, and the PR 5 warm-start family sweep — and fail
# if any median regresses more than 25% against the BENCH_pr5.json record
# (tolerance overridable via NNCPS_BENCH_TOLERANCE_PCT for noisy hosts).
if [ "$quick" != "quick" ]; then
    echo "==> bench-regression: headline benches vs BENCH_pr5.json"
    # Absolute path: cargo runs bench binaries with the *package* directory
    # as cwd, so a relative CRITERION_JSON would land in crates/bench/.
    bench_json="$PWD/target/bench_current.jsonl"
    rm -f "$bench_json"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/deltasat/decrease_query/50"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/specialize/decrease_query_50"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/family_sweep"
    cargo run --release -p nncps_bench --bin bench-compare -- \
        "$bench_json" BENCH_pr5.json
    cargo run --release -p nncps_bench --bin bench-compare -- \
        --bench "substrate/specialize/decrease_query_50/specialized_newton" \
        "$bench_json" BENCH_pr5.json
    cargo run --release -p nncps_bench --bin bench-compare -- \
        --bench "substrate/family_sweep/warm_24" \
        "$bench_json" BENCH_pr5.json

    # PR 6: the batched SIMD evaluation layer.  The per-box speedup gate
    # holds the 8-lane batched evaluator to >= 1.6x over the one-at-a-time
    # interpreter *within this run* (recorded headline: 2.0-2.2x; the floor
    # leaves headroom for host noise), and the median gates catch absolute
    # regressions of the batched evaluator and the batched solver path
    # against the BENCH_pr6.json record.
    echo "==> bench-regression: batched evaluation vs BENCH_pr6.json"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/batched_eval/per_box/"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/batched_eval/decrease_query_50"
    cargo run --release -p nncps_bench --bin bench-compare -- \
        "$bench_json" --speedup \
        "substrate/batched_eval/per_box/scalar" \
        "substrate/batched_eval/per_box/lanes8" --min 1.6
    cargo run --release -p nncps_bench --bin bench-compare -- \
        --bench "substrate/batched_eval/per_box/lanes4" \
        "$bench_json" BENCH_pr6.json
    cargo run --release -p nncps_bench --bin bench-compare -- \
        --bench "substrate/batched_eval/decrease_query_50/batched" \
        "$bench_json" BENCH_pr6.json

    # PR 10: choice-trace-driven respecialization.  The delta step (recorded
    # choice trace + single emit pass over the parent view) is held to >= 2x
    # over the full three-pass rederivation it replaced, measured within this
    # run on the deep ReLU ladder — the compiled-NN-controller workload the
    # incremental path exists for.
    echo "==> bench-regression: choice-trace respecialization speedup"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/choice_spec/deep_relu/"
    cargo run --release -p nncps_bench --bin bench-compare -- \
        "$bench_json" --speedup \
        "substrate/choice_spec/deep_relu/rederive" \
        "substrate/choice_spec/deep_relu/delta" --min 2

    # PR 7: resource governance.  The budget-poll overhead on the headline
    # decrease query is held to <=2% (best-case sample times, governed vs
    # ungoverned measured back-to-back in one process), and the governed
    # lane is anchored against the BENCH_pr6.json record of the ungoverned
    # headline so the pair cannot drift away together.
    echo "==> bench-regression: governance overhead vs BENCH_pr6.json"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/govern/decrease_query_50"
    cargo run --release -p nncps_bench --bin bench-compare -- \
        "$bench_json" --overhead \
        "substrate/govern/decrease_query_50/ungoverned" \
        "substrate/govern/decrease_query_50/governed" --max-pct 2
    cargo run --release -p nncps_bench --bin bench-compare -- \
        --bench "substrate/govern/decrease_query_50/governed" \
        --baseline-bench "substrate/deltasat/decrease_query/50" \
        "$bench_json" BENCH_pr6.json

    # PR 8: verification-as-a-service.  Both lanes verify the two-member
    # smoke family with fresh caches; `served` routes the work through
    # ServeEngine::handle_line (request parse, pool dispatch, event + report
    # serialization).  The protocol path is held to ≤5% overhead over the
    # direct in-process sweep (best-case sample times, one process).
    echo "==> bench-regression: service request overhead"
    CRITERION_JSON="$bench_json" \
        cargo bench --bench substrate_micro -- "substrate/serve"
    cargo run --release -p nncps_bench --bin bench-compare -- \
        "$bench_json" --overhead \
        "substrate/serve/direct" \
        "substrate/serve/served" --max-pct 5
else
    echo "==> bench-regression: (skipped in quick mode)"
fi

echo "==> ci.sh: all green"
