//! End-to-end integration tests: the paper's case study from controller
//! construction through barrier-certificate verification.

use nncps_barrier::{
    ClosedLoopSystem, SafetySpec, VerificationConfig, VerificationOutcome, VerificationRequest,
    VerificationSession,
};
use nncps_dubins::{reference_controller, ErrorDynamics};
use nncps_interval::IntervalBox;
use nncps_nn::{network_from_weights, Activation};
use nncps_sim::{Integrator, Simulator};

/// The safety specification of Section 4.3 of the paper: `X0` is the rectangle
/// with corners `(-1, -π/16)` and `(1, π/16)`, the unsafe set is everything
/// outside the rectangle with corners `(-5, -(π/2 - ε))` and `(5, π/2 - ε)`.
fn paper_spec() -> SafetySpec {
    let eps = 0.01;
    let pi = std::f64::consts::PI;
    SafetySpec::rectangular(
        IntervalBox::from_bounds(&[(-1.0, 1.0), (-pi / 16.0, pi / 16.0)]),
        IntervalBox::from_bounds(&[(-5.0, 5.0), (-(pi / 2.0 - eps), pi / 2.0 - eps)]),
    )
}

/// A verification configuration scaled down enough to run quickly in debug
/// builds while exercising every stage of the pipeline.
fn fast_config() -> VerificationConfig {
    VerificationConfig {
        num_seed_traces: 10,
        max_samples_per_trace: 15,
        sim_duration: 8.0,
        ..VerificationConfig::default()
    }
}

fn paper_system(hidden_neurons: usize) -> ClosedLoopSystem {
    let controller = reference_controller(hidden_neurons);
    let dynamics = ErrorDynamics::new(controller, 1.0);
    ClosedLoopSystem::new(dynamics.symbolic_vector_field(), paper_spec())
}

/// One verification through the session API (the single public entry point);
/// a fresh session per call keeps every test run independent.
fn verify_once(system: &ClosedLoopSystem, config: VerificationConfig) -> VerificationOutcome {
    VerificationSession::new().verify(&VerificationRequest::over(system).with_config(config))
}

#[test]
fn paper_case_study_is_certified_safe() {
    let system = paper_system(10);
    let outcome = verify_once(&system, fast_config());
    assert!(outcome.is_certified(), "outcome: {outcome}");

    let certificate = outcome.certificate().expect("certified outcome");
    let spec = paper_spec();

    // Condition (1): every corner of X0 lies inside the invariant L.
    for corner in spec.initial_set().corners() {
        assert!(
            certificate.contains(&corner),
            "X0 corner {corner:?} outside the invariant"
        );
    }
    // Condition (2): representative unsafe states lie outside L.
    let pi = std::f64::consts::PI;
    for unsafe_state in [[5.5, 0.0], [-5.5, 0.0], [0.0, pi / 2.0], [0.0, -pi / 2.0]] {
        assert!(
            !certificate.contains(&unsafe_state),
            "unsafe state {unsafe_state:?} inside the invariant"
        );
    }
    // Numeric spot check of all three conditions on a grid.
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let violations = certificate.count_violations(
        &spec,
        |p| {
            use nncps_sim::Dynamics;
            dynamics.derivative(p)
        },
        21,
    );
    assert_eq!(violations, 0, "grid spot check found violations");
}

#[test]
fn statistics_reflect_the_work_performed() {
    let system = paper_system(10);
    let outcome = verify_once(&system, fast_config());
    let stats = outcome.stats();
    assert!(stats.generator_iterations >= 1);
    assert_eq!(stats.lp_solves, stats.generator_iterations);
    assert!(stats.smt_decrease_checks >= 1);
    assert!(stats.timings.total >= stats.timings.smt_decrease);
    assert!(stats.timings.total >= stats.timings.lp);
    // The "other" column of Table 1 never exceeds the total.
    assert!(stats.timings.other() <= stats.timings.total);
}

#[test]
fn verification_scales_across_controller_widths() {
    // The Table 1 sweep in miniature: a couple of widths, all certified.
    for width in [10, 30] {
        let system = paper_system(width);
        let outcome = verify_once(&system, fast_config());
        assert!(
            outcome.is_certified(),
            "width {width} not certified: {outcome}"
        );
    }
}

#[test]
fn destabilizing_controller_is_not_certified() {
    // A controller with the opposite sign convention pushes the car away from
    // the path; the procedure must not produce a certificate for it. Only the
    // output layer is negated: with zero biases and odd activations, negating
    // *every* parameter would cancel out and reproduce the original network.
    let good = reference_controller(10);
    let mut flipped_params = good.flatten_params();
    let output_layer_start = flipped_params.len() - 11; // 1x10 weights + 1 bias
    for p in &mut flipped_params[output_layer_start..] {
        *p = -*p;
    }
    let bad = good.with_params(&flipped_params);
    let dynamics = ErrorDynamics::new(bad, 1.0);
    let system = ClosedLoopSystem::new(dynamics.symbolic_vector_field(), paper_spec());
    let config = VerificationConfig {
        max_candidate_iterations: 3,
        num_seed_traces: 6,
        sim_duration: 5.0,
        ..VerificationConfig::default()
    };
    let outcome = verify_once(&system, config);
    assert!(!outcome.is_certified(), "unsafe system must not certify");
}

#[test]
fn hand_written_saturating_controller_is_certified() {
    // The pipeline is not tied to `reference_controller`: a single-neuron
    // tanh controller with explicit weights also verifies.
    use nncps_linalg::{Matrix, Vector};
    let mut hidden = Matrix::zeros(1, 2);
    hidden[(0, 0)] = 0.4;
    hidden[(0, 1)] = 1.2;
    let mut output = Matrix::zeros(1, 1);
    output[(0, 0)] = 1.0;
    let controller = network_from_weights(
        2,
        vec![
            (hidden, Vector::zeros(1), Activation::Tanh),
            (output, Vector::zeros(1), Activation::Tanh),
        ],
    );
    let dynamics = ErrorDynamics::new(controller, 1.0);
    let system = ClosedLoopSystem::new(dynamics.symbolic_vector_field(), paper_spec());
    let outcome = verify_once(&system, fast_config());
    assert!(outcome.is_certified(), "outcome: {outcome}");
}

#[test]
fn certified_invariant_is_respected_by_simulation() {
    // The semantic content of the certificate: trajectories started inside X0
    // stay inside L = {W <= l} and never become unsafe.
    let system = paper_system(10);
    let outcome = verify_once(&system, fast_config());
    let certificate = outcome.certificate().expect("certified outcome");
    let spec = paper_spec();
    let dynamics = system.dynamics();
    let simulator = Simulator::new(Integrator::RungeKutta4, 0.02, 20.0);
    for corner in spec.initial_set().corners() {
        let trace = simulator.simulate(&dynamics, &corner);
        for (_, state) in trace.iter() {
            assert!(
                !spec.is_unsafe(state),
                "trajectory from {corner:?} reached unsafe state {state:?}"
            );
            assert!(
                certificate.contains(state),
                "trajectory from {corner:?} left the invariant at {state:?}"
            );
        }
    }
}
