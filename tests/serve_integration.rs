//! Integration test of the `nncps-serve` daemon: spawn the real binary on an
//! ephemeral socket, drive it over the line protocol, and hold it to the
//! service's two core promises:
//!
//! 1. **Determinism across transports** — the deterministic report a daemon
//!    streams back is byte-identical to an in-process cold
//!    [`run_sweep`](nncps::scenarios::run_sweep) over the same family, and
//!    identical again when served from the whole-outcome memo or replayed
//!    from the on-disk store by a *restarted* daemon.
//! 2. **Warm economics** — the second submission of the same family returns
//!    at least 3× faster than the cold one (generous tolerance below: a
//!    sub-quarter-second warm response passes outright, so a blazing
//!    machine cannot flake the ratio).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use nncps::scenarios::{builtin_families, run_sweep, Family, Json, SweepOptions};

/// A running daemon that is killed on drop (so a failing assertion never
/// leaks a listener process into the test environment).
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(store: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_nncps-serve"))
        .args(["--store", store.to_str().unwrap(), "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("nncps-serve spawns");
    // The contract: the first stdout line is the scrapeable banner, flushed
    // before the first accept.
    let mut banner = String::new();
    BufReader::new(child.stdout.take().expect("stdout is piped"))
        .read_line(&mut banner)
        .expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("nncps-serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    Daemon { child, addr }
}

/// One request line in, all response lines out (until the terminal event of
/// the op).  Returns the parsed terminal event.
fn request(addr: &str, line: &str, terminal: &str) -> Json {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    let mut writer = stream.try_clone().expect("clone stream");
    writeln!(writer, "{line}").expect("send request");
    let reader = BufReader::new(stream);
    for reply in reader.lines() {
        let reply = reply.expect("read response line");
        let event = Json::parse(&reply).expect("responses are valid JSON");
        match event.get("event").and_then(Json::as_str) {
            Some("error") => panic!("server rejected {line:?}: {reply}"),
            Some(kind) if kind == terminal => return event,
            _ => {}
        }
    }
    panic!("connection closed before a `{terminal}` event for {line:?}");
}

/// Submits a family and returns the deterministic report text plus the
/// wall-clock seconds of the whole round trip.
fn submit(addr: &str, family: &str) -> (String, f64) {
    let start = Instant::now();
    let done = request(
        addr,
        &format!("{{\"op\": \"submit\", \"family\": \"{family}\"}}"),
        "done",
    );
    let report = done
        .get("report")
        .and_then(Json::as_str)
        .expect("done event carries the deterministic report")
        .to_string();
    (report, start.elapsed().as_secs_f64())
}

fn shutdown(addr: &str) {
    request(addr, "{\"op\": \"shutdown\"}", "bye");
}

fn scratch_store() -> PathBuf {
    let root = std::env::temp_dir().join(format!("nncps-serve-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn daemon_reports_match_in_process_sweeps_and_warm_start_from_disk() {
    let store = scratch_store();
    let families: Vec<Family> = builtin_families()
        .into_iter()
        .filter(|f| f.name() == "linear-ci-grid")
        .collect();
    assert_eq!(families.len(), 1, "the CI grid family is built in");

    let daemon = spawn_daemon(&store);
    let pong = request(&daemon.addr, "{\"op\": \"ping\"}", "pong");
    assert_eq!(
        pong.get("protocol").and_then(Json::as_str),
        Some("nncps-serve/v1")
    );

    // Cold submission: every member runs the pipeline.
    let (cold_report, cold_secs) = submit(&daemon.addr, "linear-ci-grid");

    // The daemon's deterministic report is byte-identical to an in-process
    // cold sweep — serving adds a transport, never a semantic difference.
    let in_process = run_sweep(
        &families,
        &SweepOptions {
            threads: 1,
            warm_start: false,
            ..SweepOptions::default()
        },
    )
    .expect("in-process sweep")
    .to_json(false);
    assert_eq!(cold_report, in_process, "daemon vs in-process cold sweep");

    // Warm submission to the same daemon: served from the whole-outcome
    // memo, byte-identical and ≥3× faster (a sub-250 ms response passes
    // outright so fast machines cannot flake the ratio).
    let (warm_report, warm_secs) = submit(&daemon.addr, "linear-ci-grid");
    assert_eq!(cold_report, warm_report, "cold vs memo-warm report");
    assert!(
        warm_secs * 3.0 <= cold_secs || warm_secs < 0.25,
        "warm submission should be >=3x faster: cold {cold_secs:.3}s, warm {warm_secs:.3}s"
    );

    let stats = request(&daemon.addr, "{\"op\": \"stats\"}", "stats");
    assert!(
        stats
            .get("outcome_hits")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            >= 24.0,
        "24 memo hits expected: {stats:?}"
    );
    assert!(
        stats
            .get("store_writes")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0,
        "the cold run must persist outcomes: {stats:?}"
    );

    // Clean shutdown on request; the process exits successfully and the
    // store survives it.
    shutdown(&daemon.addr);
    drop(daemon);

    // A restarted daemon over the same store never re-runs the pipeline:
    // outcomes replay from disk, byte-identical, still ≥3× faster than cold.
    let daemon = spawn_daemon(&store);
    let (disk_report, disk_secs) = submit(&daemon.addr, "linear-ci-grid");
    assert_eq!(cold_report, disk_report, "cold vs disk-warm report");
    assert!(
        disk_secs * 3.0 <= cold_secs || disk_secs < 0.25,
        "disk-warm submission should be >=3x faster: cold {cold_secs:.3}s, disk {disk_secs:.3}s"
    );
    let stats = request(&daemon.addr, "{\"op\": \"stats\"}", "stats");
    assert!(
        stats
            .get("disk_outcome_hits")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            >= 24.0,
        "the restarted daemon must replay from disk: {stats:?}"
    );
    shutdown(&daemon.addr);
    drop(daemon);
    std::fs::remove_dir_all(&store).ok();
}

#[test]
fn client_binary_round_trips_through_the_daemon() {
    // The nncps-batch --connect client: submit through the daemon, write the
    // deterministic report, ask for shutdown, and exit 0 (the grid family's
    // pinned counts hold).
    let store = scratch_store();
    let daemon = spawn_daemon(&store);
    let out =
        std::env::temp_dir().join(format!("nncps-serve-it-client-{}.json", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_nncps-batch"))
        .args([
            "--connect",
            &daemon.addr,
            "--family",
            "linear-ci-grid",
            "--out-deterministic",
            out.to_str().unwrap(),
            "--quiet",
            "--shutdown",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("nncps-batch runs");
    assert!(status.success(), "client exit: {status:?}");
    let report = std::fs::read_to_string(&out).expect("client wrote the report");
    let families: Vec<Family> = builtin_families()
        .into_iter()
        .filter(|f| f.name() == "linear-ci-grid")
        .collect();
    let in_process = run_sweep(&families, &SweepOptions::default())
        .expect("in-process sweep")
        .to_json(false);
    assert_eq!(report, in_process, "client-written report vs in-process");
    std::fs::remove_file(&out).ok();
    std::fs::remove_dir_all(&store).ok();
}
