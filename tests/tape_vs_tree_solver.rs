//! Differential test: the compiled-tape solver is observationally identical
//! to the tree-walking reference on the *actual* queries the pipeline issues
//! — the same query classes exercised by `solver_vs_simulation.rs` and
//! `cross_crate_consistency.rs`.
//!
//! "Identical" is strict: the same verdict, the same witness box bit for
//! bit, and the same search statistics (boxes explored / pruned /
//! bisections), i.e. both evaluators walk the same box tree.  Region
//! specialization stays enabled on the compiled side (it must be
//! bit-invisible); the derivative-guided Newton/monotonicity cuts are pinned
//! off for the bit-identity half (they change the search tree by design) and
//! covered separately by verdict-equivalence assertions.

use nncps_barrier::{ClosedLoopSystem, QuadraticTemplate, QueryBuilder, SafetySpec};
use nncps_deltasat::{Constraint, DeltaSolver, Formula, SatResult};
use nncps_dubins::{reference_controller, ErrorDynamics};
use nncps_expr::Expr;
use nncps_interval::IntervalBox;

fn paper_spec() -> SafetySpec {
    let eps = 0.01;
    let pi = std::f64::consts::PI;
    SafetySpec::rectangular(
        IntervalBox::from_bounds(&[(-1.0, 1.0), (-pi / 16.0, pi / 16.0)]),
        IntervalBox::from_bounds(&[(-5.0, 5.0), (-(pi / 2.0 - eps), pi / 2.0 - eps)]),
    )
}

fn assert_identical(what: &str, formula: &Formula, domain: &IntervalBox, solver: DeltaSolver) {
    let fast = solver.clone().with_newton_cuts(false);
    let reference = solver.clone().with_tree_evaluator();
    let (fast_result, fast_stats) = fast.solve_with_stats(formula, domain);
    let (ref_result, ref_stats) = reference.solve_with_stats(formula, domain);
    assert_eq!(fast_stats, ref_stats, "{what}: stats diverge");
    match (&fast_result, &ref_result) {
        (SatResult::DeltaSat(a), SatResult::DeltaSat(b)) => {
            assert_eq!(a, b, "{what}: witness boxes diverge");
        }
        (SatResult::Unsat, SatResult::Unsat) => {}
        (SatResult::Unknown(a), SatResult::Unknown(b)) => {
            assert_eq!(a, b, "{what}: unknown reasons diverge");
        }
        (a, b) => panic!("{what}: verdicts diverge: {a} vs {b}"),
    }
    // The derivative-guided default must reach the same verdict without
    // growing the sequential search, and its witnesses must stay valid
    // domain points.
    let (cut_result, cut_stats) = solver.solve_with_stats(formula, domain);
    assert_eq!(
        cut_result.is_unsat(),
        ref_result.is_unsat(),
        "{what}: newton cuts flip unsat"
    );
    assert_eq!(
        cut_result.is_delta_sat(),
        ref_result.is_delta_sat(),
        "{what}: newton cuts flip delta-sat"
    );
    assert!(
        cut_stats.boxes_explored <= ref_stats.boxes_explored,
        "{what}: newton cuts grew the search ({} vs {})",
        cut_stats.boxes_explored,
        ref_stats.boxes_explored
    );
    if let SatResult::DeltaSat(region) = &cut_result {
        assert!(
            domain.contains_box(region),
            "{what}: newton witness escaped the domain"
        );
    }
}

#[test]
fn decrease_queries_explore_identical_box_trees() {
    // The paper's query (5) over the symbolically exported NN controller,
    // both for a sound candidate (UNSAT path: the full search tree must
    // match) and an upside-down candidate (δ-SAT path: the witness and the
    // path to it must match).
    let spec = paper_spec();
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let system = ClosedLoopSystem::new(dynamics.symbolic_vector_field(), spec);
    let queries = QueryBuilder::new(&system, 1e-6);
    let template = QuadraticTemplate::new(2);

    let plausible = template.instantiate(&[0.02, 0.01, 0.13, 0.0, 0.0, 0.0]);
    let (formula, domain) = queries.decrease_query(&plausible);
    assert_identical(
        "decrease/plausible",
        &formula,
        &domain,
        DeltaSolver::new(1e-4),
    );

    let upside_down = template.instantiate(&[-1.0, 0.0, -1.0, 0.0, 0.0, 0.0]);
    let (formula, domain) = queries.decrease_query(&upside_down);
    assert_identical(
        "decrease/upside-down",
        &formula,
        &domain,
        DeltaSolver::new(1e-4),
    );
}

#[test]
fn level_set_queries_explore_identical_box_trees() {
    // Queries (6) and (7) at bracketing levels, matching the level-set
    // bisection the pipeline runs.
    let spec = paper_spec();
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let system = ClosedLoopSystem::new(dynamics.symbolic_vector_field(), spec);
    let queries = QueryBuilder::new(&system, 1e-6);
    let w = QuadraticTemplate::new(2).instantiate(&[1.0, 0.0, 1.0, 0.0, 0.0, 0.0]);

    for level in [0.3, 1.2, 9.0] {
        let (q6, x0_domain) = queries.initial_containment_query(&w, level);
        assert_identical(
            "initial containment",
            &q6,
            &x0_domain,
            DeltaSolver::new(1e-4),
        );
        if let Some((q7, unsafe_domain)) = queries.unsafe_disjointness_query(&w, level) {
            assert_identical(
                "unsafe disjointness",
                &q7,
                &unsafe_domain,
                DeltaSolver::new(1e-4),
            );
        }
    }
}

#[test]
fn nn_output_bound_query_explores_identical_box_tree() {
    // The cross-crate suite's bounded-activation query over a symbolically
    // exported controller.
    let controller = reference_controller(5);
    let symbolic = controller.forward_symbolic(&[Expr::var(0), Expr::var(1)])[0].clone();
    let query = Formula::atom(Constraint::ge(symbolic, 1.0001));
    let domain = IntervalBox::from_bounds(&[(-5.0, 5.0), (-2.0, 2.0)]);
    assert_identical("nn bound", &query, &domain, DeltaSolver::new(1e-4));
}
