//! Simulation-oracle property test (PR 5 satellite): every counterexample
//! the verifier feeds back into the LP must be a *genuine* near-violation of
//! the decrease condition when replayed through the concrete simulator.
//!
//! The pipeline's refinement loop trusts the δ-SAT solver: when query (5)
//! returns `DeltaSat`, the witness midpoint is handed to the LP as a state
//! where the current candidate `W` fails to decrease.  This suite closes the
//! verifier↔simulator loop end to end — for every witness recorded across
//! the built-in registry *and* a seeded 50-scenario sweep, it
//!
//! 1. checks the witness lies in the domain of interest `D` and outside the
//!    (δ-shrunk) initial set `X0`, as query (5) requires,
//! 2. re-evaluates the *claimed-violated* decrease condition concretely:
//!    `g = ∇W(x*) · f(x*)` with `f` evaluated through the exact code path
//!    the [`Simulator`] integrates ([`Dynamics::derivative`] on the built
//!    closed loop), and asserts `g` agrees with the symbolic Lie derivative
//!    the solver reasoned about,
//! 3. asserts the δ-relaxation the solver certifies really holds around the
//!    witness: the interval enclosure of the Lie derivative over the
//!    witness's δ-box must reach `≥ −γ` (if even the enclosure's supremum
//!    stayed below `−γ`, every point near the witness would strictly
//!    satisfy the decrease condition and the counterexample would be
//!    bogus).
//!
//! The sweep fixture is deliberately seeded so the oracle is not vacuous: a
//! nonsense-free minimum number of witnesses must flow through the checks.

use nncps::barrier::{
    ClosedLoopSystem, QueryBuilder, VerificationConfig, VerificationOutcome, VerificationRequest,
    VerificationSession, VerificationStats,
};
use nncps::interval::IntervalBox;
use nncps::linalg::{Matrix, Vector};
use nncps::scenarios::{AxisParam, Family, ParamAxis, Registry, Scenario};
use nncps::sim::Dynamics;

/// One verification through the session API (the single public entry point).
fn verify_once(system: &ClosedLoopSystem, config: VerificationConfig) -> VerificationOutcome {
    VerificationSession::new().verify(&VerificationRequest::over(system).with_config(config))
}

/// Rebuilds the generator function from its report flattening (rows of `P`,
/// then `q`, then `c`).
fn generator_from_flat(dim: usize, flat: &[f64]) -> nncps::barrier::GeneratorFunction {
    assert_eq!(flat.len(), dim * dim + dim + 1, "flattened generator shape");
    let mut p = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            p[(i, j)] = flat[i * dim + j];
        }
    }
    let q = Vector::from_slice(&flat[dim * dim..dim * dim + dim]);
    nncps::barrier::GeneratorFunction::new(p, q, flat[dim * dim + dim])
}

/// Runs one scenario and oracle-checks every recorded counterexample.
/// Returns the number of witnesses checked.
fn replay_counterexamples(scenario: &Scenario) -> usize {
    let system = scenario.build_system();
    let config = scenario.config().clone();
    let (gamma, delta) = (config.gamma, config.delta);
    let outcome = verify_once(&system, config);
    let stats: &VerificationStats = outcome.stats();
    assert_eq!(
        stats.counterexample_witnesses.len(),
        stats.counterexample_candidates.len(),
        "{}: every witness must record the candidate it refuted",
        scenario.name()
    );

    let spec = system.spec();
    let dim = spec.dim();
    let queries = QueryBuilder::new(&system, gamma);
    let dynamics = system.dynamics();
    for (witness, flat) in stats
        .counterexample_witnesses
        .iter()
        .zip(&stats.counterexample_candidates)
    {
        let name = scenario.name();
        let candidate = generator_from_flat(dim, flat);

        // --- (1) the witness satisfies the query's set constraints -------
        assert!(
            spec.domain().contains_point(witness),
            "{name}: witness {witness:?} left the domain of interest"
        );
        let x0 = spec.initial_set();
        let outside_tol = 2.0 * delta + 1e-9;
        let outside = (0..dim).any(|d| {
            witness[d] < x0[d].lo() + outside_tol || witness[d] > x0[d].hi() - outside_tol
        });
        assert!(
            outside,
            "{name}: witness {witness:?} sits strictly inside X0 {x0}"
        );

        // --- (2) concrete replay through the simulator's evaluation path -
        // `Dynamics::derivative` on the closed loop is exactly what the
        // RK4 `Simulator` integrates, so this is the deployed dynamics.
        let f = Dynamics::derivative(&dynamics, witness);
        let grad = candidate.gradient(witness);
        let g: f64 = grad.iter().zip(&f).map(|(a, b)| a * b).sum();
        let lie = queries.lie_derivative(&candidate);
        let symbolic = lie.eval(witness);
        assert!(
            (g - symbolic).abs() <= 1e-6 * (1.0 + g.abs().max(symbolic.abs())),
            "{name}: simulator-path Lie derivative {g} disagrees with the \
             symbolic query value {symbolic} at {witness:?}"
        );

        // --- (3) the δ-relaxed violation holds around the witness --------
        let bounds: Vec<(f64, f64)> = (0..dim)
            .map(|d| (witness[d] - delta, witness[d] + delta))
            .collect();
        let delta_box = IntervalBox::from_bounds(&bounds).intersect(spec.domain());
        assert!(
            !delta_box.is_empty(),
            "{name}: witness δ-box left the domain entirely"
        );
        let enclosure = lie.eval_box(&delta_box);
        assert!(
            enclosure.hi() >= -gamma,
            "{name}: decrease condition strictly holds near the witness \
             (sup enclosure {} < -gamma {}) — the counterexample is bogus",
            enclosure.hi(),
            -gamma
        );
        assert!(
            enclosure.contains(symbolic),
            "{name}: enclosure {enclosure} does not contain the point value {symbolic}"
        );
    }
    stats.counterexample_witnesses.len()
}

/// The seeded 50-scenario sweep: rotation-heavy stable spirals with a single
/// seed trace, so first candidates are routinely wrong and the refinement
/// loop exercises the witness path before certifying.
fn oracle_sweep() -> Vec<Scenario> {
    let base = Scenario::new(
        "oracle-base",
        "rotation-heavy spiral, sparse seeding",
        nncps::scenarios::PlantSpec::Linear {
            matrix: vec![vec![-0.4, 1.2], vec![-1.2, -0.4]],
        },
        nncps::barrier::SafetySpec::rectangular(
            IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
            IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
        ),
        nncps::barrier::VerificationConfig {
            num_seed_traces: 1,
            sim_duration: 2.0,
            max_candidate_iterations: 8,
            max_samples_per_trace: 10,
            // Coarser δ keeps the debug-mode sweep fast; the oracle's
            // tolerances scale with it.
            delta: 1e-3,
            ..Default::default()
        },
        nncps::scenarios::ExpectedVerdict::Any,
    );
    let family = Family::new("oracle-sweep", "seeded oracle fixture", base)
        .with_axis(ParamAxis::random(
            AxisParam::plant("matrix_scale"),
            0.5,
            2.0,
            25,
            2024,
        ))
        .with_axis(ParamAxis::grid(AxisParam::Seed, vec![1.0, 7.0]));
    let members = family.expand().expect("oracle sweep expands");
    assert_eq!(members.len(), 50);
    members
}

/// The built-in registry with configurations scaled down enough to run in
/// debug builds (the same discipline as `tests/end_to_end.rs`).  The
/// sparser trace budget also makes wrong first candidates — and therefore
/// oracle-checkable witnesses — *more* likely than the full-size configs,
/// which certify on the first candidate across the board.
fn debug_sized_registry() -> Vec<Scenario> {
    Registry::builtin()
        .iter()
        .map(|scenario| {
            let mut config = scenario.config().clone();
            config.num_seed_traces = config.num_seed_traces.min(5);
            config.sim_duration = config.sim_duration.min(4.0);
            config.max_samples_per_trace = config.max_samples_per_trace.min(10);
            config.max_candidate_iterations = config.max_candidate_iterations.min(6);
            Scenario::new(
                scenario.name(),
                scenario.description(),
                scenario.plant().clone(),
                scenario.spec().clone(),
                config,
                nncps::scenarios::ExpectedVerdict::Any,
            )
        })
        .collect()
}

#[test]
fn registry_counterexamples_survive_simulation_replay() {
    for scenario in debug_sized_registry() {
        replay_counterexamples(&scenario);
    }
}

#[test]
fn seeded_sweep_counterexamples_survive_simulation_replay() {
    let mut witnesses = 0;
    for scenario in oracle_sweep() {
        witnesses += replay_counterexamples(&scenario);
    }
    // The fixture must actually exercise the oracle: sparse seeding makes
    // wrong first candidates (and therefore witnesses) routine.
    assert!(
        witnesses >= 10,
        "oracle sweep produced only {witnesses} counterexample witnesses — \
         the fixture no longer exercises the verifier↔simulator loop"
    );
}
