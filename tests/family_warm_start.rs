//! Differential cache test (PR 5 satellite): warm-start sweep results must
//! be **bit-identical** to cold per-scenario runs, at 1 and 2 scenario
//! threads.
//!
//! Every warm-start layer (compiled δ-SAT queries, seed-trace bundles, LP
//! candidate memoization, shared plant dynamics) claims to be a pure
//! memoization under structural identity keys.  This suite holds the engine
//! to that claim end to end: verdicts, witnesses, fingerprints, and solver
//! search-tree statistics all flow into the deterministic report JSON, which
//! must come out byte-identical with the cache on or off, sequential or
//! threaded.

use nncps::scenarios::{
    builtin_families, run_scenario, run_scenario_cached, run_sweep, AxisParam, Family, ParamAxis,
    Registry, SweepCache, SweepOptions,
};

/// A small but representative family mix: an NN plant with perturbation and
/// precision axes (deep cache reuse), plus a linear family crossing the
/// certification boundary (partial reuse, inconclusive members).
fn fixture_families() -> Vec<Family> {
    let registry = Registry::builtin();
    let pendulum = Family::new(
        "diff-pendulum",
        "perturbation x precision",
        nncps::scenarios::Scenario::new(
            "diff-pendulum-base",
            "2-6-1 pendulum, sweep-sized",
            nncps::scenarios::PlantSpec::Pendulum {
                hidden_neurons: 4,
                activation: nncps::nn::Activation::Tanh,
                k_theta: 1.2,
                k_omega: 0.5,
                max_torque: 20.0,
                damping: 0.5,
            },
            registry.get("pendulum-tanh-16").unwrap().spec().clone(),
            nncps::barrier::VerificationConfig {
                num_seed_traces: 3,
                sim_duration: 2.5,
                max_samples_per_trace: 12,
                ..Default::default()
            },
            nncps::scenarios::ExpectedVerdict::Any,
        ),
    )
    .with_weight_seed(13)
    .with_axis(ParamAxis::grid(
        AxisParam::WeightPerturbation,
        vec![0.0, 0.03],
    ))
    .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4]));

    let linear = Family::new(
        "diff-linear",
        "contraction sweep crossing the boundary",
        registry.get("linear-unstable-canary").unwrap().clone(),
    )
    .with_axis(ParamAxis::grid(
        AxisParam::plant("matrix_scale"),
        vec![-4.0, -1.0, 1.0],
    ))
    .with_axis(ParamAxis::grid(AxisParam::Seed, vec![2018.0, 77.0]));

    vec![pendulum, linear]
}

#[test]
fn warm_and_cold_sweeps_are_byte_identical_at_1_and_2_threads() {
    let families = fixture_families();
    let mut reports = Vec::new();
    for threads in [1usize, 2] {
        for warm_start in [false, true] {
            let report = run_sweep(
                &families,
                &SweepOptions {
                    threads,
                    warm_start,
                    ..SweepOptions::default()
                },
            )
            .expect("fixture families expand");
            reports.push((threads, warm_start, report.to_json(false)));
        }
    }
    let (_, _, reference) = &reports[0];
    for (threads, warm_start, json) in &reports {
        assert_eq!(
            json, reference,
            "deterministic report diverged at threads={threads}, warm_start={warm_start}"
        );
    }
    // The fixture is non-trivial: both verdicts occur and witnesses flow
    // through the fingerprints.
    let report = run_sweep(&families, &SweepOptions::default()).unwrap();
    assert!(report.families.iter().any(|f| f.certified > 0));
    assert!(report.families.iter().any(|f| f.inconclusive > 0));
}

#[test]
fn cached_single_scenario_run_matches_the_cold_run_bitwise() {
    let registry = Registry::builtin();
    let cache = SweepCache::new();
    for name in ["pendulum-tanh-16", "linear-unstable-canary"] {
        let scenario = registry.get(name).unwrap();
        let cold = run_scenario(scenario);
        let first = run_scenario_cached(scenario, Some(&cache));
        // The exact repeat short-circuits at the session's whole-outcome
        // memo — the strongest form of reuse, still bit-identical.
        let second = run_scenario_cached(scenario, Some(&cache));
        for warm in [&first, &second] {
            assert_eq!(cold.verdict, warm.verdict, "{name}");
            assert_eq!(cold.fingerprint(), warm.fingerprint(), "{name}");
            assert_eq!(cold.level, warm.level, "{name}");
            assert_eq!(
                cold.generator_coefficients, warm.generator_coefficients,
                "{name}"
            );
            assert_eq!(
                cold.counterexample_witnesses, warm.counterexample_witnesses,
                "{name}"
            );
            assert_eq!(cold.stats, warm.stats, "{name}");
        }
        // A δ-varied sibling misses the outcome memo (δ is part of the
        // request fingerprint) but reuses the inner warm-start layers, whose
        // keys are δ-independent: seed traces, LP candidates, compiled
        // δ-SAT formulas.
        let varied = nncps::scenarios::Scenario::new(
            format!("{name}-delta-varied"),
            "δ-varied sibling of the cached scenario",
            scenario.plant().clone(),
            scenario.spec().clone(),
            nncps::barrier::VerificationConfig {
                delta: scenario.config().delta * 0.5,
                ..scenario.config().clone()
            },
            nncps::scenarios::ExpectedVerdict::Any,
        );
        run_scenario_cached(&varied, Some(&cache));
    }
    let session = cache.session().stats();
    assert!(
        session.outcome_hits >= 2,
        "exact repeats must hit the outcome memo: {session:?}"
    );
    let stats = cache.warm_start().stats();
    assert!(
        stats.trace_hits > 0,
        "delta-varied runs must hit the trace memo"
    );
    assert!(
        stats.candidate_hits > 0,
        "delta-varied runs must hit the candidate memo"
    );
    assert!(
        stats.formula_hits > 0,
        "delta-varied runs must hit the compilation cache"
    );
}

#[test]
fn builtin_ci_family_counts_hold_warm_and_cold() {
    let families: Vec<Family> = builtin_families()
        .into_iter()
        .filter(|f| f.name() == "linear-ci-grid")
        .collect();
    assert_eq!(families.len(), 1);
    let warm = run_sweep(&families, &SweepOptions::default()).unwrap();
    let cold = run_sweep(
        &families,
        &SweepOptions {
            threads: 1,
            warm_start: false,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(warm.check_family_counts().is_ok(), "warm counts");
    assert!(cold.check_family_counts().is_ok(), "cold counts");
    assert_eq!(warm.to_json(false), cold.to_json(false));
    assert_eq!(warm.families[0].members, 24);
}
