//! Cross-crate consistency tests.
//!
//! The paper is explicit that the trace generator and the SMT solver must use
//! the *same interpretation* of the system dynamics (Section 3, final
//! paragraph).  In this workspace that means the numeric closed-loop model
//! (`nncps-dubins` + `nncps-sim`), the symbolic model (`nncps-expr`), and the
//! interval model used by the δ-SAT solver (`nncps-interval` +
//! `nncps-deltasat`) must all agree.  These tests pin that agreement down.

use nncps_barrier::{CandidateSynthesizer, QuadraticTemplate, SafetySpec};
use nncps_deltasat::{Constraint, DeltaSolver, Formula, SatResult};
use nncps_dubins::{reference_controller, ErrorDynamics};
use nncps_expr::{Expr, VarSet};
use nncps_interval::IntervalBox;
use nncps_nn::FeedforwardNetwork;
use nncps_sim::{Dynamics, ExprDynamics, FnDynamics, Integrator, Simulator};

fn probe_states() -> Vec<[f64; 2]> {
    vec![
        [0.0, 0.0],
        [1.0, 0.1],
        [-2.5, -0.7],
        [4.9, 1.5],
        [-4.9, -1.5],
        [0.3, -1.2],
        [-1.7, 0.9],
    ]
}

#[test]
fn numeric_and_symbolic_error_dynamics_agree() {
    for width in [1, 10, 40] {
        let dynamics = ErrorDynamics::new(reference_controller(width), 1.0);
        let field = dynamics.symbolic_vector_field();
        assert_eq!(field.len(), 2);
        for state in probe_states() {
            let numeric = dynamics.derivative(&state);
            for (component, expr) in field.iter().enumerate() {
                let symbolic = expr.eval(&state);
                assert!(
                    (numeric[component] - symbolic).abs() < 1e-9,
                    "width {width}, state {state:?}, component {component}: \
                     numeric {} vs symbolic {symbolic}",
                    numeric[component]
                );
            }
        }
    }
}

#[test]
fn network_forward_and_symbolic_forward_agree() {
    let controller = reference_controller(25);
    let inputs = [Expr::var(0), Expr::var(1)];
    let symbolic = controller.forward_symbolic(&inputs);
    assert_eq!(symbolic.len(), 1);
    for state in probe_states() {
        let numeric = controller.forward(&state)[0];
        let from_expr = symbolic[0].eval(&state);
        assert!(
            (numeric - from_expr).abs() < 1e-9,
            "state {state:?}: {numeric} vs {from_expr}"
        );
    }
}

#[test]
fn interval_evaluation_encloses_numeric_evaluation() {
    // The δ-SAT solver reasons with interval extensions of the same symbolic
    // expressions; any point evaluation must lie inside the interval value of
    // a box containing the point.
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let field = dynamics.symbolic_vector_field();
    for state in probe_states() {
        let padded: Vec<(f64, f64)> = state.iter().map(|&v| (v - 0.05, v + 0.05)).collect();
        let enclosure = IntervalBox::from_bounds(&padded);
        let numeric = dynamics.derivative(&state);
        for (component, expr) in field.iter().enumerate() {
            let interval = expr.eval_box(&enclosure);
            assert!(
                interval.lo() <= numeric[component] && numeric[component] <= interval.hi(),
                "state {state:?}, component {component}: {} not in {interval}",
                numeric[component]
            );
        }
    }
}

#[test]
fn expression_and_function_dynamics_produce_identical_traces() {
    // Simulating the symbolic closed loop and the plain-Rust closure closed
    // loop must give bit-comparable trajectories (same integrator, same step).
    let controller = reference_controller(10);
    let dynamics = ErrorDynamics::new(controller.clone(), 1.0);
    let expr_dynamics = ExprDynamics::new(dynamics.symbolic_vector_field());
    let fn_dynamics = FnDynamics::new(2, move |state: &[f64]| {
        let u = controller.forward(state)[0];
        vec![state[1].sin(), -u]
    });
    let simulator = Simulator::new(Integrator::RungeKutta4, 0.05, 5.0);
    for start in [[0.8, 0.1], [-0.5, -0.15], [2.0, 0.5]] {
        let a = simulator.simulate(&expr_dynamics, &start);
        let b = simulator.simulate(&fn_dynamics, &start);
        assert_eq!(a.len(), b.len());
        for ((_, sa), (_, sb)) in a.iter().zip(b.iter()) {
            assert!((sa[0] - sb[0]).abs() < 1e-9 && (sa[1] - sb[1]).abs() < 1e-9);
        }
    }
}

#[test]
fn template_lie_row_matches_symbolic_lie_derivative() {
    // The LP's counterexample row and the SMT query's symbolic Lie derivative
    // are two views of the same quantity; they must agree numerically.
    let template = QuadraticTemplate::new(2);
    let coefficients = [0.02, 0.009, 0.13, -0.001, 0.004, 0.01];
    let generator = template.instantiate(&coefficients);
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let field = dynamics.symbolic_vector_field();
    let w = generator.to_expr();
    let symbolic_lie = (w.differentiate(0) * field[0].clone()
        + w.differentiate(1) * field[1].clone())
    .simplified();
    for state in probe_states() {
        let derivative = dynamics.derivative(&state);
        let row = template.lie_basis_values(&state, &derivative);
        let from_row: f64 = row
            .iter()
            .zip(coefficients.iter())
            .map(|(b, c)| b * c)
            .sum();
        let from_expr = symbolic_lie.eval(&state);
        assert!(
            (from_row - from_expr).abs() < 1e-9,
            "state {state:?}: LP row {from_row} vs symbolic {from_expr}"
        );
    }
}

#[test]
fn synthesized_candidate_generalizes_and_refines_with_fresh_traces() {
    // A candidate synthesized from one batch of traces should show a net
    // decrease along traces it has never seen (same dynamics, different
    // starts), and folding the fresh traces back into the synthesizer — the
    // refinement the pipeline performs after a counterexample — must keep the
    // LP feasible and produce a candidate that decreases along *all* recorded
    // samples.
    let spec = SafetySpec::rectangular(
        IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
        IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
    );
    let dynamics = ExprDynamics::new(vec![
        -Expr::var(0) + Expr::var(1) * 0.3,
        -Expr::var(1) - Expr::var(0) * 0.3,
    ]);
    let simulator = Simulator::new(Integrator::RungeKutta4, 0.05, 4.0);
    let training = simulator.simulate_batch(
        &dynamics,
        &[
            vec![2.5, 1.0],
            vec![-2.0, 2.0],
            vec![1.0, -2.5],
            vec![-2.0, -2.0],
        ],
    );
    let mut synthesizer = CandidateSynthesizer::new(spec.clone());
    synthesizer.add_traces(&training);
    let candidate = synthesizer.synthesize().expect("feasible LP");

    // Net decrease along unseen trajectories.
    let fresh = simulator.simulate_batch(&dynamics, &[vec![2.9, -0.4], vec![-0.8, 2.7]]);
    for trace in &fresh {
        assert!(
            candidate.evaluate(trace.final_state()) < candidate.evaluate(trace.initial_state()),
            "no net decrease along the fresh trace starting at {:?}",
            trace.initial_state()
        );
    }

    // Refinement with the fresh traces keeps the LP feasible and the refined
    // candidate decreases along every recorded pair outside X0.
    synthesizer.add_traces(&fresh);
    let refined = synthesizer.synthesize().expect("refined LP stays feasible");
    for trace in training.iter().chain(fresh.iter()) {
        for ((_, a), (_, b)) in trace.consecutive_pairs() {
            if spec.is_initial(a)
                || !spec.domain().contains_point(a)
                || !spec.domain().contains_point(b)
            {
                continue;
            }
            assert!(
                refined.evaluate(b) < refined.evaluate(a) + 1e-9,
                "refined candidate does not decrease from {a:?} to {b:?}"
            );
        }
    }
}

#[test]
fn delta_sat_agrees_with_dense_sampling_on_bounded_activations() {
    // tanh(x) stays below 1: the solver proves it (UNSAT of the negation) and
    // dense sampling of the same network output confirms the numeric side.
    let controller: FeedforwardNetwork = reference_controller(5);
    let symbolic = controller.forward_symbolic(&[Expr::var(0), Expr::var(1)])[0].clone();
    let mut vars = VarSet::new();
    let _ = vars.var("d_err");
    let _ = vars.var("theta_err");
    let query = Formula::atom(Constraint::ge(symbolic.clone(), 1.0001));
    let domain = IntervalBox::from_bounds(&[(-5.0, 5.0), (-2.0, 2.0)]);
    let solver = DeltaSolver::new(1e-4);
    assert!(matches!(solver.solve(&query, &domain), SatResult::Unsat));
    for i in 0..30 {
        for j in 0..30 {
            let d = -5.0 + 10.0 * i as f64 / 29.0;
            let t = -2.0 + 4.0 * j as f64 / 29.0;
            assert!(symbolic.eval(&[d, t]) < 1.0001);
        }
    }
}
