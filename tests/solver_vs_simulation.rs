//! Agreement between the δ-SAT solver's verdicts and brute-force numeric
//! evidence (dense sampling and simulation).
//!
//! An UNSAT verdict is a proof, so sampling must never find a violation of
//! the corresponding property; a δ-SAT verdict comes with a witness box whose
//! midpoint must (approximately) satisfy the query.  These tests check both
//! directions on the queries the barrier pipeline actually issues.

use nncps_barrier::{
    ClosedLoopSystem, QueryBuilder, SafetySpec, VerificationConfig, VerificationOutcome,
    VerificationRequest, VerificationSession,
};
use nncps_deltasat::{Constraint, DeltaSolver, Formula, SatResult};
use nncps_dubins::{reference_controller, ErrorDynamics};
use nncps_expr::Expr;
use nncps_interval::IntervalBox;
use nncps_sim::Dynamics;

fn paper_spec() -> SafetySpec {
    let eps = 0.01;
    let pi = std::f64::consts::PI;
    SafetySpec::rectangular(
        IntervalBox::from_bounds(&[(-1.0, 1.0), (-pi / 16.0, pi / 16.0)]),
        IntervalBox::from_bounds(&[(-5.0, 5.0), (-(pi / 2.0 - eps), pi / 2.0 - eps)]),
    )
}

fn fast_config() -> VerificationConfig {
    VerificationConfig {
        num_seed_traces: 10,
        max_samples_per_trace: 15,
        sim_duration: 8.0,
        ..VerificationConfig::default()
    }
}

/// One verification through the session API (the single public entry point).
fn verify_once(system: &ClosedLoopSystem, config: VerificationConfig) -> VerificationOutcome {
    VerificationSession::new().verify(&VerificationRequest::over(system).with_config(config))
}

/// Samples the spec's domain on a grid, skipping points inside `X0`.
fn domain_grid(spec: &SafetySpec, steps: usize) -> Vec<[f64; 2]> {
    let domain = spec.domain();
    let mut points = Vec::new();
    for i in 0..=steps {
        for j in 0..=steps {
            let x = domain[0].lo() + domain[0].width() * i as f64 / steps as f64;
            let y = domain[1].lo() + domain[1].width() * j as f64 / steps as f64;
            if !spec.is_initial(&[x, y]) {
                points.push([x, y]);
            }
        }
    }
    points
}

#[test]
fn unsat_decrease_check_implies_no_sampled_violation() {
    // Run the pipeline on the case study, then independently confirm the
    // UNSAT decrease verdict by dense sampling of the Lie derivative.
    let spec = paper_spec();
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let system = ClosedLoopSystem::new(dynamics.symbolic_vector_field(), spec.clone());
    let outcome = verify_once(&system, fast_config());
    let certificate = outcome.certificate().expect("case study certifies");
    let generator = certificate.generator();

    let gamma = 1e-6;
    for point in domain_grid(&spec, 60) {
        let gradient = generator.gradient(&point);
        let f = dynamics.derivative(&point);
        let lie: f64 = gradient.iter().zip(f.iter()).map(|(g, v)| g * v).sum();
        assert!(
            lie < gamma,
            "sampled decrease violation at {point:?}: lie = {lie}"
        );
    }
}

#[test]
fn certified_level_set_separates_initial_and_unsafe_samples() {
    let spec = paper_spec();
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let system = ClosedLoopSystem::new(dynamics.symbolic_vector_field(), spec.clone());
    let outcome = verify_once(&system, fast_config());
    let certificate = outcome.certificate().expect("case study certifies");

    // Query (6) numerically: a fine grid of X0 lies inside L.
    let x0 = spec.initial_set();
    for i in 0..=20 {
        for j in 0..=20 {
            let p = [
                x0[0].lo() + x0[0].width() * i as f64 / 20.0,
                x0[1].lo() + x0[1].width() * j as f64 / 20.0,
            ];
            assert!(certificate.contains(&p), "X0 sample {p:?} outside L");
        }
    }
    // Query (7) numerically: points of the unsafe set stay outside L.
    let pi = std::f64::consts::PI;
    for p in [
        [5.01, 0.0],
        [-5.01, 0.0],
        [0.0, pi / 2.0],
        [0.0, -pi / 2.0],
        [5.5, 1.0],
        [-5.5, -1.0],
        [3.0, pi / 2.0 + 0.1],
    ] {
        assert!(
            spec.is_unsafe(&p),
            "test point {p:?} should be unsafe by construction"
        );
        assert!(!certificate.contains(&p), "unsafe sample {p:?} inside L");
    }
}

#[test]
fn sat_witness_of_decrease_query_is_a_real_violation() {
    // Hand the query builder a candidate that obviously grows along the flow
    // (W = -(x0^2 + x1^2) decreases toward the path, so its Lie derivative is
    // positive wherever the closed loop converges); the solver must report
    // δ-SAT, and the witness midpoint must really violate the decrease
    // condition up to the δ slack.
    let spec = paper_spec();
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let system = ClosedLoopSystem::new(dynamics.symbolic_vector_field(), spec.clone());
    let queries = QueryBuilder::new(&system, 1e-6);
    let template = nncps_barrier::QuadraticTemplate::new(2);
    let upside_down = template.instantiate(&[-1.0, 0.0, -1.0, 0.0, 0.0, 0.0]);

    let delta = 1e-4;
    let solver = DeltaSolver::new(delta);
    let (formula, domain) = queries.decrease_query(&upside_down);
    match solver.solve(&formula, &domain) {
        SatResult::DeltaSat(witness) => {
            // The witness box lies in the query domain, and the interval
            // evaluation of the Lie derivative over it cannot be refuted —
            // its upper bound reaches the `>= -gamma` threshold (this is
            // exactly what δ-SAT guarantees).
            assert!(domain.contains_box(&witness), "witness escapes the domain");
            let lie_expr = queries.lie_derivative(&upside_down);
            let lie_range = lie_expr.eval_box(&witness);
            assert!(
                lie_range.hi() >= -1e-6,
                "witness box {witness} refutes the decrease query: {lie_range}"
            );
            // And somewhere in the domain there must be a genuine violation
            // (the upside-down candidate grows along converging trajectories:
            // at (2, -0.5) the car moves toward the path, so d^2 + theta^2
            // shrinks and W = -(d^2 + theta^2) grows).
            let point = [2.0, -0.5];
            let gradient = upside_down.gradient(&point);
            let f = dynamics.derivative(&point);
            let lie: f64 = gradient.iter().zip(f.iter()).map(|(g, v)| g * v).sum();
            assert!(lie > 0.0, "expected a genuine violation at {point:?}");
        }
        other => panic!("expected a δ-SAT witness, got {other}"),
    }
}

#[test]
fn solver_verdicts_match_sampling_on_hand_written_queries() {
    // A small satisfiable and a small unsatisfiable query over the same
    // nonlinear expression, cross-checked against sampling.
    let x = Expr::var(0);
    let y = Expr::var(1);
    let expr = x.clone().sin() * 2.0 + y.clone().powi(2);
    let domain = IntervalBox::from_bounds(&[(-3.0, 3.0), (-1.5, 1.5)]);
    let solver = DeltaSolver::new(1e-4);

    // max of 2 sin(x) + y^2 over the domain is 2 + 2.25 = 4.25.
    let sat_query = Formula::atom(Constraint::ge(expr.clone(), 4.0));
    let unsat_query = Formula::atom(Constraint::ge(expr.clone(), 4.5));
    assert!(matches!(
        solver.solve(&sat_query, &domain),
        SatResult::DeltaSat(_)
    ));
    assert!(matches!(
        solver.solve(&unsat_query, &domain),
        SatResult::Unsat
    ));

    let mut sampled_max = f64::NEG_INFINITY;
    for i in 0..=200 {
        for j in 0..=200 {
            let px = -3.0 + 6.0 * i as f64 / 200.0;
            let py = -1.5 + 3.0 * j as f64 / 200.0;
            sampled_max = sampled_max.max(expr.eval(&[px, py]));
        }
    }
    assert!(sampled_max >= 4.0, "sampling contradicts the δ-SAT verdict");
    assert!(sampled_max < 4.5, "sampling contradicts the UNSAT verdict");
}

#[test]
fn trajectories_from_x0_never_reach_the_unsafe_set() {
    // The headline safety claim, checked by brute-force simulation from a
    // grid of initial states (independent of the certificate machinery).
    use nncps_sim::{Integrator, Simulator};
    let spec = paper_spec();
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let simulator = Simulator::new(Integrator::RungeKutta4, 0.02, 25.0);
    let x0 = spec.initial_set();
    for i in 0..=6 {
        for j in 0..=6 {
            let start = [
                x0[0].lo() + x0[0].width() * i as f64 / 6.0,
                x0[1].lo() + x0[1].width() * j as f64 / 6.0,
            ];
            let trace = simulator.simulate(&dynamics, &start);
            for (_, state) in trace.iter() {
                assert!(
                    !spec.is_unsafe(state),
                    "trajectory from {start:?} reached unsafe state {state:?}"
                );
            }
        }
    }
}
