//! Reproduces the controller-training experiment behind Figure 4.
//!
//! The controller is trained by CMA-ES direct policy search on the
//! piecewise-linear reference path; the example prints the per-generation
//! training cost (the data of the Figure 4 evolution) and writes the final
//! closed-loop trajectory next to the target path as CSV so it can be
//! plotted.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example train_controller [hidden_neurons] [generations]
//! ```

use nncps_dubins::{train_controller, Path, TrainingEnv, TrainingOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let hidden_neurons: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let generations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(25);

    let options = TrainingOptions {
        hidden_neurons,
        population: 40,
        max_generations: generations,
        ..TrainingOptions::default()
    };
    let path = Path::figure4_path();
    println!(
        "training a 2 -> {hidden_neurons} -> 1 tanh controller with CMA-ES \
         (population {}, {} generations) on a {:.0} m reference path",
        options.population,
        options.max_generations,
        path.length()
    );
    println!();
    println!("generation,best_cost,mean_cost,sigma");

    let outcome = train_controller(path.clone(), &options);
    for generation in &outcome.history {
        println!(
            "{},{:.3},{:.3},{:.5}",
            generation.index, generation.best_fitness, generation.mean_fitness, generation.sigma
        );
    }
    println!();
    println!("best cost J = {:.3}", outcome.best_cost);

    // Roll out the trained controller and report tracking quality.
    let env = TrainingEnv::new(path.clone(), &options);
    let (trace, cost) = env.rollout(&outcome.controller);
    let end = path.end();
    let fin = trace.final_state();
    let terminal_error = ((fin[0] - end.0).powi(2) + (fin[1] - end.1).powi(2)).sqrt();
    println!("rollout cost            = {cost:.3}");
    println!("terminal position error = {terminal_error:.3} m");
    println!();
    println!("# final trajectory (x, y) vs target path — CSV");
    println!("kind,x,y");
    for &(x, y) in path.waypoints() {
        println!("target,{x},{y}");
    }
    for (_, state) in trace.iter().step_by(5) {
        println!("actual,{},{}", state[0], state[1]);
    }
}
