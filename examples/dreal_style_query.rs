//! Using the δ-SAT solver directly, the way the paper uses dReal.
//!
//! The barrier pipeline drives the solver automatically, but the solver is a
//! general δ-complete decision procedure for nonlinear real arithmetic and can
//! be used on its own.  This example poses three hand-written queries:
//!
//! 1. a satisfiable conjunction of polynomial and trigonometric constraints,
//! 2. an unsatisfiable query involving a `tanh` neural activation, and
//! 3. the paper-style decrease query for a hand-written Lyapunov function.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dreal_style_query
//! ```

use nncps_deltasat::{Constraint, DeltaSolver, Formula};
use nncps_expr::VarSet;
use nncps_interval::IntervalBox;

fn main() {
    let solver = DeltaSolver::new(1e-4);

    // --- Query 1: satisfiable nonlinear conjunction --------------------------
    // exists (x, y) in [-2, 2]^2 :  x^2 + y^2 <= 1  /\  sin(x) + y >= 1
    let mut vars = VarSet::new();
    let x = vars.var("x");
    let y = vars.var("y");
    let q1 = Formula::all_of([
        Constraint::le(x.clone().powi(2) + y.clone().powi(2), 1.0),
        Constraint::ge(x.clone().sin() + y.clone(), 1.0),
    ]);
    let domain = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
    let (result, stats) = solver.solve_with_stats(&q1, &domain);
    println!("query 1: {result}");
    println!(
        "         ({} boxes explored, {} pruned, {} bisections)",
        stats.boxes_explored, stats.boxes_pruned, stats.bisections
    );

    // --- Query 2: unsatisfiable query over a tanh activation -----------------
    // exists x in [-10, 10] :  tanh(2 x) >= 1.0001
    let q2 = Formula::atom(Constraint::ge((x.clone() * 2.0).tanh(), 1.0001));
    let q2_result = solver.solve(&q2, &IntervalBox::from_bounds(&[(-10.0, 10.0)]));
    println!("query 2: {q2_result} (tanh is bounded by 1, so this must be unsat)");

    // --- Query 3: a decrease query like the paper's condition (5) -------------
    // System: x' = -x + 0.5 y, y' = -y; candidate W = x^2 + y^2.
    // Ask the negation: exists state outside X0 with dW/dt >= -gamma.
    let f = [-x.clone() + y.clone() * 0.5, -y.clone()];
    let w = x.clone().powi(2) + y.clone().powi(2);
    let lie = w.differentiate(0) * f[0].clone() + w.differentiate(1) * f[1].clone();
    let gamma = 1e-6;
    let outside_x0 = Formula::or(vec![
        Formula::atom(Constraint::lt(x.clone(), -0.5)),
        Formula::atom(Constraint::gt(x.clone(), 0.5)),
        Formula::atom(Constraint::lt(y.clone(), -0.5)),
        Formula::atom(Constraint::gt(y, 0.5)),
    ]);
    let q3 = Formula::and(vec![
        outside_x0,
        Formula::atom(Constraint::ge(lie.simplified(), -gamma)),
    ]);
    let domain = IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]);
    let q3_result = solver.solve(&q3, &domain);
    println!("query 3: {q3_result} (unsat means W decreases everywhere outside X0)");
}
