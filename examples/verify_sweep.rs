//! Reproduces the Table 1 sweep: verification effort versus controller size.
//!
//! For every hidden-layer width the example derives a parameterized variant
//! of the registry's `dubins-paper` scenario (same specification and
//! configuration, wider controller), runs the full barrier-certificate
//! procedure, and prints one row with the same quantities as Table 1 of the
//! paper: the number of generator iterations, the average LP and SMT times,
//! the time spent in the remaining steps, and the total time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example verify_sweep [widths...]
//! # default widths: 10 20 40 50 70 80 90 100
//! ```

use nncps_barrier::{VerificationRequest, VerificationSession};
use nncps_scenarios::{PlantSpec, Registry, Scenario};

fn main() {
    let widths: Vec<usize> = {
        let parsed: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if parsed.is_empty() {
            vec![10, 20, 40, 50, 70, 80, 90, 100]
        } else {
            parsed
        }
    };

    let registry = Registry::builtin();
    let base = registry
        .get("dubins-paper")
        .expect("dubins-paper is built in");
    // One session across the sweep: compiled δ-SAT formulas of structurally
    // identical queries are reused between widths where possible.
    let session = VerificationSession::new();

    println!(
        "{:>8} | {:>10} | {:>10} | {:>12} | {:>10} | {:>10} | {:>9}",
        "neurons", "iterations", "LP (s)", "SMT (5) (s)", "other (s)", "total (s)", "result"
    );
    println!("{}", "-".repeat(88));

    for &width in &widths {
        // The sweep point: the paper scenario with the controller width as
        // the free parameter.
        let scenario = Scenario::new(
            format!("dubins-sweep-{width}"),
            format!("Table 1 sweep point: 2-{width}-1 controller"),
            PlantSpec::Dubins {
                hidden_neurons: width,
                speed: 1.0,
            },
            base.spec().clone(),
            base.config().clone(),
            base.expected(),
        );
        let system = scenario.build_system();
        let outcome = session
            .verify(&VerificationRequest::over(&system).with_config(scenario.config().clone()));
        let stats = outcome.stats();
        println!(
            "{:>8} | {:>10} | {:>10.3} | {:>12.3} | {:>10.3} | {:>10.3} | {:>9}",
            width,
            stats.generator_iterations,
            stats.avg_lp_time().as_secs_f64(),
            stats.avg_smt_time().as_secs_f64(),
            stats.timings.other().as_secs_f64(),
            stats.timings.total.as_secs_f64(),
            if outcome.is_certified() {
                "safe"
            } else {
                "unknown"
            },
        );
    }
}
