//! Reproduces the Table 1 sweep: verification effort versus controller size.
//!
//! For every hidden-layer width the example builds the case-study closed loop,
//! runs the full barrier-certificate procedure, and prints one row with the
//! same quantities as Table 1 of the paper: the number of generator
//! iterations, the average LP and SMT times, the time spent in the remaining
//! steps, and the total time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example verify_sweep [widths...]
//! # default widths: 10 20 40 50 70 80 90 100
//! ```

use nncps_barrier::{ClosedLoopSystem, SafetySpec, VerificationConfig, Verifier};
use nncps_dubins::{reference_controller, ErrorDynamics};
use nncps_interval::IntervalBox;

fn paper_spec() -> SafetySpec {
    let eps = 0.01;
    let pi = std::f64::consts::PI;
    SafetySpec::rectangular(
        IntervalBox::from_bounds(&[(-1.0, 1.0), (-pi / 16.0, pi / 16.0)]),
        IntervalBox::from_bounds(&[(-5.0, 5.0), (-(pi / 2.0 - eps), pi / 2.0 - eps)]),
    )
}

fn main() {
    let widths: Vec<usize> = {
        let parsed: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if parsed.is_empty() {
            vec![10, 20, 40, 50, 70, 80, 90, 100]
        } else {
            parsed
        }
    };

    println!(
        "{:>8} | {:>10} | {:>10} | {:>12} | {:>10} | {:>10} | {:>9}",
        "neurons", "iterations", "LP (s)", "SMT (5) (s)", "other (s)", "total (s)", "result"
    );
    println!("{}", "-".repeat(88));

    for &width in &widths {
        let controller = reference_controller(width);
        let dynamics = ErrorDynamics::new(controller, 1.0);
        let system = ClosedLoopSystem::new(dynamics.symbolic_vector_field(), paper_spec());
        let verifier = Verifier::new(VerificationConfig::default());
        let outcome = verifier.verify(&system);
        let stats = outcome.stats();
        println!(
            "{:>8} | {:>10} | {:>10.3} | {:>12.3} | {:>10.3} | {:>10.3} | {:>9}",
            width,
            stats.generator_iterations,
            stats.avg_lp_time().as_secs_f64(),
            stats.avg_smt_time().as_secs_f64(),
            stats.timings.other().as_secs_f64(),
            stats.timings.total.as_secs_f64(),
            if outcome.is_certified() { "safe" } else { "unknown" },
        );
    }
}
