//! Regenerates the data behind Figure 5: the phase portrait of the verified
//! closed loop with the initial set, the unsafe set, sample trajectories, and
//! the barrier-certificate level set.
//!
//! The output is CSV with a `kind` column so the figure can be reproduced with
//! any plotting tool:
//!
//! * `x0_corner` — corners of the initial set rectangle,
//! * `unsafe_bound` — the rectangle whose complement is the unsafe set,
//! * `trace,<id>` — sampled simulation trajectories (Φs of the paper),
//! * `barrier` — points on the certified level set `{W(x) = ℓ}`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example phase_portrait > figure5.csv
//! ```

use nncps_barrier::{ClosedLoopSystem, SafetySpec, VerificationConfig, Verifier};
use nncps_dubins::{reference_controller, ErrorDynamics};
use nncps_interval::IntervalBox;
use nncps_sim::{Integrator, Simulator};

fn main() {
    let eps = 0.01;
    let pi = std::f64::consts::PI;
    let initial_set = IntervalBox::from_bounds(&[(-1.0, 1.0), (-pi / 16.0, pi / 16.0)]);
    let safe_region = IntervalBox::from_bounds(&[
        (-5.0, 5.0),
        (-(pi / 2.0 - eps), pi / 2.0 - eps),
    ]);
    let spec = SafetySpec::rectangular(initial_set.clone(), safe_region.clone());

    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    let system = ClosedLoopSystem::new(dynamics.symbolic_vector_field(), spec);
    let verifier = Verifier::new(VerificationConfig::default());
    let outcome = verifier.verify(&system);

    println!("kind,x,y");
    // The rectangles.
    for corner in initial_set.corners() {
        println!("x0_corner,{},{}", corner[0], corner[1]);
    }
    for corner in safe_region.corners() {
        println!("unsafe_bound,{},{}", corner[0], corner[1]);
    }

    // Sample trajectories from the domain (the Φs of Figure 5).
    let simulator = Simulator::new(Integrator::RungeKutta4, 0.05, 10.0);
    let expr_dynamics = system.dynamics();
    let starts = [
        [4.0, 1.0],
        [-4.0, -1.0],
        [3.0, -1.2],
        [-3.0, 1.2],
        [2.0, 0.8],
        [-2.0, -0.8],
        [4.5, -0.5],
        [-4.5, 0.5],
    ];
    for (id, start) in starts.iter().enumerate() {
        let trace = simulator.simulate_until(&expr_dynamics, start, |_, s| {
            !safe_region.contains_point(s)
        });
        for (_, state) in trace.iter().step_by(4) {
            println!("trace{id},{},{}", state[0], state[1]);
        }
    }

    // The barrier level set {W = l}, traced by scanning the domain.
    match outcome.certificate() {
        Some(certificate) => {
            eprintln!("certified with level {:.6}", certificate.level());
            let steps = 400;
            for i in 0..=steps {
                let x = -5.0 + 10.0 * i as f64 / steps as f64;
                // For each x, find theta values where W(x, theta) = l by a fine scan.
                let mut previous: Option<(f64, f64)> = None;
                for j in 0..=steps {
                    let y = -(pi / 2.0) + pi * j as f64 / steps as f64;
                    let value = certificate.value(&[x, y]);
                    if let Some((py, pv)) = previous {
                        if pv.signum() != value.signum() {
                            // Linear interpolation of the crossing.
                            let t = pv / (pv - value);
                            println!("barrier,{},{}", x, py + t * (y - py));
                        }
                    }
                    previous = Some((y, value));
                }
            }
        }
        None => {
            eprintln!("verification inconclusive: {outcome}");
        }
    }
}
