//! Regenerates the data behind Figure 5: the phase portrait of the verified
//! closed loop with the initial set, the unsafe set, sample trajectories, and
//! the barrier-certificate level set.
//!
//! The closed loop and its specification come from the scenario registry
//! (`dubins-paper`), so this example stays in lock-step with what the batch
//! runner and CI verify.  The output is CSV with a `kind` column so the
//! figure can be reproduced with any plotting tool:
//!
//! * `x0_corner` — corners of the initial set rectangle,
//! * `unsafe_bound` — the rectangle whose complement is the unsafe set,
//! * `trace,<id>` — sampled simulation trajectories (Φs of the paper),
//! * `barrier` — points on the certified level set `{W(x) = ℓ}`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example phase_portrait > figure5.csv
//! ```

use nncps_barrier::{VerificationRequest, VerificationSession};
use nncps_scenarios::Registry;
use nncps_sim::{Integrator, Simulator};

fn main() {
    let registry = Registry::builtin();
    let scenario = registry
        .get("dubins-paper")
        .expect("dubins-paper is built in");
    let spec = scenario.spec().clone();
    let initial_set = spec.initial_set().clone();
    let safe_region = spec.domain().clone();

    let system = scenario.build_system();
    let session = VerificationSession::new();
    let outcome =
        session.verify(&VerificationRequest::over(&system).with_config(scenario.config().clone()));

    println!("kind,x,y");
    // The rectangles.
    for corner in initial_set.corners() {
        println!("x0_corner,{},{}", corner[0], corner[1]);
    }
    for corner in safe_region.corners() {
        println!("unsafe_bound,{},{}", corner[0], corner[1]);
    }

    // Sample trajectories from the domain (the Φs of Figure 5).
    let simulator = Simulator::new(Integrator::RungeKutta4, 0.05, 10.0);
    let expr_dynamics = system.dynamics();
    let starts = [
        [4.0, 1.0],
        [-4.0, -1.0],
        [3.0, -1.2],
        [-3.0, 1.2],
        [2.0, 0.8],
        [-2.0, -0.8],
        [4.5, -0.5],
        [-4.5, 0.5],
    ];
    for (id, start) in starts.iter().enumerate() {
        let trace =
            simulator.simulate_until(&expr_dynamics, start, |_, s| !safe_region.contains_point(s));
        for (_, state) in trace.iter().step_by(4) {
            println!("trace{id},{},{}", state[0], state[1]);
        }
    }

    // The barrier level set {W = l}, traced by scanning the domain.
    match outcome.certificate() {
        Some(certificate) => {
            eprintln!("certified with level {:.6}", certificate.level());
            let steps = 400;
            let (x_lo, x_hi) = (safe_region[0].lo(), safe_region[0].hi());
            let (y_lo, y_hi) = (safe_region[1].lo(), safe_region[1].hi());
            for i in 0..=steps {
                let x = x_lo + (x_hi - x_lo) * i as f64 / steps as f64;
                // For each x, find y values where W(x, y) = l by a fine scan.
                let mut previous: Option<(f64, f64)> = None;
                for j in 0..=steps {
                    let y = y_lo + (y_hi - y_lo) * j as f64 / steps as f64;
                    let value = certificate.value(&[x, y]);
                    if let Some((py, pv)) = previous {
                        if pv.signum() != value.signum() {
                            // Linear interpolation of the crossing.
                            let t = pv / (pv - value);
                            println!("barrier,{},{}", x, py + t * (y - py));
                        }
                    }
                    previous = Some((y, value));
                }
            }
        }
        None => {
            eprintln!("verification inconclusive: {outcome}");
        }
    }
}
