//! Quickstart: verify safety of an NN-controlled Dubins car in one page.
//!
//! The verification problem itself — plant, controller, safety
//! specification, pipeline configuration, expected verdict — lives in the
//! scenario registry (`nncps_scenarios`), so this example is a thin lookup:
//!
//! 1. fetch the paper's case study from the built-in registry,
//! 2. instantiate the closed-loop system it describes,
//! 3. run the simulation-guided barrier-certificate procedure, and
//! 4. print the certificate and the per-stage timing breakdown.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! To sweep *every* registered scenario and emit a JSON report, use the
//! batch runner instead: `cargo run --release --bin nncps-batch`.

use nncps_barrier::{VerificationRequest, VerificationSession};
use nncps_scenarios::Registry;

fn main() {
    // --- 1. The scenario: the paper's Section 4 case study. ----------------
    let registry = Registry::builtin();
    let scenario = registry
        .get("dubins-paper")
        .expect("dubins-paper is built in");
    println!("scenario : {}", scenario.name());
    println!("           {}", scenario.description());

    // --- 2. Closed-loop system (error dynamics + 2-10-1 tanh controller). --
    let system = scenario.build_system();
    let config = scenario.config().clone();
    println!(
        "verifying with gamma = {:e}, delta = {:e}, {} seed traces ...",
        config.gamma, config.delta, config.num_seed_traces
    );

    // --- 3. Run the verification procedure (Figure 1). ---------------------
    let session = VerificationSession::new();
    let outcome = session.verify(&VerificationRequest::over(&system).with_config(config));

    // --- 4. Report. --------------------------------------------------------
    let stats = outcome.stats();
    println!();
    match outcome.certificate() {
        Some(certificate) => {
            println!("SYSTEM IS SAFE (expected: {})", scenario.expected());
            println!("  {certificate}");
            println!("  invariant level  : {:.6}", certificate.level());
        }
        None => {
            println!("verification inconclusive: {outcome}");
        }
    }
    println!();
    println!("statistics (cf. Table 1 of the paper):");
    println!("  generator iterations : {}", stats.generator_iterations);
    println!("  counterexamples      : {}", stats.counterexamples);
    println!("  delta-SAT boxes      : {}", stats.solver.boxes_explored);
    println!("  avg LP solve         : {:?}", stats.avg_lp_time());
    println!("  avg SMT check (5)    : {:?}", stats.avg_smt_time());
    println!("  level-set selection  : {:?}", stats.timings.level_set);
    println!("  other                : {:?}", stats.timings.other());
    println!("  total                : {:?}", stats.timings.total);
}
