//! Quickstart: verify safety of an NN-controlled Dubins car in one page.
//!
//! This example builds the paper's case study end to end:
//!
//! 1. construct a path-following neural-network controller,
//! 2. form the closed-loop error dynamics symbolically,
//! 3. state the safety specification (initial set `X0`, unsafe set `U`),
//! 4. run the simulation-guided barrier-certificate procedure, and
//! 5. print the certificate and the per-stage timing breakdown.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nncps_barrier::{ClosedLoopSystem, SafetySpec, VerificationConfig, Verifier};
use nncps_dubins::{reference_controller, ErrorDynamics};
use nncps_interval::IntervalBox;

fn main() {
    // --- 1. The learning-enabled component: a 2 -> 10 -> 1 tanh network. ----
    let hidden_neurons = 10;
    let controller = reference_controller(hidden_neurons);
    println!(
        "controller: {} hidden tanh neurons, {} parameters",
        hidden_neurons,
        controller.num_params()
    );

    // --- 2. Closed-loop error dynamics (d_err, theta_err). -----------------
    let speed = 1.0;
    let dynamics = ErrorDynamics::new(controller, speed);
    let vector_field = dynamics.symbolic_vector_field();

    // --- 3. Safety specification from Section 4.3 of the paper. ------------
    let eps = 0.01;
    let pi = std::f64::consts::PI;
    let initial_set = IntervalBox::from_bounds(&[(-1.0, 1.0), (-pi / 16.0, pi / 16.0)]);
    let safe_region = IntervalBox::from_bounds(&[
        (-5.0, 5.0),
        (-(pi / 2.0 - eps), pi / 2.0 - eps),
    ]);
    let spec = SafetySpec::rectangular(initial_set, safe_region);
    let system = ClosedLoopSystem::new(vector_field, spec);

    // --- 4. Run the verification procedure (Figure 1). ---------------------
    let config = VerificationConfig::default();
    println!(
        "verifying with gamma = {:e}, delta = {:e}, {} seed traces ...",
        config.gamma, config.delta, config.num_seed_traces
    );
    let verifier = Verifier::new(config);
    let outcome = verifier.verify(&system);

    // --- 5. Report. ----------------------------------------------------------
    let stats = outcome.stats();
    println!();
    match outcome.certificate() {
        Some(certificate) => {
            println!("SYSTEM IS SAFE");
            println!("  {certificate}");
            println!("  invariant level  : {:.6}", certificate.level());
        }
        None => {
            println!("verification inconclusive: {outcome}");
        }
    }
    println!();
    println!("statistics (cf. Table 1 of the paper):");
    println!("  generator iterations : {}", stats.generator_iterations);
    println!("  counterexamples      : {}", stats.counterexamples);
    println!("  avg LP solve         : {:?}", stats.avg_lp_time());
    println!("  avg SMT check (5)    : {:?}", stats.avg_smt_time());
    println!("  level-set selection  : {:?}", stats.timings.level_set);
    println!("  other                : {:?}", stats.timings.other());
    println!("  total                : {:?}", stats.timings.total);
}
