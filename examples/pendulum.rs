//! A second learning-enabled CPS: an inverted pendulum stabilized by a tanh
//! neural controller.
//!
//! The paper's procedure is not tied to the Dubins car — any closed loop of
//! the form `ẋ = f_p(x, h(g(x)))` with a smooth neural controller `h` can be
//! verified.  This example builds a torque-limited inverted pendulum
//!
//! ```text
//! θ̇ = ω
//! ω̇ = (g/l)·sin θ − (b/(m l²))·ω + u/(m l²),   u = saturation · h(θ, ω)
//! ```
//!
//! with a single-hidden-layer tanh controller that implements a smooth
//! PD-like law, and proves that from the initial set
//! `X0 = [−0.2, 0.2] × [−0.2, 0.2]` the pendulum never leaves the safe band
//! `|θ| < 0.8 rad`, `|ω| < 2.0 rad/s` (the complement of that box is the
//! unsafe set).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pendulum
//! ```

use nncps_barrier::{ClosedLoopSystem, SafetySpec, VerificationConfig, Verifier};
use nncps_expr::Expr;
use nncps_interval::IntervalBox;
use nncps_linalg::{Matrix, Vector};
use nncps_nn::{network_from_weights, Activation, FeedforwardNetwork};

/// Builds a 2 → `hidden` → 1 tanh controller implementing a smooth PD law
/// `u ≈ −(k_theta·θ + k_omega·ω)`, spread across the hidden neurons the same
/// way the Dubins reference controller is.
fn pendulum_controller(hidden: usize, k_theta: f64, k_omega: f64) -> FeedforwardNetwork {
    let mut hidden_weights = Matrix::zeros(hidden, 2);
    let hidden_biases = Vector::zeros(hidden);
    let mut output_weights = Matrix::zeros(1, hidden);
    for i in 0..hidden {
        let phase = (i as f64 + 1.0) * 2.399_963;
        let scale = 1.0 + 0.1 * phase.sin();
        hidden_weights[(i, 0)] = -k_theta * scale;
        hidden_weights[(i, 1)] = -k_omega * scale;
        output_weights[(0, i)] = 1.0 / (scale * hidden as f64);
    }
    network_from_weights(
        2,
        vec![
            (hidden_weights, hidden_biases, Activation::Tanh),
            (output_weights, Vector::zeros(1), Activation::Linear),
        ],
    )
}

fn main() {
    // Plant parameters.
    let gravity = 9.81;
    let length = 1.0;
    let mass = 1.0;
    let damping = 0.5;
    let max_torque = 20.0;

    // The learning-enabled component: a 2 -> 16 -> 1 tanh network.
    let controller = pendulum_controller(16, 1.2, 0.5);
    println!(
        "controller: 16 hidden tanh neurons, {} parameters",
        controller.num_params()
    );

    // Closed-loop vector field, symbolically: u = max_torque * h(theta, omega).
    let theta = Expr::var(0);
    let omega = Expr::var(1);
    let u = controller.forward_symbolic(&[theta.clone(), omega.clone()])[0].clone();
    let inertia = mass * length * length;
    let vector_field = vec![
        omega.clone(),
        theta.clone().sin() * (gravity / length) - omega * (damping / inertia)
            + u * (max_torque / inertia),
    ];

    // Safety specification.
    let spec = SafetySpec::rectangular(
        IntervalBox::from_bounds(&[(-0.2, 0.2), (-0.2, 0.2)]),
        IntervalBox::from_bounds(&[(-0.8, 0.8), (-2.0, 2.0)]),
    );
    let system = ClosedLoopSystem::new(vector_field, spec.clone());

    // Verify.
    let config = VerificationConfig {
        num_seed_traces: 15,
        sim_duration: 6.0,
        ..VerificationConfig::default()
    };
    let verifier = Verifier::new(config);
    let outcome = verifier.verify(&system);

    match outcome.certificate() {
        Some(certificate) => {
            println!("PENDULUM IS SAFE");
            println!("  {certificate}");
            println!("  invariant level  : {:.6}", certificate.level());
            // Cheap numeric cross-check of the three barrier conditions.
            let violations = certificate.count_violations(
                &spec,
                |p| system.derivative(p),
                41,
            );
            println!("  grid spot check  : {violations} violations");
        }
        None => println!("verification inconclusive: {outcome}"),
    }
    let stats = outcome.stats();
    println!(
        "  iterations {}, counterexamples {}, total {:?}",
        stats.generator_iterations, stats.counterexamples, stats.timings.total
    );
}
