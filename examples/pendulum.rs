//! A second learning-enabled CPS: an inverted pendulum stabilized by a tanh
//! neural controller.
//!
//! The paper's procedure is not tied to the Dubins car — any closed loop of
//! the form `ẋ = f_p(x, h(g(x)))` with a smooth neural controller `h` can be
//! verified.  The pendulum problem (torque-limited plant, 2-16-1 tanh PD-like
//! controller, safe band `|θ| < 0.8 rad`, `|ω| < 2.0 rad/s`) is registered in
//! the scenario registry as `pendulum-tanh-16`, so this example is a lookup
//! plus a run — and it also reruns the sibling `pendulum-logsig-16` variant,
//! whose controller realises the same control law through logistic-sigmoid
//! activations (`tanh(z) = 2σ(2z) − 1`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pendulum
//! ```

use nncps_scenarios::{run_scenario, Registry};

fn main() {
    let registry = Registry::builtin();
    for name in ["pendulum-tanh-16", "pendulum-logsig-16"] {
        let scenario = registry.get(name).expect("pendulum scenarios are built in");
        println!("scenario : {name}");
        println!("           {}", scenario.description());

        let result = run_scenario(scenario);
        match result.verdict.as_str() {
            "certified" => {
                println!("PENDULUM IS SAFE");
                println!("  invariant level  : {:.6}", result.level.unwrap());
                println!("  generator coeffs : {:?}", result.generator_coefficients);
            }
            _ => println!(
                "verification inconclusive: {}",
                result.reason.as_deref().unwrap_or("(no reason)")
            ),
        }
        println!(
            "  iterations {}, counterexamples {}, {} delta-SAT boxes, {:.3}s total",
            result.stats.generator_iterations,
            result.stats.counterexamples,
            result.stats.boxes_explored,
            result.wall_time_s + result.build_time_s,
        );
        println!();
    }
}
