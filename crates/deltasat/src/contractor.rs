//! HC4-revise interval contraction (tree-walking reference implementation).
//!
//! Given a constraint `expr ⋈ bound` and a box of variable domains, the HC4
//! algorithm performs a forward interval evaluation of the expression —
//! recording the enclosure of every node — followed by a backward pass that
//! propagates the admissible output range down to the leaves using the
//! recorded values, narrowing variable domains on the way.  Narrowing is
//! *sound*: no point of the box that satisfies the constraint is ever
//! removed.
//!
//! Both passes visit each tree node once, so one revise is O(n) in the node
//! count.  The recursive functions here are the readable *reference*
//! implementation; the solver's hot loop runs the same algorithm — bit for
//! bit — on compiled tapes via [`crate::CompiledClause`], which shares the
//! inversion rules defined in this module.  Variable-free subtrees are
//! treated atomically (their recorded enclosure is checked against the
//! requirement, but they are not descended into), matching the tape's
//! constant folding.

use nncps_expr::{BinaryOp, Expr, ExprView, UnaryOp};
use nncps_interval::{Interval, IntervalBox};

use crate::Constraint;

/// Applies one HC4-revise pass of `constraint` to `region`, narrowing the
/// variable domains in place.
///
/// Returns `false` if the constraint is proven infeasible on the box (some
/// domain became empty), `true` otherwise.
///
/// # Examples
///
/// ```
/// use nncps_deltasat::{hc4_revise, Constraint};
/// use nncps_expr::Expr;
/// use nncps_interval::IntervalBox;
///
/// // x + y <= 1 with x, y in [0, 10]: y's domain shrinks to [0, 1].
/// let c = Constraint::le(Expr::var(0) + Expr::var(1), 1.0);
/// let mut region = IntervalBox::from_bounds(&[(0.0, 10.0), (0.0, 10.0)]);
/// assert!(hc4_revise(&c, &mut region));
/// assert!(region[0].hi() <= 1.0 + 1e-9);
/// assert!(region[1].hi() <= 1.0 + 1e-9);
/// ```
pub fn hc4_revise(constraint: &Constraint, region: &mut IntervalBox) -> bool {
    let forward = forward(constraint.expr(), region);
    backward(
        constraint.expr(),
        &forward,
        region,
        constraint.admissible_interval(),
    )
}

/// Applies HC4-revise for every constraint in `clause` repeatedly, up to
/// `rounds` sweeps or until a fixpoint is (approximately) reached.
///
/// Returns `false` as soon as any constraint is proven infeasible.
pub fn contract_clause(clause: &[Constraint], region: &mut IntervalBox, rounds: usize) -> bool {
    for _ in 0..rounds {
        let before = total_width(region);
        for constraint in clause {
            if !hc4_revise(constraint, region) {
                return false;
            }
        }
        let after = total_width(region);
        // Stop iterating once a sweep no longer makes meaningful progress.
        if before - after <= 1e-12 * before.max(1.0) {
            break;
        }
    }
    true
}

pub(crate) fn total_width(region: &IntervalBox) -> f64 {
    region.iter().map(Interval::width).sum()
}

/// Recorded forward evaluation of one tree node: the node's interval
/// enclosure, whether its subtree is variable-free (treated atomically by the
/// backward pass), and the recorded children.
struct Forward {
    value: Interval,
    constant: bool,
    children: Vec<Forward>,
}

/// Forward pass: evaluates the expression bottom-up over the box, recording
/// every node's enclosure for the backward pass.
fn forward(expr: &Expr, region: &IntervalBox) -> Forward {
    match expr.view() {
        ExprView::Const(c) => Forward {
            value: Interval::singleton(c),
            constant: true,
            children: Vec::new(),
        },
        ExprView::Var(i) => {
            assert!(
                i < region.dim(),
                "expression references variable x{i} but the box has {} dimensions",
                region.dim()
            );
            Forward {
                value: region[i],
                constant: false,
                children: Vec::new(),
            }
        }
        ExprView::Unary(op, a) => {
            let a = forward(a, region);
            Forward {
                value: op.apply_interval(a.value),
                constant: a.constant,
                children: vec![a],
            }
        }
        ExprView::Binary(op, a, b) => {
            let a = forward(a, region);
            let b = forward(b, region);
            Forward {
                value: op.apply_interval(a.value, b.value),
                constant: a.constant && b.constant,
                children: vec![a, b],
            }
        }
        ExprView::Powi(a, n) => {
            let a = forward(a, region);
            Forward {
                value: a.value.powi(n),
                constant: a.constant,
                children: vec![a],
            }
        }
    }
}

/// Backward pass: narrows `region` so that `expr` can still take a value in
/// `required`, using the node values recorded by [`forward`].  Returns
/// `false` if that is impossible.
fn backward(expr: &Expr, fwd: &Forward, region: &mut IntervalBox, required: Interval) -> bool {
    let narrowed = fwd.value.intersect(&required);
    if narrowed.is_empty() {
        return false;
    }
    if fwd.constant {
        // A variable-free subtree carries no domains to narrow; its recorded
        // enclosure either meets the requirement (checked above) or the
        // constraint is infeasible.
        return true;
    }
    match expr.view() {
        ExprView::Const(_) => true,
        ExprView::Var(i) => {
            let dom = region[i].intersect(&narrowed);
            if dom.is_empty() {
                return false;
            }
            region[i] = dom;
            true
        }
        ExprView::Unary(op, a) => {
            let a_req = invert_unary(op, narrowed, fwd.children[0].value);
            backward(a, &fwd.children[0], region, a_req)
        }
        ExprView::Binary(op, a, b) => {
            let (a_req, b_req) =
                invert_binary(op, narrowed, fwd.children[0].value, fwd.children[1].value);
            backward(a, &fwd.children[0], region, a_req)
                && backward(b, &fwd.children[1], region, b_req)
        }
        ExprView::Powi(a, n) => {
            let a_req = invert_powi(n, narrowed, fwd.children[0].value);
            backward(a, &fwd.children[0], region, a_req)
        }
    }
}

/// Computes a sound requirement on the operand of a unary operator, given the
/// requirement `out` on the operator's result and the operand's current
/// enclosure `operand`.
pub(crate) fn invert_unary(op: UnaryOp, out: Interval, operand: Interval) -> Interval {
    match op {
        UnaryOp::Neg => -out,
        UnaryOp::Exp => out.ln(),
        UnaryOp::Ln => out.exp(),
        UnaryOp::Sqrt => {
            let non_negative = out.intersect(&Interval::new(0.0, f64::INFINITY));
            non_negative.square()
        }
        UnaryOp::Tanh => atanh_interval(out),
        UnaryOp::Sigmoid => logit_interval(out),
        UnaryOp::Atan => invert_atan(out),
        UnaryOp::Abs => {
            let positive = out.intersect(&Interval::new(0.0, f64::INFINITY));
            if positive.is_empty() {
                Interval::EMPTY
            } else {
                // a ∈ [-hi, -lo] ∪ [lo, hi]; the hull is sound, and we tighten
                // using the sign of the current operand enclosure.
                if operand.lo() >= 0.0 {
                    positive
                } else if operand.hi() <= 0.0 {
                    -positive
                } else {
                    Interval::new(-positive.hi(), positive.hi())
                }
            }
        }
        // sin, cos, tan are periodic/multivalued; narrowing them soundly
        // requires branch bookkeeping that rarely pays off for our queries, so
        // we simply keep the operand's current domain.
        UnaryOp::Sin | UnaryOp::Cos | UnaryOp::Tan => operand,
    }
}

/// Computes sound requirements on both operands of a binary operator.
pub(crate) fn invert_binary(
    op: BinaryOp,
    out: Interval,
    a_val: Interval,
    b_val: Interval,
) -> (Interval, Interval) {
    match op {
        BinaryOp::Add => (out - b_val, out - a_val),
        BinaryOp::Sub => (out + b_val, a_val - out),
        BinaryOp::Mul => {
            let a_req = if b_val.contains(0.0) {
                Interval::ENTIRE
            } else {
                out / b_val
            };
            let b_req = if a_val.contains(0.0) {
                Interval::ENTIRE
            } else {
                out / a_val
            };
            (a_req, b_req)
        }
        BinaryOp::Div => {
            // a / b = out  =>  a = out * b,  b = a / out.
            let a_req = out * b_val;
            let b_req = if out.contains(0.0) {
                Interval::ENTIRE
            } else {
                a_val / out
            };
            (a_req, b_req)
        }
        BinaryOp::Min => {
            // Decided branches invert exactly: when the operand enclosures
            // cannot overlap, the minimum *is* the winning operand, so the
            // requirement passes through to it unchanged, while the losing
            // operand keeps only the (vacuous) `>= out.lo` bound.  This is
            // also what keeps region specialization bit-invisible: a
            // decided `min` aliased away by `Tape::specialize` applies `out`
            // to the surviving operand — exactly this rule.
            if a_val.hi() < b_val.lo() {
                (out, Interval::new(out.lo(), f64::INFINITY))
            } else if b_val.hi() < a_val.lo() {
                (Interval::new(out.lo(), f64::INFINITY), out)
            } else {
                // Overlapping branches: min(a, b) ∈ out implies a >= out.lo
                // and b >= out.lo.
                (
                    Interval::new(out.lo(), f64::INFINITY),
                    Interval::new(out.lo(), f64::INFINITY),
                )
            }
        }
        BinaryOp::Max => {
            if a_val.lo() > b_val.hi() {
                (out, Interval::new(f64::NEG_INFINITY, out.hi()))
            } else if b_val.lo() > a_val.hi() {
                (Interval::new(f64::NEG_INFINITY, out.hi()), out)
            } else {
                (
                    Interval::new(f64::NEG_INFINITY, out.hi()),
                    Interval::new(f64::NEG_INFINITY, out.hi()),
                )
            }
        }
    }
}

/// Outward safety margin applied to approximately computed inversion
/// endpoints (`powf` roots, `tan`, `atanh`, logit): constant `1e-12` for
/// small magnitudes — where it dwarfs the few-ulp error of the underlying
/// libm call — switching to a relative `1e-14·|x|` (tens of ulps) beyond
/// `|x| = 100`, where a constant margin would be *smaller* than one ulp and
/// the inverted requirement could fail to envelop the true preimage.  An
/// enveloping margin is what makes a non-biting requirement a provable no-op
/// (the backward-subtree skip and the satisfied-atom drop rely on it), and
/// what keeps these inversions sound in the first place: an under-margined
/// root at `|x| ≈ 1e5` measurably clips domain points that satisfy the
/// constraint.  The `1e-12` constant below the threshold is exactly the
/// historical margin, so small-magnitude narrowing — everything the pinned
/// scenario artifacts exercise — keeps its bits.
fn outward_slop(x: f64) -> f64 {
    1e-12f64.max(x.abs() * 1e-14)
}

/// Inverse of an integer power: a requirement on `a` given `a^n ∈ out`.
pub(crate) fn invert_powi(n: i32, out: Interval, a_val: Interval) -> Interval {
    if n <= 0 {
        // a^0 carries no information; negative powers are rare in our models
        // and skipping the narrowing is always sound.
        return a_val;
    }
    if n % 2 == 1 {
        // Odd power: strictly monotone, invert endpoint-wise.
        let root = |x: f64| x.signum() * x.abs().powf(1.0 / f64::from(n));
        let lo = if out.lo().is_finite() {
            let r = root(out.lo());
            r - outward_slop(r)
        } else {
            f64::NEG_INFINITY
        };
        let hi = if out.hi().is_finite() {
            let r = root(out.hi());
            r + outward_slop(r)
        } else {
            f64::INFINITY
        };
        Interval::new(lo, hi)
    } else {
        // Even power: |a| ∈ nth-root of (out ∩ [0, ∞)).
        let non_negative = out.intersect(&Interval::new(0.0, f64::INFINITY));
        if non_negative.is_empty() {
            return Interval::EMPTY;
        }
        let root_hi = if non_negative.hi().is_finite() {
            let r = non_negative.hi().powf(1.0 / f64::from(n));
            r + outward_slop(r)
        } else {
            f64::INFINITY
        };
        let root_lo = {
            let r = (non_negative.lo().max(0.0)).powf(1.0 / f64::from(n));
            r - outward_slop(r)
        };
        if a_val.lo() >= 0.0 {
            Interval::new(root_lo.max(0.0), root_hi)
        } else if a_val.hi() <= 0.0 {
            Interval::new(-root_hi, (-root_lo).min(0.0))
        } else {
            Interval::new(-root_hi, root_hi)
        }
    }
}

/// Sound interval inverse of `tanh` (clips the output range to `(-1, 1)`).
fn atanh_interval(out: Interval) -> Interval {
    let clipped = out.intersect(&Interval::new(-1.0, 1.0));
    if clipped.is_empty() {
        return Interval::EMPTY;
    }
    let lo = if clipped.lo() <= -1.0 {
        f64::NEG_INFINITY
    } else {
        clipped.lo().atanh() - 1e-12
    };
    let hi = if clipped.hi() >= 1.0 {
        f64::INFINITY
    } else {
        clipped.hi().atanh() + 1e-12
    };
    Interval::new(lo, hi)
}

/// Sound interval inverse of the logistic sigmoid (clips to `(0, 1)`).
fn logit_interval(out: Interval) -> Interval {
    let clipped = out.intersect(&Interval::new(0.0, 1.0));
    if clipped.is_empty() {
        return Interval::EMPTY;
    }
    let logit = |p: f64| (p / (1.0 - p)).ln();
    let lo = if clipped.lo() <= 0.0 {
        f64::NEG_INFINITY
    } else {
        logit(clipped.lo()) - 1e-12
    };
    let hi = if clipped.hi() >= 1.0 {
        f64::INFINITY
    } else {
        logit(clipped.hi()) + 1e-12
    };
    Interval::new(lo, hi)
}

/// Sound interval inverse of `atan` (clips to `(-π/2, π/2)`).
fn invert_atan(out: Interval) -> Interval {
    let half_pi = std::f64::consts::FRAC_PI_2;
    let clipped = out.intersect(&Interval::new(-half_pi, half_pi));
    if clipped.is_empty() {
        return Interval::EMPTY;
    }
    let lo = if clipped.lo() <= -half_pi + 1e-12 {
        f64::NEG_INFINITY
    } else {
        // tan blows up toward the pole guard, so the margin must scale with
        // the result (see `outward_slop`).
        let t = clipped.lo().tan();
        t - outward_slop(t)
    };
    let hi = if clipped.hi() >= half_pi - 1e-12 {
        f64::INFINITY
    } else {
        let t = clipped.hi().tan();
        t + outward_slop(t)
    };
    Interval::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncps_expr::Expr;
    use proptest::prelude::*;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    #[test]
    fn linear_constraint_narrows_both_variables() {
        let c = Constraint::le(x() + y(), 1.0);
        let mut region = IntervalBox::from_bounds(&[(0.0, 10.0), (0.0, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].hi() <= 1.0 + 1e-9);
        assert!(region[1].hi() <= 1.0 + 1e-9);
        assert!(region[0].lo() >= -1e-9);
    }

    #[test]
    fn equality_pins_variable() {
        // 2 * x = 6 on x in [0, 10] narrows x to ~3.
        let c = Constraint::eq(Expr::constant(2.0) * x(), 6.0);
        let mut region = IntervalBox::from_bounds(&[(0.0, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!((region[0].lo() - 3.0).abs() < 1e-6);
        assert!((region[0].hi() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_constraint_is_detected() {
        let c = Constraint::ge(x().powi(2), 100.0);
        let mut region = IntervalBox::from_bounds(&[(-2.0, 2.0)]);
        assert!(!hc4_revise(&c, &mut region));
    }

    #[test]
    fn exp_and_ln_inverses_narrow() {
        // exp(x) <= 1 on x in [-5, 5] forces x <= 0.
        let c = Constraint::le(x().exp(), 1.0);
        let mut region = IntervalBox::from_bounds(&[(-5.0, 5.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].hi() <= 1e-9);
        // ln(x) >= 0 on x in (0, 10] forces x >= 1.
        let c = Constraint::ge(x().ln(), 0.0);
        let mut region = IntervalBox::from_bounds(&[(0.001, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= 1.0 - 1e-6);
    }

    #[test]
    fn tanh_inverse_narrows() {
        // tanh(x) >= 0.5 forces x >= atanh(0.5) ≈ 0.549.
        let c = Constraint::ge(x().tanh(), 0.5);
        let mut region = IntervalBox::from_bounds(&[(-3.0, 3.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= 0.5_f64.atanh() - 1e-6);
        // tanh(x) >= 2 is impossible.
        let c = Constraint::ge(x().tanh(), 2.0);
        let mut region = IntervalBox::from_bounds(&[(-3.0, 3.0)]);
        assert!(!hc4_revise(&c, &mut region));
    }

    #[test]
    fn sigmoid_and_atan_inverses_narrow() {
        let c = Constraint::le(x().sigmoid(), 0.5);
        let mut region = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].hi() <= 1e-6);

        let c = Constraint::ge(x().atan(), 0.0);
        let mut region = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= -1e-6);
    }

    #[test]
    fn abs_and_even_power_inverses() {
        // |x| <= 2 narrows x to [-2, 2].
        let c = Constraint::le(x().abs(), 2.0);
        let mut region = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= -2.0 - 1e-9 && region[0].hi() <= 2.0 + 1e-9);
        // x^2 <= 4 narrows x to [-2, 2].
        let c = Constraint::le(x().powi(2), 4.0);
        let mut region = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= -2.0 - 1e-6 && region[0].hi() <= 2.0 + 1e-6);
        // With a sign-definite starting domain the positive branch is kept.
        let c = Constraint::le(x().powi(2), 4.0);
        let mut region = IntervalBox::from_bounds(&[(0.5, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].hi() <= 2.0 + 1e-6);
        assert!(region[0].lo() >= 0.5 - 1e-9);
        // Odd powers are monotone: x^3 >= 8 forces x >= 2.
        let c = Constraint::ge(x().powi(3), 8.0);
        let mut region = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= 2.0 - 1e-6);
    }

    #[test]
    fn division_and_sqrt_inverses() {
        // x / 2 >= 3 forces x >= 6.
        let c = Constraint::ge(x() / 2.0, 3.0);
        let mut region = IntervalBox::from_bounds(&[(-10.0, 20.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= 6.0 - 1e-6);
        // sqrt(x) <= 2 forces x <= 4.
        let c = Constraint::le(x().sqrt(), 2.0);
        let mut region = IntervalBox::from_bounds(&[(0.0, 100.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].hi() <= 4.0 + 1e-6);
    }

    #[test]
    fn min_max_partial_narrowing() {
        // min(x, y) >= 1 forces both x >= 1 and y >= 1.
        let c = Constraint::ge(x().min(y()), 1.0);
        let mut region = IntervalBox::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= 1.0 - 1e-9);
        assert!(region[1].lo() >= 1.0 - 1e-9);
        // max(x, y) <= 1 forces both x <= 1 and y <= 1.
        let c = Constraint::le(x().max(y()), 1.0);
        let mut region = IntervalBox::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].hi() <= 1.0 + 1e-9);
        assert!(region[1].hi() <= 1.0 + 1e-9);
    }

    #[test]
    fn inversion_margins_envelop_at_large_magnitudes() {
        // Regression test: the inversion slop must scale with the result.
        // With the historical constant 1e-12 margin, `powf(1/3)` rounding at
        // |x| ≈ 1e5 exceeded the margin, so a requirement that should never
        // bite (x³ ≥ 0 on a positive box) clipped domain points that satisfy
        // the constraint — and diverged from the no-op-subtree-skipping
        // compiled path.
        for magnitude in [1e4, 1e5, 1e7, 1e9] {
            let c = Constraint::ge(x().powi(3), 0.0);
            let before = IntervalBox::from_bounds(&[(magnitude, magnitude + 1.0)]);
            let mut region = before.clone();
            assert!(hc4_revise(&c, &mut region));
            assert_eq!(
                region[0].lo().to_bits(),
                before[0].lo().to_bits(),
                "lo clipped at {magnitude}"
            );
            assert_eq!(
                region[0].hi().to_bits(),
                before[0].hi().to_bits(),
                "hi clipped at {magnitude}"
            );
            // The compiled contractor (which may skip the no-op subtree)
            // must agree bitwise with the tree reference.
            let compiled = crate::CompiledClause::compile(std::slice::from_ref(&c));
            let mut scratch = compiled.scratch();
            let mut tape_region = before.clone();
            assert!(compiled.contract(&mut tape_region, 1, &mut scratch));
            assert_eq!(region[0].lo().to_bits(), tape_region[0].lo().to_bits());
            assert_eq!(region[0].hi().to_bits(), tape_region[0].hi().to_bits());
        }
        // The margin still narrows correctly where it matters: x³ >= 8
        // forces x >= 2 regardless of the slop form.
        let c = Constraint::ge(x().powi(3), 8.0);
        let mut region = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= 2.0 - 1e-6);
    }

    #[test]
    fn decided_min_max_invert_exactly() {
        // min(x, 5) on x ∈ [-5, 0] is decided (x.hi < 5), so the requirement
        // passes through to x and the upper bound narrows — the overlap rule
        // `x >= out.lo` could not have done that.
        let c = Constraint::le(x().min(Expr::constant(5.0)), -1.0);
        let mut region = IntervalBox::from_bounds(&[(-5.0, 0.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].hi() <= -1.0 + 1e-9);
        // Symmetrically for a decided max.
        let c = Constraint::ge(x().max(Expr::constant(-5.0)), -1.0);
        let mut region = IntervalBox::from_bounds(&[(-4.0, 0.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert!(region[0].lo() >= -1.0 - 1e-9);
        // The losing branch is never narrowed beyond the vacuous bound.
        let c = Constraint::le(x().min(y()), 0.5);
        let mut region = IntervalBox::from_bounds(&[(-3.0, -2.0), (4.0, 5.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert_eq!(region[1], Interval::new(4.0, 5.0));
        assert!(region[0].hi() <= 0.5 + 1e-9);
    }

    #[test]
    fn trigonometric_operands_are_left_unchanged() {
        let c = Constraint::le(x().sin(), 0.5);
        let mut region = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(hc4_revise(&c, &mut region));
        assert_eq!(region[0], Interval::new(-10.0, 10.0));
    }

    #[test]
    fn clause_contraction_reaches_tighter_fixpoint() {
        // y = 1 pins y in the first sweep; the second sweep then propagates
        // through x + y = 4 and pins x near 3, demonstrating that repeated
        // sweeps reach a tighter fixpoint than a single pass.
        let clause = vec![Constraint::eq(x() + y(), 4.0), Constraint::eq(y(), 1.0)];
        let mut region = IntervalBox::from_bounds(&[(-100.0, 100.0), (-100.0, 100.0)]);
        assert!(contract_clause(&clause, &mut region, 10));
        assert!(region[0].width() < 1e-6, "x width {}", region[0].width());
        assert!(region[1].width() < 1e-6, "y width {}", region[1].width());
        assert!(region[0].contains(3.0));
        assert!(region[1].contains(1.0));
    }

    #[test]
    fn clause_contraction_is_sound_on_coupled_equalities() {
        // x + y = 4 and x - y = 0: HC4 alone cannot isolate the solution
        // (that is what branch-and-prune is for), but it must never drop it.
        let clause = vec![
            Constraint::eq(x() + y(), 4.0),
            Constraint::eq(x() - y(), 0.0),
        ];
        let mut region = IntervalBox::from_bounds(&[(-100.0, 100.0), (-100.0, 100.0)]);
        assert!(contract_clause(&clause, &mut region, 10));
        assert!(region.contains_point(&[2.0, 2.0]));
    }

    #[test]
    fn clause_contraction_detects_conflict() {
        let clause = vec![Constraint::ge(x(), 5.0), Constraint::le(x(), 1.0)];
        let mut region = IntervalBox::from_bounds(&[(-100.0, 100.0)]);
        assert!(!contract_clause(&clause, &mut region, 10));
    }

    proptest! {
        #[test]
        fn prop_contraction_never_drops_solutions(
            a in -2.0f64..2.0, b in -2.0f64..2.0, bound in -2.0f64..2.0,
            px in -3.0f64..3.0, py in -3.0f64..3.0,
        ) {
            // Constraint: a*x + b*tanh(y) + x*y <= bound.
            let e = Expr::constant(a) * x() + Expr::constant(b) * y().tanh() + x() * y();
            let c = Constraint::le(e.clone(), bound);
            let satisfied = e.eval(&[px, py]) <= bound;
            let mut region = IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]);
            let feasible = hc4_revise(&c, &mut region);
            if satisfied {
                // A real solution must survive contraction.
                prop_assert!(feasible);
                prop_assert!(region.contains_point(&[px, py]));
            }
        }
    }
}
