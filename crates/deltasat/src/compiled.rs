//! Compiled δ-SAT queries: clauses lowered to evaluation tapes.
//!
//! The branch-and-prune loop touches every constraint of a clause at every
//! box — once inside the HC4 contractor and once for feasibility
//! classification.  [`CompiledClause`] lowers all constraint expressions of
//! one conjunction into a single [`Tape`] (sharing common subexpressions
//! across constraints), and runs both operations on it:
//!
//! * **feasibility** performs *one* forward tape sweep and classifies every
//!   constraint from its root slot, so subexpressions shared between
//!   constraints are evaluated once per box instead of once per constraint;
//! * **contraction** is the classic HC4 forward/backward scheme: the forward
//!   sweep records every slot's enclosure in a reusable buffer, and the
//!   backward pass walks the program once per occurrence using those
//!   recorded values — O(n) per revise instead of the O(n²) of re-evaluating
//!   subtrees at every node.
//!
//! All scratch state lives in a caller-owned [`ClauseScratch`], so the
//! steady-state per-box loop performs **zero heap allocations**.
//!
//! # Determinism
//!
//! Every operation is bit-identical to the tree-walking reference: the same
//! verdicts, the same narrowed domains, in the same visit order as
//! [`hc4_revise`](crate::hc4_revise) /
//! [`contract_clause`](crate::contract_clause) and
//! [`Constraint::feasibility`].  The solver exploits this to offer a
//! differential-testing mode
//! ([`DeltaSolver::with_tree_evaluator`](crate::DeltaSolver::with_tree_evaluator))
//! that explores exactly the same box tree.

use nncps_expr::{Expr, Tape, TapeInstr};
use nncps_interval::{Interval, IntervalBox};

use crate::contractor::{invert_binary, invert_powi, invert_unary, total_width};
use crate::{Constraint, Feasibility, Formula};

/// One constraint of a compiled clause: the tape slot of its expression plus
/// the data needed for classification and contraction.
#[derive(Debug, Clone)]
struct CompiledAtom {
    root: usize,
    admissible: Interval,
    source: Constraint,
}

/// Joint feasibility of a clause (a conjunction of constraints) over a box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClauseFeasibility {
    /// Every constraint holds at every point of the box.
    Satisfied,
    /// Some constraint holds at no point of the box.
    Violated,
    /// Interval reasoning cannot decide the box.
    Undecided,
}

/// Reusable scratch buffers for evaluating and contracting a compiled
/// clause.
///
/// Create one per worker with [`CompiledClause::scratch`] and pass it to
/// every call; the buffers grow to a high-water mark on first use and are
/// reused allocation-free afterwards.
#[derive(Debug, Default, Clone)]
pub struct ClauseScratch {
    /// Forward interval value of every tape slot.
    slots: Vec<Interval>,
    /// Backward work stack of `(slot, required)` pairs.
    stack: Vec<(usize, Interval)>,
}

/// A conjunction of constraints compiled to one shared evaluation tape.
///
/// # Examples
///
/// ```
/// use nncps_deltasat::{CompiledClause, ClauseFeasibility, Constraint};
/// use nncps_expr::Expr;
/// use nncps_interval::IntervalBox;
///
/// let x = Expr::var(0);
/// let clause = CompiledClause::compile(&[
///     Constraint::le(x.clone().powi(2), 4.0),
///     Constraint::ge(x, 0.0),
/// ]);
/// let mut scratch = clause.scratch();
///
/// // One shared sweep decides both constraints.
/// let inside = IntervalBox::from_bounds(&[(0.5, 1.5)]);
/// assert_eq!(clause.feasibility(&inside, &mut scratch), ClauseFeasibility::Satisfied);
///
/// // Contraction narrows x to [0, 2] (same fixpoint as the tree contractor).
/// let mut region = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
/// assert!(clause.contract(&mut region, 4, &mut scratch));
/// assert!(region[0].lo() >= -1e-9 && region[0].hi() <= 2.0 + 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledClause {
    tape: Tape,
    atoms: Vec<CompiledAtom>,
}

impl CompiledClause {
    /// Compiles a conjunction of constraints into one shared tape.
    pub fn compile(clause: &[Constraint]) -> Self {
        let exprs: Vec<Expr> = clause.iter().map(|c| c.expr().clone()).collect();
        let tape = Tape::compile_many(&exprs);
        let atoms = clause
            .iter()
            .enumerate()
            .map(|(k, c)| CompiledAtom {
                root: tape.root_slot(k),
                admissible: c.admissible_interval(),
                source: c.clone(),
            })
            .collect();
        CompiledClause { tape, atoms }
    }

    /// Number of constraints in the clause.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The constraints the clause was compiled from, in order.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.atoms.iter().map(|a| &a.source)
    }

    /// The shared evaluation tape.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Creates a scratch buffer sized for this clause.
    pub fn scratch(&self) -> ClauseScratch {
        ClauseScratch {
            slots: Vec::with_capacity(self.tape.num_slots()),
            stack: Vec::with_capacity(16),
        }
    }

    /// Classifies the whole clause over a box with **one** forward tape
    /// sweep, deciding every constraint from its root slot.
    ///
    /// Bit-identical to calling [`Constraint::feasibility`] per constraint
    /// (first certain violation wins), but shared subexpressions are
    /// evaluated once instead of once per constraint.
    pub fn feasibility(
        &self,
        region: &IntervalBox,
        scratch: &mut ClauseScratch,
    ) -> ClauseFeasibility {
        self.tape.eval_interval_into(region, &mut scratch.slots);
        let mut all_satisfied = true;
        for atom in &self.atoms {
            match atom.source.feasibility_of_value(scratch.slots[atom.root]) {
                Feasibility::CertainlySatisfied => {}
                Feasibility::CertainlyViolated => return ClauseFeasibility::Violated,
                Feasibility::Unknown => all_satisfied = false,
            }
        }
        if all_satisfied {
            ClauseFeasibility::Satisfied
        } else {
            ClauseFeasibility::Undecided
        }
    }

    /// Applies HC4-revise for every constraint repeatedly, up to `rounds`
    /// sweeps or until a fixpoint is (approximately) reached — the compiled
    /// counterpart of [`contract_clause`](crate::contract_clause), reaching
    /// bit-identical fixpoints.
    ///
    /// Returns `false` as soon as any constraint is proven infeasible.
    pub fn contract(
        &self,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> bool {
        for _ in 0..rounds {
            let before = total_width(region);
            for atom in &self.atoms {
                if !self.revise(atom, region, scratch) {
                    return false;
                }
            }
            let after = total_width(region);
            // Stop iterating once a sweep no longer makes meaningful progress.
            if before - after <= 1e-12 * before.max(1.0) {
                break;
            }
        }
        true
    }

    /// One HC4-revise of a single constraint: forward sweep recording every
    /// slot's enclosure, then a non-recursive backward walk from the
    /// constraint's root using the recorded values.
    ///
    /// The backward walk visits shared slots once per *occurrence* (once per
    /// incoming edge in the expression DAG), exactly mirroring the
    /// tree-walking reference; requirements depend only on the recorded
    /// forward values, so the accumulated variable narrowing is identical.
    fn revise(
        &self,
        atom: &CompiledAtom,
        region: &mut IntervalBox,
        scratch: &mut ClauseScratch,
    ) -> bool {
        // Topological slot order means the prefix up to the atom's root
        // contains its whole dependency cone; later atoms' exclusive slots
        // need no evaluation for this revise.
        self.tape
            .eval_interval_prefix_into(region, &mut scratch.slots, atom.root + 1);
        scratch.stack.clear();
        scratch.stack.push((atom.root, atom.admissible));
        while let Some((slot, required)) = scratch.stack.pop() {
            let narrowed = scratch.slots[slot].intersect(&required);
            if narrowed.is_empty() {
                return false;
            }
            match self.tape.instr(slot) {
                // Variable-free slots (literal or folded constants) carry no
                // domains to narrow.
                TapeInstr::Const(..) => {}
                TapeInstr::Var(i) => {
                    let dom = region[i].intersect(&narrowed);
                    if dom.is_empty() {
                        return false;
                    }
                    region[i] = dom;
                }
                TapeInstr::Unary(op, a) => {
                    let a_req = invert_unary(op, narrowed, scratch.slots[a]);
                    scratch.stack.push((a, a_req));
                }
                TapeInstr::Binary(op, a, b) => {
                    let (a_req, b_req) =
                        invert_binary(op, narrowed, scratch.slots[a], scratch.slots[b]);
                    // LIFO order makes the walk a depth-first pre-order:
                    // push the right operand first so the left is processed
                    // first, matching the recursive reference.
                    scratch.stack.push((b, b_req));
                    scratch.stack.push((a, a_req));
                }
                TapeInstr::Powi(a, n) => {
                    let a_req = invert_powi(n, narrowed, scratch.slots[a]);
                    scratch.stack.push((a, a_req));
                }
            }
        }
        true
    }
}

/// A formula compiled once — DNF conversion plus per-clause tape lowering —
/// for repeated solving.
///
/// Build with [`CompiledFormula::compile`] and hand to
/// [`DeltaSolver::solve_compiled`](crate::DeltaSolver::solve_compiled); the
/// verification pipeline compiles each query up front so no per-solve
/// lowering happens inside timed sections.
///
/// # Examples
///
/// ```
/// use nncps_deltasat::{CompiledFormula, Constraint, DeltaSolver, Formula};
/// use nncps_expr::Expr;
/// use nncps_interval::IntervalBox;
///
/// let x = Expr::var(0);
/// let query = CompiledFormula::compile(&Formula::atom(Constraint::ge(x.powi(2), 2.0)));
/// let solver = DeltaSolver::new(1e-4);
/// let domain = IntervalBox::from_bounds(&[(-3.0, 3.0)]);
/// assert!(solver.solve_compiled(&query, &domain).is_delta_sat());
/// ```
#[derive(Debug, Clone)]
pub struct CompiledFormula {
    clauses: Vec<CompiledClause>,
}

impl CompiledFormula {
    /// Converts the formula to DNF and compiles each clause.
    pub fn compile(formula: &Formula) -> Self {
        CompiledFormula {
            clauses: formula
                .to_dnf()
                .iter()
                .map(|c| CompiledClause::compile(c))
                .collect(),
        }
    }

    /// The compiled DNF clauses, in solver examination order.
    pub fn clauses(&self) -> &[CompiledClause] {
        &self.clauses
    }
}

impl From<&Formula> for CompiledFormula {
    fn from(formula: &Formula) -> Self {
        CompiledFormula::compile(formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{contract_clause, hc4_revise};
    use nncps_expr::Expr;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn assert_boxes_bit_equal(a: &IntervalBox, b: &IntervalBox) {
        assert_eq!(a.dim(), b.dim());
        for k in 0..a.dim() {
            assert_eq!(a[k].lo().to_bits(), b[k].lo().to_bits(), "dimension {k} lo");
            assert_eq!(a[k].hi().to_bits(), b[k].hi().to_bits(), "dimension {k} hi");
        }
    }

    #[test]
    fn single_revise_matches_tree_reference_bitwise() {
        let constraints = [
            Constraint::le(x() + y(), 1.0),
            Constraint::eq(Expr::constant(2.0) * x(), 6.0),
            Constraint::ge(x().tanh() + y().powi(2), 0.5),
            Constraint::le((x() * y()).exp() - y().sqrt(), 2.0),
            Constraint::ge(x().abs().min(y().max(Expr::constant(0.5))), 0.25),
        ];
        for c in &constraints {
            let clause = CompiledClause::compile(std::slice::from_ref(c));
            let mut scratch = clause.scratch();
            let mut tree_region = IntervalBox::from_bounds(&[(-4.0, 10.0), (0.0, 10.0)]);
            let mut tape_region = tree_region.clone();
            let tree_ok = hc4_revise(c, &mut tree_region);
            // One round over a single atom is exactly one revise.
            let tape_ok = clause.contract(&mut tape_region, 1, &mut scratch);
            assert_eq!(tree_ok, tape_ok, "constraint {c}");
            if tree_ok {
                assert_boxes_bit_equal(&tree_region, &tape_region);
            }
        }
    }

    #[test]
    fn clause_contraction_matches_tree_reference_bitwise() {
        let clause_src = vec![
            Constraint::eq(x() + y(), 4.0),
            Constraint::eq(y(), 1.0),
            Constraint::le(x() * y(), 10.0),
        ];
        let compiled = CompiledClause::compile(&clause_src);
        let mut scratch = compiled.scratch();
        for rounds in [1usize, 2, 10] {
            let mut tree_region = IntervalBox::from_bounds(&[(-100.0, 100.0), (-100.0, 100.0)]);
            let mut tape_region = tree_region.clone();
            let tree_ok = contract_clause(&clause_src, &mut tree_region, rounds);
            let tape_ok = compiled.contract(&mut tape_region, rounds, &mut scratch);
            assert_eq!(tree_ok, tape_ok);
            assert_boxes_bit_equal(&tree_region, &tape_region);
        }
    }

    #[test]
    fn shared_subexpressions_are_deduplicated_across_atoms() {
        let shared = (x() * 2.0 + y()).tanh();
        let clause = vec![
            Constraint::le(shared.clone() + y(), 1.0),
            Constraint::ge(shared.clone() * x(), -1.0),
            Constraint::eq(shared, 0.25),
        ];
        let compiled = CompiledClause::compile(&clause);
        let separate: usize = clause.iter().map(|c| c.expr().node_count()).sum();
        assert!(compiled.tape().num_slots() < separate);
        assert_eq!(compiled.num_atoms(), 3);
        assert_eq!(compiled.constraints().count(), 3);
    }

    #[test]
    fn clause_feasibility_matches_per_constraint_classification() {
        let clause = vec![
            Constraint::le(x().powi(2) + y().powi(2), 1.0),
            Constraint::ge(x(), 0.5),
        ];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let boxes = [
            IntervalBox::from_bounds(&[(0.55, 0.6), (0.0, 0.1)]),
            IntervalBox::from_bounds(&[(2.0, 3.0), (0.0, 0.1)]),
            IntervalBox::from_bounds(&[(0.0, 0.6), (0.0, 0.1)]),
        ];
        for region in &boxes {
            let mut all = true;
            let mut reference = ClauseFeasibility::Undecided;
            let mut decided = false;
            for c in &clause {
                match c.feasibility(region) {
                    Feasibility::CertainlySatisfied => {}
                    Feasibility::CertainlyViolated => {
                        reference = ClauseFeasibility::Violated;
                        decided = true;
                        break;
                    }
                    Feasibility::Unknown => all = false,
                }
            }
            if !decided {
                reference = if all {
                    ClauseFeasibility::Satisfied
                } else {
                    ClauseFeasibility::Undecided
                };
            }
            assert_eq!(
                compiled.feasibility(region, &mut scratch),
                reference,
                "{region}"
            );
        }
    }

    #[test]
    fn compiled_formula_exposes_dnf_clauses() {
        let f = Formula::and(vec![
            Formula::atom(Constraint::le(x(), 1.0)),
            Formula::or(vec![
                Formula::atom(Constraint::ge(y(), 2.0)),
                Formula::atom(Constraint::le(y(), -2.0)),
            ]),
        ]);
        let compiled = CompiledFormula::compile(&f);
        assert_eq!(compiled.clauses().len(), 2);
        assert!(compiled.clauses().iter().all(|c| c.num_atoms() == 2));
        let via_from: CompiledFormula = (&f).into();
        assert_eq!(via_from.clauses().len(), 2);
        assert!(CompiledFormula::compile(&Formula::falsum())
            .clauses()
            .is_empty());
    }
}
