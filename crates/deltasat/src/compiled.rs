//! Compiled δ-SAT queries: clauses lowered to evaluation tapes.
//!
//! The branch-and-prune loop touches every constraint of a clause at every
//! box — once inside the HC4 contractor and once for feasibility
//! classification.  [`CompiledClause`] lowers all constraint expressions of
//! one conjunction into a single [`Tape`] (sharing common subexpressions
//! across constraints), and runs both operations on it:
//!
//! * **feasibility** performs *one* forward tape sweep and classifies every
//!   constraint from its root slot, so subexpressions shared between
//!   constraints are evaluated once per box instead of once per constraint;
//! * **contraction** is the classic HC4 forward/backward scheme: the forward
//!   sweep records every slot's enclosure in a reusable buffer, and the
//!   backward pass walks the program once per occurrence using those
//!   recorded values — O(n) per revise instead of the O(n²) of re-evaluating
//!   subtrees at every node.
//!
//! Both operations can also run over a region-specialized [`TapeView`]
//! (see [`nncps_expr::specialize`]): the solver derives shortened views on
//! descent, so the per-box cost shrinks as boxes shrink, and constraints
//! proven satisfied on a region are dropped from the sweep entirely.
//!
//! On top of the value tape, a clause can lazily compile a **gradient
//! bundle** — the partial derivatives of every constraint expression,
//! produced by [`Expr::differentiate`] and lowered through the same CSE tape
//! compiler — which powers the solver's derivative-guided contraction
//! ([`CompiledClause::derivative_cuts`]): monotonicity cuts collapse
//! dimensions on which every undecided constraint is monotone, and an
//! interval-Newton step narrows equality constraints.
//!
//! All scratch state lives in a caller-owned [`ClauseScratch`], so the
//! steady-state per-box loop performs **zero heap allocations**.
//!
//! # Determinism
//!
//! Plain evaluation (with or without a specialized view) is bit-identical to
//! the tree-walking reference: the same verdicts, the same narrowed domains,
//! in the same visit order as [`hc4_revise`](crate::hc4_revise) /
//! [`contract_clause`](crate::contract_clause) and
//! [`Constraint::feasibility`].  The solver exploits this to offer a
//! differential-testing mode
//! ([`DeltaSolver::with_tree_evaluator`](crate::DeltaSolver::with_tree_evaluator))
//! that explores exactly the same box tree.  Derivative-guided cuts *do*
//! change the search tree (that is their point — fewer boxes); they are a
//! solver-level option with a bit-identical opt-out
//! ([`DeltaSolver::with_newton_cuts`](crate::DeltaSolver::with_newton_cuts)).

use std::sync::OnceLock;

use nncps_expr::{
    AllocatedTape, Choice, ChoiceAnalysis, Expr, SpecializeScratch, Tape, TapeInstr, TapeView,
    DEFAULT_REGISTERS,
};
use nncps_interval::{Interval, IntervalBox};

use crate::contractor::{invert_binary, invert_powi, invert_unary, total_width};
use crate::{Constraint, Feasibility, Formula, Relation};

/// One constraint of a compiled clause: the tape slot of its expression plus
/// the data needed for classification and contraction.
#[derive(Debug, Clone)]
struct CompiledAtom {
    root: usize,
    admissible: Interval,
    source: Constraint,
}

/// Joint feasibility of a clause (a conjunction of constraints) over a box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClauseFeasibility {
    /// Every constraint holds at every point of the box.
    Satisfied,
    /// Some constraint holds at no point of the box.
    Violated,
    /// Interval reasoning cannot decide the box.
    Undecided,
}

/// Outcome of one derivative-guided contraction attempt
/// ([`CompiledClause::derivative_cuts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutOutcome {
    /// No cut applied; the box (and all recorded scratch state) is unchanged.
    Unchanged,
    /// At least one dimension was narrowed or collapsed.
    Narrowed,
    /// A Newton step proved an equality constraint has no solution in the
    /// box.
    Infeasible,
}

/// Reusable scratch buffers for evaluating, contracting, and cutting a
/// compiled clause.
///
/// Create one per worker with [`CompiledClause::scratch`] and pass it to
/// every call; the buffers grow to a high-water mark on first use and are
/// reused allocation-free afterwards.
#[derive(Debug, Default, Clone)]
pub struct ClauseScratch {
    /// Forward interval value of every program slot (tape or view).
    slots: Vec<Interval>,
    /// How many leading `slots` are valid for the *current* region bits —
    /// the forward-sweep cache: revises and the final classification of one
    /// propagation pass share a single incrementally grown sweep, reset
    /// whenever any variable domain changes.
    valid: usize,
    /// How many leading program slots have been *charged* to
    /// `instructions_executed` for the current logical box.  Decoupled from
    /// `valid` so a batch-prefilled sweep is charged exactly what the
    /// scalar evaluation of the same box would have been charged — fuel
    /// exhaustion points stay evaluator-invariant.
    charged: usize,
    /// Choice trace of the current forward sweep: per choice-site id of the
    /// parent tape, the `min`/`max`/`abs` resolution last observed
    /// (recorded at zero marginal cost by the recording sweeps; consumed by
    /// [`CompiledClause::respecialize`]).
    choices: Vec<Choice>,
    /// Backward work stack of `(slot, required)` pairs.
    stack: Vec<(usize, Interval)>,
    /// Per-atom verdict recorded by the last feasibility sweep.
    atom_status: Vec<Feasibility>,
    /// Root-keep mask assembled for re-specialization.
    keep_roots: Vec<bool>,
    /// Forward values of the gradient-bundle tape.
    grad_slots: Vec<Interval>,
    /// Forward values of the value tape at the box midpoint (Newton step).
    point_slots: Vec<Interval>,
    /// The box midpoint (Newton step).
    mid: Vec<f64>,
    /// Degenerate box at the midpoint (Newton step).
    point_box: IntervalBox,
    /// Instrumentation: tape instructions executed through this scratch.
    pub(crate) instructions_executed: usize,
    /// Instrumentation: Σ of active program lengths over processed boxes.
    pub(crate) specialized_tape_len_sum: usize,
    /// Instrumentation: derivative-guided cuts applied.
    pub(crate) newton_cuts: usize,
}

impl ClauseScratch {
    /// Installs a recorded forward sweep as the valid sweep cache (the
    /// solver's batched sibling evaluation recorded `trace` over exactly
    /// the region about to be propagated), returning the previous buffer
    /// for recycling.  Pair with [`CompiledClause::propagate_prefilled`].
    pub(crate) fn install_sweep(&mut self, trace: Vec<Interval>) -> Vec<Interval> {
        self.valid = trace.len();
        // The prefill is free only in *evaluation*: fuel charging restarts
        // so the box pays the same scalar-equivalent instruction count it
        // would have paid growing the sweep itself.
        self.charged = 0;
        std::mem::replace(&mut self.slots, trace)
    }

    /// Installs a recorded choice trace alongside a prefilled sweep (the
    /// batched sibling evaluation recorded it for exactly this region),
    /// returning the previous buffer for recycling.
    pub(crate) fn install_choices(&mut self, choices: Vec<Choice>) -> Vec<Choice> {
        std::mem::replace(&mut self.choices, choices)
    }

    /// Moves the instrumentation counters out of the scratch (resetting
    /// them), so the solver can fold them into its statistics.
    pub(crate) fn take_counters(&mut self) -> (usize, usize, usize) {
        let counters = (
            self.instructions_executed,
            self.specialized_tape_len_sum,
            self.newton_cuts,
        );
        self.instructions_executed = 0;
        self.specialized_tape_len_sum = 0;
        self.newton_cuts = 0;
        counters
    }
}

/// The active evaluation program: the full tape or a specialized view of it.
#[derive(Clone, Copy)]
enum Prog<'a> {
    Tape(&'a Tape),
    View(&'a Tape, &'a TapeView),
}

impl Prog<'_> {
    fn len(self) -> usize {
        match self {
            Prog::Tape(tape) => tape.num_slots(),
            Prog::View(_, view) => view.len(),
        }
    }

    fn instr(self, slot: usize) -> TapeInstr {
        match self {
            Prog::Tape(tape) => tape.instr(slot),
            Prog::View(tape, view) => view.instr(tape, slot),
        }
    }

    fn root_slot(self, k: usize) -> Option<usize> {
        match self {
            Prog::Tape(tape) => Some(tape.root_slot(k)),
            Prog::View(_, view) => view.root_slot(k),
        }
    }

    fn num_choices(self) -> usize {
        match self {
            Prog::Tape(tape) | Prog::View(tape, _) => tape.num_choices(),
        }
    }

    fn extend(self, region: &IntervalBox, slots: &mut Vec<Interval>, count: usize) {
        match self {
            Prog::Tape(tape) => tape.eval_interval_extend_into(region, slots, count),
            Prog::View(tape, view) => view.eval_interval_extend_into(tape, region, slots, count),
        }
    }

    fn extend_recording(
        self,
        region: &IntervalBox,
        slots: &mut Vec<Interval>,
        count: usize,
        choices: &mut [Choice],
    ) {
        match self {
            Prog::Tape(tape) => {
                tape.eval_interval_extend_into_recording(region, slots, count, choices)
            }
            Prog::View(tape, view) => {
                view.eval_interval_extend_into_recording(tape, region, slots, count, choices)
            }
        }
    }
}

/// The single definition of "this instruction cannot clip variable
/// domains": only `sqrt` and `ln` have HC4 inversions that narrow their
/// operand even when the requirement envelops the recorded value (they clip
/// to the function's domain), so a slot is clip-free iff it is not one of
/// those and all of its operands are.  Both the full-tape analysis at
/// compile time and the per-view recomputation call this — keep the
/// operator list in exactly one place.
fn instr_clip_free(instr: TapeInstr, flags: &[bool]) -> bool {
    match instr {
        TapeInstr::Const(..) | TapeInstr::Var(_) => true,
        TapeInstr::Unary(op, a) => {
            !matches!(op, nncps_expr::UnaryOp::Sqrt | nncps_expr::UnaryOp::Ln) && flags[a]
        }
        TapeInstr::Binary(_, a, b) => flags[a] && flags[b],
        TapeInstr::Powi(a, _) => flags[a],
    }
}

/// What one backward revise did to the variable domains.
enum Revised {
    /// Some domain became empty: the constraint is infeasible on the box.
    Infeasible,
    /// At least one domain bound changed (bit-wise).
    Narrowed,
    /// No domain bit changed — the forward-sweep cache stays valid.
    Unchanged,
}

/// The gradient bundle of a clause: one tape holding every
/// `∂(constraint k)/∂x_i`, compiled with shared CSE slots.
#[derive(Debug, Clone)]
struct GradientBundle {
    tape: Tape,
    /// Variables differentiated against (`tape.num_vars()` of the value
    /// tape); gradients with respect to later dimensions are identically 0.
    num_vars: usize,
}

impl GradientBundle {
    /// The gradient root index of `(atom, var)`.
    fn root(&self, atom: usize, var: usize) -> usize {
        self.tape.root_slot(atom * self.num_vars + var)
    }
}

/// A conjunction of constraints compiled to one shared evaluation tape.
///
/// # Examples
///
/// ```
/// use nncps_deltasat::{CompiledClause, ClauseFeasibility, Constraint};
/// use nncps_expr::Expr;
/// use nncps_interval::IntervalBox;
///
/// let x = Expr::var(0);
/// let clause = CompiledClause::compile(&[
///     Constraint::le(x.clone().powi(2), 4.0),
///     Constraint::ge(x, 0.0),
/// ]);
/// let mut scratch = clause.scratch();
///
/// // One shared sweep decides both constraints.
/// let inside = IntervalBox::from_bounds(&[(0.5, 1.5)]);
/// assert_eq!(clause.feasibility(&inside, &mut scratch), ClauseFeasibility::Satisfied);
///
/// // Contraction narrows x to [0, 2] (same fixpoint as the tree contractor).
/// let mut region = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
/// assert!(clause.contract(&mut region, 4, &mut scratch));
/// assert!(region[0].lo() >= -1e-9 && region[0].hi() <= 2.0 + 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledClause {
    tape: Tape,
    atoms: Vec<CompiledAtom>,
    /// Whether the tape contains any `min`/`max`/`abs` instruction — the
    /// only instructions region specialization can decide besides dropped
    /// atoms, so choice-free clauses skip speculative re-specialization.
    has_choices: bool,
    /// Per-slot flag: the slot's dependency cone contains no `sqrt`/`ln`.
    /// Those are the only operators whose HC4 inversion can clip variable
    /// domains even when the requirement envelops the recorded value, so a
    /// clip-free subtree whose requirement does not bite is provably a
    /// backward no-op and the walk skips it wholesale.
    clip_free: Vec<bool>,
    /// Lazily compiled gradient bundle (symbolic differentiation + tape
    /// lowering happen on first use, or eagerly via
    /// [`CompiledClause::ensure_gradients`]).
    grad: OnceLock<GradientBundle>,
    /// Lazily register-allocated form of the full tape (built on the first
    /// batched sibling sweep; shared by every consumer of this clause,
    /// including all family-sweep members holding the compiled formula
    /// through the warm-start cache).
    alloc: OnceLock<AllocatedTape>,
    /// Lazily computed choice-group partition of the tape (one backward
    /// pass; built on the first view respecialization and shared exactly
    /// like `alloc`).
    analysis: OnceLock<ChoiceAnalysis>,
}

impl CompiledClause {
    /// Compiles a conjunction of constraints into one shared tape.
    pub fn compile(clause: &[Constraint]) -> Self {
        let exprs: Vec<Expr> = clause.iter().map(|c| c.expr().clone()).collect();
        let tape = Tape::compile_many(&exprs);
        let atoms = clause
            .iter()
            .enumerate()
            .map(|(k, c)| CompiledAtom {
                root: tape.root_slot(k),
                admissible: c.admissible_interval(),
                source: c.clone(),
            })
            .collect();
        let has_choices = tape.num_choices() > 0;
        let mut clip_free = Vec::with_capacity(tape.num_slots());
        for i in 0..tape.num_slots() {
            let flag = instr_clip_free(tape.instr(i), &clip_free);
            clip_free.push(flag);
        }
        CompiledClause {
            tape,
            atoms,
            has_choices,
            clip_free,
            grad: OnceLock::new(),
            alloc: OnceLock::new(),
            analysis: OnceLock::new(),
        }
    }

    /// Number of constraints in the clause.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The constraints the clause was compiled from, in order.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.atoms.iter().map(|a| &a.source)
    }

    /// The shared evaluation tape.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Creates a scratch buffer sized for this clause.
    pub fn scratch(&self) -> ClauseScratch {
        ClauseScratch {
            slots: Vec::with_capacity(self.tape.num_slots()),
            stack: Vec::with_capacity(16),
            atom_status: Vec::with_capacity(self.atoms.len()),
            keep_roots: Vec::with_capacity(self.atoms.len()),
            ..ClauseScratch::default()
        }
    }

    /// Compiles the gradient bundle now instead of lazily on the first
    /// derivative-guided cut, so callers can keep symbolic differentiation
    /// and tape lowering out of timed solver sections.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_deltasat::{CompiledClause, Constraint};
    /// use nncps_expr::Expr;
    ///
    /// let clause = CompiledClause::compile(&[Constraint::ge(Expr::var(0).tanh(), 0.5)]);
    /// clause.ensure_gradients(); // d tanh(x)/dx compiled here, not mid-search
    /// ```
    pub fn ensure_gradients(&self) {
        let _ = self.gradient_bundle();
    }

    /// The register-allocated form of the full tape, built once on first
    /// use (the solver's batched sibling sweeps run depth-0 boxes through
    /// it; specialized views get their own allocations in the solver's
    /// view stack).
    pub(crate) fn allocated_tape(&self) -> &AllocatedTape {
        self.alloc
            .get_or_init(|| AllocatedTape::from_tape(&self.tape, DEFAULT_REGISTERS))
    }

    /// The memoized choice-group partition of the tape (see
    /// [`ChoiceAnalysis`]), built on first use — one backward pass per
    /// clause, amortized over every respecialization of every view.
    pub(crate) fn choice_analysis(&self) -> &ChoiceAnalysis {
        self.analysis
            .get_or_init(|| ChoiceAnalysis::analyze(&self.tape))
    }

    fn gradient_bundle(&self) -> &GradientBundle {
        self.grad.get_or_init(|| {
            let num_vars = self.tape.num_vars();
            let mut roots = Vec::with_capacity(self.atoms.len() * num_vars);
            for atom in &self.atoms {
                for var in 0..num_vars {
                    roots.push(atom.source.expr().differentiate(var).simplified());
                }
            }
            GradientBundle {
                tape: Tape::compile_many(&roots),
                num_vars,
            }
        })
    }

    /// Classifies the whole clause over a box with **one** forward tape
    /// sweep, deciding every constraint from its root slot.
    ///
    /// Bit-identical to calling [`Constraint::feasibility`] per constraint
    /// (first certain violation wins), but shared subexpressions are
    /// evaluated once instead of once per constraint.
    pub fn feasibility(
        &self,
        region: &IntervalBox,
        scratch: &mut ClauseScratch,
    ) -> ClauseFeasibility {
        self.feasibility_with_view(None, region, scratch)
    }

    /// [`CompiledClause::feasibility`] over a specialized view.
    ///
    /// Constraints whose root the view dropped were proven satisfied on an
    /// enclosing region and are counted satisfied without evaluation; the
    /// verdict is bit-identical to the full-tape sweep on every sub-box of
    /// the view's region.
    pub fn feasibility_with_view(
        &self,
        view: Option<&TapeView>,
        region: &IntervalBox,
        scratch: &mut ClauseScratch,
    ) -> ClauseFeasibility {
        // Standalone entry point: the caller may have changed the region
        // since the last call, so the sweep cache starts cold.
        scratch.valid = 0;
        scratch.charged = 0;
        self.classify(self.program(view), region, scratch)
    }

    /// Classification body shared by [`CompiledClause::feasibility_with_view`]
    /// and [`CompiledClause::propagate`]; reuses whatever prefix of the
    /// forward sweep is still valid for the current region bits.
    fn classify(
        &self,
        prog: Prog<'_>,
        region: &IntervalBox,
        scratch: &mut ClauseScratch,
    ) -> ClauseFeasibility {
        Self::ensure_prefix(prog, region, scratch, prog.len());
        scratch.atom_status.clear();
        scratch
            .atom_status
            .resize(self.atoms.len(), Feasibility::CertainlySatisfied);
        let mut all_satisfied = true;
        for (k, atom) in self.atoms.iter().enumerate() {
            let Some(root) = prog.root_slot(k) else {
                continue;
            };
            match atom.source.feasibility_of_value(scratch.slots[root]) {
                Feasibility::CertainlySatisfied => {}
                Feasibility::CertainlyViolated => return ClauseFeasibility::Violated,
                Feasibility::Unknown => {
                    scratch.atom_status[k] = Feasibility::Unknown;
                    all_satisfied = false;
                }
            }
        }
        if all_satisfied {
            ClauseFeasibility::Satisfied
        } else {
            ClauseFeasibility::Undecided
        }
    }

    /// Grows the shared forward sweep to cover at least `count` slots of the
    /// active program, evaluating only the missing suffix.  `scratch.valid`
    /// tracks how much of the sweep matches the current region bits; callers
    /// reset it to `0` whenever the region (or the program) may have
    /// changed.  Reused values are bit-identical by construction — they were
    /// computed on identical inputs.
    fn ensure_prefix(
        prog: Prog<'_>,
        region: &IntervalBox,
        scratch: &mut ClauseScratch,
        count: usize,
    ) {
        if count > scratch.valid {
            let mut slots = std::mem::take(&mut scratch.slots);
            slots.truncate(scratch.valid);
            let num_choices = prog.num_choices();
            if num_choices > 0 {
                // Record the choice trace as the sweep grows: the recording
                // twin is bit-identical and the trace feeds the delta-driven
                // respecialization after classification.
                if scratch.choices.len() != num_choices {
                    scratch.choices.clear();
                    scratch.choices.resize(num_choices, Choice::Both);
                }
                prog.extend_recording(region, &mut slots, count, &mut scratch.choices);
            } else {
                prog.extend(region, &mut slots, count);
            }
            scratch.slots = slots;
            scratch.valid = count;
        }
        // Fuel is charged against the *logical* sweep length, independent of
        // whether the slots came from this call, a cached prefix, or a
        // batch-recorded prefill — so exhaustion points are identical across
        // evaluators.
        if count > scratch.charged {
            scratch.instructions_executed += count - scratch.charged;
            scratch.charged = count;
        }
    }

    /// Applies HC4-revise for every constraint repeatedly, up to `rounds`
    /// sweeps or until a fixpoint is (approximately) reached — the compiled
    /// counterpart of [`contract_clause`](crate::contract_clause), reaching
    /// bit-identical fixpoints.
    ///
    /// Returns `false` as soon as any constraint is proven infeasible.
    pub fn contract(
        &self,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> bool {
        self.contract_with_view(None, region, rounds, scratch)
    }

    /// [`CompiledClause::contract`] over a specialized view.
    ///
    /// Dropped constraints are skipped: their revise is a proven no-op on
    /// every sub-box of the view's region (the recorded forward value of a
    /// certainly-satisfied constraint already lies inside its admissible
    /// interval, so every backward requirement envelops the recorded values
    /// and no domain changes), keeping the narrowing bit-identical to the
    /// full-tape contraction.
    pub fn contract_with_view(
        &self,
        view: Option<&TapeView>,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> bool {
        scratch.valid = 0;
        scratch.charged = 0;
        let clip_free = view.is_none().then_some(self.clip_free.as_slice());
        self.contract_inner(self.program(view), clip_free, region, rounds, scratch)
    }

    /// One full propagation of the clause over a box: contraction to the
    /// (approximate) fixpoint followed by feasibility classification, all
    /// sharing a single incrementally grown forward sweep — a revise that
    /// changes no domain bit leaves the sweep valid for the next revise and
    /// for the classification, so fixpointed boxes cost one sweep instead of
    /// one per revise plus one for classification.
    ///
    /// Returns [`ClauseFeasibility::Violated`] both when classification
    /// certainly refutes the box and when contraction empties it; results
    /// (narrowed region, verdict, recorded per-atom statuses) are
    /// bit-identical to [`CompiledClause::contract_with_view`] followed by
    /// [`CompiledClause::feasibility_with_view`].
    pub fn propagate(
        &self,
        view: Option<&TapeView>,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> ClauseFeasibility {
        // Without caller-provided per-view flags, only the full tape can
        // skip no-op subtrees (views renumber slots).
        let clip_free = view.is_none().then_some(self.clip_free.as_slice());
        self.propagate_flagged(view, clip_free, region, rounds, scratch)
    }

    /// [`CompiledClause::propagate`] with caller-provided clip-free flags
    /// for the active program — the solver derives them once per view
    /// ([`CompiledClause::view_clip_free`]) so specialized programs keep the
    /// no-op subtree skipping of the full tape.
    pub(crate) fn propagate_flagged(
        &self,
        view: Option<&TapeView>,
        clip_free: Option<&[bool]>,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> ClauseFeasibility {
        let prog = self.program(view);
        scratch.valid = 0;
        scratch.charged = 0;
        if !self.contract_inner(prog, clip_free, region, rounds, scratch) || region.is_empty() {
            return ClauseFeasibility::Violated;
        }
        self.classify(prog, region, scratch)
    }

    /// [`CompiledClause::propagate_flagged`] *without* invalidating the
    /// shared forward sweep: the caller has prefilled `scratch.slots` /
    /// `scratch.valid` with a recorded sweep of the active program over
    /// exactly this `region` (the solver's batched sibling evaluation).
    ///
    /// Because the recorded lanes are bitwise identical to the sweep
    /// [`CompiledClause::propagate_flagged`] would have grown itself (the
    /// batched evaluator's per-lane bit-identity), contraction and
    /// classification take identical decisions and the result is
    /// bit-identical to the unprefilled call — the cached prefix merely
    /// skips recomputation, exactly like a fixpointed revise does.
    pub(crate) fn propagate_prefilled(
        &self,
        view: Option<&TapeView>,
        view_clip_free: Option<&[bool]>,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> ClauseFeasibility {
        // Same flag resolution as `propagate`/`propagate_flagged`: views
        // take the caller-derived flags, the full tape uses its own.
        let clip_free = match view {
            Some(_) => view_clip_free,
            None => Some(self.clip_free.as_slice()),
        };
        let prog = self.program(view);
        debug_assert!(scratch.valid <= prog.len());
        if !self.contract_inner(prog, clip_free, region, rounds, scratch) || region.is_empty() {
            return ClauseFeasibility::Violated;
        }
        self.classify(prog, region, scratch)
    }

    /// Recomputes the clip-free cone flags (no `sqrt`/`ln` below the slot;
    /// see the field documentation) for a specialized view, into a reusable
    /// buffer.
    pub(crate) fn view_clip_free(&self, view: &TapeView, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(view.len());
        for i in 0..view.len() {
            let flag = instr_clip_free(view.instr(&self.tape, i), out);
            out.push(flag);
        }
    }

    fn contract_inner(
        &self,
        prog: Prog<'_>,
        clip_free: Option<&[bool]>,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> bool {
        for _ in 0..rounds {
            let before = total_width(region);
            for (k, atom) in self.atoms.iter().enumerate() {
                let Some(root) = prog.root_slot(k) else {
                    continue;
                };
                // Roots are emitted in atom order, so the shared sweep only
                // ever grows within a pass; after a fixpointed pass every
                // revise runs on cached forward values.
                Self::ensure_prefix(prog, region, scratch, root + 1);
                match self.revise_backward(prog, root, atom.admissible, region, scratch, clip_free)
                {
                    Revised::Infeasible => return false,
                    Revised::Narrowed => {
                        scratch.valid = 0;
                        scratch.charged = 0;
                    }
                    Revised::Unchanged => {}
                }
            }
            let after = total_width(region);
            // Stop iterating once a sweep no longer makes meaningful progress.
            if before - after <= 1e-12 * before.max(1.0) {
                break;
            }
        }
        true
    }

    fn program<'a>(&'a self, view: Option<&'a TapeView>) -> Prog<'a> {
        match view {
            Some(view) => Prog::View(&self.tape, view),
            None => Prog::Tape(&self.tape),
        }
    }

    /// The instruction count of the active program (full tape or view).
    pub fn program_len(&self, view: Option<&TapeView>) -> usize {
        self.program(view).len()
    }

    /// The backward half of one HC4-revise: a non-recursive walk from the
    /// constraint's root using the recorded forward values (the caller
    /// guarantees the shared sweep covers the root's dependency-cone prefix
    /// — topological slot order makes that the prefix `0..=root`).
    ///
    /// The walk visits shared slots once per *occurrence* (once per
    /// incoming edge in the expression DAG), exactly mirroring the
    /// tree-walking reference; requirements depend only on the recorded
    /// forward values, so the accumulated variable narrowing is identical.
    /// Domain updates that change no bit are skipped, which both reports
    /// `Unchanged` exactly and leaves the region bit-for-bit as the
    /// always-assigning reference would.
    fn revise_backward(
        &self,
        prog: Prog<'_>,
        root: usize,
        admissible: Interval,
        region: &mut IntervalBox,
        scratch: &mut ClauseScratch,
        clip_free: Option<&[bool]>,
    ) -> Revised {
        let mut narrowed_any = false;
        scratch.stack.clear();
        scratch.stack.push((root, admissible));
        while let Some((slot, required)) = scratch.stack.pop() {
            let narrowed = scratch.slots[slot].intersect(&required);
            if narrowed.is_empty() {
                return Revised::Infeasible;
            }
            // When the requirement does not bite (the recorded value
            // survives bit-for-bit) and the slot's cone is free of the
            // domain-clipping `sqrt`/`ln` inversions, every inversion below
            // produces a requirement enveloping its recorded value, so the
            // whole subtree walk is a proven no-op — skip it.  Fixpointed
            // contraction rounds collapse from full DAG walks to the thin
            // spine where requirements still cut.
            if let Some(clip_free) = clip_free {
                if clip_free[slot]
                    && narrowed.lo().to_bits() == scratch.slots[slot].lo().to_bits()
                    && narrowed.hi().to_bits() == scratch.slots[slot].hi().to_bits()
                {
                    continue;
                }
            }
            match prog.instr(slot) {
                // Variable-free slots (literal or folded constants) carry no
                // domains to narrow.
                TapeInstr::Const(..) => {}
                TapeInstr::Var(i) => {
                    let dom = region[i].intersect(&narrowed);
                    if dom.is_empty() {
                        return Revised::Infeasible;
                    }
                    if dom.lo().to_bits() != region[i].lo().to_bits()
                        || dom.hi().to_bits() != region[i].hi().to_bits()
                    {
                        region[i] = dom;
                        narrowed_any = true;
                    }
                }
                TapeInstr::Unary(op, a) => {
                    let a_req = invert_unary(op, narrowed, scratch.slots[a]);
                    scratch.stack.push((a, a_req));
                }
                TapeInstr::Binary(op, a, b) => {
                    let (a_req, b_req) =
                        invert_binary(op, narrowed, scratch.slots[a], scratch.slots[b]);
                    // LIFO order makes the walk a depth-first pre-order:
                    // push the right operand first so the left is processed
                    // first, matching the recursive reference.
                    scratch.stack.push((b, b_req));
                    scratch.stack.push((a, a_req));
                }
                TapeInstr::Powi(a, n) => {
                    let a_req = invert_powi(n, narrowed, scratch.slots[a]);
                    scratch.stack.push((a, a_req));
                }
            }
        }
        if narrowed_any {
            Revised::Narrowed
        } else {
            Revised::Unchanged
        }
    }

    /// Derives a further-specialized view for the current region, using the
    /// forward values, choice trace, and per-atom verdicts recorded by the
    /// last [`CompiledClause::feasibility_with_view`] sweep.
    ///
    /// Returns `true` (and fills `out`) when the derived view is worthwhile
    /// — a choice was decided or an atom dropped; returns `false` without
    /// touching `out`'s contents otherwise.  Descending from an existing
    /// view consumes the recorded choice *delta*: an unchanged trace costs
    /// `O(open choices + roots)` and exits without walking the program.
    /// Choice-free clauses skip the scan entirely unless an atom became
    /// droppable.
    pub fn respecialize(
        &self,
        view: Option<&TapeView>,
        scratch: &mut ClauseScratch,
        spec_scratch: &mut SpecializeScratch,
        out: &mut TapeView,
    ) -> bool {
        debug_assert_eq!(scratch.atom_status.len(), self.atoms.len());
        let prog = self.program(view);
        let mut newly_droppable = false;
        scratch.keep_roots.clear();
        for (k, &status) in scratch.atom_status.iter().enumerate() {
            let keep = status == Feasibility::Unknown;
            scratch.keep_roots.push(keep);
            if !keep && prog.root_slot(k).is_some() {
                newly_droppable = true;
            }
        }
        if !newly_droppable && !self.has_choices {
            return false;
        }
        match view {
            // Delta-driven descent: `respecialize_into` reports whether the
            // child differs (its delta check already accounts for droppable
            // roots), so its verdict is the final word.
            Some(view) => view.respecialize_into(
                &self.tape,
                self.choice_analysis(),
                &scratch.slots,
                &scratch.choices,
                &scratch.keep_roots,
                spec_scratch,
                out,
            ),
            // Descent root: the full three-pass derivation always fills
            // `out`; a dropped atom is worthwhile even when no instruction
            // was pruned.
            None => {
                let shortened = self.tape.specialize_from_slots(
                    &scratch.slots,
                    &scratch.keep_roots,
                    spec_scratch,
                    out,
                );
                shortened || newly_droppable
            }
        }
    }

    /// Derivative-guided contraction of one box: a **monotonicity cut**
    /// collapses every dimension on which each undecided constraint is
    /// monotone in its favorable direction (satisfiability over the box is
    /// then equivalent to satisfiability over the face, so the search loses
    /// no solutions and skips the subdivision of that dimension entirely),
    /// and an **interval-Newton step** narrows equality constraints through
    /// the mean-value form `g(x) ∈ g(m) + Σ ∂g·(x − m)`.
    ///
    /// Gradients come from the lazily compiled bundle
    /// ([`CompiledClause::ensure_gradients`]); enclosures that straddle zero
    /// or are undefined (kinks of `abs`/`min`/`max`, division by a range
    /// containing zero) safely disable the cut for that dimension.
    ///
    /// Uses the per-atom verdicts recorded by the last feasibility sweep;
    /// call only after a sweep returned
    /// [`ClauseFeasibility::Undecided`].
    pub fn derivative_cuts(
        &self,
        region: &mut IntervalBox,
        scratch: &mut ClauseScratch,
    ) -> CutOutcome {
        debug_assert_eq!(scratch.atom_status.len(), self.atoms.len());
        let grads = self.gradient_bundle();
        let dim = region.dim();
        let mut grad_slots = std::mem::take(&mut scratch.grad_slots);
        grads.tape.eval_interval_into(region, &mut grad_slots);
        scratch.grad_slots = grad_slots;
        scratch.instructions_executed += grads.tape.num_slots();
        let grad = |atom: usize, var: usize| -> Interval {
            if var < grads.num_vars {
                scratch.grad_slots[grads.root(atom, var)]
            } else {
                // The value tape never reads this dimension.
                Interval::singleton(0.0)
            }
        };

        let mut changed = false;

        // --- monotonicity cuts ------------------------------------------
        for i in 0..dim {
            if region[i].is_singleton() {
                continue;
            }
            let mut up_ok = true;
            let mut down_ok = true;
            for (k, atom) in self.atoms.iter().enumerate() {
                if scratch.atom_status[k] != Feasibility::Unknown {
                    continue;
                }
                let d = grad(k, i);
                if d.is_empty() {
                    up_ok = false;
                    down_ok = false;
                    break;
                }
                match atom.source.relation() {
                    Relation::Ge | Relation::Gt => {
                        up_ok &= d.lo() >= 0.0;
                        down_ok &= d.hi() <= 0.0;
                    }
                    Relation::Le | Relation::Lt => {
                        up_ok &= d.hi() <= 0.0;
                        down_ok &= d.lo() >= 0.0;
                    }
                    // An equality only tolerates a collapse when it provably
                    // does not depend on the dimension at all.
                    Relation::Eq => {
                        let independent = d.lo() == 0.0 && d.hi() == 0.0;
                        up_ok &= independent;
                        down_ok &= independent;
                    }
                }
                if !up_ok && !down_ok {
                    break;
                }
            }
            if up_ok {
                region[i] = Interval::singleton(region[i].hi());
                changed = true;
            } else if down_ok {
                region[i] = Interval::singleton(region[i].lo());
                changed = true;
            }
        }

        // --- interval Newton on equality constraints --------------------
        let has_eq = self
            .atoms
            .iter()
            .zip(&scratch.atom_status)
            .any(|(a, &s)| a.source.relation() == Relation::Eq && s == Feasibility::Unknown);
        if has_eq {
            scratch.mid.clear();
            for i in 0..dim {
                scratch.mid.push(region[i].midpoint());
            }
            scratch.point_box.clone_from(region);
            for i in 0..dim {
                scratch.point_box[i] = Interval::singleton(scratch.mid[i]);
            }
            scratch.point_slots.clear();
            for (k, atom) in self.atoms.iter().enumerate() {
                if atom.source.relation() != Relation::Eq
                    || scratch.atom_status[k] != Feasibility::Unknown
                {
                    continue;
                }
                // Enclosure of g at the midpoint (a point box keeps the
                // evaluation outward-rounded, hence sound).  Atom roots
                // ascend, so one midpoint sweep grows incrementally across
                // the clause's equality atoms.
                let mut point_slots = std::mem::take(&mut scratch.point_slots);
                let already = point_slots.len();
                self.tape.eval_interval_extend_into(
                    &scratch.point_box,
                    &mut point_slots,
                    (atom.root + 1).max(already),
                );
                let g_mid = point_slots[atom.root];
                scratch.instructions_executed += point_slots.len() - already;
                scratch.point_slots = point_slots;
                if g_mid.is_empty() {
                    continue;
                }
                for i in 0..dim.min(grads.num_vars) {
                    if region[i].is_singleton() {
                        continue;
                    }
                    let d_i = grad(k, i);
                    if d_i.is_empty() || d_i.contains(0.0) {
                        continue;
                    }
                    // rest = Σ_{j≠i} ∂g/∂x_j · (X_j − m_j)
                    let mut rest = Interval::singleton(0.0);
                    let mut sound = true;
                    for j in 0..dim {
                        if j == i {
                            continue;
                        }
                        let d_j = grad(k, j);
                        if d_j.is_empty() {
                            sound = false;
                            break;
                        }
                        rest = rest + d_j * (region[j] - Interval::singleton(scratch.mid[j]));
                    }
                    if !sound {
                        continue;
                    }
                    let newton = Interval::singleton(scratch.mid[i])
                        + (atom.admissible - g_mid - rest) / d_i;
                    let narrowed = region[i].intersect(&newton);
                    if narrowed.is_empty() {
                        return CutOutcome::Infeasible;
                    }
                    if narrowed != region[i] {
                        region[i] = narrowed;
                        changed = true;
                    }
                }
            }
        }

        if changed {
            CutOutcome::Narrowed
        } else {
            CutOutcome::Unchanged
        }
    }
}

/// A formula compiled once — DNF conversion plus per-clause tape lowering —
/// for repeated solving.
///
/// Build with [`CompiledFormula::compile`] and hand to
/// [`DeltaSolver::solve_compiled`](crate::DeltaSolver::solve_compiled); the
/// verification pipeline compiles each query up front so no per-solve
/// lowering happens inside timed sections.
///
/// # Examples
///
/// ```
/// use nncps_deltasat::{CompiledFormula, Constraint, DeltaSolver, Formula};
/// use nncps_expr::Expr;
/// use nncps_interval::IntervalBox;
///
/// let x = Expr::var(0);
/// let query = CompiledFormula::compile(&Formula::atom(Constraint::ge(x.powi(2), 2.0)));
/// let solver = DeltaSolver::new(1e-4);
/// let domain = IntervalBox::from_bounds(&[(-3.0, 3.0)]);
/// assert!(solver.solve_compiled(&query, &domain).is_delta_sat());
/// ```
#[derive(Debug, Clone)]
pub struct CompiledFormula {
    clauses: Vec<CompiledClause>,
}

impl CompiledFormula {
    /// Converts the formula to DNF and compiles each clause.
    pub fn compile(formula: &Formula) -> Self {
        CompiledFormula {
            clauses: formula
                .to_dnf()
                .iter()
                .map(|c| CompiledClause::compile(c))
                .collect(),
        }
    }

    /// The compiled DNF clauses, in solver examination order.
    pub fn clauses(&self) -> &[CompiledClause] {
        &self.clauses
    }

    /// Eagerly compiles every clause's gradient bundle (see
    /// [`CompiledClause::ensure_gradients`]), so derivative-guided solving
    /// pays no symbolic differentiation inside timed sections.
    pub fn ensure_gradients(&self) {
        for clause in &self.clauses {
            clause.ensure_gradients();
        }
    }
}

impl From<&Formula> for CompiledFormula {
    fn from(formula: &Formula) -> Self {
        CompiledFormula::compile(formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{contract_clause, hc4_revise};
    use nncps_expr::Expr;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn assert_boxes_bit_equal(a: &IntervalBox, b: &IntervalBox) {
        assert_eq!(a.dim(), b.dim());
        for k in 0..a.dim() {
            assert_eq!(a[k].lo().to_bits(), b[k].lo().to_bits(), "dimension {k} lo");
            assert_eq!(a[k].hi().to_bits(), b[k].hi().to_bits(), "dimension {k} hi");
        }
    }

    #[test]
    fn single_revise_matches_tree_reference_bitwise() {
        let constraints = [
            Constraint::le(x() + y(), 1.0),
            Constraint::eq(Expr::constant(2.0) * x(), 6.0),
            Constraint::ge(x().tanh() + y().powi(2), 0.5),
            Constraint::le((x() * y()).exp() - y().sqrt(), 2.0),
            Constraint::ge(x().abs().min(y().max(Expr::constant(0.5))), 0.25),
        ];
        for c in &constraints {
            let clause = CompiledClause::compile(std::slice::from_ref(c));
            let mut scratch = clause.scratch();
            let mut tree_region = IntervalBox::from_bounds(&[(-4.0, 10.0), (0.0, 10.0)]);
            let mut tape_region = tree_region.clone();
            let tree_ok = hc4_revise(c, &mut tree_region);
            // One round over a single atom is exactly one revise.
            let tape_ok = clause.contract(&mut tape_region, 1, &mut scratch);
            assert_eq!(tree_ok, tape_ok, "constraint {c}");
            if tree_ok {
                assert_boxes_bit_equal(&tree_region, &tape_region);
            }
        }
    }

    #[test]
    fn clause_contraction_matches_tree_reference_bitwise() {
        let clause_src = vec![
            Constraint::eq(x() + y(), 4.0),
            Constraint::eq(y(), 1.0),
            Constraint::le(x() * y(), 10.0),
        ];
        let compiled = CompiledClause::compile(&clause_src);
        let mut scratch = compiled.scratch();
        for rounds in [1usize, 2, 10] {
            let mut tree_region = IntervalBox::from_bounds(&[(-100.0, 100.0), (-100.0, 100.0)]);
            let mut tape_region = tree_region.clone();
            let tree_ok = contract_clause(&clause_src, &mut tree_region, rounds);
            let tape_ok = compiled.contract(&mut tape_region, rounds, &mut scratch);
            assert_eq!(tree_ok, tape_ok);
            assert_boxes_bit_equal(&tree_region, &tape_region);
        }
    }

    #[test]
    fn shared_subexpressions_are_deduplicated_across_atoms() {
        let shared = (x() * 2.0 + y()).tanh();
        let clause = vec![
            Constraint::le(shared.clone() + y(), 1.0),
            Constraint::ge(shared.clone() * x(), -1.0),
            Constraint::eq(shared, 0.25),
        ];
        let compiled = CompiledClause::compile(&clause);
        let separate: usize = clause.iter().map(|c| c.expr().node_count()).sum();
        assert!(compiled.tape().num_slots() < separate);
        assert_eq!(compiled.num_atoms(), 3);
        assert_eq!(compiled.constraints().count(), 3);
    }

    #[test]
    fn clause_feasibility_matches_per_constraint_classification() {
        let clause = vec![
            Constraint::le(x().powi(2) + y().powi(2), 1.0),
            Constraint::ge(x(), 0.5),
        ];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let boxes = [
            IntervalBox::from_bounds(&[(0.55, 0.6), (0.0, 0.1)]),
            IntervalBox::from_bounds(&[(2.0, 3.0), (0.0, 0.1)]),
            IntervalBox::from_bounds(&[(0.0, 0.6), (0.0, 0.1)]),
        ];
        for region in &boxes {
            let mut all = true;
            let mut reference = ClauseFeasibility::Undecided;
            let mut decided = false;
            for c in &clause {
                match c.feasibility(region) {
                    Feasibility::CertainlySatisfied => {}
                    Feasibility::CertainlyViolated => {
                        reference = ClauseFeasibility::Violated;
                        decided = true;
                        break;
                    }
                    Feasibility::Unknown => all = false,
                }
            }
            if !decided {
                reference = if all {
                    ClauseFeasibility::Satisfied
                } else {
                    ClauseFeasibility::Undecided
                };
            }
            assert_eq!(
                compiled.feasibility(region, &mut scratch),
                reference,
                "{region}"
            );
        }
    }

    #[test]
    fn view_evaluation_drops_satisfied_atoms_and_stays_bit_identical() {
        // Two atoms: on the region the first is certainly satisfied, the
        // second undecided.  The respecialized view must drop the first
        // atom's exclusive cone and contract bit-identically to the full
        // tape.
        let clause = vec![
            Constraint::le(y().sin() * 0.25 - 10.0, 0.0), // always satisfied
            Constraint::ge(x().tanh() + y() * 0.5, 0.4),
        ];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        assert_eq!(
            compiled.feasibility(&region, &mut scratch),
            ClauseFeasibility::Undecided
        );

        let mut spec_scratch = SpecializeScratch::default();
        let mut view = TapeView::default();
        assert!(compiled.respecialize(None, &mut scratch, &mut spec_scratch, &mut view));
        assert!(view.root_slot(0).is_none(), "satisfied atom dropped");
        assert!(view.root_slot(1).is_some());
        assert!(view.len() < compiled.tape().num_slots());

        for sub in [
            IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.25, 0.75)]),
            IntervalBox::from_bounds(&[(0.0, 1.0), (-1.0, 0.0)]),
        ] {
            // Feasibility verdicts agree.
            let mut view_scratch = compiled.scratch();
            let full = compiled.feasibility(&sub, &mut scratch);
            let short = compiled.feasibility_with_view(Some(&view), &sub, &mut view_scratch);
            assert_eq!(full, short, "{sub}");
            // Contraction narrows to identical bits.
            let mut full_region = sub.clone();
            let mut view_region = sub.clone();
            let full_ok = compiled.contract(&mut full_region, 4, &mut scratch);
            let view_ok =
                compiled.contract_with_view(Some(&view), &mut view_region, 4, &mut view_scratch);
            assert_eq!(full_ok, view_ok, "{sub}");
            if full_ok {
                assert_boxes_bit_equal(&full_region, &view_region);
            }
        }
    }

    #[test]
    fn choice_free_clause_skips_speculative_respecialization() {
        let clause = vec![Constraint::ge(x().tanh() + y().powi(2), 0.25)];
        let compiled = CompiledClause::compile(&clause);
        assert!(!compiled.has_choices);
        let mut scratch = compiled.scratch();
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        assert_eq!(
            compiled.feasibility(&region, &mut scratch),
            ClauseFeasibility::Undecided
        );
        let mut spec_scratch = SpecializeScratch::default();
        let mut view = TapeView::default();
        // Nothing droppable, no choices: the scan is skipped.
        assert!(!compiled.respecialize(None, &mut scratch, &mut spec_scratch, &mut view));
    }

    #[test]
    fn monotone_collapse_pins_decided_dimensions() {
        // g = tanh(x) + y is strictly increasing in both variables; for
        // `g >= 0.4` both dimensions collapse to their upper faces.
        let clause = vec![Constraint::ge(x().tanh() + y(), 0.4)];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let mut region = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        assert_eq!(
            compiled.feasibility(&region, &mut scratch),
            ClauseFeasibility::Undecided
        );
        assert_eq!(
            compiled.derivative_cuts(&mut region, &mut scratch),
            CutOutcome::Narrowed
        );
        assert!(region[0].is_singleton());
        assert_eq!(region[0].lo(), 1.0);
        assert!(region[1].is_singleton());
        assert_eq!(region[1].lo(), 1.0);
    }

    #[test]
    fn monotone_collapse_respects_relation_direction() {
        // `x + y <= c` prefers the lower faces.
        let clause = vec![Constraint::le(x() + y(), 0.0)];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let mut region = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        assert_eq!(
            compiled.feasibility(&region, &mut scratch),
            ClauseFeasibility::Undecided
        );
        assert_eq!(
            compiled.derivative_cuts(&mut region, &mut scratch),
            CutOutcome::Narrowed
        );
        assert_eq!(region[0].lo(), -1.0);
        assert!(region[0].is_singleton());
        assert_eq!(region[1].lo(), -1.0);
        assert!(region[1].is_singleton());
    }

    #[test]
    fn conflicting_monotonicity_blocks_the_collapse() {
        // Two undecided constraints pulling x in opposite directions.
        let clause = vec![
            Constraint::ge(x() + y(), 0.0),
            Constraint::le(x() - y(), 0.0),
        ];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let mut region = IntervalBox::from_bounds(&[(-1.0, 1.0), (-4.0, 4.0)]);
        assert_eq!(
            compiled.feasibility(&region, &mut scratch),
            ClauseFeasibility::Undecided
        );
        // x cannot collapse (conflict); y CAN: up helps `x + y >= 0` and
        // also helps `x - y <= 0`.
        let outcome = compiled.derivative_cuts(&mut region, &mut scratch);
        assert_eq!(outcome, CutOutcome::Narrowed);
        assert!(!region[0].is_singleton(), "conflicted dimension untouched");
        assert!(region[1].is_singleton());
        assert_eq!(region[1].lo(), 4.0);
    }

    #[test]
    fn newton_step_narrows_equalities() {
        // x² = 2 on [1, 2]: the derivative 2x ∈ [2, 4] has fixed sign, so a
        // single Newton step contracts hard around √2.
        let clause = vec![Constraint::eq(x().powi(2), 2.0)];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let mut region = IntervalBox::from_bounds(&[(1.0, 2.0)]);
        assert_eq!(
            compiled.feasibility(&region, &mut scratch),
            ClauseFeasibility::Undecided
        );
        assert_eq!(
            compiled.derivative_cuts(&mut region, &mut scratch),
            CutOutcome::Narrowed
        );
        assert!(region[0].contains(2.0_f64.sqrt()), "root kept: {region}");
        assert!(region[0].width() < 0.5, "meaningful contraction: {region}");
    }

    #[test]
    fn newton_step_proves_infeasibility_the_direct_sweep_misses() {
        // g = x − x·x = 0.3 on [0.7, 0.9]: interval dependency widens the
        // direct enclosure to [−0.11, 0.41] ∋ 0.3 (undecided), but the true
        // range [0.09, 0.21] misses 0.3 — the mean-value form sees it.
        let clause = vec![Constraint::eq(x() - x() * x(), 0.3)];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let mut region = IntervalBox::from_bounds(&[(0.7, 0.9)]);
        assert_eq!(
            compiled.feasibility(&region, &mut scratch),
            ClauseFeasibility::Undecided
        );
        assert_eq!(
            compiled.derivative_cuts(&mut region, &mut scratch),
            CutOutcome::Infeasible
        );
    }

    #[test]
    fn unusable_gradients_leave_the_box_unchanged() {
        // |x| has a kink at 0: over a straddling box the derivative
        // enclosure is unusable, so no cut may fire.
        let clause = vec![Constraint::ge(x().abs(), 0.5)];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let mut region = IntervalBox::from_bounds(&[(-1.0, 1.0)]);
        assert_eq!(
            compiled.feasibility(&region, &mut scratch),
            ClauseFeasibility::Undecided
        );
        assert_eq!(
            compiled.derivative_cuts(&mut region, &mut scratch),
            CutOutcome::Unchanged
        );
        assert_eq!(region[0], Interval::new(-1.0, 1.0));
    }

    #[test]
    fn dimensions_beyond_the_tape_collapse_for_free() {
        // The clause only mentions x0; x1 is unconstrained and collapses.
        let clause = vec![Constraint::ge(x().powi(2), 0.5)];
        let compiled = CompiledClause::compile(&clause);
        let mut scratch = compiled.scratch();
        let mut region = IntervalBox::from_bounds(&[(-1.0, 1.0), (-7.0, 7.0)]);
        assert_eq!(
            compiled.feasibility(&region, &mut scratch),
            ClauseFeasibility::Undecided
        );
        assert_eq!(
            compiled.derivative_cuts(&mut region, &mut scratch),
            CutOutcome::Narrowed
        );
        assert!(region[1].is_singleton());
    }

    #[test]
    fn compiled_formula_exposes_dnf_clauses() {
        let f = Formula::and(vec![
            Formula::atom(Constraint::le(x(), 1.0)),
            Formula::or(vec![
                Formula::atom(Constraint::ge(y(), 2.0)),
                Formula::atom(Constraint::le(y(), -2.0)),
            ]),
        ]);
        let compiled = CompiledFormula::compile(&f);
        assert_eq!(compiled.clauses().len(), 2);
        assert!(compiled.clauses().iter().all(|c| c.num_atoms() == 2));
        compiled.ensure_gradients();
        let via_from: CompiledFormula = (&f).into();
        assert_eq!(via_from.clauses().len(), 2);
        assert!(CompiledFormula::compile(&Formula::falsum())
            .clauses()
            .is_empty());
    }
}
