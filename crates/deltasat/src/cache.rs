//! The compilation cache: compiled δ-SAT queries keyed by structural
//! identity.
//!
//! A scenario-family sweep issues hundreds of δ-SAT queries whose expression
//! trees repeat across family members: members that share dynamics and
//! differ only in boxes, solver precision, or thread counts re-derive the
//! *same* decrease query (the Lie derivative of the same candidate over the
//! same closed loop) and the same level-set confirmation queries.  Compiling
//! a query — DNF conversion, CSE tape lowering, symbolic differentiation of
//! every constraint for the gradient bundles — is pure per-structure work,
//! so [`CompilationCache`] memoizes it: the key is a 128-bit
//! [`Fingerprint`] over every bit the compiled artifact depends on (Boolean
//! structure, relations, bound bits, and the full expression DAGs), and the
//! value is the finished [`CompiledFormula`] behind an [`Arc`], shared
//! read-only across sweep workers.
//!
//! # Determinism
//!
//! A cache hit returns an artifact that is *bit-identical in behaviour* to
//! recompiling: tape lowering is a deterministic function of the expression
//! structure, and [`Tape`](nncps_expr::Tape) evaluation is bit-identical to
//! tree evaluation (the PR 2 discipline).  Sweeps therefore produce
//! byte-identical reports with the cache enabled or disabled — the
//! differential test suite asserts exactly that.
//!
//! # Examples
//!
//! ```
//! use nncps_deltasat::{CompilationCache, Constraint, DeltaSolver, Formula};
//! use nncps_expr::Expr;
//! use nncps_interval::IntervalBox;
//!
//! let cache = CompilationCache::new();
//! let query = Formula::atom(Constraint::ge(Expr::var(0).powi(2), 2.0));
//! let compiled = cache.compile(&query);
//! // The structurally identical query is not recompiled.
//! let again = cache.compile(&Formula::atom(Constraint::ge(Expr::var(0).powi(2), 2.0)));
//! assert_eq!(cache.hits(), 1);
//! assert_eq!(cache.misses(), 1);
//! let domain = IntervalBox::from_bounds(&[(-3.0, 3.0)]);
//! assert!(DeltaSolver::new(1e-4).solve_compiled(&again, &domain).is_delta_sat());
//! # let _ = compiled;
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use nncps_expr::{Fingerprint, StructuralHasher};

use crate::{CompiledFormula, Formula, Relation};

/// A concurrent map from formula structure to compiled artifacts (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct CompilationCache {
    formulas: Mutex<HashMap<Fingerprint, Arc<CompiledFormula>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CompilationCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CompilationCache::default()
    }

    /// The structural identity key of a formula: Boolean shape, relations,
    /// bound bits, and the full expression DAGs of every atom.
    pub fn fingerprint(formula: &Formula) -> Fingerprint {
        let mut hasher = StructuralHasher::new();
        write_formula(&mut hasher, formula);
        hasher.finish()
    }

    /// Compiles a formula through the cache: on a hit the previously
    /// compiled artifact (gradient bundles included) is returned; on a miss
    /// the formula is compiled with [`CompiledFormula::compile`], its
    /// gradient bundles are built eagerly, and the artifact is stored.
    pub fn compile(&self, formula: &Formula) -> Arc<CompiledFormula> {
        let key = Self::fingerprint(formula);
        // Poisoned locks are recovered, not propagated: every cached value
        // is a pure function of its key computed *outside* the lock, so a
        // sweep member that panicked mid-insert cannot leave a torn entry —
        // isolation of crashed members must not poison their siblings.
        if let Some(found) = self
            .formulas
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        // Compile outside the lock: misses can be expensive (symbolic
        // differentiation of NN-sized queries) and other workers should not
        // serialize behind them.  If two workers race on the same key the
        // loser's artifact is dropped — both are behaviourally identical.
        let compiled = CompiledFormula::compile(formula);
        compiled.ensure_gradients();
        let compiled = Arc::new(compiled);
        let mut map = self.formulas.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&compiled));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(entry)
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (compilations performed) so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct formulas currently cached.
    pub fn len(&self) -> usize {
        self.formulas
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the cache holds no compiled formulas yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn write_formula(hasher: &mut StructuralHasher, formula: &Formula) {
    match formula {
        Formula::Atom(constraint) => {
            hasher.write_u8(0x10);
            hasher.write_u8(match constraint.relation() {
                Relation::Le => 0,
                Relation::Lt => 1,
                Relation::Ge => 2,
                Relation::Gt => 3,
                Relation::Eq => 4,
            });
            hasher.write_f64(constraint.bound());
            hasher.write_expr(constraint.expr());
        }
        Formula::And(parts) => {
            hasher.write_u8(0x11);
            hasher.write_usize(parts.len());
            for part in parts {
                write_formula(hasher, part);
            }
        }
        Formula::Or(parts) => {
            hasher.write_u8(0x12);
            hasher.write_usize(parts.len());
            for part in parts {
                write_formula(hasher, part);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Constraint;
    use nncps_expr::Expr;

    fn x() -> Expr {
        Expr::var(0)
    }

    #[test]
    fn structurally_equal_formulas_share_one_compilation() {
        let cache = CompilationCache::new();
        let build = || {
            Formula::and(vec![
                Formula::atom(Constraint::ge(x().tanh(), 0.25)),
                Formula::or(vec![
                    Formula::atom(Constraint::lt(x(), -1.0)),
                    Formula::atom(Constraint::gt(x(), 1.0)),
                ]),
            ])
        };
        let a = cache.compile(&build());
        let b = cache.compile(&build());
        assert!(Arc::ptr_eq(&a, &b), "hit must return the same artifact");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert!(!cache.is_empty());
    }

    #[test]
    fn fingerprints_distinguish_relation_bound_and_shape() {
        let base = CompilationCache::fingerprint(&Formula::atom(Constraint::ge(x(), 1.0)));
        assert_ne!(
            base,
            CompilationCache::fingerprint(&Formula::atom(Constraint::gt(x(), 1.0))),
            "relation"
        );
        assert_ne!(
            base,
            CompilationCache::fingerprint(&Formula::atom(Constraint::ge(x(), 1.5))),
            "bound bits"
        );
        assert_ne!(
            base,
            CompilationCache::fingerprint(&Formula::and(vec![Formula::atom(Constraint::ge(
                x(),
                1.0
            ))])),
            "boolean wrapper"
        );
        assert_ne!(
            CompilationCache::fingerprint(&Formula::and(vec![])),
            CompilationCache::fingerprint(&Formula::or(vec![])),
            "verum vs falsum"
        );
    }

    #[test]
    fn distinct_formulas_get_distinct_entries() {
        let cache = CompilationCache::new();
        cache.compile(&Formula::atom(Constraint::ge(x(), 1.0)));
        cache.compile(&Formula::atom(Constraint::ge(x(), 2.0)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
    }
}
