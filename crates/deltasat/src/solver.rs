//! Branch-and-prune δ-SAT search.

use std::fmt;

use nncps_expr::{
    AllocatedTape, BatchScratch, Choice, RegAlloc, SpecializeScratch, TapeView, DEFAULT_REGISTERS,
};
use nncps_interval::{Interval, IntervalBox};
use nncps_parallel::{Budget, ExhaustionReason};

use crate::compiled::{
    ClauseFeasibility, ClauseScratch, CompiledClause, CompiledFormula, CutOutcome,
};
use crate::contractor::contract_clause;
use crate::{Constraint, Feasibility, Formula};

/// Outcome of a δ-SAT query.
#[derive(Debug, Clone)]
pub enum SatResult {
    /// The δ-weakening of the formula is satisfiable; the returned box has
    /// width at most the solver precision and its midpoint is a witness.
    DeltaSat(IntervalBox),
    /// The formula is unsatisfiable (exact result — no real solution exists).
    Unsat,
    /// The solver exhausted a resource limit — its box budget, the
    /// governing [`Budget`]'s fuel or deadline, or a cooperative
    /// cancellation — before reaching a verdict.
    Unknown(ExhaustionReason),
}

impl SatResult {
    /// Returns `true` for [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// Returns `true` for [`SatResult::DeltaSat`].
    pub fn is_delta_sat(&self) -> bool {
        matches!(self, SatResult::DeltaSat(_))
    }

    /// Returns the witness midpoint for a δ-SAT result, if any.
    pub fn witness(&self) -> Option<Vec<f64>> {
        match self {
            SatResult::DeltaSat(region) => Some(region.midpoint()),
            _ => None,
        }
    }
}

impl fmt::Display for SatResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatResult::DeltaSat(region) => write!(f, "delta-sat {region}"),
            SatResult::Unsat => write!(f, "unsat"),
            SatResult::Unknown(reason) => write!(f, "unknown ({reason})"),
        }
    }
}

/// Statistics gathered during a solve call.
///
/// The first four counters describe the *shape of the search tree* and are
/// what [`PartialEq`] compares: two solves are considered equal when they
/// explored the same tree.  The remaining counters
/// ([`SolverStats::instructions_executed`],
/// [`SolverStats::specialized_tape_len_sum`], [`SolverStats::newton_cuts`])
/// are evaluation-cost instrumentation: they depend on which evaluation
/// backend ran (compiled tape, specialized views, tree reference) even when
/// the search tree is bit-identical, so they are deliberately excluded from
/// equality — and, downstream, from the scenario-report fingerprints.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Number of boxes popped from the work stack across all clauses.
    pub boxes_explored: usize,
    /// Number of boxes discarded by contraction or feasibility checks.
    pub boxes_pruned: usize,
    /// Number of bisections performed.
    pub bisections: usize,
    /// Number of DNF clauses examined.
    pub clauses_examined: usize,
    /// Tape instructions executed by forward sweeps (feasibility,
    /// contraction, gradient and Newton evaluations).  `0` under the
    /// tree-walking reference evaluator.
    pub instructions_executed: usize,
    /// Sum over processed boxes of the active program length (the full tape,
    /// or the shortened view when region specialization applies), i.e. the
    /// work-per-box integral that specialization shrinks.
    pub specialized_tape_len_sum: usize,
    /// Number of derivative-guided cuts (monotonicity collapses and interval
    /// Newton narrowings) applied.
    pub newton_cuts: usize,
}

impl PartialEq for SolverStats {
    /// Search-tree shape only — see the type-level documentation.
    fn eq(&self, other: &Self) -> bool {
        self.boxes_explored == other.boxes_explored
            && self.boxes_pruned == other.boxes_pruned
            && self.bisections == other.bisections
            && self.clauses_examined == other.clauses_examined
    }
}

impl SolverStats {
    /// Accumulates another solve's statistics into this one, so callers that
    /// issue many queries (the verification pipeline, the batch runner) can
    /// report search effort per run instead of per query.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_deltasat::SolverStats;
    ///
    /// let mut total = SolverStats::default();
    /// let one = SolverStats { boxes_explored: 7, clauses_examined: 1, ..Default::default() };
    /// total.merge(&one);
    /// total.merge(&one);
    /// assert_eq!(total.boxes_explored, 14);
    /// assert_eq!(total.clauses_examined, 2);
    /// ```
    pub fn merge(&mut self, other: &SolverStats) {
        self.boxes_explored += other.boxes_explored;
        self.boxes_pruned += other.boxes_pruned;
        self.bisections += other.bisections;
        self.clauses_examined += other.clauses_examined;
        self.instructions_executed += other.instructions_executed;
        self.specialized_tape_len_sum += other.specialized_tape_len_sum;
        self.newton_cuts += other.newton_cuts;
    }
}

/// A δ-complete decision procedure for existential nonlinear queries,
/// implemented with interval constraint propagation and branch & prune.
///
/// Queries are compiled to flat evaluation tapes
/// ([`CompiledClause`]) before the search starts, so the per-box loop —
/// contraction, feasibility classification, bisection — runs allocation-free
/// over dense instruction arrays.  Two further accelerations are on by
/// default:
///
/// * **Region specialization** ([`DeltaSolver::with_tape_specialization`]):
///   on every split the solver derives a shortened
///   [`TapeView`](nncps_expr::TapeView) for the child boxes — decided
///   `min`/`max`/`abs` branches and constraints proven satisfied on the
///   region are pruned, fidget-style, so work per box shrinks as boxes
///   shrink.  Specialization is *bit-invisible*: verdicts, witnesses, and
///   the explored box tree are identical to the full-tape search.
/// * **Derivative-guided cuts** ([`DeltaSolver::with_newton_cuts`]):
///   per box, gradient enclosures from a compiled derivative bundle drive a
///   monotonicity cut (dimensions on which every undecided constraint is
///   monotone collapse to the favorable face) and an interval-Newton step
///   for equalities.  These cuts reduce the *number* of boxes and therefore
///   change the search tree (and possibly which witness is found first);
///   disable them for bit-identical comparisons against the reference.
///
/// The tree-walking reference evaluator
/// ([`DeltaSolver::with_tree_evaluator`]) runs with both accelerations off
/// and explores exactly the same box tree as a compiled solver with Newton
/// cuts disabled.
///
/// See the [crate-level documentation](crate) for the semantics of the
/// returned verdicts and a usage example.
#[derive(Debug, Clone)]
pub struct DeltaSolver {
    precision: f64,
    max_boxes: usize,
    contraction_rounds: usize,
    threads: usize,
    tree_eval: bool,
    specialize: bool,
    newton: bool,
    batched: bool,
    budget: Budget,
}

/// What the branch-and-prune loop does with one box popped from the work
/// stack (the box itself is processed in place).
enum BoxOutcome {
    /// The box was emptied by contraction or certainly violates a constraint.
    Pruned,
    /// The (contracted) box certifies the δ-weakened formula.
    Sat,
    /// The box is undecided and wide enough to bisect.
    Split,
}

/// The clause evaluation backend: compiled tapes on the hot path, or the
/// recursive tree walkers as the bit-identical reference.
enum ClauseEngine<'a> {
    Compiled(&'a CompiledClause),
    Tree(&'a [Constraint]),
}

/// The per-depth specialization stack of one clause search: `views[d]` is
/// the program for subtrees at depth `d + 1` of the *current* depth-first
/// path (depth 0 boxes run on the full tape).  Popped views return to the
/// pool, so the steady-state loop reuses their storage allocation-free.
#[derive(Default)]
struct SpecState {
    views: Vec<TapeView>,
    /// Clip-free cone flags of each view (parallel to `views`), so derived
    /// programs keep the no-op backward-subtree skipping of the full tape.
    flags: Vec<Vec<bool>>,
    /// Register-allocated form of each view (parallel to `views`), feeding
    /// the batched sibling sweeps; empty when batching is off.
    allocs: Vec<AllocatedTape>,
    pool: Vec<TapeView>,
    flag_pool: Vec<Vec<bool>>,
    alloc_pool: Vec<AllocatedTape>,
    ralloc: RegAlloc,
    scratch: SpecializeScratch,
}

impl ClauseEngine<'_> {
    fn atom_count(&self) -> usize {
        match self {
            ClauseEngine::Compiled(clause) => clause.num_atoms(),
            ClauseEngine::Tree(clause) => clause.len(),
        }
    }

    fn scratch(&self) -> ClauseScratch {
        match self {
            ClauseEngine::Compiled(clause) => clause.scratch(),
            ClauseEngine::Tree(_) => ClauseScratch::default(),
        }
    }

    fn supports_specialization(&self) -> bool {
        matches!(self, ClauseEngine::Compiled(_))
    }

    fn program_len(&self, view: Option<(&TapeView, &[bool])>) -> usize {
        match self {
            ClauseEngine::Compiled(clause) => clause.program_len(view.map(|(v, _)| v)),
            ClauseEngine::Tree(_) => 0,
        }
    }

    /// Contraction plus classification of one box.  The compiled engine
    /// fuses both over a single shared forward sweep
    /// ([`CompiledClause::propagate`]); the tree reference runs them
    /// separately — the verdicts and the narrowed region are bit-identical.
    fn propagate(
        &self,
        view: Option<(&TapeView, &[bool])>,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> ClauseFeasibility {
        match self {
            ClauseEngine::Compiled(clause) => match view {
                Some((view, clip_free)) => {
                    clause.propagate_flagged(Some(view), Some(clip_free), region, rounds, scratch)
                }
                None => clause.propagate(None, region, rounds, scratch),
            },
            ClauseEngine::Tree(clause) => {
                if !contract_clause(clause, region, rounds) || region.is_empty() {
                    return ClauseFeasibility::Violated;
                }
                let mut all_satisfied = true;
                for constraint in *clause {
                    match constraint.feasibility(region) {
                        Feasibility::CertainlySatisfied => {}
                        Feasibility::CertainlyViolated => return ClauseFeasibility::Violated,
                        Feasibility::Unknown => all_satisfied = false,
                    }
                }
                if all_satisfied {
                    ClauseFeasibility::Satisfied
                } else {
                    ClauseFeasibility::Undecided
                }
            }
        }
    }

    /// [`ClauseEngine::propagate`], but reusing the sweep prefix already
    /// installed in the scratch (by [`ClauseScratch::install_sweep`]) instead
    /// of starting the forward sweep from scratch.  Only meaningful for the
    /// compiled engine — the solver records those prefixes with the batched
    /// evaluator, which is only wired up for compiled clauses; the tree arm
    /// falls back to a regular propagation.
    fn propagate_prefilled(
        &self,
        view: Option<(&TapeView, &[bool])>,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> ClauseFeasibility {
        match self {
            ClauseEngine::Compiled(clause) => match view {
                Some((view, clip_free)) => {
                    clause.propagate_prefilled(Some(view), Some(clip_free), region, rounds, scratch)
                }
                None => clause.propagate_prefilled(None, None, region, rounds, scratch),
            },
            ClauseEngine::Tree(_) => self.propagate(view, region, rounds, scratch),
        }
    }

    fn derivative_cuts(&self, region: &mut IntervalBox, scratch: &mut ClauseScratch) -> CutOutcome {
        match self {
            ClauseEngine::Compiled(clause) => clause.derivative_cuts(region, scratch),
            ClauseEngine::Tree(_) => CutOutcome::Unchanged,
        }
    }

    fn respecialize(
        &self,
        view: Option<&TapeView>,
        scratch: &mut ClauseScratch,
        spec_scratch: &mut SpecializeScratch,
        out: &mut TapeView,
    ) -> bool {
        match self {
            ClauseEngine::Compiled(clause) => clause.respecialize(view, scratch, spec_scratch, out),
            ClauseEngine::Tree(_) => false,
        }
    }

    fn view_clip_free(&self, view: &TapeView, out: &mut Vec<bool>) {
        if let ClauseEngine::Compiled(clause) = self {
            clause.view_clip_free(view, out);
        }
    }
}

impl DeltaSolver {
    /// Default limit on the number of boxes explored per query.
    pub const DEFAULT_MAX_BOXES: usize = 2_000_000;

    /// Default number of HC4 sweeps applied to each box.
    pub const DEFAULT_CONTRACTION_ROUNDS: usize = 4;

    /// Maximum depth of the per-path specialization stack; deeper boxes keep
    /// reusing the deepest derived view (bounding memory without affecting
    /// results — re-specialization is monotone).
    const MAX_SPECIALIZE_DEPTH: usize = 64;

    /// Maximum number of narrowing derivative cuts applied per box, each
    /// followed by a full contract + classify pass: a monotonicity collapse
    /// pins at least one dimension, so a handful of cuts already reaches
    /// the fixpoint that matters, and the final verdict is always taken on
    /// a freshly classified region.
    const MAX_CUT_PASSES: usize = 3;

    /// Lane count of the batched sibling sweeps: a bisection produces
    /// exactly two children, and both run through one two-lane sweep of the
    /// child program's register-allocated tape at split time.
    const SIBLING_LANES: usize = 2;

    /// Derivative-guided cuts are attempted once a box's width is within
    /// this factor of the precision `δ` (about ten bisections per dimension
    /// from termination).  On wide boxes the gradient enclosures of
    /// nontrivial constraints almost never have fixed sign, so sweeping the
    /// gradient bundle there is pure overhead; near the bottom of the tree —
    /// where the bulk of the boxes live — the enclosures tighten and the
    /// cuts collapse whole dimensions.
    const NEWTON_WINDOW: f64 = 1024.0;

    /// Creates a solver with the given precision `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is not strictly positive.
    pub fn new(precision: f64) -> Self {
        assert!(precision > 0.0, "precision must be positive");
        DeltaSolver {
            precision,
            max_boxes: Self::DEFAULT_MAX_BOXES,
            contraction_rounds: Self::DEFAULT_CONTRACTION_ROUNDS,
            threads: 1,
            tree_eval: false,
            specialize: true,
            newton: true,
            batched: true,
            budget: Budget::unlimited(),
        }
    }

    /// Sets the maximum number of boxes explored before giving up.
    ///
    /// The limit is hard: `boxes_explored` in the returned statistics never
    /// exceeds it, sequentially or with worker threads.
    pub fn with_max_boxes(mut self, max_boxes: usize) -> Self {
        self.max_boxes = max_boxes;
        self
    }

    /// Attaches a resource [`Budget`] governing this solver's searches.
    ///
    /// The budget is polled at the branch-and-prune loop head: fuel is
    /// charged from the tape instructions executed per box, and an
    /// exhausted limit (or a raised cancellation flag) returns
    /// [`SatResult::Unknown`] with the structured [`ExhaustionReason`].
    /// Fuel is counted per *logical* box in scalar-equivalent instructions
    /// — sweeps prerecorded by batched sibling evaluation are charged when
    /// their box is processed, not when they are recorded — so exhaustion
    /// points are identical with batching on or off.
    ///
    /// A **fuel limit forces the sequential search path** regardless of
    /// [`DeltaSolver::with_threads`]: fuel is a pure function of the
    /// sequential search tree, so the truncation point — and therefore the
    /// verdict and statistics of a fuel-exhausted solve — is bit-identical
    /// at any configured thread count.  Wall-clock deadlines and
    /// cancellation stay available to the parallel search (both are
    /// non-deterministic by nature).
    ///
    /// The handle's consumed fuel persists across solves: attach a fresh
    /// `Budget` per governed run.  Fuel is counted only by the compiled
    /// tape evaluators; the tree-walking reference executes no tape
    /// instructions and never consumes fuel.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The governing budget handle (shared: cloning it yields another view
    /// of the same counters, usable e.g. to cancel from another thread).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Sets the number of HC4 contraction sweeps per box.
    pub fn with_contraction_rounds(mut self, rounds: usize) -> Self {
        self.contraction_rounds = rounds;
        self
    }

    /// Sets the number of worker threads for the branch-and-prune search
    /// (`1` = sequential, `0` = one per available core).
    ///
    /// With more than one thread the solver pops the top boxes of the work
    /// stack as subtree roots and explores each depth-first on its own
    /// worker (capped per round), merging the leftovers back in depth-first
    /// order.  Verdicts are deterministic for a fixed thread count.  UNSAT
    /// verdicts visit exactly the same search tree as the sequential
    /// solver; δ-SAT witnesses may come from a different (but equally
    /// valid) region, after exploring at most ~`threads ×` the sequential
    /// box count, so give `with_max_boxes` the same headroom when enabling
    /// threads.  The parallel search keeps derivative-guided cuts but runs
    /// every subtree on the full tape (the per-depth specialization stack is
    /// a property of the sequential depth-first path).  Without the
    /// `parallel` feature the search always runs sequentially.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_deltasat::{Constraint, DeltaSolver, Formula};
    /// use nncps_expr::Expr;
    /// use nncps_interval::IntervalBox;
    ///
    /// let x = Expr::var(0);
    /// let query = Formula::atom(Constraint::ge(x.clone().powi(2), 2.0));
    /// let domain = IntervalBox::from_bounds(&[(-3.0, 3.0)]);
    /// let sequential = DeltaSolver::new(1e-4).solve(&query, &domain);
    /// let parallel = DeltaSolver::new(1e-4).with_threads(0).solve(&query, &domain);
    /// assert_eq!(sequential.is_delta_sat(), parallel.is_delta_sat());
    /// ```
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Switches the solver to the recursive tree-walking evaluators
    /// ([`crate::hc4_revise`] / [`Constraint::feasibility`]) instead of
    /// compiled tapes, with region specialization and derivative-guided
    /// cuts disabled.
    ///
    /// This is the slow reference path: it produces bit-identical verdicts,
    /// witnesses, and box statistics to a compiled solver with
    /// [`DeltaSolver::with_newton_cuts`] turned off (region specialization
    /// never affects results), and exists for differential testing and
    /// benchmarking of the compiled evaluation layer.  Queries handed to
    /// [`DeltaSolver::solve_compiled`] always run compiled.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_deltasat::{Constraint, DeltaSolver, Formula};
    /// use nncps_expr::Expr;
    /// use nncps_interval::IntervalBox;
    ///
    /// let query = Formula::atom(Constraint::ge(Expr::var(0).powi(2), 2.0));
    /// let domain = IntervalBox::from_bounds(&[(-3.0, 3.0)]);
    /// // Newton cuts change the search tree, so the bit-identical
    /// // comparison pins them off on the compiled side.
    /// let (fast, fast_stats) = DeltaSolver::new(1e-4)
    ///     .with_newton_cuts(false)
    ///     .solve_with_stats(&query, &domain);
    /// let (reference, reference_stats) = DeltaSolver::new(1e-4)
    ///     .with_tree_evaluator()
    ///     .solve_with_stats(&query, &domain);
    /// assert_eq!(fast.witness(), reference.witness());
    /// assert_eq!(fast_stats, reference_stats);
    /// ```
    pub fn with_tree_evaluator(mut self) -> Self {
        self.tree_eval = true;
        self.specialize = false;
        self.newton = false;
        self.batched = false;
        self
    }

    /// Enables or disables region specialization (default: enabled).
    ///
    /// When enabled, every split derives a shortened
    /// [`TapeView`](nncps_expr::TapeView) for the child boxes from the
    /// parent's program — decided `min`/`max`/`abs` branches and constraints
    /// proven satisfied on the region are dropped, so the per-box
    /// evaluation cost falls as the search descends.  Specialization is
    /// bit-invisible: verdicts, witnesses, and search statistics are
    /// identical with it on or off; the only observable difference is speed
    /// (and [`SolverStats::specialized_tape_len_sum`]).
    pub fn with_tape_specialization(mut self, enabled: bool) -> Self {
        self.specialize = enabled;
        self
    }

    /// Enables or disables derivative-guided contraction (default: enabled).
    ///
    /// Per undecided box the solver evaluates the clause's compiled gradient
    /// bundle and applies a monotonicity cut — a dimension on which every
    /// undecided constraint is monotone in its favorable direction collapses
    /// to that face, preserving satisfiability of the box exactly — plus an
    /// interval-Newton narrowing for equality constraints.  The cuts reduce
    /// box *counts* algorithmically but change the explored search tree, so
    /// δ-SAT witnesses can come from a different (equally valid) region than
    /// without cuts; disable for bit-identical comparisons against
    /// [`DeltaSolver::with_tree_evaluator`].
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_deltasat::{Constraint, DeltaSolver, Formula};
    /// use nncps_expr::Expr;
    /// use nncps_interval::IntervalBox;
    ///
    /// // tanh(x) + y is monotone in both variables: with cuts the solver
    /// // collapses the box instead of bisecting it.
    /// let query = Formula::atom(Constraint::ge(Expr::var(0).tanh() + Expr::var(1), 0.4));
    /// let domain = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
    /// let (with_cuts, fast) = DeltaSolver::new(1e-2).solve_with_stats(&query, &domain);
    /// let (without, slow) = DeltaSolver::new(1e-2)
    ///     .with_newton_cuts(false)
    ///     .solve_with_stats(&query, &domain);
    /// assert!(with_cuts.is_delta_sat() && without.is_delta_sat());
    /// assert!(fast.boxes_explored <= slow.boxes_explored);
    /// ```
    pub fn with_newton_cuts(mut self, enabled: bool) -> Self {
        self.newton = enabled;
        self
    }

    /// Enables or disables batched sibling evaluation (default: enabled).
    ///
    /// When enabled, the sequential search evaluates both children of every
    /// bisection through one multi-lane sweep of a register-allocated tape
    /// ([`AllocatedTape`](nncps_expr::AllocatedTape)): each instruction is
    /// decoded once and applied to both child boxes, and the recorded
    /// per-lane traces seed the children's contraction sweeps when they are
    /// popped.  Batching is *bit-invisible*: every lane performs exactly the
    /// operations of the scalar interpreter in the same order, so verdicts,
    /// witnesses, and search statistics are identical with it on or off —
    /// the only observable difference is speed (and
    /// [`SolverStats::instructions_executed`], which is evaluation-cost
    /// instrumentation).  It applies to compiled clauses in the sequential
    /// search; the tree reference and the multi-threaded search ignore it.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_deltasat::{Constraint, DeltaSolver, Formula};
    /// use nncps_expr::Expr;
    /// use nncps_interval::IntervalBox;
    ///
    /// let query = Formula::atom(Constraint::eq(Expr::var(0).powi(2), 2.0));
    /// let domain = IntervalBox::from_bounds(&[(0.0, 2.0)]);
    /// let (on, stats_on) = DeltaSolver::new(1e-6).solve_with_stats(&query, &domain);
    /// let (off, stats_off) = DeltaSolver::new(1e-6)
    ///     .with_batched_evaluation(false)
    ///     .solve_with_stats(&query, &domain);
    /// assert_eq!(on.witness(), off.witness());
    /// assert_eq!(stats_on, stats_off);
    /// ```
    pub fn with_batched_evaluation(mut self, enabled: bool) -> Self {
        self.batched = enabled;
        self
    }

    /// The configured precision `δ`.
    pub fn precision(&self) -> f64 {
        self.precision
    }

    /// The configured worker-thread count (`0` = one per available core).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether region specialization is enabled.
    pub fn tape_specialization(&self) -> bool {
        self.specialize
    }

    /// Whether derivative-guided cuts are enabled.
    pub fn newton_cuts(&self) -> bool {
        self.newton
    }

    /// Whether batched sibling evaluation is enabled.
    pub fn batched_evaluation(&self) -> bool {
        self.batched
    }

    /// Decides `∃ x ∈ domain : formula(x)`.
    pub fn solve(&self, formula: &Formula, domain: &IntervalBox) -> SatResult {
        self.solve_with_stats(formula, domain).0
    }

    /// Decides the query and also returns search statistics.
    pub fn solve_with_stats(
        &self,
        formula: &Formula,
        domain: &IntervalBox,
    ) -> (SatResult, SolverStats) {
        if self.tree_eval {
            let clauses = formula.to_dnf();
            self.solve_clauses(clauses.iter().map(|c| ClauseEngine::Tree(c)), domain)
        } else {
            self.solve_compiled_with_stats(&CompiledFormula::compile(formula), domain)
        }
    }

    /// Decides a query pre-compiled with [`CompiledFormula::compile`].
    ///
    /// Equivalent to [`DeltaSolver::solve`] on the source formula, but the
    /// DNF conversion and tape lowering happened up front — callers that
    /// construct a query once and solve it (or hold it across solver
    /// configurations) skip the per-solve compilation cost.
    pub fn solve_compiled(&self, query: &CompiledFormula, domain: &IntervalBox) -> SatResult {
        self.solve_compiled_with_stats(query, domain).0
    }

    /// Decides a pre-compiled query and also returns search statistics.
    pub fn solve_compiled_with_stats(
        &self,
        query: &CompiledFormula,
        domain: &IntervalBox,
    ) -> (SatResult, SolverStats) {
        self.solve_clauses(query.clauses().iter().map(ClauseEngine::Compiled), domain)
    }

    /// Examines DNF clauses in order: the first δ-SAT clause wins, Unknown is
    /// remembered, and an empty clause list (the formula `false`) is UNSAT.
    fn solve_clauses<'a, I>(&self, engines: I, domain: &IntervalBox) -> (SatResult, SolverStats)
    where
        I: Iterator<Item = ClauseEngine<'a>>,
    {
        let mut stats = SolverStats::default();
        let mut any_unknown = None;
        for engine in engines {
            stats.clauses_examined += 1;
            match self.solve_clause(&engine, domain, &mut stats) {
                SatResult::DeltaSat(region) => return (SatResult::DeltaSat(region), stats),
                SatResult::Unsat => {}
                SatResult::Unknown(reason) => any_unknown = Some(reason),
            }
        }
        match any_unknown {
            Some(reason) => (SatResult::Unknown(reason), stats),
            None => (SatResult::Unsat, stats),
        }
    }

    /// Decides satisfiability of a single conjunction of constraints.
    pub fn solve_conjunction(
        &self,
        constraints: &[Constraint],
        domain: &IntervalBox,
    ) -> (SatResult, SolverStats) {
        let mut stats = SolverStats {
            clauses_examined: 1,
            ..SolverStats::default()
        };
        let result = if self.tree_eval {
            self.solve_clause(&ClauseEngine::Tree(constraints), domain, &mut stats)
        } else {
            let compiled = CompiledClause::compile(constraints);
            self.solve_clause(&ClauseEngine::Compiled(&compiled), domain, &mut stats)
        };
        (result, stats)
    }

    fn solve_clause(
        &self,
        engine: &ClauseEngine<'_>,
        domain: &IntervalBox,
        stats: &mut SolverStats,
    ) -> SatResult {
        // An empty conjunction is trivially satisfied by any point of a
        // non-empty domain.
        if engine.atom_count() == 0 {
            return if domain.is_empty() {
                SatResult::Unsat
            } else {
                SatResult::DeltaSat(IntervalBox::from_point(&domain.midpoint()))
            };
        }
        if domain.is_empty() {
            return SatResult::Unsat;
        }

        // A fuel limit pins the search to the sequential path: the fuel
        // truncation point is defined on the sequential depth-first tree,
        // which makes fuel-exhausted verdicts and statistics bit-identical
        // across thread counts (see `with_budget`).
        let threads = if self.budget.has_fuel_limit() {
            1
        } else {
            nncps_parallel::effective_threads(self.threads)
        };
        if threads > 1 {
            self.solve_clause_batched(engine, domain, stats, threads)
        } else {
            self.solve_clause_sequential(engine, domain, stats)
        }
    }

    /// Contracts and classifies one box **in place**: the body of the
    /// branch-and-prune loop, shared by the sequential and batched searches.
    ///
    /// With derivative-guided cuts enabled, a cut that narrows the box loops
    /// back through contraction and classification so the cheaper tests get
    /// first pick at the narrowed region; the pass count is bounded because
    /// monotonicity collapses pin whole dimensions.
    fn process_box(
        &self,
        engine: &ClauseEngine<'_>,
        scratch: &mut ClauseScratch,
        region: &mut IntervalBox,
        view: Option<(&TapeView, &[bool])>,
        mut prefilled: bool,
    ) -> BoxOutcome {
        scratch.specialized_tape_len_sum += engine.program_len(view);
        let mut cut_passes = 0;
        loop {
            // Contract and classify the box over one shared forward sweep
            // (per-atom verdicts are recorded for the cut and
            // re-specialization steps).  Every exit from this loop — and in
            // particular the δ-termination below — happens on a region that
            // was classified as it stands: a narrowing cut always loops back
            // through propagation, never straight to a verdict.  When the box
            // arrives with a prefilled sweep (recorded by the batched sibling
            // evaluation at split time), the first pass reuses it; later
            // passes run on a cut-narrowed region and sweep normally.
            let feasibility = if std::mem::take(&mut prefilled) {
                engine.propagate_prefilled(view, region, self.contraction_rounds, scratch)
            } else {
                engine.propagate(view, region, self.contraction_rounds, scratch)
            };
            match feasibility {
                ClauseFeasibility::Violated => return BoxOutcome::Pruned,
                ClauseFeasibility::Satisfied => return BoxOutcome::Sat,
                ClauseFeasibility::Undecided => {}
            }

            if !self.newton
                || cut_passes >= Self::MAX_CUT_PASSES
                || region.max_width() > self.precision * Self::NEWTON_WINDOW
            {
                break;
            }
            match engine.derivative_cuts(region, scratch) {
                CutOutcome::Infeasible => return BoxOutcome::Pruned,
                CutOutcome::Unchanged => break,
                CutOutcome::Narrowed => {
                    scratch.newton_cuts += 1;
                    cut_passes += 1;
                }
            }
        }

        // δ-termination: the box can no longer be refuted by splitting at
        // the configured precision, so report the δ-weakened SAT verdict.
        if region.max_width() <= self.precision {
            return BoxOutcome::Sat;
        }

        BoxOutcome::Split
    }

    fn solve_clause_sequential(
        &self,
        engine: &ClauseEngine<'_>,
        domain: &IntervalBox,
        stats: &mut SolverStats,
    ) -> SatResult {
        let mut scratch = engine.scratch();
        let mut spec: Option<SpecState> =
            (self.specialize && engine.supports_specialization()).then(SpecState::default);
        let mut fuel_charged = 0;
        let result = self.run_sequential(
            engine,
            domain,
            stats,
            &mut scratch,
            &mut spec,
            &mut fuel_charged,
        );
        // Charge the tail executed since the last loop-head poll, so the
        // governing budget's fuel count stays exact across the many queries
        // of a verification run.
        self.budget
            .charge_fuel((scratch.instructions_executed - fuel_charged) as u64);
        let (instructions, tape_len_sum, cuts) = scratch.take_counters();
        stats.instructions_executed += instructions;
        stats.specialized_tape_len_sum += tape_len_sum;
        stats.newton_cuts += cuts;
        result
    }

    /// The sequential depth-first search, with the per-depth specialization
    /// stack mirroring the current path: stack entries carry the number of
    /// derived views that apply to them; popping an entry truncates the view
    /// stack back to that depth (recycling deeper views through the pool),
    /// and a split may push one further-specialized view for both children.
    ///
    /// With batched evaluation on (compiled clauses only), every split runs
    /// both children through one [`Self::SIBLING_LANES`]-lane recording
    /// sweep of the child program's register-allocated tape, and the stack
    /// entries carry the recorded traces: when a child is popped, its trace
    /// seeds the contraction sweep instead of re-running the forward pass.
    /// The trace stays valid while the entry waits on the stack because
    /// the box is immutable there and the view at its depth is untouched
    /// until the entry is popped (the depth-first path invariant that also
    /// protects `views`).  When the clause has `min`/`max`/`abs` choice
    /// sites, the same batched sweep also records each lane's choice trace,
    /// which rides along with the interval trace and feeds the delta-driven
    /// re-specialization when the child splits.
    fn run_sequential(
        &self,
        engine: &ClauseEngine<'_>,
        domain: &IntervalBox,
        stats: &mut SolverStats,
        scratch: &mut ClauseScratch,
        spec: &mut Option<SpecState>,
        fuel_charged: &mut usize,
    ) -> SatResult {
        let batching = self.batched && matches!(engine, ClauseEngine::Compiled(_));
        // One DFS entry: the box, its depth, and — when the sibling batch
        // prerecorded them — its forward sweep and choice traces.
        type StackEntry = (IntervalBox, u32, Option<Vec<Interval>>, Option<Vec<Choice>>);
        let mut stack: Vec<StackEntry> = vec![(domain.clone(), 0, None, None)];
        // Pruned boxes are recycled as the upper halves of later splits, so
        // the steady-state loop allocates nothing: popping moves a box out
        // of the stack, contraction narrows it in place, and
        // `split_widest_into` reuses pooled storage.  Sweep traces and
        // choice traces recycle through their own pools the same way.
        let mut pool: Vec<IntervalBox> = Vec::new();
        let mut trace_pool: Vec<Vec<Interval>> = Vec::new();
        let mut choice_pool: Vec<Vec<Choice>> = Vec::new();
        let mut batch_scratch: BatchScratch<{ Self::SIBLING_LANES }> = BatchScratch::new();
        while let Some((mut region, depth, trace, choices)) = stack.pop() {
            nncps_fault::panic_point(nncps_fault::SITE_SOLVER_BOX_POP);
            if nncps_fault::fuel_exhaustion(nncps_fault::SITE_SOLVER_BOX_POP) {
                self.budget.exhaust_fuel();
            }
            // Governance poll: charge the instructions executed since the
            // last pop, then check cancellation, fuel, and deadline (in
            // that order) before the solver's own box budget.
            let delta = (scratch.instructions_executed - *fuel_charged) as u64;
            *fuel_charged = scratch.instructions_executed;
            if let Some(reason) = self.budget.charge_and_check(delta) {
                return SatResult::Unknown(reason);
            }
            // Check-before-pop box budget: the reported `boxes_explored`
            // never exceeds `max_boxes`.
            if stats.boxes_explored >= self.max_boxes {
                return SatResult::Unknown(ExhaustionReason::Boxes(self.max_boxes));
            }
            stats.boxes_explored += 1;
            // Trim the view stack to this box's depth-first path.
            if let Some(state) = spec.as_mut() {
                while state.views.len() > depth as usize {
                    let recycled = state.views.pop().expect("length checked");
                    state.pool.push(recycled);
                    let recycled_flags = state.flags.pop().expect("parallel stacks");
                    state.flag_pool.push(recycled_flags);
                    if let Some(recycled_alloc) = state.allocs.pop() {
                        state.alloc_pool.push(recycled_alloc);
                    }
                }
            }
            let prefilled = match trace {
                Some(recorded) => {
                    trace_pool.push(scratch.install_sweep(recorded));
                    if let Some(recorded_choices) = choices {
                        choice_pool.push(scratch.install_choices(recorded_choices));
                    }
                    true
                }
                None => false,
            };
            let outcome = {
                let view = spec.as_ref().filter(|_| depth > 0).map(|state| {
                    (
                        &state.views[depth as usize - 1],
                        state.flags[depth as usize - 1].as_slice(),
                    )
                });
                self.process_box(engine, scratch, &mut region, view, prefilled)
            };
            match outcome {
                BoxOutcome::Pruned => {
                    stats.boxes_pruned += 1;
                    pool.push(region);
                }
                BoxOutcome::Sat => return SatResult::DeltaSat(region),
                BoxOutcome::Split => {
                    stats.bisections += 1;
                    // Derive a further-specialized program for the children
                    // from the forward values of the last classification
                    // sweep; worthless derivations cost one linear scan and
                    // leave the children on the parent's program.
                    let child_depth = match spec.as_mut() {
                        Some(state) if (depth as usize) < Self::MAX_SPECIALIZE_DEPTH => {
                            let SpecState {
                                views,
                                flags,
                                allocs,
                                pool: view_pool,
                                flag_pool,
                                alloc_pool,
                                ralloc,
                                scratch: spec_scratch,
                            } = state;
                            let parent = (depth > 0).then(|| &views[depth as usize - 1]);
                            let mut derived = view_pool.pop().unwrap_or_default();
                            if engine.respecialize(parent, scratch, spec_scratch, &mut derived) {
                                let mut derived_flags = flag_pool.pop().unwrap_or_default();
                                engine.view_clip_free(&derived, &mut derived_flags);
                                if batching {
                                    // Register-allocate the derived view once;
                                    // every split below this depth batches
                                    // through it.
                                    let mut derived_alloc = alloc_pool.pop().unwrap_or_default();
                                    ralloc.allocate_view_into(
                                        &derived,
                                        DEFAULT_REGISTERS,
                                        &mut derived_alloc,
                                    );
                                    allocs.push(derived_alloc);
                                }
                                views.push(derived);
                                flags.push(derived_flags);
                                views.len() as u32
                            } else {
                                view_pool.push(derived);
                                depth
                            }
                        }
                        _ => depth,
                    };
                    let mut right = pool.pop().unwrap_or_default();
                    region.split_widest_into(&mut right);
                    let (left_trace, right_trace, left_choices, right_choices) =
                        if let (true, ClauseEngine::Compiled(clause)) = (batching, engine) {
                            // One two-lane sweep of the child program covers
                            // both children; each lane's recorded slots are
                            // bitwise what the child's own forward sweep would
                            // compute.  The sweep is not charged as fuel here:
                            // `ensure_prefix`'s charged watermark bills each
                            // child lazily when it is popped and classified,
                            // so fuel exhaustion points are identical with
                            // batching on or off (a never-popped child is
                            // charged in neither mode).
                            let alloc = if child_depth == 0 {
                                clause.allocated_tape()
                            } else {
                                let state = spec.as_ref().expect("child_depth > 0 implies views");
                                &state.allocs[child_depth as usize - 1]
                            };
                            let mut left = trace_pool.pop().unwrap_or_default();
                            let mut right_rec = trace_pool.pop().unwrap_or_default();
                            if clause.tape().num_choices() > 0 {
                                let mut left_ch = choice_pool.pop().unwrap_or_default();
                                let mut right_ch = choice_pool.pop().unwrap_or_default();
                                alloc.eval_interval_batch_recording(
                                    clause.tape(),
                                    &[&region, &right],
                                    &mut batch_scratch,
                                    &mut [&mut left, &mut right_rec],
                                    &mut [&mut left_ch, &mut right_ch],
                                );
                                (Some(left), Some(right_rec), Some(left_ch), Some(right_ch))
                            } else {
                                alloc.eval_interval_batch_recording(
                                    clause.tape(),
                                    &[&region, &right],
                                    &mut batch_scratch,
                                    &mut [&mut left, &mut right_rec],
                                    &mut [],
                                );
                                (Some(left), Some(right_rec), None, None)
                            }
                        } else {
                            (None, None, None, None)
                        };
                    // Depth-first exploration; pushing the halves in this
                    // order keeps the search biased toward the lower corner,
                    // which is as good as any deterministic choice.
                    stack.push((right, child_depth, right_trace, right_choices));
                    stack.push((region, child_depth, left_trace, left_choices));
                }
            }
        }
        SatResult::Unsat
    }

    /// How many boxes each worker explores depth-first per parallel round.
    ///
    /// Large enough to amortize the per-round scoped-thread spawn
    /// (tens of microseconds) against real contraction work; small enough
    /// that speculative subtrees stop quickly once a verdict is found.
    const BOXES_PER_WORKER: usize = 64;

    /// Speculative parallel depth-first search: each round pops the top
    /// `threads` boxes off the stack as subtree roots and lets one worker
    /// per root run a plain depth-first exploration of its subtree, capped
    /// at [`Self::BOXES_PER_WORKER`] boxes.  Leftover sub-stacks are merged
    /// back in depth-first order, so the top root's pending boxes end up on
    /// top again.
    ///
    /// The top-priority worker therefore follows *exactly* the sequential
    /// depth-first path (in cap-sized chunks), while the remaining workers
    /// speculate on the boxes the sequential search would visit next.
    /// Consequences:
    ///
    /// * UNSAT verdicts visit exactly the same search tree as the
    ///   sequential solver (all boxes must be refuted either way);
    /// * a δ-SAT verdict is found after exploring at most ~`threads ×` the
    ///   sequential box count (the speculation bound), never exponentially
    ///   more, and the reported witness is the one from the
    ///   highest-priority subtree that round — deterministic for a fixed
    ///   thread count;
    /// * budget (`Unknown`) verdicts can therefore fire earlier than
    ///   sequentially on δ-SAT queries; give the budget `threads ×`
    ///   headroom when enabling threads.
    ///
    /// The first round starts from a single root, so shallow searches run
    /// inline ([`nncps_parallel::parallel_map_owned`] spawns no threads for
    /// a single item) and never pay for parallelism.
    fn solve_clause_batched(
        &self,
        engine: &ClauseEngine<'_>,
        domain: &IntervalBox,
        stats: &mut SolverStats,
        threads: usize,
    ) -> SatResult {
        let mut stack = vec![domain.clone()];
        while !stack.is_empty() {
            // Governance poll at the round head.  Fuel-limited solves never
            // reach this path (they force the sequential search), so only
            // the non-deterministic limits — cancellation and the
            // wall-clock deadline — can trip here.
            if let Some(reason) = self.budget.check() {
                return SatResult::Unknown(reason);
            }
            // Budget accounting: the round's per-root caps are sized so
            // their sum never exceeds the remaining allowance, making
            // `max_boxes` a hard limit — the reported `boxes_explored`
            // never overshoots it, mirroring the sequential search's
            // check-before-pop behavior.
            let remaining_budget = self.max_boxes.saturating_sub(stats.boxes_explored);
            if remaining_budget == 0 {
                return SatResult::Unknown(ExhaustionReason::Boxes(self.max_boxes));
            }
            let workers = threads.min(stack.len()).min(remaining_budget);
            let round_total = remaining_budget.min(workers * Self::BOXES_PER_WORKER);
            let base_cap = round_total / workers;
            let extra = round_total % workers;
            // `split_off` keeps order: `roots` runs bottom → top of stack.
            // The leftover boxes from `round_total` go to the topmost
            // (highest-priority) roots, which follow the sequential path.
            let roots: Vec<(IntervalBox, usize)> = stack
                .split_off(stack.len() - workers)
                .into_iter()
                .enumerate()
                .map(|(i, root)| (root, base_cap + usize::from(i >= workers - extra)))
                .collect();
            let results = nncps_parallel::parallel_map_owned(roots, threads, |(root, cap)| {
                self.explore_subtree(engine, root, cap)
            });
            // Merge bottom → top: the last δ-SAT outcome seen is the one
            // with the highest depth-first priority (closest to the top of
            // the stack), which keeps the reported witness deterministic.
            // Leftover sub-stacks are re-pushed in the same order, so the
            // top root's pending boxes end up back on top.
            let mut sat = None;
            let mut leftovers = Vec::with_capacity(workers);
            for result in results {
                stats.boxes_explored += result.explored;
                stats.boxes_pruned += result.pruned;
                stats.bisections += result.bisections;
                stats.instructions_executed += result.instructions_executed;
                stats.specialized_tape_len_sum += result.specialized_tape_len_sum;
                stats.newton_cuts += result.newton_cuts;
                if let Some(region) = result.sat {
                    sat = Some(region);
                }
                leftovers.push(result.leftover);
            }
            if let Some(region) = sat {
                return SatResult::DeltaSat(region);
            }
            for leftover in leftovers {
                stack.extend(leftover);
            }
        }
        SatResult::Unsat
    }

    /// Depth-first exploration of one subtree, stopping at a δ-SAT box or
    /// after `cap` boxes; the unexplored remainder is returned as `leftover`
    /// (bottom → top, i.e. ready to be pushed back onto the main stack).
    ///
    /// Each call owns its scratch buffers and box pool, so workers never
    /// contend; within the (up to `cap`-box) subtree walk the loop is
    /// allocation-free just like the sequential search.  Subtrees run on the
    /// full tape: the per-depth specialization stack belongs to the
    /// sequential path (derivative-guided cuts still apply).
    fn explore_subtree(
        &self,
        engine: &ClauseEngine<'_>,
        root: IntervalBox,
        cap: usize,
    ) -> SubtreeResult {
        let mut result = SubtreeResult::default();
        let mut scratch = engine.scratch();
        let mut stack = vec![root];
        let mut pool: Vec<IntervalBox> = Vec::new();
        while let Some(mut region) = stack.pop() {
            nncps_fault::panic_point(nncps_fault::SITE_SOLVER_BOX_POP);
            // Cooperative cancellation: stop the subtree walk early (the
            // unexplored remainder is preserved as leftover) so the round
            // head can surface the structured reason promptly.
            if self.budget.is_cancelled() {
                stack.push(region);
                break;
            }
            result.explored += 1;
            match self.process_box(engine, &mut scratch, &mut region, None, false) {
                BoxOutcome::Pruned => {
                    result.pruned += 1;
                    pool.push(region);
                }
                BoxOutcome::Sat => {
                    result.sat = Some(region);
                    break;
                }
                BoxOutcome::Split => {
                    result.bisections += 1;
                    let mut right = pool.pop().unwrap_or_default();
                    region.split_widest_into(&mut right);
                    stack.push(right);
                    stack.push(region);
                }
            }
            if result.explored >= cap {
                break;
            }
        }
        let (instructions, tape_len_sum, cuts) = scratch.take_counters();
        result.instructions_executed = instructions;
        result.specialized_tape_len_sum = tape_len_sum;
        result.newton_cuts = cuts;
        result.leftover = stack;
        result
    }
}

/// Outcome of one worker's capped depth-first subtree exploration.
#[derive(Debug, Default)]
struct SubtreeResult {
    /// δ-SAT box found in the subtree, if any.
    sat: Option<IntervalBox>,
    /// Boxes popped (and therefore counted against the budget).
    explored: usize,
    /// Boxes discarded by contraction or feasibility checks.
    pruned: usize,
    /// Bisections performed.
    bisections: usize,
    /// Tape instructions executed by the worker.
    instructions_executed: usize,
    /// Active-program-length sum over the worker's boxes.
    specialized_tape_len_sum: usize,
    /// Derivative-guided cuts applied by the worker.
    newton_cuts: usize,
    /// Unexplored remainder of the subtree (bottom → top).
    leftover: Vec<IntervalBox>,
}

impl Default for DeltaSolver {
    fn default() -> Self {
        DeltaSolver::new(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncps_expr::Expr;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn square_domain(half: f64) -> IntervalBox {
        IntervalBox::from_bounds(&[(-half, half), (-half, half)])
    }

    #[test]
    fn satisfiable_conjunction_returns_witness() {
        // x^2 + y^2 <= 1 and x >= 0.5 is satisfiable.
        let formula = Formula::all_of([
            Constraint::le(x().powi(2) + y().powi(2), 1.0),
            Constraint::ge(x(), 0.5),
        ]);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&formula, &square_domain(2.0));
        let witness = result.witness().expect("should be delta-sat");
        assert!(witness[0] >= 0.5 - 1e-2);
        assert!(witness[0] * witness[0] + witness[1] * witness[1] <= 1.0 + 1e-2);
    }

    #[test]
    fn unsatisfiable_conjunction_is_refuted() {
        // x^2 + y^2 <= 0.25 and x >= 1 cannot hold on [-2, 2]^2.
        let formula = Formula::all_of([
            Constraint::le(x().powi(2) + y().powi(2), 0.25),
            Constraint::ge(x(), 1.0),
        ]);
        let solver = DeltaSolver::new(1e-3);
        let (result, stats) = solver.solve_with_stats(&formula, &square_domain(2.0));
        assert!(result.is_unsat(), "expected unsat, got {result}");
        assert!(stats.boxes_explored >= 1);
    }

    #[test]
    fn nonlinear_transcendental_queries() {
        // sin(x) >= 0.5 on [0, pi] is satisfiable.
        let sat = Formula::atom(Constraint::ge(x().sin(), 0.5));
        let domain = IntervalBox::from_bounds(&[(0.0, std::f64::consts::PI)]);
        let solver = DeltaSolver::new(1e-4);
        assert!(solver.solve(&sat, &domain).is_delta_sat());

        // tanh(x) >= 1.5 is unsatisfiable everywhere.
        let unsat = Formula::atom(Constraint::ge(x().tanh(), 1.5));
        let domain = IntervalBox::from_bounds(&[(-50.0, 50.0)]);
        assert!(solver.solve(&unsat, &domain).is_unsat());

        // exp(x) <= 0 is unsatisfiable.
        let unsat = Formula::atom(Constraint::le(x().exp(), 0.0));
        let domain = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(solver.solve(&unsat, &domain).is_unsat());
    }

    #[test]
    fn disjunction_finds_a_satisfiable_branch() {
        // (x <= -3) ∨ (x >= 3) on [-1, 5].
        let formula = Formula::any_of([Constraint::le(x(), -3.0), Constraint::ge(x(), 3.0)]);
        let domain = IntervalBox::from_bounds(&[(-1.0, 5.0)]);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&formula, &domain);
        let witness = result.witness().expect("delta-sat");
        assert!(witness[0] >= 3.0 - 1e-2);
    }

    #[test]
    fn empty_formula_cases() {
        let solver = DeltaSolver::new(1e-3);
        let domain = square_domain(1.0);
        assert!(solver.solve(&Formula::falsum(), &domain).is_unsat());
        assert!(solver.solve(&Formula::verum(), &domain).is_delta_sat());
        let empty_domain = IntervalBox::from_bounds(&[(1.0, -1.0), (0.0, 1.0)]);
        assert!(solver.solve(&Formula::verum(), &empty_domain).is_unsat());
    }

    #[test]
    fn tight_equality_is_delta_decided() {
        // x^2 = 2 has the solution sqrt(2); the solver must find it to within delta.
        let formula = Formula::atom(Constraint::eq(x().powi(2), 2.0));
        let domain = IntervalBox::from_bounds(&[(0.0, 2.0)]);
        let solver = DeltaSolver::new(1e-6);
        let result = solver.solve(&formula, &domain);
        let witness = result.witness().expect("delta-sat");
        assert!((witness[0] - 2.0_f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn box_budget_exhaustion_reports_unknown() {
        // A hard-to-refute query with an absurdly small budget.
        let formula = Formula::atom(Constraint::le(
            (x() * 37.0).sin() * (y() * 53.0).cos(),
            -0.999_999,
        ));
        let solver = DeltaSolver::new(1e-9).with_max_boxes(3);
        let (result, stats) = solver.solve_with_stats(&formula, &square_domain(10.0));
        assert!(matches!(
            result,
            SatResult::Unknown(ExhaustionReason::Boxes(3))
        ));
        // The box budget is a hard limit, reported exactly.
        assert_eq!(stats.boxes_explored, 3);
    }

    #[test]
    fn solve_conjunction_api() {
        let constraints = vec![
            Constraint::ge(x(), 0.0),
            Constraint::le(x(), 1.0),
            Constraint::eq(y() - x(), 0.0),
        ];
        let solver = DeltaSolver::new(1e-3);
        let (result, stats) = solver.solve_conjunction(&constraints, &square_domain(2.0));
        assert!(result.is_delta_sat());
        assert_eq!(stats.clauses_examined, 1);
        let w = result.witness().unwrap();
        assert!((w[0] - w[1]).abs() < 1e-2);
    }

    /// The queries the equivalence tests sweep: a mix of SAT, UNSAT, and
    /// deep-search shapes over the operators the pipeline uses.
    fn differential_queries() -> Vec<(Formula, IntervalBox)> {
        vec![
            (
                Formula::all_of([
                    Constraint::le(x().powi(2) + y().powi(2), 1.0),
                    Constraint::ge(x(), 0.5),
                ]),
                square_domain(2.0),
            ),
            (
                Formula::all_of([
                    Constraint::le(x().powi(2) + y().powi(2), 0.25),
                    Constraint::ge(x(), 1.0),
                ]),
                square_domain(2.0),
            ),
            (
                Formula::atom(Constraint::eq(x().powi(2), 2.0)),
                IntervalBox::from_bounds(&[(0.0, 2.0), (0.0, 1.0)]),
            ),
            (
                Formula::atom(Constraint::ge(
                    (x().clone().tanh() * 2.0 + (y() * 0.5).sigmoid()).min(x() + y()),
                    0.75,
                )),
                square_domain(3.0),
            ),
            (
                Formula::any_of([
                    Constraint::le((x() * 3.0).sin() + y().powi(3), -4.0),
                    Constraint::ge(x().abs().sqrt() - y().exp(), 1.0),
                ]),
                square_domain(1.5),
            ),
        ]
    }

    #[test]
    fn compiled_and_tree_evaluators_explore_identical_box_trees() {
        // The compiled-tape engine (with region specialization, which is
        // bit-invisible) must be observationally indistinguishable from the
        // tree-walking reference: same verdict, same witness box (bitwise),
        // same statistics — i.e. the same search tree.  Newton cuts change
        // the tree by design, so the comparison pins them off.
        for (formula, domain) in differential_queries() {
            let fast = DeltaSolver::new(1e-4).with_newton_cuts(false);
            assert!(fast.tape_specialization());
            let reference = DeltaSolver::new(1e-4).with_tree_evaluator();
            let (fast_result, fast_stats) = fast.solve_with_stats(&formula, &domain);
            let (ref_result, ref_stats) = reference.solve_with_stats(&formula, &domain);
            assert_eq!(fast_stats, ref_stats, "stats diverge on {formula}");
            match (&fast_result, &ref_result) {
                (SatResult::DeltaSat(a), SatResult::DeltaSat(b)) => {
                    assert_eq!(a, b, "witness boxes diverge on {formula}");
                }
                (SatResult::Unsat, SatResult::Unsat) => {}
                (SatResult::Unknown(_), SatResult::Unknown(_)) => {}
                (a, b) => panic!("verdicts diverge on {formula}: {a} vs {b}"),
            }
        }
    }

    #[test]
    fn specialization_is_bit_invisible() {
        // With the search-tree-changing cuts pinned off, toggling region
        // specialization must not change anything observable.
        for (formula, domain) in differential_queries() {
            let on = DeltaSolver::new(1e-4).with_newton_cuts(false);
            let off = DeltaSolver::new(1e-4)
                .with_newton_cuts(false)
                .with_tape_specialization(false);
            let (a, sa) = on.solve_with_stats(&formula, &domain);
            let (b, sb) = off.solve_with_stats(&formula, &domain);
            assert_eq!(sa, sb, "stats diverge on {formula}");
            match (&a, &b) {
                (SatResult::DeltaSat(wa), SatResult::DeltaSat(wb)) => {
                    assert_eq!(wa, wb, "witness boxes diverge on {formula}");
                }
                (SatResult::Unsat, SatResult::Unsat) => {}
                (SatResult::Unknown(_), SatResult::Unknown(_)) => {}
                (a, b) => panic!("verdicts diverge on {formula}: {a} vs {b}"),
            }
        }
    }

    #[test]
    fn newton_cuts_agree_on_verdicts_and_shrink_the_search() {
        let mut some_query_got_cheaper = false;
        for (formula, domain) in differential_queries() {
            let with_cuts = DeltaSolver::new(1e-4);
            let without = DeltaSolver::new(1e-4).with_newton_cuts(false);
            let (a, sa) = with_cuts.solve_with_stats(&formula, &domain);
            let (b, sb) = without.solve_with_stats(&formula, &domain);
            assert_eq!(a.is_unsat(), b.is_unsat(), "verdict diverges on {formula}");
            assert_eq!(a.is_delta_sat(), b.is_delta_sat(), "on {formula}");
            // A δ-SAT witness found through cuts must still satisfy the
            // δ-weakened query.
            if let SatResult::DeltaSat(region) = &a {
                let witness = region.midpoint();
                assert!(domain.contains_point(&witness), "witness left the domain");
            }
            if sa.boxes_explored < sb.boxes_explored {
                some_query_got_cheaper = true;
            }
            assert!(
                sa.boxes_explored <= sb.boxes_explored,
                "cuts must never grow the sequential search ({formula}): {} vs {}",
                sa.boxes_explored,
                sb.boxes_explored
            );
        }
        assert!(some_query_got_cheaper, "cuts never fired on any query");
    }

    #[test]
    fn precompiled_queries_solve_identically() {
        for (formula, domain) in differential_queries() {
            let solver = DeltaSolver::new(1e-4);
            let compiled = CompiledFormula::compile(&formula);
            let (a, sa) = solver.solve_with_stats(&formula, &domain);
            let (b, sb) = solver.solve_compiled_with_stats(&compiled, &domain);
            assert_eq!(sa, sb);
            assert_eq!(a.witness(), b.witness());
            assert_eq!(a.is_unsat(), b.is_unsat());
        }
    }

    #[test]
    fn batched_search_agrees_with_sequential_verdicts() {
        let queries: Vec<(Formula, IntervalBox)> = vec![
            // Satisfiable conjunction.
            (
                Formula::all_of([
                    Constraint::le(x().powi(2) + y().powi(2), 1.0),
                    Constraint::ge(x(), 0.5),
                ]),
                square_domain(2.0),
            ),
            // Unsatisfiable conjunction.
            (
                Formula::all_of([
                    Constraint::le(x().powi(2) + y().powi(2), 0.25),
                    Constraint::ge(x(), 1.0),
                ]),
                square_domain(2.0),
            ),
            // Tight equality in one dimension.
            (
                Formula::atom(Constraint::eq(x().powi(2), 2.0)),
                IntervalBox::from_bounds(&[(0.0, 2.0)]),
            ),
        ];
        for (formula, domain) in &queries {
            let sequential = DeltaSolver::new(1e-4).solve(formula, domain);
            for threads in [0, 2, 4] {
                let solver = DeltaSolver::new(1e-4).with_threads(threads);
                assert_eq!(solver.threads(), threads);
                let parallel = solver.solve(formula, domain);
                // Verdict kinds must agree; δ-SAT witnesses must satisfy the
                // query even if they come from a different box.
                assert_eq!(parallel.is_unsat(), sequential.is_unsat());
                assert_eq!(parallel.is_delta_sat(), sequential.is_delta_sat());
            }
        }
    }

    #[test]
    fn batched_search_is_deterministic_per_thread_count() {
        let formula = Formula::atom(Constraint::eq(x().powi(2) + y().powi(2), 1.0));
        let solver = DeltaSolver::new(1e-5).with_threads(3);
        let a = solver.solve(&formula, &square_domain(2.0));
        let b = solver.solve(&formula, &square_domain(2.0));
        assert_eq!(a.witness(), b.witness());
        let w = a.witness().expect("the unit circle intersects the domain");
        assert!((w[0] * w[0] + w[1] * w[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn batched_search_does_not_degenerate_to_breadth_first() {
        // Regression test: a weakly-contracting δ-SAT query whose witness
        // sits deep in the search tree.  An earlier batched implementation
        // processed the whole stack per round (breadth-first), exploring
        // 30–70× more boxes than the sequential search and turning tight
        // budgets into spurious Unknowns.  The speculative-DFS search must
        // stay within the documented `threads ×` bound.
        let formula = Formula::atom(Constraint::eq((x() * 4.0).sin() * (y() * 4.0).cos(), 0.25));
        let domain = square_domain(3.0);
        let (seq_result, seq_stats) = DeltaSolver::new(1e-6).solve_with_stats(&formula, &domain);
        assert!(seq_result.is_delta_sat());
        for threads in [2usize, 4] {
            let budget = threads * seq_stats.boxes_explored + threads * 64;
            let solver = DeltaSolver::new(1e-6)
                .with_threads(threads)
                .with_max_boxes(budget);
            let (result, stats) = solver.solve_with_stats(&formula, &domain);
            assert!(
                result.is_delta_sat(),
                "threads={threads}: expected delta-sat within {budget} boxes, got {result} \
                 after {} boxes (sequential: {})",
                stats.boxes_explored,
                seq_stats.boxes_explored
            );
        }
    }

    #[test]
    fn batched_budget_exhaustion_reports_unknown() {
        let formula = Formula::atom(Constraint::le(
            (x() * 37.0).sin() * (y() * 53.0).cos(),
            -0.999_999,
        ));
        let solver = DeltaSolver::new(1e-9).with_max_boxes(5).with_threads(4);
        let (result, stats) = solver.solve_with_stats(&formula, &square_domain(10.0));
        assert!(matches!(
            result,
            SatResult::Unknown(ExhaustionReason::Boxes(5))
        ));
        // The speculative workers' per-round caps sum to at most the
        // remaining allowance, so the budget never overshoots.
        assert!(stats.boxes_explored <= 5);
    }

    #[test]
    fn instrumentation_counters_are_populated_but_not_compared() {
        let formula = Formula::atom(Constraint::ge(x().tanh() + y(), 0.4));
        let domain = square_domain(1.0);
        // Precision 1e-2 puts the whole domain inside the Newton window, so
        // the monotone query is collapsed on the very first box.
        let (result, stats) = DeltaSolver::new(1e-2).solve_with_stats(&formula, &domain);
        assert!(result.is_delta_sat());
        assert!(stats.instructions_executed > 0);
        assert!(stats.specialized_tape_len_sum > 0);
        assert!(stats.newton_cuts > 0, "monotone query must be cut");
        // Equality deliberately ignores the instrumentation counters…
        let mut other = stats;
        other.instructions_executed += 1;
        other.specialized_tape_len_sum += 1;
        other.newton_cuts += 1;
        assert_eq!(stats, other);
        // …while merge accumulates them.
        let mut total = SolverStats::default();
        total.merge(&stats);
        total.merge(&stats);
        assert_eq!(total.instructions_executed, 2 * stats.instructions_executed);
        assert_eq!(total.newton_cuts, 2 * stats.newton_cuts);
        // The tree reference executes no tape instructions.
        let (_, tree_stats) = DeltaSolver::new(1e-4)
            .with_tree_evaluator()
            .solve_with_stats(&formula, &domain);
        assert_eq!(tree_stats.instructions_executed, 0);
    }

    #[test]
    fn display_and_accessors() {
        let solver = DeltaSolver::default()
            .with_max_boxes(10)
            .with_contraction_rounds(2);
        assert_eq!(solver.precision(), 1e-3);
        assert!(solver.tape_specialization());
        assert!(solver.newton_cuts());
        let reference = solver.clone().with_tree_evaluator();
        assert!(!reference.tape_specialization());
        assert!(!reference.newton_cuts());
        assert_eq!(format!("{}", SatResult::Unsat), "unsat");
        // The Boxes display string is byte-compatible with the pre-governance
        // reason (scenario fingerprints hash it).
        assert_eq!(
            format!("{}", SatResult::Unknown(ExhaustionReason::Boxes(7))),
            "unknown (box budget of 7 exhausted)"
        );
        let sat = SatResult::DeltaSat(IntervalBox::from_point(&[1.0]));
        assert!(format!("{sat}").contains("delta-sat"));
        assert!(SatResult::Unsat.witness().is_none());
    }

    #[test]
    #[should_panic(expected = "precision must be positive")]
    fn zero_precision_panics() {
        let _ = DeltaSolver::new(0.0);
    }

    /// A deep-search δ-SAT query for the governance tests: enough boxes to
    /// burn nontrivial fuel before the witness is found.
    fn deep_query() -> (Formula, IntervalBox) {
        (
            Formula::atom(Constraint::eq((x() * 4.0).sin() * (y() * 4.0).cos(), 0.25)),
            square_domain(3.0),
        )
    }

    #[test]
    fn fuel_exhaustion_reports_unknown_with_the_limit() {
        // `deep_query` completes in a few thousand instructions; a fuel
        // limit well under that total is guaranteed to exhaust mid-search.
        let (formula, domain) = deep_query();
        let solver = DeltaSolver::new(1e-6).with_budget(Budget::unlimited().with_fuel(300));
        let (result, stats) = solver.solve_with_stats(&formula, &domain);
        assert!(
            matches!(result, SatResult::Unknown(ExhaustionReason::Fuel(300))),
            "got {result}"
        );
        assert!(solver.budget().fuel_used() >= 300);
        assert!(stats.instructions_executed > 0);
    }

    #[test]
    fn fuel_limited_runs_are_thread_count_invariant() {
        // The acceptance criterion of the governance layer: a fuel-exhausted
        // solve yields the same verdict and the same search statistics at
        // any configured thread count, because a fuel limit forces the
        // sequential search path.
        let (formula, domain) = deep_query();
        let runs: Vec<(SatResult, SolverStats)> = [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                DeltaSolver::new(1e-6)
                    .with_threads(threads)
                    .with_budget(Budget::unlimited().with_fuel(500))
                    .solve_with_stats(&formula, &domain)
            })
            .collect();
        for (result, stats) in &runs {
            assert!(
                matches!(result, SatResult::Unknown(ExhaustionReason::Fuel(500))),
                "expected fuel exhaustion, got {result}"
            );
            assert_eq!(stats.boxes_explored, runs[0].1.boxes_explored);
            assert_eq!(stats.instructions_executed, runs[0].1.instructions_executed);
            assert_eq!(stats.bisections, runs[0].1.bisections);
        }
    }

    /// A governed query with `min`/`max`/`abs` choice sites, so the batched
    /// sibling sweeps record choice traces and the prefilled boxes exercise
    /// the lazily-charged fuel watermark.
    fn choosy_query() -> (Formula, IntervalBox) {
        let w = (x() * 3.0)
            .sin()
            .abs()
            .max((y() * 2.0).cos())
            .min(x() + y());
        (Formula::atom(Constraint::eq(w, 0.25)), square_domain(3.0))
    }

    #[test]
    fn fuel_exhaustion_is_evaluator_invariant() {
        // Batch-prefilled sweeps are charged lazily, per logical box, by the
        // `charged` watermark: a child's recorded sweep bills exactly the
        // instructions the scalar interpreter would have executed when that
        // child is popped (and bills nothing for children that are never
        // popped).  The fuel truncation point — verdict, search statistics,
        // and consumed fuel — is therefore identical with batched sibling
        // evaluation on or off, at any configured thread count (a fuel limit
        // forces the sequential path either way).
        let (formula, domain) = choosy_query();
        let mut runs = Vec::new();
        for batched in [true, false] {
            for threads in [1usize, 2] {
                let solver = DeltaSolver::new(1e-6)
                    .with_threads(threads)
                    .with_batched_evaluation(batched)
                    .with_budget(Budget::unlimited().with_fuel(700));
                let (result, stats) = solver.solve_with_stats(&formula, &domain);
                assert!(
                    matches!(result, SatResult::Unknown(ExhaustionReason::Fuel(700))),
                    "batched={batched} threads={threads}: got {result}"
                );
                runs.push((batched, threads, stats, solver.budget().fuel_used()));
            }
        }
        let (_, _, first, first_fuel) = runs[0];
        for (batched, threads, stats, fuel) in &runs {
            let tag = format!("batched={batched} threads={threads}");
            assert_eq!(stats.boxes_explored, first.boxes_explored, "{tag}");
            assert_eq!(stats.bisections, first.bisections, "{tag}");
            assert_eq!(
                stats.instructions_executed, first.instructions_executed,
                "{tag}"
            );
            assert_eq!(*fuel, first_fuel, "{tag}");
        }
    }

    #[test]
    fn deep_relu_controller_query_stays_bit_identical_and_cheaper() {
        // A deep ReLU ladder — the shape of a compiled NN controller — is
        // the workload choice-trace specialization exists for: every box
        // decides a few more `max(·, 0)` branches, and the decided prefix
        // must never be re-derived from scratch.  The solver-visible
        // contract: specialization is bit-invisible (identical verdict and
        // search tree) and strictly reduces the work-per-box integral.
        let mut out = x() * 0.9 + y() * 0.1;
        for i in 0..24 {
            // Unit-scale weights keep the signal alive through all layers,
            // so the search has to descend (and decide ReLUs) to a verdict.
            let w = 1.0 + 0.01 * (i % 5) as f64;
            let b = 0.01 * (i % 3) as f64;
            out = (out * w + b).max(Expr::constant(0.0)) - 0.01;
        }
        let formula = Formula::atom(Constraint::ge(out, 0.4));
        let domain = square_domain(1.5);
        let spec = DeltaSolver::new(1e-4).with_newton_cuts(false);
        let plain = spec.clone().with_tape_specialization(false);
        let (a, sa) = spec.solve_with_stats(&formula, &domain);
        let (b, sb) = plain.solve_with_stats(&formula, &domain);
        assert_eq!(a.witness(), b.witness());
        assert_eq!(sa, sb);
        assert!(
            sa.specialized_tape_len_sum < sb.specialized_tape_len_sum,
            "specialization never shortened the deep ReLU program: {} vs {}",
            sa.specialized_tape_len_sum,
            sb.specialized_tape_len_sum
        );
    }

    #[test]
    fn generous_fuel_does_not_change_the_result() {
        let (formula, domain) = deep_query();
        let free = DeltaSolver::new(1e-6);
        let governed =
            DeltaSolver::new(1e-6).with_budget(Budget::unlimited().with_fuel(u64::MAX / 2));
        let (a, sa) = free.solve_with_stats(&formula, &domain);
        let (b, sb) = governed.solve_with_stats(&formula, &domain);
        assert_eq!(a.witness(), b.witness());
        assert_eq!(sa, sb);
        // The budget's fuel mirror agrees with the solver's own counter.
        assert_eq!(
            governed.budget().fuel_used(),
            sb.instructions_executed as u64
        );
    }

    #[test]
    fn cancellation_stops_sequential_and_parallel_searches() {
        let (formula, domain) = deep_query();
        for threads in [1usize, 4] {
            let budget = Budget::unlimited();
            budget.cancel();
            let solver = DeltaSolver::new(1e-6)
                .with_threads(threads)
                .with_budget(budget);
            let (result, stats) = solver.solve_with_stats(&formula, &domain);
            assert!(
                matches!(result, SatResult::Unknown(ExhaustionReason::Cancelled)),
                "threads={threads}: got {result}"
            );
            assert_eq!(stats.boxes_explored, 0);
        }
    }

    #[test]
    fn expired_deadline_reports_unknown() {
        let (formula, domain) = deep_query();
        let solver = DeltaSolver::new(1e-6)
            .with_budget(Budget::unlimited().with_deadline(std::time::Duration::ZERO));
        let (result, _) = solver.solve_with_stats(&formula, &domain);
        assert!(matches!(
            result,
            SatResult::Unknown(ExhaustionReason::Deadline)
        ));
    }

    #[test]
    fn unsat_of_barrier_style_query() {
        // A miniature version of the paper's query (5):
        // W(x) = x^2 + y^2, f = (-x, -y) (stable linear system).
        // ∃ (x, y) ∈ D \ X0 : ∇W · f >= -γ  should be UNSAT because
        // ∇W · f = -2(x^2 + y^2) < -γ outside a neighbourhood of the origin.
        let grad_dot_f = (x() * -2.0) * x() + (y() * -2.0) * y();
        let gamma = 1e-6;
        // D \ X0 where X0 = [-0.5, 0.5]^2 encoded as a disjunction of strips.
        let outside_x0 = Formula::or(vec![
            Formula::atom(Constraint::le(x(), -0.5)),
            Formula::atom(Constraint::ge(x(), 0.5)),
            Formula::atom(Constraint::le(y(), -0.5)),
            Formula::atom(Constraint::ge(y(), 0.5)),
        ]);
        let query = Formula::and(vec![
            outside_x0,
            Formula::atom(Constraint::ge(grad_dot_f, -gamma)),
        ]);
        let domain = square_domain(3.0);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&query, &domain);
        assert!(result.is_unsat(), "expected unsat, got {result}");
    }
}
