//! Branch-and-prune δ-SAT search.

use std::fmt;

use nncps_interval::IntervalBox;

use crate::contractor::contract_clause;
use crate::{Constraint, Feasibility, Formula};

/// Outcome of a δ-SAT query.
#[derive(Debug, Clone)]
pub enum SatResult {
    /// The δ-weakening of the formula is satisfiable; the returned box has
    /// width at most the solver precision and its midpoint is a witness.
    DeltaSat(IntervalBox),
    /// The formula is unsatisfiable (exact result — no real solution exists).
    Unsat,
    /// The solver exhausted its box budget before reaching a verdict.
    Unknown(String),
}

impl SatResult {
    /// Returns `true` for [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// Returns `true` for [`SatResult::DeltaSat`].
    pub fn is_delta_sat(&self) -> bool {
        matches!(self, SatResult::DeltaSat(_))
    }

    /// Returns the witness midpoint for a δ-SAT result, if any.
    pub fn witness(&self) -> Option<Vec<f64>> {
        match self {
            SatResult::DeltaSat(region) => Some(region.midpoint()),
            _ => None,
        }
    }
}

impl fmt::Display for SatResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatResult::DeltaSat(region) => write!(f, "delta-sat {region}"),
            SatResult::Unsat => write!(f, "unsat"),
            SatResult::Unknown(reason) => write!(f, "unknown ({reason})"),
        }
    }
}

/// Statistics gathered during a solve call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Number of boxes popped from the work stack across all clauses.
    pub boxes_explored: usize,
    /// Number of boxes discarded by contraction or feasibility checks.
    pub boxes_pruned: usize,
    /// Number of bisections performed.
    pub bisections: usize,
    /// Number of DNF clauses examined.
    pub clauses_examined: usize,
}

/// A δ-complete decision procedure for existential nonlinear queries,
/// implemented with interval constraint propagation and branch & prune.
///
/// See the [crate-level documentation](crate) for the semantics of the
/// returned verdicts and a usage example.
#[derive(Debug, Clone)]
pub struct DeltaSolver {
    precision: f64,
    max_boxes: usize,
    contraction_rounds: usize,
}

impl DeltaSolver {
    /// Default limit on the number of boxes explored per query.
    pub const DEFAULT_MAX_BOXES: usize = 2_000_000;

    /// Default number of HC4 sweeps applied to each box.
    pub const DEFAULT_CONTRACTION_ROUNDS: usize = 4;

    /// Creates a solver with the given precision `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is not strictly positive.
    pub fn new(precision: f64) -> Self {
        assert!(precision > 0.0, "precision must be positive");
        DeltaSolver {
            precision,
            max_boxes: Self::DEFAULT_MAX_BOXES,
            contraction_rounds: Self::DEFAULT_CONTRACTION_ROUNDS,
        }
    }

    /// Sets the maximum number of boxes explored before giving up.
    pub fn with_max_boxes(mut self, max_boxes: usize) -> Self {
        self.max_boxes = max_boxes;
        self
    }

    /// Sets the number of HC4 contraction sweeps per box.
    pub fn with_contraction_rounds(mut self, rounds: usize) -> Self {
        self.contraction_rounds = rounds;
        self
    }

    /// The configured precision `δ`.
    pub fn precision(&self) -> f64 {
        self.precision
    }

    /// Decides `∃ x ∈ domain : formula(x)`.
    pub fn solve(&self, formula: &Formula, domain: &IntervalBox) -> SatResult {
        self.solve_with_stats(formula, domain).0
    }

    /// Decides the query and also returns search statistics.
    pub fn solve_with_stats(
        &self,
        formula: &Formula,
        domain: &IntervalBox,
    ) -> (SatResult, SolverStats) {
        let mut stats = SolverStats::default();
        let clauses = formula.to_dnf();
        if clauses.is_empty() {
            return (SatResult::Unsat, stats);
        }
        let mut any_unknown = None;
        for clause in &clauses {
            stats.clauses_examined += 1;
            match self.solve_clause(clause, domain, &mut stats) {
                SatResult::DeltaSat(region) => return (SatResult::DeltaSat(region), stats),
                SatResult::Unsat => {}
                SatResult::Unknown(reason) => any_unknown = Some(reason),
            }
        }
        match any_unknown {
            Some(reason) => (SatResult::Unknown(reason), stats),
            None => (SatResult::Unsat, stats),
        }
    }

    /// Decides satisfiability of a single conjunction of constraints.
    pub fn solve_conjunction(
        &self,
        constraints: &[Constraint],
        domain: &IntervalBox,
    ) -> (SatResult, SolverStats) {
        let mut stats = SolverStats::default();
        stats.clauses_examined = 1;
        let result = self.solve_clause(constraints, domain, &mut stats);
        (result, stats)
    }

    fn solve_clause(
        &self,
        clause: &[Constraint],
        domain: &IntervalBox,
        stats: &mut SolverStats,
    ) -> SatResult {
        // An empty conjunction is trivially satisfied by any point of a
        // non-empty domain.
        if clause.is_empty() {
            return if domain.is_empty() {
                SatResult::Unsat
            } else {
                SatResult::DeltaSat(IntervalBox::from_point(&domain.midpoint()))
            };
        }
        if domain.is_empty() {
            return SatResult::Unsat;
        }

        let mut stack = vec![domain.clone()];
        while let Some(mut region) = stack.pop() {
            stats.boxes_explored += 1;
            if stats.boxes_explored > self.max_boxes {
                return SatResult::Unknown(format!(
                    "box budget of {} exhausted",
                    self.max_boxes
                ));
            }

            // Prune with the contractor.
            if !contract_clause(clause, &mut region, self.contraction_rounds) {
                stats.boxes_pruned += 1;
                continue;
            }
            if region.is_empty() {
                stats.boxes_pruned += 1;
                continue;
            }

            // Classify the contracted box.
            let mut all_satisfied = true;
            let mut violated = false;
            for constraint in clause {
                match constraint.feasibility(&region) {
                    Feasibility::CertainlySatisfied => {}
                    Feasibility::CertainlyViolated => {
                        violated = true;
                        break;
                    }
                    Feasibility::Unknown => all_satisfied = false,
                }
            }
            if violated {
                stats.boxes_pruned += 1;
                continue;
            }
            if all_satisfied {
                return SatResult::DeltaSat(region);
            }

            // δ-termination: the box can no longer be refuted by splitting at
            // the configured precision, so report the δ-weakened SAT verdict.
            if region.max_width() <= self.precision {
                return SatResult::DeltaSat(region);
            }

            let (left, right) = region.bisect_widest();
            stats.bisections += 1;
            // Depth-first exploration; pushing the halves in this order keeps
            // the search biased toward the lower corner, which is as good as
            // any deterministic choice.
            stack.push(right);
            stack.push(left);
        }
        SatResult::Unsat
    }
}

impl Default for DeltaSolver {
    fn default() -> Self {
        DeltaSolver::new(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncps_expr::Expr;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn square_domain(half: f64) -> IntervalBox {
        IntervalBox::from_bounds(&[(-half, half), (-half, half)])
    }

    #[test]
    fn satisfiable_conjunction_returns_witness() {
        // x^2 + y^2 <= 1 and x >= 0.5 is satisfiable.
        let formula = Formula::all_of([
            Constraint::le(x().powi(2) + y().powi(2), 1.0),
            Constraint::ge(x(), 0.5),
        ]);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&formula, &square_domain(2.0));
        let witness = result.witness().expect("should be delta-sat");
        assert!(witness[0] >= 0.5 - 1e-2);
        assert!(witness[0] * witness[0] + witness[1] * witness[1] <= 1.0 + 1e-2);
    }

    #[test]
    fn unsatisfiable_conjunction_is_refuted() {
        // x^2 + y^2 <= 0.25 and x >= 1 cannot hold on [-2, 2]^2.
        let formula = Formula::all_of([
            Constraint::le(x().powi(2) + y().powi(2), 0.25),
            Constraint::ge(x(), 1.0),
        ]);
        let solver = DeltaSolver::new(1e-3);
        let (result, stats) = solver.solve_with_stats(&formula, &square_domain(2.0));
        assert!(result.is_unsat(), "expected unsat, got {result}");
        assert!(stats.boxes_explored >= 1);
    }

    #[test]
    fn nonlinear_transcendental_queries() {
        // sin(x) >= 0.5 on [0, pi] is satisfiable.
        let sat = Formula::atom(Constraint::ge(x().sin(), 0.5));
        let domain = IntervalBox::from_bounds(&[(0.0, std::f64::consts::PI)]);
        let solver = DeltaSolver::new(1e-4);
        assert!(solver.solve(&sat, &domain).is_delta_sat());

        // tanh(x) >= 1.5 is unsatisfiable everywhere.
        let unsat = Formula::atom(Constraint::ge(x().tanh(), 1.5));
        let domain = IntervalBox::from_bounds(&[(-50.0, 50.0)]);
        assert!(solver.solve(&unsat, &domain).is_unsat());

        // exp(x) <= 0 is unsatisfiable.
        let unsat = Formula::atom(Constraint::le(x().exp(), 0.0));
        let domain = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(solver.solve(&unsat, &domain).is_unsat());
    }

    #[test]
    fn disjunction_finds_a_satisfiable_branch() {
        // (x <= -3) ∨ (x >= 3) on [-1, 5].
        let formula = Formula::any_of([Constraint::le(x(), -3.0), Constraint::ge(x(), 3.0)]);
        let domain = IntervalBox::from_bounds(&[(-1.0, 5.0)]);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&formula, &domain);
        let witness = result.witness().expect("delta-sat");
        assert!(witness[0] >= 3.0 - 1e-2);
    }

    #[test]
    fn empty_formula_cases() {
        let solver = DeltaSolver::new(1e-3);
        let domain = square_domain(1.0);
        assert!(solver.solve(&Formula::falsum(), &domain).is_unsat());
        assert!(solver.solve(&Formula::verum(), &domain).is_delta_sat());
        let empty_domain = IntervalBox::from_bounds(&[(1.0, -1.0), (0.0, 1.0)]);
        assert!(solver
            .solve(&Formula::verum(), &empty_domain)
            .is_unsat());
    }

    #[test]
    fn tight_equality_is_delta_decided() {
        // x^2 = 2 has the solution sqrt(2); the solver must find it to within delta.
        let formula = Formula::atom(Constraint::eq(x().powi(2), 2.0));
        let domain = IntervalBox::from_bounds(&[(0.0, 2.0)]);
        let solver = DeltaSolver::new(1e-6);
        let result = solver.solve(&formula, &domain);
        let witness = result.witness().expect("delta-sat");
        assert!((witness[0] - 2.0_f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn box_budget_exhaustion_reports_unknown() {
        // A hard-to-refute query with an absurdly small budget.
        let formula = Formula::atom(Constraint::le(
            (x() * 37.0).sin() * (y() * 53.0).cos(),
            -0.999_999,
        ));
        let solver = DeltaSolver::new(1e-9).with_max_boxes(3);
        let (result, stats) = solver.solve_with_stats(&formula, &square_domain(10.0));
        assert!(matches!(result, SatResult::Unknown(_)));
        assert!(stats.boxes_explored >= 3);
    }

    #[test]
    fn solve_conjunction_api() {
        let constraints = vec![
            Constraint::ge(x(), 0.0),
            Constraint::le(x(), 1.0),
            Constraint::eq(y() - x(), 0.0),
        ];
        let solver = DeltaSolver::new(1e-3);
        let (result, stats) = solver.solve_conjunction(&constraints, &square_domain(2.0));
        assert!(result.is_delta_sat());
        assert_eq!(stats.clauses_examined, 1);
        let w = result.witness().unwrap();
        assert!((w[0] - w[1]).abs() < 1e-2);
    }

    #[test]
    fn display_and_accessors() {
        let solver = DeltaSolver::default()
            .with_max_boxes(10)
            .with_contraction_rounds(2);
        assert_eq!(solver.precision(), 1e-3);
        assert_eq!(format!("{}", SatResult::Unsat), "unsat");
        assert!(format!("{}", SatResult::Unknown("budget".into())).contains("budget"));
        let sat = SatResult::DeltaSat(IntervalBox::from_point(&[1.0]));
        assert!(format!("{sat}").contains("delta-sat"));
        assert!(SatResult::Unsat.witness().is_none());
    }

    #[test]
    #[should_panic(expected = "precision must be positive")]
    fn zero_precision_panics() {
        let _ = DeltaSolver::new(0.0);
    }

    #[test]
    fn unsat_of_barrier_style_query() {
        // A miniature version of the paper's query (5):
        // W(x) = x^2 + y^2, f = (-x, -y) (stable linear system).
        // ∃ (x, y) ∈ D \ X0 : ∇W · f >= -γ  should be UNSAT because
        // ∇W · f = -2(x^2 + y^2) < -γ outside a neighbourhood of the origin.
        let grad_dot_f = (x() * -2.0) * x() + (y() * -2.0) * y();
        let gamma = 1e-6;
        // D \ X0 where X0 = [-0.5, 0.5]^2 encoded as a disjunction of strips.
        let outside_x0 = Formula::or(vec![
            Formula::atom(Constraint::le(x(), -0.5)),
            Formula::atom(Constraint::ge(x(), 0.5)),
            Formula::atom(Constraint::le(y(), -0.5)),
            Formula::atom(Constraint::ge(y(), 0.5)),
        ]);
        let query = Formula::and(vec![
            outside_x0,
            Formula::atom(Constraint::ge(grad_dot_f, -gamma)),
        ]);
        let domain = square_domain(3.0);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&query, &domain);
        assert!(result.is_unsat(), "expected unsat, got {result}");
    }
}
