//! Branch-and-prune δ-SAT search.

use std::fmt;

use nncps_interval::IntervalBox;

use crate::compiled::{ClauseFeasibility, ClauseScratch, CompiledClause, CompiledFormula};
use crate::contractor::contract_clause;
use crate::{Constraint, Feasibility, Formula};

/// Outcome of a δ-SAT query.
#[derive(Debug, Clone)]
pub enum SatResult {
    /// The δ-weakening of the formula is satisfiable; the returned box has
    /// width at most the solver precision and its midpoint is a witness.
    DeltaSat(IntervalBox),
    /// The formula is unsatisfiable (exact result — no real solution exists).
    Unsat,
    /// The solver exhausted its box budget before reaching a verdict.
    Unknown(String),
}

impl SatResult {
    /// Returns `true` for [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// Returns `true` for [`SatResult::DeltaSat`].
    pub fn is_delta_sat(&self) -> bool {
        matches!(self, SatResult::DeltaSat(_))
    }

    /// Returns the witness midpoint for a δ-SAT result, if any.
    pub fn witness(&self) -> Option<Vec<f64>> {
        match self {
            SatResult::DeltaSat(region) => Some(region.midpoint()),
            _ => None,
        }
    }
}

impl fmt::Display for SatResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatResult::DeltaSat(region) => write!(f, "delta-sat {region}"),
            SatResult::Unsat => write!(f, "unsat"),
            SatResult::Unknown(reason) => write!(f, "unknown ({reason})"),
        }
    }
}

/// Statistics gathered during a solve call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Number of boxes popped from the work stack across all clauses.
    pub boxes_explored: usize,
    /// Number of boxes discarded by contraction or feasibility checks.
    pub boxes_pruned: usize,
    /// Number of bisections performed.
    pub bisections: usize,
    /// Number of DNF clauses examined.
    pub clauses_examined: usize,
}

impl SolverStats {
    /// Accumulates another solve's statistics into this one, so callers that
    /// issue many queries (the verification pipeline, the batch runner) can
    /// report search effort per run instead of per query.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_deltasat::SolverStats;
    ///
    /// let mut total = SolverStats::default();
    /// let one = SolverStats { boxes_explored: 7, clauses_examined: 1, ..Default::default() };
    /// total.merge(&one);
    /// total.merge(&one);
    /// assert_eq!(total.boxes_explored, 14);
    /// assert_eq!(total.clauses_examined, 2);
    /// ```
    pub fn merge(&mut self, other: &SolverStats) {
        self.boxes_explored += other.boxes_explored;
        self.boxes_pruned += other.boxes_pruned;
        self.bisections += other.bisections;
        self.clauses_examined += other.clauses_examined;
    }
}

/// A δ-complete decision procedure for existential nonlinear queries,
/// implemented with interval constraint propagation and branch & prune.
///
/// Queries are compiled to flat evaluation tapes
/// ([`CompiledClause`]) before the search starts, so the per-box loop —
/// contraction, feasibility classification, bisection — runs allocation-free
/// over dense instruction arrays.  The pre-compilation is observable only as
/// speed: verdicts, witnesses, and the explored box tree are bit-identical
/// to the tree-walking reference evaluator (selectable with
/// [`DeltaSolver::with_tree_evaluator`] for differential testing).
///
/// See the [crate-level documentation](crate) for the semantics of the
/// returned verdicts and a usage example.
#[derive(Debug, Clone)]
pub struct DeltaSolver {
    precision: f64,
    max_boxes: usize,
    contraction_rounds: usize,
    threads: usize,
    tree_eval: bool,
}

/// What the branch-and-prune loop does with one box popped from the work
/// stack (the box itself is processed in place).
enum BoxOutcome {
    /// The box was emptied by contraction or certainly violates a constraint.
    Pruned,
    /// The (contracted) box certifies the δ-weakened formula.
    Sat,
    /// The box is undecided and wide enough to bisect.
    Split,
}

/// The clause evaluation backend: compiled tapes on the hot path, or the
/// recursive tree walkers as the bit-identical reference.
enum ClauseEngine<'a> {
    Compiled(&'a CompiledClause),
    Tree(&'a [Constraint]),
}

impl ClauseEngine<'_> {
    fn atom_count(&self) -> usize {
        match self {
            ClauseEngine::Compiled(clause) => clause.num_atoms(),
            ClauseEngine::Tree(clause) => clause.len(),
        }
    }

    fn scratch(&self) -> ClauseScratch {
        match self {
            ClauseEngine::Compiled(clause) => clause.scratch(),
            ClauseEngine::Tree(_) => ClauseScratch::default(),
        }
    }

    fn contract(
        &self,
        region: &mut IntervalBox,
        rounds: usize,
        scratch: &mut ClauseScratch,
    ) -> bool {
        match self {
            ClauseEngine::Compiled(clause) => clause.contract(region, rounds, scratch),
            ClauseEngine::Tree(clause) => contract_clause(clause, region, rounds),
        }
    }

    fn feasibility(&self, region: &IntervalBox, scratch: &mut ClauseScratch) -> ClauseFeasibility {
        match self {
            ClauseEngine::Compiled(clause) => clause.feasibility(region, scratch),
            ClauseEngine::Tree(clause) => {
                let mut all_satisfied = true;
                for constraint in *clause {
                    match constraint.feasibility(region) {
                        Feasibility::CertainlySatisfied => {}
                        Feasibility::CertainlyViolated => return ClauseFeasibility::Violated,
                        Feasibility::Unknown => all_satisfied = false,
                    }
                }
                if all_satisfied {
                    ClauseFeasibility::Satisfied
                } else {
                    ClauseFeasibility::Undecided
                }
            }
        }
    }
}

impl DeltaSolver {
    /// Default limit on the number of boxes explored per query.
    pub const DEFAULT_MAX_BOXES: usize = 2_000_000;

    /// Default number of HC4 sweeps applied to each box.
    pub const DEFAULT_CONTRACTION_ROUNDS: usize = 4;

    /// Creates a solver with the given precision `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is not strictly positive.
    pub fn new(precision: f64) -> Self {
        assert!(precision > 0.0, "precision must be positive");
        DeltaSolver {
            precision,
            max_boxes: Self::DEFAULT_MAX_BOXES,
            contraction_rounds: Self::DEFAULT_CONTRACTION_ROUNDS,
            threads: 1,
            tree_eval: false,
        }
    }

    /// Sets the maximum number of boxes explored before giving up.
    pub fn with_max_boxes(mut self, max_boxes: usize) -> Self {
        self.max_boxes = max_boxes;
        self
    }

    /// Sets the number of HC4 contraction sweeps per box.
    pub fn with_contraction_rounds(mut self, rounds: usize) -> Self {
        self.contraction_rounds = rounds;
        self
    }

    /// Sets the number of worker threads for the branch-and-prune search
    /// (`1` = sequential, `0` = one per available core).
    ///
    /// With more than one thread the solver pops the top boxes of the work
    /// stack as subtree roots and explores each depth-first on its own
    /// worker (capped per round), merging the leftovers back in depth-first
    /// order.  Verdicts are deterministic for a fixed thread count.  UNSAT
    /// verdicts visit exactly the same search tree as the sequential
    /// solver; δ-SAT witnesses may come from a different (but equally
    /// valid) region, after exploring at most ~`threads ×` the sequential
    /// box count, so give `with_max_boxes` the same headroom when enabling
    /// threads.  Without the `parallel` feature the search always runs
    /// sequentially.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_deltasat::{Constraint, DeltaSolver, Formula};
    /// use nncps_expr::Expr;
    /// use nncps_interval::IntervalBox;
    ///
    /// let x = Expr::var(0);
    /// let query = Formula::atom(Constraint::ge(x.clone().powi(2), 2.0));
    /// let domain = IntervalBox::from_bounds(&[(-3.0, 3.0)]);
    /// let sequential = DeltaSolver::new(1e-4).solve(&query, &domain);
    /// let parallel = DeltaSolver::new(1e-4).with_threads(0).solve(&query, &domain);
    /// assert_eq!(sequential.is_delta_sat(), parallel.is_delta_sat());
    /// ```
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Switches the solver to the recursive tree-walking evaluators
    /// ([`crate::hc4_revise`] / [`Constraint::feasibility`]) instead of
    /// compiled tapes.
    ///
    /// This is the slow reference path: it produces bit-identical verdicts,
    /// witnesses, and box statistics, and exists for differential testing
    /// and benchmarking of the compiled evaluation layer.  Queries handed to
    /// [`DeltaSolver::solve_compiled`] always run compiled.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_deltasat::{Constraint, DeltaSolver, Formula};
    /// use nncps_expr::Expr;
    /// use nncps_interval::IntervalBox;
    ///
    /// let query = Formula::atom(Constraint::ge(Expr::var(0).powi(2), 2.0));
    /// let domain = IntervalBox::from_bounds(&[(-3.0, 3.0)]);
    /// let (fast, fast_stats) = DeltaSolver::new(1e-4).solve_with_stats(&query, &domain);
    /// let (reference, reference_stats) = DeltaSolver::new(1e-4)
    ///     .with_tree_evaluator()
    ///     .solve_with_stats(&query, &domain);
    /// assert_eq!(fast.witness(), reference.witness());
    /// assert_eq!(fast_stats, reference_stats);
    /// ```
    pub fn with_tree_evaluator(mut self) -> Self {
        self.tree_eval = true;
        self
    }

    /// The configured precision `δ`.
    pub fn precision(&self) -> f64 {
        self.precision
    }

    /// The configured worker-thread count (`0` = one per available core).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Decides `∃ x ∈ domain : formula(x)`.
    pub fn solve(&self, formula: &Formula, domain: &IntervalBox) -> SatResult {
        self.solve_with_stats(formula, domain).0
    }

    /// Decides the query and also returns search statistics.
    pub fn solve_with_stats(
        &self,
        formula: &Formula,
        domain: &IntervalBox,
    ) -> (SatResult, SolverStats) {
        if self.tree_eval {
            let clauses = formula.to_dnf();
            self.solve_clauses(clauses.iter().map(|c| ClauseEngine::Tree(c)), domain)
        } else {
            self.solve_compiled_with_stats(&CompiledFormula::compile(formula), domain)
        }
    }

    /// Decides a query pre-compiled with [`CompiledFormula::compile`].
    ///
    /// Equivalent to [`DeltaSolver::solve`] on the source formula, but the
    /// DNF conversion and tape lowering happened up front — callers that
    /// construct a query once and solve it (or hold it across solver
    /// configurations) skip the per-solve compilation cost.
    pub fn solve_compiled(&self, query: &CompiledFormula, domain: &IntervalBox) -> SatResult {
        self.solve_compiled_with_stats(query, domain).0
    }

    /// Decides a pre-compiled query and also returns search statistics.
    pub fn solve_compiled_with_stats(
        &self,
        query: &CompiledFormula,
        domain: &IntervalBox,
    ) -> (SatResult, SolverStats) {
        self.solve_clauses(query.clauses().iter().map(ClauseEngine::Compiled), domain)
    }

    /// Examines DNF clauses in order: the first δ-SAT clause wins, Unknown is
    /// remembered, and an empty clause list (the formula `false`) is UNSAT.
    fn solve_clauses<'a, I>(&self, engines: I, domain: &IntervalBox) -> (SatResult, SolverStats)
    where
        I: Iterator<Item = ClauseEngine<'a>>,
    {
        let mut stats = SolverStats::default();
        let mut any_unknown = None;
        for engine in engines {
            stats.clauses_examined += 1;
            match self.solve_clause(&engine, domain, &mut stats) {
                SatResult::DeltaSat(region) => return (SatResult::DeltaSat(region), stats),
                SatResult::Unsat => {}
                SatResult::Unknown(reason) => any_unknown = Some(reason),
            }
        }
        match any_unknown {
            Some(reason) => (SatResult::Unknown(reason), stats),
            None => (SatResult::Unsat, stats),
        }
    }

    /// Decides satisfiability of a single conjunction of constraints.
    pub fn solve_conjunction(
        &self,
        constraints: &[Constraint],
        domain: &IntervalBox,
    ) -> (SatResult, SolverStats) {
        let mut stats = SolverStats {
            clauses_examined: 1,
            ..SolverStats::default()
        };
        let result = if self.tree_eval {
            self.solve_clause(&ClauseEngine::Tree(constraints), domain, &mut stats)
        } else {
            let compiled = CompiledClause::compile(constraints);
            self.solve_clause(&ClauseEngine::Compiled(&compiled), domain, &mut stats)
        };
        (result, stats)
    }

    fn solve_clause(
        &self,
        engine: &ClauseEngine<'_>,
        domain: &IntervalBox,
        stats: &mut SolverStats,
    ) -> SatResult {
        // An empty conjunction is trivially satisfied by any point of a
        // non-empty domain.
        if engine.atom_count() == 0 {
            return if domain.is_empty() {
                SatResult::Unsat
            } else {
                SatResult::DeltaSat(IntervalBox::from_point(&domain.midpoint()))
            };
        }
        if domain.is_empty() {
            return SatResult::Unsat;
        }

        let threads = nncps_parallel::effective_threads(self.threads);
        if threads > 1 {
            self.solve_clause_batched(engine, domain, stats, threads)
        } else {
            self.solve_clause_sequential(engine, domain, stats)
        }
    }

    /// Contracts and classifies one box **in place**: the body of the
    /// branch-and-prune loop, shared by the sequential and batched searches.
    fn process_box(
        &self,
        engine: &ClauseEngine<'_>,
        scratch: &mut ClauseScratch,
        region: &mut IntervalBox,
    ) -> BoxOutcome {
        // Prune with the contractor.
        if !engine.contract(region, self.contraction_rounds, scratch) {
            return BoxOutcome::Pruned;
        }
        if region.is_empty() {
            return BoxOutcome::Pruned;
        }

        // Classify the contracted box.
        match engine.feasibility(region, scratch) {
            ClauseFeasibility::Violated => return BoxOutcome::Pruned,
            ClauseFeasibility::Satisfied => return BoxOutcome::Sat,
            ClauseFeasibility::Undecided => {}
        }

        // δ-termination: the box can no longer be refuted by splitting at
        // the configured precision, so report the δ-weakened SAT verdict.
        if region.max_width() <= self.precision {
            return BoxOutcome::Sat;
        }

        BoxOutcome::Split
    }

    fn solve_clause_sequential(
        &self,
        engine: &ClauseEngine<'_>,
        domain: &IntervalBox,
        stats: &mut SolverStats,
    ) -> SatResult {
        let mut scratch = engine.scratch();
        let mut stack = vec![domain.clone()];
        // Pruned boxes are recycled as the upper halves of later splits, so
        // the steady-state loop allocates nothing: popping moves a box out
        // of the stack, contraction narrows it in place, and
        // `split_widest_into` reuses pooled storage.
        let mut pool: Vec<IntervalBox> = Vec::new();
        while let Some(mut region) = stack.pop() {
            stats.boxes_explored += 1;
            if stats.boxes_explored > self.max_boxes {
                return SatResult::Unknown(format!("box budget of {} exhausted", self.max_boxes));
            }
            match self.process_box(engine, &mut scratch, &mut region) {
                BoxOutcome::Pruned => {
                    stats.boxes_pruned += 1;
                    pool.push(region);
                }
                BoxOutcome::Sat => return SatResult::DeltaSat(region),
                BoxOutcome::Split => {
                    stats.bisections += 1;
                    let mut right = pool.pop().unwrap_or_default();
                    region.split_widest_into(&mut right);
                    // Depth-first exploration; pushing the halves in this
                    // order keeps the search biased toward the lower corner,
                    // which is as good as any deterministic choice.
                    stack.push(right);
                    stack.push(region);
                }
            }
        }
        SatResult::Unsat
    }

    /// How many boxes each worker explores depth-first per parallel round.
    ///
    /// Large enough to amortize the per-round scoped-thread spawn
    /// (tens of microseconds) against real contraction work; small enough
    /// that speculative subtrees stop quickly once a verdict is found.
    const BOXES_PER_WORKER: usize = 64;

    /// Speculative parallel depth-first search: each round pops the top
    /// `threads` boxes off the stack as subtree roots and lets one worker
    /// per root run a plain depth-first exploration of its subtree, capped
    /// at [`Self::BOXES_PER_WORKER`] boxes.  Leftover sub-stacks are merged
    /// back in depth-first order, so the top root's pending boxes end up on
    /// top again.
    ///
    /// The top-priority worker therefore follows *exactly* the sequential
    /// depth-first path (in cap-sized chunks), while the remaining workers
    /// speculate on the boxes the sequential search would visit next.
    /// Consequences:
    ///
    /// * UNSAT verdicts visit exactly the same search tree as the
    ///   sequential solver (all boxes must be refuted either way);
    /// * a δ-SAT verdict is found after exploring at most ~`threads ×` the
    ///   sequential box count (the speculation bound), never exponentially
    ///   more, and the reported witness is the one from the
    ///   highest-priority subtree that round — deterministic for a fixed
    ///   thread count;
    /// * budget (`Unknown`) verdicts can therefore fire earlier than
    ///   sequentially on δ-SAT queries; give the budget `threads ×`
    ///   headroom when enabling threads.
    ///
    /// The first round starts from a single root, so shallow searches run
    /// inline ([`nncps_parallel::parallel_map_owned`] spawns no threads for
    /// a single item) and never pay for parallelism.
    fn solve_clause_batched(
        &self,
        engine: &ClauseEngine<'_>,
        domain: &IntervalBox,
        stats: &mut SolverStats,
        threads: usize,
    ) -> SatResult {
        let mut stack = vec![domain.clone()];
        while !stack.is_empty() {
            // Budget accounting: per-worker caps are trimmed toward the
            // remaining allowance, but a round of `workers` capped subtrees
            // can still collectively overshoot `max_boxes` by up to
            // `workers − 1` boxes (the caps round up), so the budget is a
            // soft limit; Unknown is reported on the round after the budget
            // is exhausted, mirroring the sequential search's
            // report-on-exceeding-pop behavior.
            let remaining_budget = self.max_boxes.saturating_sub(stats.boxes_explored);
            if remaining_budget == 0 {
                stats.boxes_explored += 1; // the pop that broke the budget
                return SatResult::Unknown(format!("box budget of {} exhausted", self.max_boxes));
            }
            let workers = threads.min(stack.len());
            let cap = Self::BOXES_PER_WORKER
                .min(remaining_budget.div_ceil(workers))
                .max(1);
            // `split_off` keeps order: `roots` runs bottom → top of stack.
            let roots = stack.split_off(stack.len() - workers);
            let results = nncps_parallel::parallel_map_owned(roots, threads, |root| {
                self.explore_subtree(engine, root, cap)
            });
            // Merge bottom → top: the last δ-SAT outcome seen is the one
            // with the highest depth-first priority (closest to the top of
            // the stack), which keeps the reported witness deterministic.
            // Leftover sub-stacks are re-pushed in the same order, so the
            // top root's pending boxes end up back on top.
            let mut sat = None;
            let mut leftovers = Vec::with_capacity(workers);
            for result in results {
                stats.boxes_explored += result.explored;
                stats.boxes_pruned += result.pruned;
                stats.bisections += result.bisections;
                if let Some(region) = result.sat {
                    sat = Some(region);
                }
                leftovers.push(result.leftover);
            }
            if let Some(region) = sat {
                return SatResult::DeltaSat(region);
            }
            for leftover in leftovers {
                stack.extend(leftover);
            }
        }
        SatResult::Unsat
    }

    /// Depth-first exploration of one subtree, stopping at a δ-SAT box or
    /// after `cap` boxes; the unexplored remainder is returned as `leftover`
    /// (bottom → top, i.e. ready to be pushed back onto the main stack).
    ///
    /// Each call owns its scratch buffers and box pool, so workers never
    /// contend; within the (up to `cap`-box) subtree walk the loop is
    /// allocation-free just like the sequential search.
    fn explore_subtree(
        &self,
        engine: &ClauseEngine<'_>,
        root: IntervalBox,
        cap: usize,
    ) -> SubtreeResult {
        let mut result = SubtreeResult::default();
        let mut scratch = engine.scratch();
        let mut stack = vec![root];
        let mut pool: Vec<IntervalBox> = Vec::new();
        while let Some(mut region) = stack.pop() {
            result.explored += 1;
            match self.process_box(engine, &mut scratch, &mut region) {
                BoxOutcome::Pruned => {
                    result.pruned += 1;
                    pool.push(region);
                }
                BoxOutcome::Sat => {
                    result.sat = Some(region);
                    break;
                }
                BoxOutcome::Split => {
                    result.bisections += 1;
                    let mut right = pool.pop().unwrap_or_default();
                    region.split_widest_into(&mut right);
                    stack.push(right);
                    stack.push(region);
                }
            }
            if result.explored >= cap {
                break;
            }
        }
        result.leftover = stack;
        result
    }
}

/// Outcome of one worker's capped depth-first subtree exploration.
#[derive(Debug, Default)]
struct SubtreeResult {
    /// δ-SAT box found in the subtree, if any.
    sat: Option<IntervalBox>,
    /// Boxes popped (and therefore counted against the budget).
    explored: usize,
    /// Boxes discarded by contraction or feasibility checks.
    pruned: usize,
    /// Bisections performed.
    bisections: usize,
    /// Unexplored remainder of the subtree (bottom → top).
    leftover: Vec<IntervalBox>,
}

impl Default for DeltaSolver {
    fn default() -> Self {
        DeltaSolver::new(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncps_expr::Expr;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn square_domain(half: f64) -> IntervalBox {
        IntervalBox::from_bounds(&[(-half, half), (-half, half)])
    }

    #[test]
    fn satisfiable_conjunction_returns_witness() {
        // x^2 + y^2 <= 1 and x >= 0.5 is satisfiable.
        let formula = Formula::all_of([
            Constraint::le(x().powi(2) + y().powi(2), 1.0),
            Constraint::ge(x(), 0.5),
        ]);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&formula, &square_domain(2.0));
        let witness = result.witness().expect("should be delta-sat");
        assert!(witness[0] >= 0.5 - 1e-2);
        assert!(witness[0] * witness[0] + witness[1] * witness[1] <= 1.0 + 1e-2);
    }

    #[test]
    fn unsatisfiable_conjunction_is_refuted() {
        // x^2 + y^2 <= 0.25 and x >= 1 cannot hold on [-2, 2]^2.
        let formula = Formula::all_of([
            Constraint::le(x().powi(2) + y().powi(2), 0.25),
            Constraint::ge(x(), 1.0),
        ]);
        let solver = DeltaSolver::new(1e-3);
        let (result, stats) = solver.solve_with_stats(&formula, &square_domain(2.0));
        assert!(result.is_unsat(), "expected unsat, got {result}");
        assert!(stats.boxes_explored >= 1);
    }

    #[test]
    fn nonlinear_transcendental_queries() {
        // sin(x) >= 0.5 on [0, pi] is satisfiable.
        let sat = Formula::atom(Constraint::ge(x().sin(), 0.5));
        let domain = IntervalBox::from_bounds(&[(0.0, std::f64::consts::PI)]);
        let solver = DeltaSolver::new(1e-4);
        assert!(solver.solve(&sat, &domain).is_delta_sat());

        // tanh(x) >= 1.5 is unsatisfiable everywhere.
        let unsat = Formula::atom(Constraint::ge(x().tanh(), 1.5));
        let domain = IntervalBox::from_bounds(&[(-50.0, 50.0)]);
        assert!(solver.solve(&unsat, &domain).is_unsat());

        // exp(x) <= 0 is unsatisfiable.
        let unsat = Formula::atom(Constraint::le(x().exp(), 0.0));
        let domain = IntervalBox::from_bounds(&[(-10.0, 10.0)]);
        assert!(solver.solve(&unsat, &domain).is_unsat());
    }

    #[test]
    fn disjunction_finds_a_satisfiable_branch() {
        // (x <= -3) ∨ (x >= 3) on [-1, 5].
        let formula = Formula::any_of([Constraint::le(x(), -3.0), Constraint::ge(x(), 3.0)]);
        let domain = IntervalBox::from_bounds(&[(-1.0, 5.0)]);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&formula, &domain);
        let witness = result.witness().expect("delta-sat");
        assert!(witness[0] >= 3.0 - 1e-2);
    }

    #[test]
    fn empty_formula_cases() {
        let solver = DeltaSolver::new(1e-3);
        let domain = square_domain(1.0);
        assert!(solver.solve(&Formula::falsum(), &domain).is_unsat());
        assert!(solver.solve(&Formula::verum(), &domain).is_delta_sat());
        let empty_domain = IntervalBox::from_bounds(&[(1.0, -1.0), (0.0, 1.0)]);
        assert!(solver.solve(&Formula::verum(), &empty_domain).is_unsat());
    }

    #[test]
    fn tight_equality_is_delta_decided() {
        // x^2 = 2 has the solution sqrt(2); the solver must find it to within delta.
        let formula = Formula::atom(Constraint::eq(x().powi(2), 2.0));
        let domain = IntervalBox::from_bounds(&[(0.0, 2.0)]);
        let solver = DeltaSolver::new(1e-6);
        let result = solver.solve(&formula, &domain);
        let witness = result.witness().expect("delta-sat");
        assert!((witness[0] - 2.0_f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn box_budget_exhaustion_reports_unknown() {
        // A hard-to-refute query with an absurdly small budget.
        let formula = Formula::atom(Constraint::le(
            (x() * 37.0).sin() * (y() * 53.0).cos(),
            -0.999_999,
        ));
        let solver = DeltaSolver::new(1e-9).with_max_boxes(3);
        let (result, stats) = solver.solve_with_stats(&formula, &square_domain(10.0));
        assert!(matches!(result, SatResult::Unknown(_)));
        assert!(stats.boxes_explored >= 3);
    }

    #[test]
    fn solve_conjunction_api() {
        let constraints = vec![
            Constraint::ge(x(), 0.0),
            Constraint::le(x(), 1.0),
            Constraint::eq(y() - x(), 0.0),
        ];
        let solver = DeltaSolver::new(1e-3);
        let (result, stats) = solver.solve_conjunction(&constraints, &square_domain(2.0));
        assert!(result.is_delta_sat());
        assert_eq!(stats.clauses_examined, 1);
        let w = result.witness().unwrap();
        assert!((w[0] - w[1]).abs() < 1e-2);
    }

    /// The queries the equivalence tests sweep: a mix of SAT, UNSAT, and
    /// deep-search shapes over the operators the pipeline uses.
    fn differential_queries() -> Vec<(Formula, IntervalBox)> {
        vec![
            (
                Formula::all_of([
                    Constraint::le(x().powi(2) + y().powi(2), 1.0),
                    Constraint::ge(x(), 0.5),
                ]),
                square_domain(2.0),
            ),
            (
                Formula::all_of([
                    Constraint::le(x().powi(2) + y().powi(2), 0.25),
                    Constraint::ge(x(), 1.0),
                ]),
                square_domain(2.0),
            ),
            (
                Formula::atom(Constraint::eq(x().powi(2), 2.0)),
                IntervalBox::from_bounds(&[(0.0, 2.0), (0.0, 1.0)]),
            ),
            (
                Formula::atom(Constraint::ge(
                    (x().clone().tanh() * 2.0 + (y() * 0.5).sigmoid()).min(x() + y()),
                    0.75,
                )),
                square_domain(3.0),
            ),
            (
                Formula::any_of([
                    Constraint::le((x() * 3.0).sin() + y().powi(3), -4.0),
                    Constraint::ge(x().abs().sqrt() - y().exp(), 1.0),
                ]),
                square_domain(1.5),
            ),
        ]
    }

    #[test]
    fn compiled_and_tree_evaluators_explore_identical_box_trees() {
        // The compiled-tape engine must be observationally indistinguishable
        // from the tree-walking reference: same verdict, same witness box
        // (bitwise), same statistics — i.e. the same search tree.
        for (formula, domain) in differential_queries() {
            let fast = DeltaSolver::new(1e-4);
            let reference = DeltaSolver::new(1e-4).with_tree_evaluator();
            let (fast_result, fast_stats) = fast.solve_with_stats(&formula, &domain);
            let (ref_result, ref_stats) = reference.solve_with_stats(&formula, &domain);
            assert_eq!(fast_stats, ref_stats, "stats diverge on {formula}");
            match (&fast_result, &ref_result) {
                (SatResult::DeltaSat(a), SatResult::DeltaSat(b)) => {
                    assert_eq!(a, b, "witness boxes diverge on {formula}");
                }
                (SatResult::Unsat, SatResult::Unsat) => {}
                (SatResult::Unknown(_), SatResult::Unknown(_)) => {}
                (a, b) => panic!("verdicts diverge on {formula}: {a} vs {b}"),
            }
        }
    }

    #[test]
    fn precompiled_queries_solve_identically() {
        for (formula, domain) in differential_queries() {
            let solver = DeltaSolver::new(1e-4);
            let compiled = CompiledFormula::compile(&formula);
            let (a, sa) = solver.solve_with_stats(&formula, &domain);
            let (b, sb) = solver.solve_compiled_with_stats(&compiled, &domain);
            assert_eq!(sa, sb);
            assert_eq!(a.witness(), b.witness());
            assert_eq!(a.is_unsat(), b.is_unsat());
        }
    }

    #[test]
    fn batched_search_agrees_with_sequential_verdicts() {
        let queries: Vec<(Formula, IntervalBox)> = vec![
            // Satisfiable conjunction.
            (
                Formula::all_of([
                    Constraint::le(x().powi(2) + y().powi(2), 1.0),
                    Constraint::ge(x(), 0.5),
                ]),
                square_domain(2.0),
            ),
            // Unsatisfiable conjunction.
            (
                Formula::all_of([
                    Constraint::le(x().powi(2) + y().powi(2), 0.25),
                    Constraint::ge(x(), 1.0),
                ]),
                square_domain(2.0),
            ),
            // Tight equality in one dimension.
            (
                Formula::atom(Constraint::eq(x().powi(2), 2.0)),
                IntervalBox::from_bounds(&[(0.0, 2.0)]),
            ),
        ];
        for (formula, domain) in &queries {
            let sequential = DeltaSolver::new(1e-4).solve(formula, domain);
            for threads in [0, 2, 4] {
                let solver = DeltaSolver::new(1e-4).with_threads(threads);
                assert_eq!(solver.threads(), threads);
                let parallel = solver.solve(formula, domain);
                // Verdict kinds must agree; δ-SAT witnesses must satisfy the
                // query even if they come from a different box.
                assert_eq!(parallel.is_unsat(), sequential.is_unsat());
                assert_eq!(parallel.is_delta_sat(), sequential.is_delta_sat());
            }
        }
    }

    #[test]
    fn batched_search_is_deterministic_per_thread_count() {
        let formula = Formula::atom(Constraint::eq(x().powi(2) + y().powi(2), 1.0));
        let solver = DeltaSolver::new(1e-5).with_threads(3);
        let a = solver.solve(&formula, &square_domain(2.0));
        let b = solver.solve(&formula, &square_domain(2.0));
        assert_eq!(a.witness(), b.witness());
        let w = a.witness().expect("the unit circle intersects the domain");
        assert!((w[0] * w[0] + w[1] * w[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn batched_search_does_not_degenerate_to_breadth_first() {
        // Regression test: a weakly-contracting δ-SAT query whose witness
        // sits deep in the search tree.  An earlier batched implementation
        // processed the whole stack per round (breadth-first), exploring
        // 30–70× more boxes than the sequential search and turning tight
        // budgets into spurious Unknowns.  The speculative-DFS search must
        // stay within the documented `threads ×` bound.
        let formula = Formula::atom(Constraint::eq((x() * 4.0).sin() * (y() * 4.0).cos(), 0.25));
        let domain = square_domain(3.0);
        let (seq_result, seq_stats) = DeltaSolver::new(1e-6).solve_with_stats(&formula, &domain);
        assert!(seq_result.is_delta_sat());
        for threads in [2usize, 4] {
            let budget = threads * seq_stats.boxes_explored + threads * 64;
            let solver = DeltaSolver::new(1e-6)
                .with_threads(threads)
                .with_max_boxes(budget);
            let (result, stats) = solver.solve_with_stats(&formula, &domain);
            assert!(
                result.is_delta_sat(),
                "threads={threads}: expected delta-sat within {budget} boxes, got {result} \
                 after {} boxes (sequential: {})",
                stats.boxes_explored,
                seq_stats.boxes_explored
            );
        }
    }

    #[test]
    fn batched_budget_exhaustion_reports_unknown() {
        let formula = Formula::atom(Constraint::le(
            (x() * 37.0).sin() * (y() * 53.0).cos(),
            -0.999_999,
        ));
        let solver = DeltaSolver::new(1e-9).with_max_boxes(5).with_threads(4);
        let (result, stats) = solver.solve_with_stats(&formula, &square_domain(10.0));
        assert!(matches!(result, SatResult::Unknown(_)));
        assert!(stats.boxes_explored > 5);
    }

    #[test]
    fn display_and_accessors() {
        let solver = DeltaSolver::default()
            .with_max_boxes(10)
            .with_contraction_rounds(2);
        assert_eq!(solver.precision(), 1e-3);
        assert_eq!(format!("{}", SatResult::Unsat), "unsat");
        assert!(format!("{}", SatResult::Unknown("budget".into())).contains("budget"));
        let sat = SatResult::DeltaSat(IntervalBox::from_point(&[1.0]));
        assert!(format!("{sat}").contains("delta-sat"));
        assert!(SatResult::Unsat.witness().is_none());
    }

    #[test]
    #[should_panic(expected = "precision must be positive")]
    fn zero_precision_panics() {
        let _ = DeltaSolver::new(0.0);
    }

    #[test]
    fn unsat_of_barrier_style_query() {
        // A miniature version of the paper's query (5):
        // W(x) = x^2 + y^2, f = (-x, -y) (stable linear system).
        // ∃ (x, y) ∈ D \ X0 : ∇W · f >= -γ  should be UNSAT because
        // ∇W · f = -2(x^2 + y^2) < -γ outside a neighbourhood of the origin.
        let grad_dot_f = (x() * -2.0) * x() + (y() * -2.0) * y();
        let gamma = 1e-6;
        // D \ X0 where X0 = [-0.5, 0.5]^2 encoded as a disjunction of strips.
        let outside_x0 = Formula::or(vec![
            Formula::atom(Constraint::le(x(), -0.5)),
            Formula::atom(Constraint::ge(x(), 0.5)),
            Formula::atom(Constraint::le(y(), -0.5)),
            Formula::atom(Constraint::ge(y(), 0.5)),
        ]);
        let query = Formula::and(vec![
            outside_x0,
            Formula::atom(Constraint::ge(grad_dot_f, -gamma)),
        ]);
        let domain = square_domain(3.0);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&query, &domain);
        assert!(result.is_unsat(), "expected unsat, got {result}");
    }
}
