//! A δ-satisfiability solver for nonlinear arithmetic over the reals.
//!
//! This crate is the workspace's stand-in for the **dReal** SMT solver used by
//! the paper.  It decides existential queries of the form
//!
//! ```text
//!   ∃ x ∈ B : φ(x)
//! ```
//!
//! where `B` is an axis-aligned box and `φ` is a Boolean combination of
//! nonlinear inequalities built from polynomials, trigonometric functions,
//! exponentials, and the `tanh`/`sigmoid` activations of neural-network
//! controllers.  Like dReal it implements a *δ-complete decision procedure*
//! ([Gao, Avigad, Clarke 2012]) based on interval constraint propagation (ICP)
//! with branch and prune:
//!
//! * **`Unsat`** answers are exact: interval arithmetic is outward rounded, so
//!   when every box has been refuted there is truly no real solution.
//! * **`DeltaSat`** answers are numerically weakened: a box of width at most
//!   the solver's precision is returned in which the δ-relaxation of every
//!   constraint holds at the box midpoint.
//!
//! This is exactly the guarantee the barrier-certificate procedure needs: an
//! `Unsat` answer to the negated conditions certifies the barrier, and a
//! `DeltaSat` answer provides a counterexample point used to refine the
//! candidate.
//!
//! # Compiled evaluation
//!
//! The solver compiles every DNF clause of a query into a flat evaluation
//! tape ([`CompiledClause`], built on [`nncps_expr::Tape`]) before searching:
//! constraints of a clause share one tape (common subexpressions are
//! evaluated once per box), the HC4 contractor runs forward/backward sweeps
//! over recorded slot values in O(n), and all scratch state is reused so the
//! per-box loop is allocation-free.  Verdicts, witnesses, and explored box
//! trees are bit-identical to the recursive tree-walking evaluators, which
//! remain available as a reference via [`DeltaSolver::with_tree_evaluator`].
//! Queries can be pre-compiled once with [`CompiledFormula::compile`] and
//! solved repeatedly with [`DeltaSolver::solve_compiled`].
//!
//! # Examples
//!
//! ```
//! use nncps_deltasat::{Constraint, DeltaSolver, Formula, SatResult};
//! use nncps_expr::Expr;
//! use nncps_interval::IntervalBox;
//!
//! // Is there a point in [-1, 1]^2 with x^2 + y^2 <= 0.1 and x + y >= 0.5?
//! let x = Expr::var(0);
//! let y = Expr::var(1);
//! let formula = Formula::and(vec![
//!     Formula::atom(Constraint::le(x.clone().powi(2) + y.clone().powi(2), 0.1)),
//!     Formula::atom(Constraint::ge(x + y, 0.5)),
//! ]);
//! let solver = DeltaSolver::new(1e-3);
//! let domain = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
//! match solver.solve(&formula, &domain) {
//!     SatResult::DeltaSat(witness) => {
//!         let p = witness.midpoint();
//!         assert!(p[0] * p[0] + p[1] * p[1] <= 0.1 + 1e-2);
//!     }
//!     SatResult::Unsat => { /* also acceptable: the sets barely touch */ }
//!     SatResult::Unknown(reason) => panic!("solver gave up: {reason}"),
//! }
//! ```
//!
//! [Gao, Avigad, Clarke 2012]: https://doi.org/10.1109/LICS.2012.41

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod compiled;
mod constraint;
mod contractor;
mod formula;
mod solver;

pub use cache::CompilationCache;
pub use compiled::{ClauseFeasibility, ClauseScratch, CompiledClause, CompiledFormula, CutOutcome};
pub use constraint::{Constraint, Feasibility, Relation};
pub use contractor::{contract_clause, hc4_revise};
pub use formula::Formula;
pub use solver::{DeltaSolver, SatResult, SolverStats};
// The governance vocabulary travels with the solver API: a `SatResult::
// Unknown` carries an `ExhaustionReason`, and `DeltaSolver::with_budget`
// takes a `Budget`.
pub use nncps_parallel::{Budget, ExhaustionReason};
