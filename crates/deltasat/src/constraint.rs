//! Atomic nonlinear constraints of the form `expr ⋈ bound`.

use std::fmt;

use nncps_expr::Expr;
use nncps_interval::{Interval, IntervalBox};

/// Comparison relation of an atomic constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `expr <= bound`
    Le,
    /// `expr < bound`
    Lt,
    /// `expr >= bound`
    Ge,
    /// `expr > bound`
    Gt,
    /// `expr = bound`
    Eq,
}

impl Relation {
    /// Returns the symbol used for display.
    pub fn symbol(self) -> &'static str {
        match self {
            Relation::Le => "<=",
            Relation::Lt => "<",
            Relation::Ge => ">=",
            Relation::Gt => ">",
            Relation::Eq => "=",
        }
    }
}

/// Three-valued feasibility verdict of a constraint over a box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// The constraint holds at every point of the box.
    CertainlySatisfied,
    /// The constraint holds at no point of the box.
    CertainlyViolated,
    /// Interval reasoning cannot decide the box.
    Unknown,
}

/// An atomic constraint `expr ⋈ bound` over real-valued variables.
///
/// # Examples
///
/// ```
/// use nncps_deltasat::{Constraint, Feasibility};
/// use nncps_expr::Expr;
/// use nncps_interval::IntervalBox;
///
/// let c = Constraint::le(Expr::var(0).powi(2), 4.0); // x^2 <= 4
/// let inside = IntervalBox::from_bounds(&[(-1.0, 1.0)]);
/// let outside = IntervalBox::from_bounds(&[(3.0, 5.0)]);
/// assert_eq!(c.feasibility(&inside), Feasibility::CertainlySatisfied);
/// assert_eq!(c.feasibility(&outside), Feasibility::CertainlyViolated);
/// ```
#[derive(Debug, Clone)]
pub struct Constraint {
    expr: Expr,
    relation: Relation,
    bound: f64,
}

impl Constraint {
    /// Creates the constraint `expr ⋈ bound`.
    pub fn new(expr: Expr, relation: Relation, bound: f64) -> Self {
        Constraint {
            expr,
            relation,
            bound,
        }
    }

    /// Creates `expr <= bound`.
    pub fn le(expr: Expr, bound: f64) -> Self {
        Constraint::new(expr, Relation::Le, bound)
    }

    /// Creates `expr < bound`.
    pub fn lt(expr: Expr, bound: f64) -> Self {
        Constraint::new(expr, Relation::Lt, bound)
    }

    /// Creates `expr >= bound`.
    pub fn ge(expr: Expr, bound: f64) -> Self {
        Constraint::new(expr, Relation::Ge, bound)
    }

    /// Creates `expr > bound`.
    pub fn gt(expr: Expr, bound: f64) -> Self {
        Constraint::new(expr, Relation::Gt, bound)
    }

    /// Creates `expr = bound`.
    pub fn eq(expr: Expr, bound: f64) -> Self {
        Constraint::new(expr, Relation::Eq, bound)
    }

    /// The left-hand-side expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The comparison relation.
    pub fn relation(&self) -> Relation {
        self.relation
    }

    /// The right-hand-side bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The interval of values the expression must take for the constraint to
    /// hold (used by the HC4 contractor).
    ///
    /// Strict relations use the same closed interval as their non-strict
    /// counterparts; this only makes contraction slightly weaker, never
    /// unsound.
    pub fn admissible_interval(&self) -> Interval {
        match self.relation {
            Relation::Le | Relation::Lt => Interval::new(f64::NEG_INFINITY, self.bound),
            Relation::Ge | Relation::Gt => Interval::new(self.bound, f64::INFINITY),
            Relation::Eq => Interval::singleton(self.bound),
        }
    }

    /// Checks whether the constraint can be decided on the given box by
    /// interval evaluation alone.
    pub fn feasibility(&self, region: &IntervalBox) -> Feasibility {
        self.feasibility_of_value(self.expr.eval_box(region))
    }

    /// Classifies the constraint given a precomputed interval enclosure of
    /// its expression over a box.
    ///
    /// This is the classification step of [`Constraint::feasibility`] split
    /// out so the compiled-clause path — which obtains all expression values
    /// of a clause from one shared tape sweep — decides exactly the same way
    /// as the tree-walking path.
    pub fn feasibility_of_value(&self, value: Interval) -> Feasibility {
        classify(value, self.relation, self.bound)
    }

    /// Checks whether a concrete point satisfies the δ-weakening of the
    /// constraint: the comparison is allowed to miss by at most `delta`.
    pub fn satisfied_within(&self, point: &[f64], delta: f64) -> bool {
        let v = self.expr.eval(point);
        if v.is_nan() {
            return false;
        }
        match self.relation {
            Relation::Le | Relation::Lt => v <= self.bound + delta,
            Relation::Ge | Relation::Gt => v >= self.bound - delta,
            Relation::Eq => (v - self.bound).abs() <= delta,
        }
    }

    /// Evaluates the signed violation of the constraint at a point: `0` when
    /// satisfied, positive and growing with the distance to satisfaction
    /// otherwise.
    pub fn violation(&self, point: &[f64]) -> f64 {
        let v = self.expr.eval(point);
        match self.relation {
            Relation::Le | Relation::Lt => (v - self.bound).max(0.0),
            Relation::Ge | Relation::Gt => (self.bound - v).max(0.0),
            Relation::Eq => (v - self.bound).abs(),
        }
    }
}

/// The three-valued classification shared by the tree and compiled
/// evaluation paths.
fn classify(value: Interval, relation: Relation, bound: f64) -> Feasibility {
    if value.is_empty() {
        // The expression is undefined everywhere on the box (for example
        // `ln` of a negative range); no point of the box satisfies it.
        return Feasibility::CertainlyViolated;
    }
    match relation {
        Relation::Le => {
            if value.hi() <= bound {
                Feasibility::CertainlySatisfied
            } else if value.lo() > bound {
                Feasibility::CertainlyViolated
            } else {
                Feasibility::Unknown
            }
        }
        Relation::Lt => {
            if value.hi() < bound {
                Feasibility::CertainlySatisfied
            } else if value.lo() >= bound {
                Feasibility::CertainlyViolated
            } else {
                Feasibility::Unknown
            }
        }
        Relation::Ge => {
            if value.lo() >= bound {
                Feasibility::CertainlySatisfied
            } else if value.hi() < bound {
                Feasibility::CertainlyViolated
            } else {
                Feasibility::Unknown
            }
        }
        Relation::Gt => {
            if value.lo() > bound {
                Feasibility::CertainlySatisfied
            } else if value.hi() <= bound {
                Feasibility::CertainlyViolated
            } else {
                Feasibility::Unknown
            }
        }
        Relation::Eq => {
            if value.is_singleton() && value.lo() == bound {
                Feasibility::CertainlySatisfied
            } else if !value.contains(bound) {
                Feasibility::CertainlyViolated
            } else {
                Feasibility::Unknown
            }
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.expr, self.relation.symbol(), self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr {
        Expr::var(0)
    }

    #[test]
    fn constructors_record_parts() {
        let c = Constraint::gt(x() + 1.0, 2.0);
        assert_eq!(c.relation(), Relation::Gt);
        assert_eq!(c.bound(), 2.0);
        assert_eq!(c.expr().num_vars(), 1);
        assert_eq!(format!("{c}"), "(x0 + 1) > 2");
        assert_eq!(Relation::Eq.symbol(), "=");
    }

    #[test]
    fn admissible_intervals() {
        assert_eq!(Constraint::le(x(), 2.0).admissible_interval().hi(), 2.0);
        assert_eq!(Constraint::ge(x(), 2.0).admissible_interval().lo(), 2.0);
        assert!(Constraint::eq(x(), 2.0)
            .admissible_interval()
            .is_singleton());
        assert_eq!(Constraint::lt(x(), 2.0).admissible_interval().hi(), 2.0);
        assert_eq!(Constraint::gt(x(), 2.0).admissible_interval().lo(), 2.0);
    }

    #[test]
    fn feasibility_le_ge() {
        let le = Constraint::le(x(), 1.0);
        assert_eq!(
            le.feasibility(&IntervalBox::from_bounds(&[(-2.0, 0.5)])),
            Feasibility::CertainlySatisfied
        );
        assert_eq!(
            le.feasibility(&IntervalBox::from_bounds(&[(2.0, 3.0)])),
            Feasibility::CertainlyViolated
        );
        assert_eq!(
            le.feasibility(&IntervalBox::from_bounds(&[(0.0, 2.0)])),
            Feasibility::Unknown
        );
        let ge = Constraint::ge(x(), 1.0);
        assert_eq!(
            ge.feasibility(&IntervalBox::from_bounds(&[(2.0, 3.0)])),
            Feasibility::CertainlySatisfied
        );
        assert_eq!(
            ge.feasibility(&IntervalBox::from_bounds(&[(-1.0, 0.0)])),
            Feasibility::CertainlyViolated
        );
    }

    #[test]
    fn feasibility_strict_and_eq() {
        let lt = Constraint::lt(x(), 1.0);
        assert_eq!(
            lt.feasibility(&IntervalBox::from_bounds(&[(1.0, 2.0)])),
            Feasibility::CertainlyViolated
        );
        let gt = Constraint::gt(x(), 1.0);
        assert_eq!(
            gt.feasibility(&IntervalBox::from_bounds(&[(0.0, 1.0)])),
            Feasibility::CertainlyViolated
        );
        let eq = Constraint::eq(x().powi(2), 4.0);
        assert_eq!(
            eq.feasibility(&IntervalBox::from_bounds(&[(1.9, 2.1)])),
            Feasibility::Unknown
        );
        assert_eq!(
            eq.feasibility(&IntervalBox::from_bounds(&[(3.0, 4.0)])),
            Feasibility::CertainlyViolated
        );
        assert_eq!(
            Constraint::eq(x(), 2.0).feasibility(&IntervalBox::from_point(&[2.0])),
            Feasibility::CertainlySatisfied
        );
    }

    #[test]
    fn undefined_expression_is_violated() {
        let c = Constraint::ge(x().ln(), 0.0);
        assert_eq!(
            c.feasibility(&IntervalBox::from_bounds(&[(-3.0, -1.0)])),
            Feasibility::CertainlyViolated
        );
    }

    #[test]
    fn delta_weakening_and_violation() {
        let c = Constraint::le(x(), 1.0);
        assert!(c.satisfied_within(&[1.0005], 1e-3));
        assert!(!c.satisfied_within(&[1.1], 1e-3));
        assert_eq!(c.violation(&[0.5]), 0.0);
        assert!((c.violation(&[1.5]) - 0.5).abs() < 1e-12);
        let eq = Constraint::eq(x(), 2.0);
        assert!(eq.satisfied_within(&[2.0004], 1e-3));
        assert!((eq.violation(&[2.5]) - 0.5).abs() < 1e-12);
        let ge = Constraint::ge(x(), 1.0);
        assert!(ge.satisfied_within(&[0.9995], 1e-3));
        assert!((ge.violation(&[0.0]) - 1.0).abs() < 1e-12);
        // NaN never satisfies.
        let nan = Constraint::le(x().ln(), 0.0);
        assert!(!nan.satisfied_within(&[-1.0], 1.0));
    }
}
