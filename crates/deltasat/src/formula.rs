//! Boolean combinations of atomic constraints.

use std::fmt;

use crate::Constraint;

/// A quantifier-free formula over nonlinear real constraints.
///
/// The solver decides existential satisfiability of a formula on a box. The
/// formula language is negation-free: the barrier-certificate queries are
/// already phrased as conjunctions/disjunctions of inequalities (negation can
/// always be pushed into the atoms by flipping the relation).
///
/// # Examples
///
/// ```
/// use nncps_deltasat::{Constraint, Formula};
/// use nncps_expr::Expr;
///
/// // "x is outside [-1, 1]" as a disjunction of two halfline constraints.
/// let x = Expr::var(0);
/// let outside = Formula::or(vec![
///     Formula::atom(Constraint::lt(x.clone(), -1.0)),
///     Formula::atom(Constraint::gt(x, 1.0)),
/// ]);
/// assert_eq!(outside.to_dnf().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub enum Formula {
    /// An atomic constraint.
    Atom(Constraint),
    /// Conjunction of sub-formulas. The empty conjunction is `true`.
    And(Vec<Formula>),
    /// Disjunction of sub-formulas. The empty disjunction is `false`.
    Or(Vec<Formula>),
}

impl Formula {
    /// Wraps a single constraint.
    pub fn atom(constraint: Constraint) -> Self {
        Formula::Atom(constraint)
    }

    /// Conjunction of sub-formulas.
    pub fn and(formulas: Vec<Formula>) -> Self {
        Formula::And(formulas)
    }

    /// Disjunction of sub-formulas.
    pub fn or(formulas: Vec<Formula>) -> Self {
        Formula::Or(formulas)
    }

    /// Conjunction built directly from constraints.
    pub fn all_of<I: IntoIterator<Item = Constraint>>(constraints: I) -> Self {
        Formula::And(constraints.into_iter().map(Formula::Atom).collect())
    }

    /// Disjunction built directly from constraints.
    pub fn any_of<I: IntoIterator<Item = Constraint>>(constraints: I) -> Self {
        Formula::Or(constraints.into_iter().map(Formula::Atom).collect())
    }

    /// The formula `true` (empty conjunction).
    pub fn verum() -> Self {
        Formula::And(Vec::new())
    }

    /// The formula `false` (empty disjunction).
    pub fn falsum() -> Self {
        Formula::Or(Vec::new())
    }

    /// Number of atomic constraints in the formula.
    pub fn atom_count(&self) -> usize {
        match self {
            Formula::Atom(_) => 1,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(Formula::atom_count).sum(),
        }
    }

    /// Converts the formula to disjunctive normal form: a list of
    /// conjunctions (clauses) of constraints.  The formula is satisfiable iff
    /// at least one clause is satisfiable.
    ///
    /// The barrier queries have tiny Boolean structure (a handful of
    /// halfplanes describing the unsafe set), so the potential exponential
    /// blow-up of DNF conversion is not a concern here.
    pub fn to_dnf(&self) -> Vec<Vec<Constraint>> {
        match self {
            Formula::Atom(c) => vec![vec![c.clone()]],
            Formula::Or(fs) => {
                let mut clauses = Vec::new();
                for f in fs {
                    clauses.extend(f.to_dnf());
                }
                clauses
            }
            Formula::And(fs) => {
                // Start with the single empty clause (true) and distribute.
                let mut clauses: Vec<Vec<Constraint>> = vec![Vec::new()];
                for f in fs {
                    let sub = f.to_dnf();
                    if sub.is_empty() {
                        // Conjunction with `false` is `false`.
                        return Vec::new();
                    }
                    let mut next = Vec::with_capacity(clauses.len() * sub.len());
                    for clause in &clauses {
                        for sub_clause in &sub {
                            let mut merged = clause.clone();
                            merged.extend(sub_clause.iter().cloned());
                            next.push(merged);
                        }
                    }
                    clauses = next;
                }
                clauses
            }
        }
    }

    /// Checks whether a concrete point satisfies the δ-weakening of the formula.
    pub fn satisfied_within(&self, point: &[f64], delta: f64) -> bool {
        match self {
            Formula::Atom(c) => c.satisfied_within(point, delta),
            Formula::And(fs) => fs.iter().all(|f| f.satisfied_within(point, delta)),
            Formula::Or(fs) => fs.iter().any(|f| f.satisfied_within(point, delta)),
        }
    }
}

impl From<Constraint> for Formula {
    fn from(constraint: Constraint) -> Self {
        Formula::Atom(constraint)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(c) => write!(f, "{c}"),
            Formula::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncps_expr::Expr;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    #[test]
    fn atom_counting_and_constructors() {
        let f = Formula::and(vec![
            Formula::atom(Constraint::le(x(), 1.0)),
            Formula::or(vec![
                Formula::atom(Constraint::ge(y(), 0.0)),
                Formula::atom(Constraint::le(y(), -1.0)),
            ]),
        ]);
        assert_eq!(f.atom_count(), 3);
        assert_eq!(Formula::verum().atom_count(), 0);
        assert_eq!(Formula::falsum().atom_count(), 0);
        let g: Formula = Constraint::le(x(), 0.0).into();
        assert_eq!(g.atom_count(), 1);
        assert_eq!(Formula::all_of([Constraint::le(x(), 0.0)]).atom_count(), 1);
        assert_eq!(Formula::any_of([Constraint::le(x(), 0.0)]).atom_count(), 1);
    }

    #[test]
    fn dnf_of_atom_and_flat_structures() {
        let atom = Formula::atom(Constraint::le(x(), 1.0));
        assert_eq!(atom.to_dnf().len(), 1);
        assert_eq!(atom.to_dnf()[0].len(), 1);

        let conj = Formula::all_of([Constraint::le(x(), 1.0), Constraint::ge(y(), 0.0)]);
        let dnf = conj.to_dnf();
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf[0].len(), 2);

        let disj = Formula::any_of([Constraint::le(x(), 1.0), Constraint::ge(y(), 0.0)]);
        let dnf = disj.to_dnf();
        assert_eq!(dnf.len(), 2);
        assert_eq!(dnf[0].len(), 1);
    }

    #[test]
    fn dnf_distributes_and_over_or() {
        // (a) ∧ (b ∨ c)  →  (a ∧ b) ∨ (a ∧ c)
        let f = Formula::and(vec![
            Formula::atom(Constraint::le(x(), 1.0)),
            Formula::or(vec![
                Formula::atom(Constraint::ge(y(), 2.0)),
                Formula::atom(Constraint::le(y(), -2.0)),
            ]),
        ]);
        let dnf = f.to_dnf();
        assert_eq!(dnf.len(), 2);
        assert!(dnf.iter().all(|clause| clause.len() == 2));
    }

    #[test]
    fn dnf_edge_cases() {
        let verum_dnf = Formula::verum().to_dnf();
        assert_eq!(verum_dnf.len(), 1);
        assert!(verum_dnf[0].is_empty());
        assert!(Formula::falsum().to_dnf().is_empty());
        // Conjunction containing `false` collapses to `false`.
        let f = Formula::and(vec![
            Formula::atom(Constraint::le(x(), 1.0)),
            Formula::falsum(),
        ]);
        assert!(f.to_dnf().is_empty());
    }

    #[test]
    fn point_satisfaction() {
        let f = Formula::and(vec![
            Formula::atom(Constraint::le(x(), 1.0)),
            Formula::or(vec![
                Formula::atom(Constraint::ge(y(), 2.0)),
                Formula::atom(Constraint::le(y(), -2.0)),
            ]),
        ]);
        assert!(f.satisfied_within(&[0.5, 3.0], 0.0));
        assert!(f.satisfied_within(&[0.5, -3.0], 0.0));
        assert!(!f.satisfied_within(&[0.5, 0.0], 0.0));
        assert!(!f.satisfied_within(&[2.0, 3.0], 0.0));
        assert!(Formula::verum().satisfied_within(&[], 0.0));
        assert!(!Formula::falsum().satisfied_within(&[], 0.0));
    }

    #[test]
    fn display_renders_structure() {
        let f = Formula::and(vec![
            Formula::atom(Constraint::le(x(), 1.0)),
            Formula::atom(Constraint::ge(y(), 0.0)),
        ]);
        let s = format!("{f}");
        assert!(s.contains('∧'));
        assert_eq!(format!("{}", Formula::verum()), "true");
        assert_eq!(format!("{}", Formula::falsum()), "false");
        let g = Formula::any_of([Constraint::le(x(), 1.0), Constraint::ge(x(), 3.0)]);
        assert!(format!("{g}").contains('∨'));
    }
}
