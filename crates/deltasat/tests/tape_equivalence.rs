//! Property tests: the compiled tape evaluator is bit-identical to the
//! tree-walking evaluator.
//!
//! Random expression trees (over every operator the pipeline uses, with
//! shared subtrees and constant subexpressions) are compiled to tapes and
//! checked against the tree on three levels:
//!
//! 1. scalar and interval evaluation produce the same bits,
//! 2. one HC4 revise and a full clause contraction narrow boxes to the same
//!    bits and reach the same fixpoint,
//! 3. the branch-and-prune solver explores the identical box tree (same
//!    stats), returns the same verdict, and the same witness box.

use nncps_deltasat::{
    contract_clause, hc4_revise, CompiledClause, Constraint, DeltaSolver, Formula, Relation,
    SatResult,
};
use nncps_expr::{Expr, Tape};
use nncps_interval::IntervalBox;
use proptest::prelude::*;

/// Decodes a token stream into a random expression over variables `x0`/`x1`.
///
/// A stack machine keeps the shape arbitrary (including deep sharing: pops
/// clone subtrees back as operands of several parents) while staying
/// deterministic in the sampled tokens.
fn decode_expr(tokens: &[usize], consts: &[f64]) -> Expr {
    let mut stack: Vec<Expr> = Vec::new();
    for &t in tokens {
        let arg = |stack: &mut Vec<Expr>| stack.pop().unwrap_or_else(|| Expr::var(t % 2));
        let e = match t % 24 {
            0 | 1 => Expr::var(t % 2),
            2 | 3 => Expr::constant(consts[t % consts.len()]),
            4 => arg(&mut stack).sin(),
            5 => arg(&mut stack).cos(),
            6 => arg(&mut stack).tanh(),
            7 => arg(&mut stack).sigmoid(),
            8 => arg(&mut stack).atan(),
            9 => arg(&mut stack).abs(),
            10 => -arg(&mut stack),
            11 => arg(&mut stack).sqrt(),
            12 => arg(&mut stack).ln(),
            13 => arg(&mut stack).exp(),
            14 => arg(&mut stack).powi((t / 24 % 4) as i32),
            15 => {
                // Re-share an existing subtree: both occurrences point at the
                // same Arc, exercising the tape's pointer-identity CSE.
                let top = arg(&mut stack);
                stack.push(top.clone());
                top
            }
            16 | 17 => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a + b
            }
            18 => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a - b
            }
            19 | 20 => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a * b
            }
            21 => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a / b
            }
            22 => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a.min(b)
            }
            _ => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a.max(b)
            }
        };
        stack.push(e);
    }
    stack
        .into_iter()
        .reduce(|a, b| a + b)
        .unwrap_or_else(|| Expr::var(0))
}

/// A `min`/`max`/`abs`-heavy decoder: roughly half the emitted nodes are
/// choice sites (including explicit ReLU clamps), stressing choice-trace
/// recording and the delta-driven re-specialization much harder than the
/// uniform operator mix of [`decode_expr`].
fn decode_choosy_expr(tokens: &[usize], consts: &[f64]) -> Expr {
    let mut stack: Vec<Expr> = Vec::new();
    for &t in tokens {
        let arg = |stack: &mut Vec<Expr>| stack.pop().unwrap_or_else(|| Expr::var(t % 2));
        let e = match t % 10 {
            0 => Expr::var(t % 2),
            1 => Expr::constant(consts[t % consts.len()]),
            2 | 3 => arg(&mut stack).abs(),
            4 => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a.min(b)
            }
            5 => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a.max(b)
            }
            // ReLU: the clamp shape NN controllers compile to.
            6 => arg(&mut stack).max(Expr::constant(0.0)),
            7 => {
                // Re-share a subtree, so choice sites get multiple parents.
                let top = arg(&mut stack);
                stack.push(top.clone());
                top
            }
            8 => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a + b
            }
            _ => {
                let b = arg(&mut stack);
                let a = arg(&mut stack);
                a * b
            }
        };
        stack.push(e);
    }
    stack
        .into_iter()
        .reduce(|a, b| a.max(b))
        .unwrap_or_else(|| Expr::var(0))
}

fn assert_interval_bits(a: nncps_interval::Interval, b: nncps_interval::Interval, what: &str) {
    assert_eq!(a.lo().to_bits(), b.lo().to_bits(), "{what} lo");
    assert_eq!(a.hi().to_bits(), b.hi().to_bits(), "{what} hi");
}

fn assert_box_bits(a: &IntervalBox, b: &IntervalBox, what: &str) {
    assert_eq!(a.dim(), b.dim(), "{what} dim");
    for k in 0..a.dim() {
        assert_interval_bits(a[k], b[k], what);
    }
}

proptest! {
    #[test]
    fn prop_tape_scalar_eval_is_bit_identical(
        tokens in collection::vec(0usize..10_000, 1..50),
        consts in collection::vec(-2.5f64..2.5, 6),
        px in -3.0f64..3.0, py in -3.0f64..3.0,
    ) {
        let expr = decode_expr(&tokens, &consts);
        let tape = Tape::compile(&expr);
        prop_assert!(tape.num_slots() <= expr.node_count());
        prop_assert_eq!(tape.eval(&[px, py]).to_bits(), expr.eval(&[px, py]).to_bits());
    }

    #[test]
    fn prop_tape_interval_eval_is_bit_identical(
        tokens in collection::vec(0usize..10_000, 1..50),
        consts in collection::vec(-2.5f64..2.5, 6),
        ax in -3.0f64..3.0, ay in -3.0f64..3.0,
        wx in 0.0f64..2.0, wy in 0.0f64..2.0,
    ) {
        let expr = decode_expr(&tokens, &consts);
        let tape = Tape::compile(&expr);
        let region = IntervalBox::from_bounds(&[(ax, ax + wx), (ay, ay + wy)]);
        assert_interval_bits(tape.eval_box(&region), expr.eval_box(&region), "enclosure");
    }

    #[test]
    fn prop_tape_hc4_matches_tree_hc4_bitwise(
        tokens in collection::vec(0usize..10_000, 1..40),
        consts in collection::vec(-2.5f64..2.5, 6),
        bound in -3.0f64..3.0,
        relation in 0usize..5,
    ) {
        let expr = decode_expr(&tokens, &consts);
        let relation = [Relation::Le, Relation::Lt, Relation::Ge, Relation::Gt, Relation::Eq][relation];
        let constraint = Constraint::new(expr, relation, bound);
        let clause = std::slice::from_ref(&constraint);
        let compiled = CompiledClause::compile(clause);
        let mut scratch = compiled.scratch();

        // Single revise.
        let mut tree_region = IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]);
        let mut tape_region = tree_region.clone();
        let tree_ok = hc4_revise(&constraint, &mut tree_region);
        let tape_ok = compiled.contract(&mut tape_region, 1, &mut scratch);
        prop_assert_eq!(tree_ok, tape_ok);
        if tree_ok {
            assert_box_bits(&tree_region, &tape_region, "after one revise");
        }

        // Contraction to the (approximate) fixpoint.
        let mut tree_region = IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]);
        let mut tape_region = tree_region.clone();
        let tree_ok = contract_clause(clause, &mut tree_region, 10);
        let tape_ok = compiled.contract(&mut tape_region, 10, &mut scratch);
        prop_assert_eq!(tree_ok, tape_ok);
        if tree_ok {
            assert_box_bits(&tree_region, &tape_region, "at the fixpoint");
        }
    }

    #[test]
    fn prop_tape_hc4_never_drops_solutions(
        tokens in collection::vec(0usize..10_000, 1..40),
        consts in collection::vec(-2.5f64..2.5, 6),
        bound in -3.0f64..3.0,
        tx in 0.0f64..1.0, ty in 0.0f64..1.0,
    ) {
        // Soundness of the compiled contractor on its own terms: a concrete
        // solution always survives contraction.  The property holds where
        // the expression is a total real function of the point, so every
        // intermediate scalar value must be finite, and no subterm may be
        // undefined over the whole box (empty interval).  Outside those
        // conditions the scalar and interval semantics legitimately diverge
        // — e.g. IEEE `min` swallows the NaN of `sqrt(-0.15)` while interval
        // semantics correctly treats the term as nowhere defined — for the
        // tree contractor just as much as for the tape.
        let expr = decode_expr(&tokens, &consts);
        let px = -3.0 + 6.0 * tx;
        let py = -3.0 + 6.0 * ty;
        let tape = Tape::compile(&expr);
        let mut slots = Vec::new();
        tape.eval_scalar_into(&[px, py], &mut slots);
        prop_assume!(slots.iter().all(|v| v.is_finite()));
        let mut interval_slots = Vec::new();
        tape.eval_interval_into(
            &IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
            &mut interval_slots,
        );
        prop_assume!(interval_slots.iter().all(|v| !v.is_empty()));
        let value = slots[tape.root_slot(0)];
        let constraint = Constraint::le(expr, bound);
        let satisfied = value <= bound;
        prop_assume!(satisfied);
        let compiled = CompiledClause::compile(std::slice::from_ref(&constraint));
        let mut scratch = compiled.scratch();
        let mut region = IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]);
        let feasible = compiled.contract(&mut region, 10, &mut scratch);
        prop_assert!(feasible, "infeasible: {constraint} at ({px}, {py})");
        prop_assert!(
            region.contains_point(&[px, py]),
            "dropped ({px}, {py}) from {region} for {constraint}"
        );
    }

    #[test]
    fn prop_solver_box_tree_is_identical_across_evaluators(
        tokens in collection::vec(0usize..10_000, 1..30),
        consts in collection::vec(-2.5f64..2.5, 6),
        bound in -2.0f64..2.0,
        relation in 0usize..5,
    ) {
        let expr = decode_expr(&tokens, &consts);
        let relation = [Relation::Le, Relation::Lt, Relation::Ge, Relation::Gt, Relation::Eq][relation];
        let formula = Formula::atom(Constraint::new(expr, relation, bound));
        let domain = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        // A budget keeps degenerate samples (e.g. equalities over flat
        // expressions) from dominating the run; Unknown-vs-Unknown is still
        // compared for identical statistics.  Newton cuts change the search
        // tree by design, so the bit-identity comparison pins them off —
        // region specialization stays on (it must be invisible).
        let fast = DeltaSolver::new(1e-3)
            .with_max_boxes(20_000)
            .with_newton_cuts(false);
        let reference = fast.clone().with_tree_evaluator();
        let (fast_result, fast_stats) = fast.solve_with_stats(&formula, &domain);
        let (ref_result, ref_stats) = reference.solve_with_stats(&formula, &domain);
        prop_assert_eq!(fast_stats, ref_stats);
        match (&fast_result, &ref_result) {
            (SatResult::DeltaSat(a), SatResult::DeltaSat(b)) => assert_box_bits(a, b, "witness"),
            (SatResult::Unsat, SatResult::Unsat) => {}
            (SatResult::Unknown(a), SatResult::Unknown(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "verdicts diverge: {} vs {}", a, b),
        }
    }

    /// Specialized views must evaluate bit-identically to the full tape —
    /// scalar and interval — at every point and on every nested sub-box of
    /// the region they were specialized to, including views re-specialized
    /// from views.
    #[test]
    fn prop_specialized_views_evaluate_bit_identically(
        tokens in collection::vec(0usize..10_000, 1..40),
        consts in collection::vec(-2.5f64..2.5, 6),
        ax in -3.0f64..1.0, ay in -3.0f64..1.0,
        wx in 0.1f64..2.0, wy in 0.1f64..2.0,
        sx in 0.0f64..1.0, sy in 0.0f64..1.0,
        tx in 0.0f64..1.0, ty in 0.0f64..1.0,
    ) {
        use nncps_expr::{SpecializeScratch, TapeView};
        let expr = decode_expr(&tokens, &consts);
        let tape = Tape::compile(&expr);
        let region = IntervalBox::from_bounds(&[(ax, ax + wx), (ay, ay + wy)]);
        let mut scratch = SpecializeScratch::default();
        let view = tape.specialize(&region, &mut scratch);

        // A random sub-box of the region, and a sub-box of that sub-box for
        // the re-specialized view.
        let sub = IntervalBox::from_bounds(&[
            (ax + sx * wx * 0.5, ax + wx * (0.5 + 0.5 * sx)),
            (ay + sy * wy * 0.5, ay + wy * (0.5 + 0.5 * sy)),
        ]);
        let mut full_i = Vec::new();
        let mut view_i = Vec::new();
        let mut full_s = Vec::new();
        let mut view_s = Vec::new();
        let mut check = |view: &TapeView, sub: &IntervalBox| {
            tape.eval_interval_into(sub, &mut full_i);
            view.eval_interval_into(&tape, sub, &mut view_i);
            let root = view.root_slot(0).expect("all roots kept");
            assert_interval_bits(view_i[root], full_i[tape.root_slot(0)], "view enclosure");
            let point = sub.lerp_point(&[tx, ty]);
            tape.eval_scalar_into(&point, &mut full_s);
            view.eval_scalar_into(&tape, &point, &mut view_s);
            assert_eq!(
                view_s[root].to_bits(),
                full_s[tape.root_slot(0)].to_bits(),
                "view scalar at {point:?}"
            );
        };
        check(&view, &sub);

        // Re-specialize from the view on the sub-box (recording the choice
        // trace the delta pass consumes) and check on a nested sub-sub-box.
        // A `false` return means the delta pass found nothing new to decide,
        // in which case the parent view stays the active program.
        use nncps_expr::{Choice, ChoiceAnalysis};
        let mut slots = Vec::new();
        let mut choices = vec![Choice::Both; tape.num_choices()];
        view.eval_interval_extend_into_recording(&tape, &sub, &mut slots, view.len(), &mut choices);
        let analysis = ChoiceAnalysis::analyze(&tape);
        let mut child = TapeView::default();
        let keep = vec![true; tape.num_roots()];
        let derived =
            view.respecialize_into(&tape, &analysis, &slots, &choices, &keep, &mut scratch, &mut child);
        let nested = IntervalBox::from_bounds(&[
            (sub[0].lo() + 0.25 * sub[0].width(), sub[0].lo() + 0.75 * sub[0].width()),
            (sub[1].lo() + 0.25 * sub[1].width(), sub[1].lo() + 0.75 * sub[1].width()),
        ]);
        check(if derived { &child } else { &view }, &nested);
    }

    /// Region specialization must be bit-invisible on whole solver runs:
    /// random expression trees, solved with specialization on and off
    /// (Newton cuts pinned off on both sides), must explore identical box
    /// trees and return bitwise-identical witnesses.
    #[test]
    fn prop_specialized_solver_runs_are_bit_identical(
        tokens in collection::vec(0usize..10_000, 1..30),
        consts in collection::vec(-2.5f64..2.5, 6),
        bound in -2.0f64..2.0,
        relation in 0usize..5,
    ) {
        let expr = decode_expr(&tokens, &consts);
        let relation = [Relation::Le, Relation::Lt, Relation::Ge, Relation::Gt, Relation::Eq][relation];
        let formula = Formula::atom(Constraint::new(expr, relation, bound));
        let domain = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let specialized = DeltaSolver::new(1e-3)
            .with_max_boxes(20_000)
            .with_newton_cuts(false);
        let plain = specialized.clone().with_tape_specialization(false);
        let (spec_result, spec_stats) = specialized.solve_with_stats(&formula, &domain);
        let (plain_result, plain_stats) = plain.solve_with_stats(&formula, &domain);
        prop_assert_eq!(spec_stats, plain_stats);
        match (&spec_result, &plain_result) {
            (SatResult::DeltaSat(a), SatResult::DeltaSat(b)) => assert_box_bits(a, b, "witness"),
            (SatResult::Unsat, SatResult::Unsat) => {}
            (SatResult::Unknown(a), SatResult::Unknown(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "verdicts diverge: {} vs {}", a, b),
        }
    }

    /// Choice-heavy random DAGs (about half the nodes are `min`/`max`/`abs`
    /// sites) solved with the full acceleration stack — compiled tapes,
    /// choice-trace specialization, batched sibling sweeps — must explore
    /// the identical box tree and return bitwise-identical witnesses as the
    /// tree-walking reference evaluator.
    #[test]
    fn prop_choice_heavy_solver_runs_match_tree_reference(
        tokens in collection::vec(0usize..10_000, 1..40),
        consts in collection::vec(-2.5f64..2.5, 6),
        bound in -2.0f64..2.0,
        relation in 0usize..5,
    ) {
        let expr = decode_choosy_expr(&tokens, &consts);
        let relation = [Relation::Le, Relation::Lt, Relation::Ge, Relation::Gt, Relation::Eq][relation];
        let formula = Formula::atom(Constraint::new(expr, relation, bound));
        let domain = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let fast = DeltaSolver::new(1e-3)
            .with_max_boxes(20_000)
            .with_newton_cuts(false);
        let reference = fast.clone().with_tree_evaluator();
        let (fast_result, fast_stats) = fast.solve_with_stats(&formula, &domain);
        let (ref_result, ref_stats) = reference.solve_with_stats(&formula, &domain);
        prop_assert_eq!(fast_stats, ref_stats);
        match (&fast_result, &ref_result) {
            (SatResult::DeltaSat(a), SatResult::DeltaSat(b)) => assert_box_bits(a, b, "witness"),
            (SatResult::Unsat, SatResult::Unsat) => {}
            (SatResult::Unknown(a), SatResult::Unknown(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "verdicts diverge: {} vs {}", a, b),
        }
    }

    /// Derivative-guided cuts may reshape the search tree but never the
    /// verdict; a δ-SAT witness they produce must satisfy the δ-weakened
    /// constraint.
    #[test]
    fn prop_newton_cuts_preserve_verdicts(
        tokens in collection::vec(0usize..10_000, 1..30),
        consts in collection::vec(-2.5f64..2.5, 6),
        bound in -2.0f64..2.0,
        relation in 0usize..5,
    ) {
        let expr = decode_expr(&tokens, &consts);
        let relation = [Relation::Le, Relation::Lt, Relation::Ge, Relation::Gt, Relation::Eq][relation];
        let constraint = Constraint::new(expr, relation, bound);
        let formula = Formula::atom(constraint.clone());
        let domain = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let with_cuts = DeltaSolver::new(1e-3).with_max_boxes(20_000);
        let without = with_cuts.clone().with_newton_cuts(false);
        let (a, _) = with_cuts.solve_with_stats(&formula, &domain);
        let (b, _) = without.solve_with_stats(&formula, &domain);
        // Unknown (budget) verdicts can legitimately differ in either
        // direction because the trees differ; definite verdicts must agree.
        match (&a, &b) {
            (SatResult::Unknown(_), _) | (_, SatResult::Unknown(_)) => {}
            _ => {
                prop_assert_eq!(a.is_unsat(), b.is_unsat(), "unsat diverges");
                prop_assert_eq!(a.is_delta_sat(), b.is_delta_sat(), "delta-sat diverges");
            }
        }
        // Witnesses stay inside the solver domain.  (No stronger point-wise
        // check is possible here: like any δ-complete procedure, the solver
        // may report δ-SAT at a δ-width box whose enclosure never decides —
        // e.g. near a division singularity the enclosure is the whole line —
        // and that holds with and without cuts.)
        if let SatResult::DeltaSat(region) = &a {
            let witness = region.midpoint();
            prop_assert!(domain.contains_point(&witness));
        }
    }
}
