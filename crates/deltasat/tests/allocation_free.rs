//! Proof that the compiled per-box loop is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; after one warm-up
//! pass (which grows the scratch buffers, the box pool, and the work stack
//! to their high-water marks) the exact operations the branch-and-prune loop
//! performs per box — contract, classify, split-into-pooled-storage — must
//! execute without a single heap allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use nncps_deltasat::{ClauseFeasibility, CompiledClause, Constraint, CutOutcome};
use nncps_expr::{
    AllocatedTape, BatchScratch, Expr, SpecializeScratch, TapeView, DEFAULT_REGISTERS,
};
use nncps_interval::{Interval, IntervalBox};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The allocation counter is process-global, so tests running on concurrent
/// harness threads would observe each other's allocations and fail
/// spuriously.  Each test holds this lock for its whole body; a panicked
/// holder must not take the others down with it, so poison is recovered.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The allocation counter is process-global, and the lock above only covers
/// the test bodies: the libtest harness's own threads perform one-time lazy
/// allocations (channel parking, panic-hook setup) that can land inside a
/// measured window, most often the first test's.  Such noise is transient —
/// once the stray initialization has happened it never recurs — so each
/// attempt resets the search state and re-measures the identical workload,
/// passing as soon as one attempt observes zero allocations.  A genuine
/// allocation in the loop fails every attempt, so the property stays strict.
fn assert_steady_state_allocation_free(mut attempt: impl FnMut() -> usize, what: &str) {
    let mut observed = 0;
    for _ in 0..5 {
        observed = attempt();
        if observed == 0 {
            return;
        }
    }
    panic!("{what} must not allocate (saw {observed} allocations on every retry)");
}

#[test]
fn steady_state_box_loop_does_not_allocate() {
    let _serial = serialize();
    let x = Expr::var(0);
    let y = Expr::var(1);
    // A clause with transcendentals, sharing, and two constraints — the same
    // shape the barrier queries have.
    let shared = (x.clone() * 0.7 + y.clone()).tanh();
    let clause = CompiledClause::compile(&[
        Constraint::ge(shared.clone() * x.clone() + y.clone().powi(2), -0.5),
        Constraint::le(shared * 2.0 + x.clone().sin(), 1.5),
    ]);
    let mut scratch = clause.scratch();
    let domain = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);

    // The exact per-box body of the solver loop, driven here directly so the
    // allocator counter brackets nothing but steady-state work.
    let mut stack = vec![domain.clone()];
    let mut pool: Vec<IntervalBox> = Vec::new();
    let mut run = |stack: &mut Vec<IntervalBox>, pool: &mut Vec<IntervalBox>, boxes: usize| {
        let mut explored = 0;
        while let Some(mut region) = stack.pop() {
            explored += 1;
            let feasible = clause.contract(&mut region, 4, &mut scratch);
            let retire = !feasible
                || region.is_empty()
                || clause.feasibility(&region, &mut scratch) == ClauseFeasibility::Violated
                || region.max_width() <= 1e-4;
            if retire {
                pool.push(region);
            } else {
                let mut right = pool.pop().unwrap_or_default();
                region.split_widest_into(&mut right);
                stack.push(right);
                stack.push(region);
            }
            if explored >= boxes {
                break;
            }
        }
    };

    // Warm-up: run the workload once from scratch, growing every buffer —
    // scratch, stack, pool, and the box pool's storage — to the high-water
    // mark of exactly this workload.
    run(&mut stack, &mut pool, 500);
    assert!(!stack.is_empty(), "warm-up must leave work pending");

    // Steady state: the identical 500-box workload re-runs without a single
    // allocation.  Each attempt resets to the initial search state *without*
    // freeing anything: park all boxes in the pool and re-seed the stack
    // from pooled storage.
    assert_steady_state_allocation_free(
        || {
            pool.append(&mut stack);
            let mut seed = pool.pop().expect("warm-up created boxes");
            seed.clone_from(&domain);
            stack.push(seed);
            let before = allocations();
            run(&mut stack, &mut pool, 500);
            allocations() - before
        },
        "the steady-state box loop",
    );
}

/// The batched split loop: every bisection runs both children through one
/// two-lane recording sweep of the register-allocated tape, the recorded
/// traces ride the work stack, and popped traces recycle through a pool —
/// exactly the solver's batched-evaluation steady state.  Once the batch
/// scratch (register file + spill arena) and the trace pool have grown to
/// their high-water marks, the loop must not allocate.
#[test]
fn batched_sibling_evaluation_steady_state_does_not_allocate() {
    let _serial = serialize();
    let x = Expr::var(0);
    let y = Expr::var(1);
    let shared = (x.clone() * 0.7 + y.clone()).tanh();
    let clause = CompiledClause::compile(&[
        Constraint::ge(shared.clone() * x.clone() + y.clone().powi(2), -0.5),
        Constraint::le(shared * 2.0 + x.clone().sin(), 1.5),
    ]);
    let alloc = AllocatedTape::from_tape(clause.tape(), DEFAULT_REGISTERS);
    let mut scratch = clause.scratch();
    let mut batch_scratch: BatchScratch<2> = BatchScratch::new();
    let domain = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);

    // The solver's batched stack shape: each entry may carry the sweep trace
    // its parent's split recorded for it.
    let mut stack: Vec<(IntervalBox, Option<Vec<Interval>>)> = vec![(domain.clone(), None)];
    let mut pool: Vec<IntervalBox> = Vec::new();
    let mut trace_pool: Vec<Vec<Interval>> = Vec::new();
    let mut run = |stack: &mut Vec<(IntervalBox, Option<Vec<Interval>>)>,
                   pool: &mut Vec<IntervalBox>,
                   trace_pool: &mut Vec<Vec<Interval>>,
                   boxes: usize| {
        let mut explored = 0;
        while let Some((mut region, trace)) = stack.pop() {
            explored += 1;
            if let Some(trace) = trace {
                trace_pool.push(trace);
            }
            let feasible = clause.contract(&mut region, 4, &mut scratch);
            let retire = !feasible
                || region.is_empty()
                || clause.feasibility(&region, &mut scratch) == ClauseFeasibility::Violated
                || region.max_width() <= 1e-4;
            if retire {
                pool.push(region);
            } else {
                let mut right = pool.pop().unwrap_or_default();
                region.split_widest_into(&mut right);
                let mut left_trace = trace_pool.pop().unwrap_or_default();
                let mut right_trace = trace_pool.pop().unwrap_or_default();
                alloc.eval_interval_batch_recording(
                    clause.tape(),
                    &[&region, &right],
                    &mut batch_scratch,
                    &mut [&mut left_trace, &mut right_trace],
                    // This clause has no `min`/`max`/`abs` sites, so there is
                    // no choice trace to record.
                    &mut [],
                );
                stack.push((right, Some(right_trace)));
                stack.push((region, Some(left_trace)));
            }
            if explored >= boxes {
                break;
            }
        }
    };

    // Warm-up: grow the batch scratch, the trace pool, the stack, and the
    // box pool to the workload's high-water marks.
    run(&mut stack, &mut pool, &mut trace_pool, 500);
    assert!(!stack.is_empty(), "warm-up must leave work pending");

    // Each attempt resets to the initial search state without freeing
    // anything, then re-runs the identical workload.
    assert_steady_state_allocation_free(
        || {
            while let Some((region, trace)) = stack.pop() {
                pool.push(region);
                if let Some(trace) = trace {
                    trace_pool.push(trace);
                }
            }
            let mut seed = pool.pop().expect("warm-up created boxes");
            seed.clone_from(&domain);
            stack.push((seed, None));
            let before = allocations();
            run(&mut stack, &mut pool, &mut trace_pool, 500);
            allocations() - before
        },
        "the batched sibling-evaluation steady state",
    );
}

/// The PR-4 loop: region specialization (per-depth view derivation over
/// pooled `TapeView`s) plus derivative-guided cuts must also run
/// allocation-free once warm.  The gradient bundle compiles lazily on first
/// use, so `ensure_gradients` is part of the warm-up.
#[test]
fn specialization_and_newton_steady_state_does_not_allocate() {
    let _serial = serialize();
    let x = Expr::var(0);
    let y = Expr::var(1);
    // A ring equality keeps the search tree deep (the interval-Newton step
    // narrows but cannot collapse dimensions), the `min`/`abs` constraint
    // gives specialization choices to decide, and the third constraint is
    // satisfied on most sub-regions, exercising atom dropping.
    let clause = CompiledClause::compile(&[
        Constraint::eq(
            x.clone().powi(2) + y.clone().powi(2) + (x.clone() * 5.0).sin() * 0.2,
            1.0,
        ),
        Constraint::ge((x.clone().abs() + 2.0).min(y.clone() + 4.0), 0.5),
        Constraint::le(y.clone().tanh() * 0.25 + x.clone() * 0.01, 2.0),
    ]);
    clause.ensure_gradients();
    let mut scratch = clause.scratch();
    let mut spec_scratch = SpecializeScratch::default();
    let domain = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);

    // The solver's sequential loop body, including the view stack.
    let mut stack: Vec<(IntervalBox, u32)> = vec![(domain.clone(), 0)];
    let mut pool: Vec<IntervalBox> = Vec::new();
    let mut views: Vec<TapeView> = Vec::new();
    let mut view_pool: Vec<TapeView> = Vec::new();
    let run = |stack: &mut Vec<(IntervalBox, u32)>,
               pool: &mut Vec<IntervalBox>,
               views: &mut Vec<TapeView>,
               view_pool: &mut Vec<TapeView>,
               scratch: &mut nncps_deltasat::ClauseScratch,
               spec_scratch: &mut SpecializeScratch,
               boxes: usize| {
        let mut explored = 0;
        while let Some((mut region, depth)) = stack.pop() {
            explored += 1;
            while views.len() > depth as usize {
                view_pool.push(views.pop().unwrap());
            }
            let mut retire = false;
            for _pass in 0..3 {
                let view = (depth > 0).then(|| &views[depth as usize - 1]);
                if !clause.contract_with_view(view, &mut region, 4, scratch) || region.is_empty() {
                    retire = true;
                    break;
                }
                match clause.feasibility_with_view(view, &region, scratch) {
                    ClauseFeasibility::Violated | ClauseFeasibility::Satisfied => {
                        retire = true;
                        break;
                    }
                    ClauseFeasibility::Undecided => {}
                }
                match clause.derivative_cuts(&mut region, scratch) {
                    CutOutcome::Infeasible => {
                        retire = true;
                        break;
                    }
                    CutOutcome::Unchanged => break,
                    CutOutcome::Narrowed => {}
                }
            }
            if retire || region.max_width() <= 1e-7 {
                pool.push(region);
            } else {
                let child_depth = if (depth as usize) < 64 {
                    let parent = (depth > 0).then(|| &views[depth as usize - 1]);
                    let mut derived = view_pool.pop().unwrap_or_default();
                    if clause.respecialize(parent, scratch, spec_scratch, &mut derived) {
                        views.push(derived);
                        views.len() as u32
                    } else {
                        view_pool.push(derived);
                        depth
                    }
                } else {
                    depth
                };
                let mut right = pool.pop().unwrap_or_default();
                region.split_widest_into(&mut right);
                stack.push((right, child_depth));
                stack.push((region, child_depth));
            }
            if explored >= boxes {
                break;
            }
        }
    };

    // Warm-up: grow every buffer — clause scratch, gradient slots, view
    // stack, view pool, specialization scratch — to its high-water mark.
    run(
        &mut stack,
        &mut pool,
        &mut views,
        &mut view_pool,
        &mut scratch,
        &mut spec_scratch,
        400,
    );
    assert!(!stack.is_empty(), "warm-up must leave work pending");

    // Each attempt resets to the initial search state without freeing
    // anything, then re-runs the identical workload.
    assert_steady_state_allocation_free(
        || {
            while let Some((region, _)) = stack.pop() {
                pool.push(region);
            }
            while let Some(view) = views.pop() {
                view_pool.push(view);
            }
            let mut seed = pool.pop().expect("warm-up created boxes");
            seed.clone_from(&domain);
            stack.push((seed, 0));
            let before = allocations();
            run(
                &mut stack,
                &mut pool,
                &mut views,
                &mut view_pool,
                &mut scratch,
                &mut spec_scratch,
                400,
            );
            allocations() - before
        },
        "the specialization + newton steady-state loop",
    );
}
