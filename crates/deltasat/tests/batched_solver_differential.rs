//! Whole-solver differential proof that batched sibling evaluation is
//! bit-invisible: for every query shape the pipeline issues — SAT, UNSAT,
//! tight equalities, clipped controllers, disjunctions, budget exhaustion —
//! the batched search must return the *same verdict, the same witness box
//! (bitwise), and the same search-tree statistics* as the solver with
//! batching disabled, and as the tree-walking reference.
//!
//! This is the solver-level counterpart of the per-evaluation lane oracle in
//! `nncps_expr`: the lane oracle proves each batched sweep is bit-identical
//! per lane; this suite proves the *composition* — prefilled contraction
//! sweeps, register-allocated view programs, trace recycling — never steers
//! the branch-and-prune search.

use nncps_deltasat::{Constraint, DeltaSolver, Formula, SatResult, SolverStats};
use nncps_expr::Expr;
use nncps_interval::IntervalBox;

fn x() -> Expr {
    Expr::var(0)
}

fn y() -> Expr {
    Expr::var(1)
}

fn square_domain(half: f64) -> IntervalBox {
    IntervalBox::from_bounds(&[(-half, half), (-half, half)])
}

/// The query mix the equivalence suites sweep, plus barrier-style shapes:
/// decrease-condition lookalikes with clipped controller terms.
fn differential_queries() -> Vec<(Formula, IntervalBox)> {
    let grad_dot_f = (x() * -2.0) * x() + (y() * -2.0) * y();
    let outside_x0 = Formula::or(vec![
        Formula::atom(Constraint::le(x(), -0.5)),
        Formula::atom(Constraint::ge(x(), 0.5)),
        Formula::atom(Constraint::le(y(), -0.5)),
        Formula::atom(Constraint::ge(y(), 0.5)),
    ]);
    vec![
        // Satisfiable conjunction (witness in the first quadrant).
        (
            Formula::all_of([
                Constraint::le(x().powi(2) + y().powi(2), 1.0),
                Constraint::ge(x(), 0.5),
            ]),
            square_domain(2.0),
        ),
        // Unsatisfiable conjunction (deep refutation tree).
        (
            Formula::all_of([
                Constraint::le(x().powi(2) + y().powi(2), 0.25),
                Constraint::ge(x(), 1.0),
            ]),
            square_domain(2.0),
        ),
        // Tight equality: the search descends to δ depth.
        (
            Formula::atom(Constraint::eq(x().powi(2), 2.0)),
            IntervalBox::from_bounds(&[(0.0, 2.0), (0.0, 1.0)]),
        ),
        // Clipped controller shape: min/max cones drive specialization,
        // which composes with the batched view programs.
        (
            Formula::atom(Constraint::ge(
                (x().tanh() * 2.0 + (y() * 0.5).sigmoid()).min(x() + y()),
                0.75,
            )),
            square_domain(3.0),
        ),
        // Disjunction across partial-domain operators (sqrt/exp).
        (
            Formula::any_of([
                Constraint::le((x() * 3.0).sin() + y().powi(3), -4.0),
                Constraint::ge(x().abs().sqrt() - y().exp(), 1.0),
            ]),
            square_domain(1.5),
        ),
        // The paper's decrease condition on a stable linear system:
        // ∃ x ∈ D \ X0 : ∇W · f ≥ −γ must be UNSAT.
        (
            Formula::and(vec![
                outside_x0,
                Formula::atom(Constraint::ge(grad_dot_f, -1e-6)),
            ]),
            square_domain(3.0),
        ),
    ]
}

fn assert_same_outcome(
    a: &SatResult,
    b: &SatResult,
    sa: &SolverStats,
    sb: &SolverStats,
    context: &str,
) {
    assert_eq!(sa, sb, "{context}: search statistics diverge");
    match (a, b) {
        (SatResult::DeltaSat(wa), SatResult::DeltaSat(wb)) => {
            assert_eq!(wa, wb, "{context}: witness boxes diverge");
        }
        (SatResult::Unsat, SatResult::Unsat) => {}
        (SatResult::Unknown(_), SatResult::Unknown(_)) => {}
        (a, b) => panic!("{context}: verdicts diverge: {a} vs {b}"),
    }
}

#[test]
fn batched_evaluation_is_bit_invisible() {
    for (formula, domain) in differential_queries() {
        let batched = DeltaSolver::new(1e-4);
        assert!(batched.batched_evaluation(), "batching must default on");
        let scalar = DeltaSolver::new(1e-4).with_batched_evaluation(false);
        let (a, sa) = batched.solve_with_stats(&formula, &domain);
        let (b, sb) = scalar.solve_with_stats(&formula, &domain);
        assert_same_outcome(&a, &b, &sa, &sb, &format!("{formula}"));
    }
}

#[test]
fn batched_evaluation_matches_the_tree_reference() {
    // The tree reference pins Newton cuts off (they change the search tree by
    // design); the batched compiled solver must match it exactly with the
    // same pin — the strongest end-to-end statement: batching + register
    // allocation + specialization together are indistinguishable from the
    // recursive tree walkers.
    for (formula, domain) in differential_queries() {
        let batched = DeltaSolver::new(1e-4).with_newton_cuts(false);
        assert!(batched.batched_evaluation());
        let reference = DeltaSolver::new(1e-4).with_tree_evaluator();
        assert!(!reference.batched_evaluation());
        let (a, sa) = batched.solve_with_stats(&formula, &domain);
        let (b, sb) = reference.solve_with_stats(&formula, &domain);
        assert_same_outcome(&a, &b, &sa, &sb, &format!("{formula}"));
    }
}

#[test]
fn batching_composes_with_every_acceleration_toggle() {
    // Batching must be invisible in *every* solver configuration, not just
    // the default: specialization off (depth-0 full-tape batches only),
    // Newton cuts on (prefilled sweeps followed by cut-narrowed re-sweeps),
    // and both off.
    for (formula, domain) in differential_queries() {
        for (spec, newton) in [(true, true), (false, true), (true, false), (false, false)] {
            let on = DeltaSolver::new(1e-4)
                .with_tape_specialization(spec)
                .with_newton_cuts(newton);
            let off = on.clone().with_batched_evaluation(false);
            let (a, sa) = on.solve_with_stats(&formula, &domain);
            let (b, sb) = off.solve_with_stats(&formula, &domain);
            assert_same_outcome(
                &a,
                &b,
                &sa,
                &sb,
                &format!("spec={spec} newton={newton} on {formula}"),
            );
        }
    }
}

#[test]
fn batching_is_invisible_under_budget_exhaustion() {
    // A hard query with a tiny budget: the Unknown must fire after exactly
    // the same number of boxes either way.
    let formula = Formula::atom(Constraint::le(
        (x() * 37.0).sin() * (y() * 53.0).cos(),
        -0.999_999,
    ));
    let domain = square_domain(10.0);
    let on = DeltaSolver::new(1e-9).with_max_boxes(20);
    let off = on.clone().with_batched_evaluation(false);
    let (a, sa) = on.solve_with_stats(&formula, &domain);
    let (b, sb) = off.solve_with_stats(&formula, &domain);
    assert!(matches!(a, SatResult::Unknown(_)));
    assert_same_outcome(&a, &b, &sa, &sb, "budget exhaustion");
}

#[test]
fn batching_is_invisible_at_high_precision() {
    // Deep searches exercise the full specialization stack (and therefore
    // deep per-view register allocations) and long prefill chains.
    let formula = Formula::atom(Constraint::eq(
        x().powi(2) + y().powi(2) + (x() * 5.0).sin() * 0.2,
        1.0,
    ));
    let domain = square_domain(2.0);
    for precision in [1e-3, 1e-6, 1e-9] {
        let on = DeltaSolver::new(precision);
        let off = on.clone().with_batched_evaluation(false);
        let (a, sa) = on.solve_with_stats(&formula, &domain);
        let (b, sb) = off.solve_with_stats(&formula, &domain);
        assert_same_outcome(&a, &b, &sa, &sb, &format!("precision {precision}"));
    }
}
