//! The differential lane oracle: every lane of the batched evaluator must
//! be *bitwise* identical to evaluating that lane's box alone — through
//! the scalar tape interpreter and through the original expression tree —
//! at every lane count, for ragged batches, for lanes carrying NaN-width
//! or ±∞ bounds, and for register-allocated `TapeView` specializations.
//!
//! This is the PR-2 bit-identity discipline applied to the batched SIMD
//! path: batching is an acceleration, so it must be invisible.

use nncps_expr::{
    AllocatedTape, BatchScratch, Choice, ChoiceAnalysis, Expr, RegAlloc, SpecializeScratch, Tape,
    TapeView, DEFAULT_REGISTERS,
};
use nncps_interval::{Interval, IntervalBox};
use proptest::collection::vec;
use proptest::prelude::*;

/// Builds a random expression DAG from a script of small integers (a stack
/// machine; operands are cloned from arbitrary stack depths, so shared
/// subtrees — and hence CSE hits — are common).
fn dag_from_script(script: &[usize], num_vars: usize) -> Expr {
    let mut stack: Vec<Expr> = vec![Expr::var(0)];
    for (i, &code) in script.iter().enumerate() {
        let pick = |d: usize| stack[(i + d) % stack.len()].clone();
        let e = match code % 14 {
            0 => Expr::var(i % num_vars.max(1)),
            1 => Expr::constant((i as f64 - 3.0) * 0.37),
            2 => pick(0).sin(),
            3 => pick(0).tanh(),
            4 => pick(1).abs(),
            5 => pick(0).exp(),
            6 => pick(1).atan(),
            7 => pick(0).powi((i % 4) as i32 + 2),
            8 => pick(0) + pick(1),
            9 => pick(0) - pick(2),
            10 => pick(0) * pick(1),
            11 => pick(0).min(pick(2)),
            12 => pick(1).max(pick(0)),
            _ => pick(0) * 0.5 + pick(1),
        };
        stack.push(e);
    }
    stack
        .into_iter()
        .reduce(|acc, e| acc + e)
        .expect("stack starts non-empty")
}

fn assert_interval_bits(got: Interval, want: Interval, context: &str) {
    assert_eq!(
        got.lo().to_bits(),
        want.lo().to_bits(),
        "{context}: lower bound diverged ({} vs {})",
        got.lo(),
        want.lo()
    );
    assert_eq!(
        got.hi().to_bits(),
        want.hi().to_bits(),
        "{context}: upper bound diverged ({} vs {})",
        got.hi(),
        want.hi()
    );
}

/// The oracle itself: runs `boxes` through the batched evaluator at lane
/// width `L` (ragged when `boxes.len() < L`) and checks every root of
/// every lane bitwise against (a) the scalar tape interpreter and (b) the
/// expression tree, and the recorded traces against the tape's full slot
/// buffer.
fn check_batch_against_oracles<const L: usize>(exprs: &[Expr], tape: &Tape, boxes: &[IntervalBox]) {
    assert!(!boxes.is_empty() && boxes.len() <= L);
    let alloc = AllocatedTape::from_tape(tape, DEFAULT_REGISTERS);
    let lanes: Vec<&IntervalBox> = boxes.iter().collect();
    let mut scratch = BatchScratch::<L>::default();

    // Roots-only batch vs scalar tape vs tree.
    let mut roots = Vec::new();
    alloc.eval_interval_batch(tape, &lanes, &mut scratch, &mut roots);
    let active = boxes.len();
    let mut slots = Vec::new();
    for (k, region) in boxes.iter().enumerate() {
        tape.eval_interval_into(region, &mut slots);
        for (r, expr) in exprs.iter().enumerate() {
            let batched = roots[r * active + k];
            let scalar = slots[tape.root_slot(r)];
            assert_interval_bits(batched, scalar, &format!("L={L} lane {k} root {r} vs tape"));
            let tree = expr.eval_box(region);
            assert_interval_bits(batched, tree, &format!("L={L} lane {k} root {r} vs tree"));
        }
    }

    // Recording batch: every lane's trace must equal the tape's full slot
    // buffer for that lane's box, and every lane's choice trace must equal
    // what the scalar recording sweep observes for that box.
    let mut trace_storage: Vec<Vec<Interval>> = (0..active).map(|_| Vec::new()).collect();
    let mut choice_storage: Vec<Vec<Choice>> = (0..active).map(|_| Vec::new()).collect();
    {
        let mut traces: Vec<&mut Vec<Interval>> = trace_storage.iter_mut().collect();
        let mut lane_choices: Vec<&mut Vec<Choice>> = choice_storage.iter_mut().collect();
        alloc.eval_interval_batch_recording(
            tape,
            &lanes,
            &mut scratch,
            &mut traces,
            &mut lane_choices,
        );
    }
    let mut rec_slots = Vec::new();
    for (k, region) in boxes.iter().enumerate() {
        tape.eval_interval_into(region, &mut slots);
        assert_eq!(trace_storage[k].len(), slots.len());
        for (slot, (&got, &want)) in trace_storage[k].iter().zip(slots.iter()).enumerate() {
            assert_interval_bits(got, want, &format!("L={L} lane {k} trace slot {slot}"));
        }
        let mut want_choices = vec![Choice::Both; tape.num_choices()];
        rec_slots.clear();
        tape.eval_interval_extend_into_recording(
            region,
            &mut rec_slots,
            tape.num_slots(),
            &mut want_choices,
        );
        assert_eq!(
            choice_storage[k], want_choices,
            "L={L} lane {k}: batched choice trace diverged from the scalar sweep"
        );
    }
}

/// Specialization oracle: derive a `TapeView` for the hull of the batch,
/// register-allocate the *view*, and compare every lane bitwise against
/// the view's own scalar interpreter.
fn check_specialized_batch<const L: usize>(tape: &Tape, hull: &IntervalBox, boxes: &[IntervalBox]) {
    let full = TapeView::full(tape);
    let analysis = ChoiceAnalysis::analyze(tape);
    let mut slots = Vec::new();
    let mut choices = vec![Choice::Both; tape.num_choices()];
    full.eval_interval_extend_into_recording(tape, hull, &mut slots, full.len(), &mut choices);
    let keep_root = vec![true; tape.num_roots()];
    let mut scratch = SpecializeScratch::default();
    let mut view = TapeView::default();
    if !full.respecialize_into(
        tape,
        &analysis,
        &slots,
        &choices,
        &keep_root,
        &mut scratch,
        &mut view,
    ) {
        // Nothing simplified over this hull; the full view *is* the view.
        view = full;
    }
    let mut alloc = AllocatedTape::default();
    RegAlloc::new().allocate_view_into(&view, DEFAULT_REGISTERS, &mut alloc);
    assert_eq!(alloc.source_len(), view.len());

    let lanes: Vec<&IntervalBox> = boxes.iter().collect();
    let mut batch_scratch = BatchScratch::<L>::default();
    let mut trace_storage: Vec<Vec<Interval>> = (0..boxes.len()).map(|_| Vec::new()).collect();
    let mut choice_storage: Vec<Vec<Choice>> = (0..boxes.len()).map(|_| Vec::new()).collect();
    {
        let mut traces: Vec<&mut Vec<Interval>> = trace_storage.iter_mut().collect();
        let mut lane_choices: Vec<&mut Vec<Choice>> = choice_storage.iter_mut().collect();
        alloc.eval_interval_batch_recording(
            tape,
            &lanes,
            &mut batch_scratch,
            &mut traces,
            &mut lane_choices,
        );
    }
    let mut view_slots = Vec::new();
    for (k, region) in boxes.iter().enumerate() {
        let mut want_choices = vec![Choice::Both; tape.num_choices()];
        view_slots.clear();
        view.eval_interval_extend_into_recording(
            tape,
            region,
            &mut view_slots,
            view.len(),
            &mut want_choices,
        );
        for (slot, (&got, &want)) in trace_storage[k].iter().zip(view_slots.iter()).enumerate() {
            assert_interval_bits(
                got,
                want,
                &format!("L={L} specialized lane {k} view slot {slot}"),
            );
        }
        assert_eq!(
            choice_storage[k], want_choices,
            "L={L} specialized lane {k}: batched choice trace diverged"
        );
    }
}

/// Sub-boxes of a base region, bisection-style (the shapes the δ-SAT
/// search actually batches): lane `k` takes a contiguous fraction of every
/// dimension, offset by `k`.
fn sibling_boxes(base: &IntervalBox, count: usize) -> Vec<IntervalBox> {
    (0..count)
        .map(|k| {
            let bounds: Vec<(f64, f64)> = base
                .intervals()
                .iter()
                .enumerate()
                .map(|(d, iv)| {
                    let width = iv.width();
                    let step = width / count as f64;
                    let lo = iv.lo() + step * (((k + d) % count) as f64);
                    (lo, lo + step)
                })
                .collect();
            IntervalBox::from_bounds(&bounds)
        })
        .collect()
}

#[test]
fn fixed_controller_expression_matches_oracles_at_all_lane_counts() {
    // The shape of the paper's Lie-derivative queries: a tanh controller
    // composed with polynomial dynamics, plus a clamp.
    let x = Expr::var(0);
    let y = Expr::var(1);
    let u = ((x.clone() * 0.8 + y.clone() * -1.3).tanh() * 2.0 + x.clone() * 0.1).tanh();
    let lie = u.clone() * y.clone() + x.clone().powi(2) * y.clone().sin()
        - (x.clone() + y.clone() * 0.25).exp() * 1e-3;
    let clamped = lie
        .clone()
        .min(Expr::constant(5.0))
        .max(lie.clone() * 0.5 - 1.0);
    let exprs = [lie, clamped];
    let tape = Tape::compile_many(&exprs);
    let base = IntervalBox::from_bounds(&[(-2.0, 2.0), (-1.5, 1.5)]);

    for count in 1..=8 {
        let boxes = sibling_boxes(&base, count);
        if count <= 1 {
            check_batch_against_oracles::<1>(&exprs, &tape, &boxes);
        }
        if count <= 4 {
            check_batch_against_oracles::<4>(&exprs, &tape, &boxes);
        }
        check_batch_against_oracles::<8>(&exprs, &tape, &boxes);
    }
}

#[test]
fn nan_and_infinite_lanes_stay_confined_to_their_lane() {
    let x = Expr::var(0);
    let y = Expr::var(1);
    // sqrt/ln have partial domains: boxes outside produce EMPTY results;
    // exp overflows to the MAX-clamped bound. Each pathology must stay in
    // its own lane.
    let f = x.clone().sqrt() + y.clone().ln() * x.clone().exp().min(y.clone());
    let exprs = [f];
    let tape = Tape::compile_many(&exprs);
    let boxes = vec![
        // Healthy lane.
        IntervalBox::from_bounds(&[(0.5, 1.0), (0.5, 2.0)]),
        // Fully outside sqrt's domain: EMPTY propagates.
        IntervalBox::from_bounds(&[(-3.0, -2.0), (1.0, 2.0)]),
        // Unbounded lane: ±∞ endpoints and exp overflow.
        IntervalBox::from_bounds(&[(0.0, f64::INFINITY), (f64::NEG_INFINITY, 1.0)]),
        // Another healthy lane *after* the pathological ones: it must see
        // no contamination from its neighbours.
        IntervalBox::from_bounds(&[(1.0, 4.0), (2.0, 3.0)]),
    ];
    check_batch_against_oracles::<4>(&exprs, &tape, &boxes);
    check_batch_against_oracles::<8>(&exprs, &tape, &boxes);
    // Ragged: only the pathological lanes.
    check_batch_against_oracles::<4>(&exprs, &tape, &boxes[1..3]);
}

proptest! {
    #[test]
    fn prop_random_dags_and_batches_match_the_oracles(
        script in vec(0usize..14, 4..60),
        lo_a in -3.0f64..2.5, lo_b in -3.0f64..2.5, lo_c in -3.0f64..2.5,
        width in 0.1f64..2.0,
        count in 1usize..9,
    ) {
        let expr = dag_from_script(&script, 3);
        let exprs = [expr];
        let tape = Tape::compile_many(&exprs);
        let base = IntervalBox::from_bounds(&[
            (lo_a, lo_a + width),
            (lo_b, lo_b + 0.5 * width),
            (lo_c, lo_c + 1.5 * width),
        ]);
        let boxes = sibling_boxes(&base, count);
        if count <= 1 {
            check_batch_against_oracles::<1>(&exprs, &tape, &boxes);
        }
        if count <= 4 {
            check_batch_against_oracles::<4>(&exprs, &tape, &boxes);
        }
        check_batch_against_oracles::<8>(&exprs, &tape, &boxes);
    }

    #[test]
    fn prop_specialized_views_batch_bit_identically(
        script in vec(0usize..14, 4..60),
        lo_a in -2.0f64..1.5, lo_b in -2.0f64..1.5,
        count in 1usize..9,
    ) {
        let expr = dag_from_script(&script, 2);
        let tape = Tape::compile_many(&[expr]);
        let hull = IntervalBox::from_bounds(&[(lo_a, lo_a + 1.0), (lo_b, lo_b + 0.8)]);
        let boxes = sibling_boxes(&hull, count);
        if count <= 4 {
            check_specialized_batch::<4>(&tape, &hull, &boxes);
        }
        check_specialized_batch::<8>(&tape, &hull, &boxes);
    }
}
