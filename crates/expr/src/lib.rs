//! Symbolic scalar expressions over real variables.
//!
//! The barrier-certificate pipeline needs a *single* mathematical description
//! of the closed-loop dynamics that can be
//!
//! 1. evaluated numerically (to simulate and to sample counterexamples),
//! 2. evaluated over interval boxes (so the δ-SAT solver can prune), and
//! 3. differentiated symbolically (to form `∇W` and `(∇W)ᵀ·f(x)`).
//!
//! [`Expr`] is an immutable, reference-counted expression tree supporting the
//! operations used by the case study: arithmetic, integer powers, `sin`,
//! `cos`, `tan`, `exp`, `ln`, `sqrt`, `abs`, `tanh`, `sigmoid`, `atan`,
//! `min`/`max`.  Variables are identified by index into a [`VarSet`], which
//! maps human-readable names (such as `d_err`, `theta_err`) to indices.
//!
//! Hot paths (the δ-SAT solver's per-box loop in particular) should not walk
//! the tree repeatedly: [`Tape`] lowers one or more expressions into a flat,
//! CSE-deduplicated instruction program whose scalar and interval evaluation
//! is bit-identical to the tree's but allocation-free and cache-friendly.
//!
//! # Examples
//!
//! ```
//! use nncps_expr::{Expr, VarSet};
//!
//! let mut vars = VarSet::new();
//! let x = vars.var("x");
//! let y = vars.var("y");
//!
//! // f(x, y) = x^2 + sin(y)
//! let f = x.clone().powi(2) + y.clone().sin();
//! assert!((f.eval(&[2.0, 0.0]) - 4.0).abs() < 1e-12);
//!
//! // ∂f/∂x = 2x
//! let dfdx = f.differentiate(0).simplified();
//! assert!((dfdx.eval(&[3.0, 1.0]) - 6.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod diff;
mod eval;
mod expr;
pub mod fingerprint;
mod ops;
mod regalloc;
mod simplify;
pub mod specialize;
mod tape;
mod vars;

pub use batch::{BatchScratch, LaneBuf};
pub use expr::{Expr, ExprView};
pub use fingerprint::{Fingerprint, StructuralHasher};
pub use ops::{BinaryOp, UnaryOp};
pub use regalloc::{AllocatedTape, RegAlloc, RegInstr, RegScratch, RootLoc, DEFAULT_REGISTERS};
pub use specialize::{ChoiceAnalysis, SpecializeScratch, TapeView};
pub use tape::{Choice, Tape, TapeInstr};
pub use vars::VarSet;
