//! The [`Expr`] expression tree: construction, structure, and operators.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::Arc;

use crate::{BinaryOp, UnaryOp};

/// An immutable symbolic expression over indexed real variables.
///
/// Expressions are cheap to clone (`Arc`-backed) and share common
/// subexpressions, which matters when the whole neural-network controller is
/// exported symbolically: each hidden neuron's pre-activation is built once
/// and reused in both the dynamics and its gradient. The atomically
/// reference-counted nodes make expressions `Send + Sync`, so dynamics and
/// constraints built from them can be evaluated from worker threads (the
/// `parallel` features of the simulator and δ-SAT solver rely on this).
///
/// # Examples
///
/// ```
/// use nncps_expr::Expr;
///
/// let x = Expr::var(0);
/// let f = (x.clone() * 2.0 + 1.0).tanh();
/// assert!((f.eval(&[0.0]) - 1.0_f64.tanh()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Expr {
    node: Arc<Node>,
}

/// The internal node representation.
#[derive(Debug)]
pub(crate) enum Node {
    /// A floating-point constant.
    Const(f64),
    /// A variable identified by its index.
    Var(usize),
    /// A unary operation.
    Unary(UnaryOp, Expr),
    /// A binary operation.
    Binary(BinaryOp, Expr, Expr),
    /// An integer power `base^exponent`.
    Powi(Expr, i32),
}

/// A borrowed, pattern-matchable view of the top node of an [`Expr`].
///
/// External crates (such as the δ-SAT solver's HC4 contractor) use this view
/// to walk expression trees without the crate exposing its internal node
/// representation.
///
/// # Examples
///
/// ```
/// use nncps_expr::{Expr, ExprView};
///
/// let e = Expr::var(0) + 1.0;
/// match e.view() {
///     ExprView::Binary(_, lhs, _) => assert_eq!(lhs.as_var(), Some(0)),
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub enum ExprView<'a> {
    /// A floating-point constant.
    Const(f64),
    /// A variable identified by its index.
    Var(usize),
    /// A unary operation applied to a sub-expression.
    Unary(UnaryOp, &'a Expr),
    /// A binary operation applied to two sub-expressions.
    Binary(BinaryOp, &'a Expr, &'a Expr),
    /// An integer power of a sub-expression.
    Powi(&'a Expr, i32),
}

impl Expr {
    pub(crate) fn from_node(node: Node) -> Self {
        Expr {
            node: Arc::new(node),
        }
    }

    pub(crate) fn node(&self) -> &Node {
        &self.node
    }

    /// The shared node handle, for pointer-identity bookkeeping (tape CSE,
    /// structural fingerprints).
    pub(crate) fn arc_node(&self) -> &Arc<Node> {
        &self.node
    }

    /// Returns a pattern-matchable view of the top node of the expression.
    pub fn view(&self) -> ExprView<'_> {
        match self.node() {
            Node::Const(c) => ExprView::Const(*c),
            Node::Var(i) => ExprView::Var(*i),
            Node::Unary(op, a) => ExprView::Unary(*op, a),
            Node::Binary(op, a, b) => ExprView::Binary(*op, a, b),
            Node::Powi(a, n) => ExprView::Powi(a, *n),
        }
    }

    /// Creates a constant expression.
    pub fn constant(value: f64) -> Self {
        Expr::from_node(Node::Const(value))
    }

    /// The constant `0`.
    pub fn zero() -> Self {
        Expr::constant(0.0)
    }

    /// The constant `1`.
    pub fn one() -> Self {
        Expr::constant(1.0)
    }

    /// Creates a variable expression referring to variable `index`.
    pub fn var(index: usize) -> Self {
        Expr::from_node(Node::Var(index))
    }

    /// If the expression is a constant, returns its value.
    pub fn as_constant(&self) -> Option<f64> {
        match self.node() {
            Node::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// If the expression is a bare variable, returns its index.
    pub fn as_var(&self) -> Option<usize> {
        match self.node() {
            Node::Var(i) => Some(*i),
            _ => None,
        }
    }

    /// Applies a unary operator.
    pub fn unary(op: UnaryOp, operand: Expr) -> Self {
        Expr::from_node(Node::Unary(op, operand))
    }

    /// Applies a binary operator.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::from_node(Node::Binary(op, lhs, rhs))
    }

    /// Integer power `self^exponent`.
    pub fn powi(self, exponent: i32) -> Self {
        Expr::from_node(Node::Powi(self, exponent))
    }

    /// Sine of the expression.
    pub fn sin(self) -> Self {
        Expr::unary(UnaryOp::Sin, self)
    }

    /// Cosine of the expression.
    pub fn cos(self) -> Self {
        Expr::unary(UnaryOp::Cos, self)
    }

    /// Tangent of the expression.
    pub fn tan(self) -> Self {
        Expr::unary(UnaryOp::Tan, self)
    }

    /// Natural exponential of the expression.
    pub fn exp(self) -> Self {
        Expr::unary(UnaryOp::Exp, self)
    }

    /// Natural logarithm of the expression.
    pub fn ln(self) -> Self {
        Expr::unary(UnaryOp::Ln, self)
    }

    /// Square root of the expression.
    pub fn sqrt(self) -> Self {
        Expr::unary(UnaryOp::Sqrt, self)
    }

    /// Absolute value of the expression.
    pub fn abs(self) -> Self {
        Expr::unary(UnaryOp::Abs, self)
    }

    /// Hyperbolic tangent of the expression (the paper's `tansig` activation).
    pub fn tanh(self) -> Self {
        Expr::unary(UnaryOp::Tanh, self)
    }

    /// Logistic sigmoid of the expression.
    pub fn sigmoid(self) -> Self {
        Expr::unary(UnaryOp::Sigmoid, self)
    }

    /// Arctangent of the expression.
    pub fn atan(self) -> Self {
        Expr::unary(UnaryOp::Atan, self)
    }

    /// Pointwise minimum of two expressions.
    pub fn min(self, other: Expr) -> Self {
        Expr::binary(BinaryOp::Min, self, other)
    }

    /// Pointwise maximum of two expressions.
    pub fn max(self, other: Expr) -> Self {
        Expr::binary(BinaryOp::Max, self, other)
    }

    /// Returns the set of variable indices that occur in the expression.
    pub fn variables(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<usize>) {
        match self.node() {
            Node::Const(_) => {}
            Node::Var(i) => {
                out.insert(*i);
            }
            Node::Unary(_, a) => a.collect_variables(out),
            Node::Binary(_, a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Node::Powi(a, _) => a.collect_variables(out),
        }
    }

    /// Returns `1 + max variable index` (the minimum input length accepted by
    /// [`Expr::eval`]), or `0` if the expression contains no variables.
    pub fn num_vars(&self) -> usize {
        self.variables().last().map_or(0, |&i| i + 1)
    }

    /// Number of nodes in the expression tree (a rough size/complexity measure).
    ///
    /// Shared subtrees are counted each time they appear, matching the cost of
    /// a naive (uncached) evaluation.
    pub fn node_count(&self) -> usize {
        match self.node() {
            Node::Const(_) | Node::Var(_) => 1,
            Node::Unary(_, a) => 1 + a.node_count(),
            Node::Binary(_, a, b) => 1 + a.node_count() + b.node_count(),
            Node::Powi(a, _) => 1 + a.node_count(),
        }
    }

    /// Substitutes expressions for variables: each variable `i` is replaced by
    /// `substitutions[i]` when present.
    ///
    /// Variables without a substitution are left untouched.
    pub fn substitute(&self, substitutions: &[Option<Expr>]) -> Expr {
        match self.node() {
            Node::Const(c) => Expr::constant(*c),
            Node::Var(i) => match substitutions.get(*i) {
                Some(Some(e)) => e.clone(),
                _ => Expr::var(*i),
            },
            Node::Unary(op, a) => Expr::unary(*op, a.substitute(substitutions)),
            Node::Binary(op, a, b) => Expr::binary(
                *op,
                a.substitute(substitutions),
                b.substitute(substitutions),
            ),
            Node::Powi(a, n) => a.substitute(substitutions).powi(*n),
        }
    }
}

impl Default for Expr {
    fn default() -> Self {
        Expr::zero()
    }
}

impl From<f64> for Expr {
    fn from(value: f64) -> Self {
        Expr::constant(value)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            Node::Const(c) => write!(f, "{c}"),
            Node::Var(i) => write!(f, "x{i}"),
            Node::Unary(UnaryOp::Neg, a) => write!(f, "(-{a})"),
            Node::Unary(op, a) => write!(f, "{}({a})", op.name()),
            Node::Binary(op @ (BinaryOp::Min | BinaryOp::Max), a, b) => {
                write!(f, "{}({a}, {b})", op.symbol())
            }
            Node::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Node::Powi(a, n) => write!(f, "({a})^{n}"),
        }
    }
}

// --- operator overloads ---------------------------------------------------

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Add, self, rhs)
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Sub, self, rhs)
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Mul, self, rhs)
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Div, self, rhs)
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::unary(UnaryOp::Neg, self)
    }
}

impl Add<f64> for Expr {
    type Output = Expr;
    fn add(self, rhs: f64) -> Expr {
        self + Expr::constant(rhs)
    }
}

impl Sub<f64> for Expr {
    type Output = Expr;
    fn sub(self, rhs: f64) -> Expr {
        self - Expr::constant(rhs)
    }
}

impl Mul<f64> for Expr {
    type Output = Expr;
    fn mul(self, rhs: f64) -> Expr {
        self * Expr::constant(rhs)
    }
}

impl Div<f64> for Expr {
    type Output = Expr;
    fn div(self, rhs: f64) -> Expr {
        self / Expr::constant(rhs)
    }
}

impl Add<Expr> for f64 {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::constant(self) + rhs
    }
}

impl Sub<Expr> for f64 {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::constant(self) - rhs
    }
}

impl Mul<Expr> for f64 {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::constant(self) * rhs
    }
}

impl Div<Expr> for f64 {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::constant(self) / rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_inspection() {
        assert_eq!(Expr::constant(3.0).as_constant(), Some(3.0));
        assert_eq!(Expr::var(4).as_var(), Some(4));
        assert_eq!(Expr::var(4).as_constant(), None);
        assert_eq!(Expr::zero().as_constant(), Some(0.0));
        assert_eq!(Expr::one().as_constant(), Some(1.0));
        assert_eq!(Expr::default().as_constant(), Some(0.0));
        assert_eq!(Expr::from(2.5).as_constant(), Some(2.5));
    }

    #[test]
    fn variables_and_num_vars() {
        let e = Expr::var(0) * Expr::var(3) + Expr::var(1).sin();
        let vars: Vec<usize> = e.variables().into_iter().collect();
        assert_eq!(vars, vec![0, 1, 3]);
        assert_eq!(e.num_vars(), 4);
        assert_eq!(Expr::constant(1.0).num_vars(), 0);
    }

    #[test]
    fn node_count_grows_with_structure() {
        let x = Expr::var(0);
        assert_eq!(x.node_count(), 1);
        let e = x.clone() + x.clone();
        assert_eq!(e.node_count(), 3);
        assert_eq!(e.sin().node_count(), 4);
        assert_eq!(Expr::var(0).powi(3).node_count(), 2);
    }

    #[test]
    fn substitution_replaces_variables() {
        // f(x0, x1) = x0 * x1; substitute x0 := x1 + 1.
        let f = Expr::var(0) * Expr::var(1);
        let g = f.substitute(&[Some(Expr::var(1) + 1.0), None]);
        assert!((g.eval(&[0.0, 3.0]) - 12.0).abs() < 1e-12);
        // Missing substitution leaves variable intact.
        let h = f.substitute(&[]);
        assert!((h.eval(&[2.0, 5.0]) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        let e = (Expr::var(0) + 1.0).tanh();
        assert_eq!(format!("{e}"), "tanh((x0 + 1))");
        let m = Expr::var(0).min(Expr::constant(2.0));
        assert_eq!(format!("{m}"), "min(x0, 2)");
        let p = Expr::var(1).powi(2);
        assert_eq!(format!("{p}"), "(x1)^2");
        let n = -Expr::var(0);
        assert_eq!(format!("{n}"), "(-x0)");
    }

    #[test]
    fn scalar_operator_overloads() {
        let x = Expr::var(0);
        assert!(((x.clone() + 1.0).eval(&[2.0]) - 3.0).abs() < 1e-12);
        assert!(((1.0 + x.clone()).eval(&[2.0]) - 3.0).abs() < 1e-12);
        assert!(((x.clone() - 1.0).eval(&[2.0]) - 1.0).abs() < 1e-12);
        assert!(((1.0 - x.clone()).eval(&[2.0]) + 1.0).abs() < 1e-12);
        assert!(((x.clone() * 3.0).eval(&[2.0]) - 6.0).abs() < 1e-12);
        assert!(((3.0 * x.clone()).eval(&[2.0]) - 6.0).abs() < 1e-12);
        assert!(((x.clone() / 2.0).eval(&[2.0]) - 1.0).abs() < 1e-12);
        assert!(((2.0 / x.clone()).eval(&[2.0]) - 1.0).abs() < 1e-12);
        assert!(((-x).eval(&[2.0]) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn transcendental_builders_match_std() {
        let x = Expr::var(0);
        let v = 0.37;
        assert!((x.clone().sin().eval(&[v]) - v.sin()).abs() < 1e-15);
        assert!((x.clone().cos().eval(&[v]) - v.cos()).abs() < 1e-15);
        assert!((x.clone().tan().eval(&[v]) - v.tan()).abs() < 1e-15);
        assert!((x.clone().exp().eval(&[v]) - v.exp()).abs() < 1e-15);
        assert!((x.clone().ln().eval(&[v]) - v.ln()).abs() < 1e-15);
        assert!((x.clone().sqrt().eval(&[v]) - v.sqrt()).abs() < 1e-15);
        assert!((x.clone().abs().eval(&[-v]) - v).abs() < 1e-15);
        assert!((x.clone().tanh().eval(&[v]) - v.tanh()).abs() < 1e-15);
        assert!((x.clone().atan().eval(&[v]) - v.atan()).abs() < 1e-15);
        assert!((x.clone().sigmoid().eval(&[0.0]) - 0.5).abs() < 1e-15);
        assert!((x.clone().min(Expr::constant(0.2)).eval(&[v]) - 0.2).abs() < 1e-15);
        assert!((x.max(Expr::constant(0.2)).eval(&[v]) - v).abs() < 1e-15);
    }
}
