//! Batched struct-of-lanes interval evaluation over allocated tapes.
//!
//! The δ-SAT search and the family-sweep engine both produce *many sibling
//! boxes* that must run through the *same* compiled program.  Evaluating
//! them one at a time pays the interpreter's instruction-dispatch cost once
//! per instruction **per box**; the batched evaluator amortises it across a
//! compile-time lane count `L`: every register of an
//! [`AllocatedTape`](crate::AllocatedTape) holds `[lo; L]`/`[hi; L]`
//! fixed-width bound arrays ([`LaneBuf`]), each instruction is decoded once
//! and applied to all lanes in a tight loop, and the whole register file
//! (`DEFAULT_REGISTERS × L` intervals) stays resident in L1.
//!
//! Lanes are fully independent — no interval kernel mixes values across
//! lanes — so the batch is *bit-identical per lane* to scalar evaluation:
//! each lane performs exactly the operations of
//! [`Tape::eval_interval_into`](crate::Tape::eval_interval_into) in the
//! same order.  That independence is also what makes ragged batches safe:
//! a batch of `active < L` boxes simply runs its lane loops to `active`,
//! and the unused trailing lanes are never computed or read, so NaN or
//! ±∞ bounds in one lane can never contaminate another.
//!
//! # Examples
//!
//! ```
//! use nncps_expr::{AllocatedTape, BatchScratch, Expr, Tape};
//! use nncps_interval::IntervalBox;
//!
//! let x = Expr::var(0);
//! let tape = Tape::compile(&(x.clone() * 2.0).tanh());
//! let alloc = AllocatedTape::from_tape(&tape, nncps_expr::DEFAULT_REGISTERS);
//!
//! let boxes: Vec<IntervalBox> = (0..3)
//!     .map(|i| IntervalBox::from_bounds(&[(i as f64, i as f64 + 1.0)]))
//!     .collect();
//! let lanes: Vec<&IntervalBox> = boxes.iter().collect();
//!
//! // Four-lane batch over three boxes (one ragged lane).
//! let mut scratch = BatchScratch::<4>::default();
//! let mut roots = Vec::new();
//! alloc.eval_interval_batch(&tape, &lanes, &mut scratch, &mut roots);
//! let mut slots = Vec::new();
//! for (k, region) in boxes.iter().enumerate() {
//!     tape.eval_interval_into(region, &mut slots);
//!     let scalar = slots[tape.root_slot(0)];
//!     assert_eq!(roots[k].lo().to_bits(), scalar.lo().to_bits());
//!     assert_eq!(roots[k].hi().to_bits(), scalar.hi().to_bits());
//! }
//! ```

use nncps_interval::{Interval, IntervalBox};

use crate::ops::{BinaryOp, UnaryOp};
use crate::regalloc::{AllocatedTape, RegInstr, RootLoc};
use crate::tape::{Choice, NO_CHOICE};
use crate::Tape;

/// Branchless twin of the interval crate's *lower*-endpoint outward
/// rounding: one ulp down for finite values, `f64::MAX` for `+∞` (an
/// overflowed lower endpoint), and NaN/`−∞` passed through.  Written as
/// pure selects over the bit pattern so the lane loops that call it
/// autovectorize; it MUST return the same bits as `Interval` arithmetic's
/// rounding for every input — the lane-oracle differential tests pin this.
#[inline]
fn down_lane(x: f64) -> f64 {
    let bits = x.to_bits();
    let abs = bits & 0x7fff_ffff_ffff_ffff;
    // `next_down` for finite inputs: ±0 steps to −tiny, positive values
    // step one bit down, negative values one bit up (greater magnitude).
    let stepped = if bits >> 63 == 0 {
        bits.wrapping_sub(1)
    } else {
        bits.wrapping_add(1)
    };
    let next_bits = if abs == 0 {
        0x8000_0000_0000_0001
    } else {
        stepped
    };
    let rounded = if x.is_finite() {
        f64::from_bits(next_bits)
    } else {
        x
    };
    if x == f64::INFINITY {
        f64::MAX
    } else {
        rounded
    }
}

/// Branchless twin of the *upper*-endpoint outward rounding (mirror image
/// of [`down_lane`]): one ulp up for finite values, `f64::MIN` for `−∞`.
#[inline]
fn up_lane(x: f64) -> f64 {
    let bits = x.to_bits();
    let abs = bits & 0x7fff_ffff_ffff_ffff;
    let stepped = if bits >> 63 == 0 {
        bits.wrapping_add(1)
    } else {
        bits.wrapping_sub(1)
    };
    let next_bits = if abs == 0 { 0x1 } else { stepped };
    let rounded = if x.is_finite() {
        f64::from_bits(next_bits)
    } else {
        x
    };
    if x == f64::NEG_INFINITY {
        f64::MIN
    } else {
        rounded
    }
}

/// One multi-lane register: the bounds of `L` intervals in structure-of-
/// lanes layout (`lo[k]`/`hi[k]` are lane `k`'s interval).
///
/// The empty interval round-trips through this representation unchanged
/// (`[+∞, −∞]` bounds), and interval kernels never produce NaN bounds, so
/// storing raw bounds and rebuilding with [`Interval::new`] is the exact
/// identity on every value the evaluator can hold.
#[derive(Debug, Clone, Copy)]
pub struct LaneBuf<const L: usize> {
    lo: [f64; L],
    hi: [f64; L],
}

impl<const L: usize> Default for LaneBuf<L> {
    fn default() -> Self {
        LaneBuf {
            lo: [0.0; L],
            hi: [0.0; L],
        }
    }
}

impl<const L: usize> LaneBuf<L> {
    /// Lane `k`'s interval.
    #[inline]
    pub fn get(&self, k: usize) -> Interval {
        Interval::new(self.lo[k], self.hi[k])
    }

    /// Sets lane `k`'s interval.
    #[inline]
    pub fn set(&mut self, k: usize, value: Interval) {
        self.lo[k] = value.lo();
        self.hi[k] = value.hi();
    }
}

/// True iff the stored bounds encode the empty interval (or a NaN bound,
/// which no stored interval has — it is rejected by [`Interval::new`]).
/// The negated comparison is deliberate: NaN must count as empty, exactly
/// as [`Interval::new`] rejects it.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline]
fn lane_empty(lo: f64, hi: f64) -> bool {
    !(lo <= hi)
}

/// Vectorizable interval addition over the first `n` lanes — bit-identical
/// to `Interval + Interval`: outward-rounded bounds, with the lane forced
/// to `EMPTY` exactly when the scalar kernel would return it (an empty
/// operand, or a NaN endpoint sum such as `+∞ + (−∞)`).
#[inline]
fn add_lanes<const L: usize>(a: &LaneBuf<L>, b: &LaneBuf<L>, out: &mut LaneBuf<L>, n: usize) {
    for k in 0..n {
        let rl = down_lane(a.lo[k] + b.lo[k]);
        let rh = up_lane(a.hi[k] + b.hi[k]);
        let empty =
            lane_empty(a.lo[k], a.hi[k]) || lane_empty(b.lo[k], b.hi[k]) || lane_empty(rl, rh);
        out.lo[k] = if empty { f64::INFINITY } else { rl };
        out.hi[k] = if empty { f64::NEG_INFINITY } else { rh };
    }
}

/// Vectorizable interval subtraction — bit-identical to `a + (−b)`, the
/// scalar kernel's own definition.
#[inline]
fn sub_lanes<const L: usize>(a: &LaneBuf<L>, b: &LaneBuf<L>, out: &mut LaneBuf<L>, n: usize) {
    for k in 0..n {
        let rl = down_lane(a.lo[k] + (-b.hi[k]));
        let rh = up_lane(a.hi[k] + (-b.lo[k]));
        let empty =
            lane_empty(a.lo[k], a.hi[k]) || lane_empty(b.lo[k], b.hi[k]) || lane_empty(rl, rh);
        out.lo[k] = if empty { f64::INFINITY } else { rl };
        out.hi[k] = if empty { f64::NEG_INFINITY } else { rh };
    }
}

/// Vectorizable interval multiplication — the scalar kernel's four-product
/// envelope with its NaN-to-zero convention (`0 · ∞` contributes `0`),
/// folded through `f64::min`/`f64::max` in the same candidate order.  For
/// non-empty operands the rounded envelope can never be empty (`lo ≤ hi`
/// by construction), so only operand emptiness forces `EMPTY`.
#[inline]
fn mul_lanes<const L: usize>(a: &LaneBuf<L>, b: &LaneBuf<L>, out: &mut LaneBuf<L>, n: usize) {
    for k in 0..n {
        let (al, ah) = (a.lo[k], a.hi[k]);
        let (bl, bh) = (b.lo[k], b.hi[k]);
        let c1 = al * bl;
        let c1 = if c1.is_nan() { 0.0 } else { c1 };
        let c2 = al * bh;
        let c2 = if c2.is_nan() { 0.0 } else { c2 };
        let c3 = ah * bl;
        let c3 = if c3.is_nan() { 0.0 } else { c3 };
        let c4 = ah * bh;
        let c4 = if c4.is_nan() { 0.0 } else { c4 };
        let lo = f64::INFINITY.min(c1).min(c2).min(c3).min(c4);
        let hi = f64::NEG_INFINITY.max(c1).max(c2).max(c3).max(c4);
        let empty = lane_empty(al, ah) || lane_empty(bl, bh);
        out.lo[k] = if empty { f64::INFINITY } else { down_lane(lo) };
        out.hi[k] = if empty {
            f64::NEG_INFINITY
        } else {
            up_lane(hi)
        };
    }
}

/// Vectorizable elementwise minimum — bit-identical to `Interval::min`:
/// `min` of the bounds (which preserves `lo ≤ hi` and never produces NaN
/// for non-empty operands), `EMPTY` if either operand is.
#[inline]
fn min_lanes<const L: usize>(a: &LaneBuf<L>, b: &LaneBuf<L>, out: &mut LaneBuf<L>, n: usize) {
    for k in 0..n {
        let empty = lane_empty(a.lo[k], a.hi[k]) || lane_empty(b.lo[k], b.hi[k]);
        out.lo[k] = if empty {
            f64::INFINITY
        } else {
            a.lo[k].min(b.lo[k])
        };
        out.hi[k] = if empty {
            f64::NEG_INFINITY
        } else {
            a.hi[k].min(b.hi[k])
        };
    }
}

/// Vectorizable elementwise maximum (mirror of [`min_lanes`]).
#[inline]
fn max_lanes<const L: usize>(a: &LaneBuf<L>, b: &LaneBuf<L>, out: &mut LaneBuf<L>, n: usize) {
    for k in 0..n {
        let empty = lane_empty(a.lo[k], a.hi[k]) || lane_empty(b.lo[k], b.hi[k]);
        out.lo[k] = if empty {
            f64::INFINITY
        } else {
            a.lo[k].max(b.lo[k])
        };
        out.hi[k] = if empty {
            f64::NEG_INFINITY
        } else {
            a.hi[k].max(b.hi[k])
        };
    }
}

/// Vectorizable interval negation — bit-identical to `−Interval` with no
/// select at all: swapping and negating the bounds maps the empty
/// encoding `[+∞, −∞]` to itself.
#[inline]
fn neg_lanes<const L: usize>(a: &LaneBuf<L>, out: &mut LaneBuf<L>, n: usize) {
    for k in 0..n {
        out.lo[k] = -a.hi[k];
        out.hi[k] = -a.lo[k];
    }
}

/// Reusable scratch of the batched evaluators: the multi-lane register
/// file and spill arena.  Buffers grow to the largest program evaluated
/// and are reused afterwards — zero heap allocations once warm.
#[derive(Debug, Clone)]
pub struct BatchScratch<const L: usize> {
    regs: Vec<LaneBuf<L>>,
    spill: Vec<LaneBuf<L>>,
}

impl<const L: usize> Default for BatchScratch<L> {
    fn default() -> Self {
        BatchScratch {
            regs: Vec::new(),
            spill: Vec::new(),
        }
    }
}

impl<const L: usize> BatchScratch<L> {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        BatchScratch::default()
    }
}

impl AllocatedTape {
    /// Evaluates up to `L` boxes through the allocated program in one
    /// sweep, collecting the root enclosures.
    ///
    /// `regions` holds the `active ≤ L` lanes; `roots` is resized to
    /// `num_roots × active` in root-major order (`roots[r * active + k]`
    /// is root `r` on lane `k`; roots dropped by specialization yield
    /// [`Interval::EMPTY`]).  Every lane is bit-identical to evaluating
    /// that box alone through
    /// [`Tape::eval_interval_into`] /
    /// [`TapeView::eval_interval_into`](crate::TapeView::eval_interval_into)
    /// on the source program.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty or holds more than `L` boxes, `tape`
    /// is not the parent of the source program, or a region has fewer
    /// dimensions than the variables referenced.
    pub fn eval_interval_batch<const L: usize>(
        &self,
        tape: &Tape,
        regions: &[&IntervalBox],
        scratch: &mut BatchScratch<L>,
        roots: &mut Vec<Interval>,
    ) {
        self.eval_batch_inner::<L, false>(tape, regions, scratch, &mut [], &mut []);
        let active = regions.len();
        roots.clear();
        roots.reserve(self.num_roots() * active);
        for r in 0..self.num_roots() {
            match self.root_loc(r) {
                Some(RootLoc::Reg(reg)) => {
                    let buf = &scratch.regs[reg as usize];
                    roots.extend((0..active).map(|k| buf.get(k)));
                }
                Some(RootLoc::Spill(s)) => {
                    let buf = &scratch.spill[s as usize];
                    roots.extend((0..active).map(|k| buf.get(k)));
                }
                None => roots.extend((0..active).map(|_| Interval::EMPTY)),
            }
        }
    }

    /// Like [`AllocatedTape::eval_interval_batch`], but additionally
    /// *records* every defined source slot per lane: `traces[k]` is
    /// resized to [`AllocatedTape::source_len`] and filled exactly as
    /// [`Tape::eval_interval_into`] (respectively
    /// [`TapeView::eval_interval_into`](crate::TapeView::eval_interval_into))
    /// would fill its slot buffer for lane `k`'s box — bit-identical, so a
    /// recorded lane can seed an HC4 backward walk directly.
    ///
    /// `choices` selects choice-trace recording: pass one `Vec<Choice>` per
    /// lane to have it cleared, resized to the parent tape's
    /// [`Tape::num_choices`], and filled with that lane's observed
    /// `min`/`max`/`abs` resolutions (sites absent from a specialized view
    /// stay [`Choice::Both`]); pass `&mut []` to skip choice recording
    /// entirely.  The recorded bytes match what
    /// [`Tape::eval_interval_extend_into_recording`] records for the same
    /// box — the lane predicates compare the very bounds the interval
    /// kernels produced, so recording costs a few flag comparisons per
    /// choice site and cannot perturb the evaluation.
    ///
    /// # Panics
    ///
    /// Panics as [`AllocatedTape::eval_interval_batch`] does, or if
    /// `traces.len() != regions.len()`, or if `choices` is non-empty with
    /// `choices.len() != regions.len()`.
    pub fn eval_interval_batch_recording<const L: usize>(
        &self,
        tape: &Tape,
        regions: &[&IntervalBox],
        scratch: &mut BatchScratch<L>,
        traces: &mut [&mut Vec<Interval>],
        choices: &mut [&mut Vec<Choice>],
    ) {
        assert_eq!(
            traces.len(),
            regions.len(),
            "one output trace per batched box"
        );
        assert!(
            choices.is_empty() || choices.len() == regions.len(),
            "one choice trace per batched box (or none at all)"
        );
        self.eval_batch_inner::<L, true>(tape, regions, scratch, traces, choices);
    }

    /// Shared batched interpreter; `RECORD` selects the recording variant.
    fn eval_batch_inner<const L: usize, const RECORD: bool>(
        &self,
        tape: &Tape,
        regions: &[&IntervalBox],
        scratch: &mut BatchScratch<L>,
        traces: &mut [&mut Vec<Interval>],
        choices: &mut [&mut Vec<Choice>],
    ) {
        let active = regions.len();
        assert!(active >= 1, "batched evaluation needs at least one box");
        assert!(active <= L, "{active} boxes exceed the {L}-lane batch");
        if scratch.regs.len() < self.num_registers() {
            scratch
                .regs
                .resize(self.num_registers(), LaneBuf::default());
        }
        if scratch.spill.len() < self.num_spill_slots() {
            scratch
                .spill
                .resize(self.num_spill_slots(), LaneBuf::default());
        }
        if RECORD {
            for trace in traces.iter_mut() {
                trace.clear();
                trace.resize(self.source_len(), Interval::EMPTY);
            }
            for lane_choices in choices.iter_mut() {
                lane_choices.clear();
                lane_choices.resize(tape.num_choices(), Choice::Both);
            }
        }
        // Monomorphize the full-batch case: with the lane loops bounded by
        // the compile-time `L` the compiler unrolls them, which is where the
        // dispatch amortization actually pays.  Ragged batches take the
        // dynamically-bounded copy of the same code.
        if active == L {
            self.run_lanes::<L, RECORD, true>(tape, regions, scratch, traces, choices);
        } else {
            self.run_lanes::<L, RECORD, false>(tape, regions, scratch, traces, choices);
        }
    }

    /// The instruction loop of the batched interpreter; `FULL` pins the lane
    /// count to `L` at compile time (see [`AllocatedTape::eval_batch_inner`]).
    fn run_lanes<const L: usize, const RECORD: bool, const FULL: bool>(
        &self,
        tape: &Tape,
        regions: &[&IntervalBox],
        scratch: &mut BatchScratch<L>,
        traces: &mut [&mut Vec<Interval>],
        choices: &mut [&mut Vec<Choice>],
    ) {
        let active = if FULL { L } else { regions.len() };
        let record_choices = RECORD && !choices.is_empty();
        let regs = &mut scratch.regs;
        let spill = &mut scratch.spill;
        for (pc, instr) in self.instructions().iter().enumerate() {
            // Each op computes into a fresh stack-local lane buffer and
            // stores it once: operands are read through references (never
            // copied), the destination register is never read, and the
            // per-lane kernel calls sit in a tight, unrollable loop.
            match *instr {
                RegInstr::Const { dst, index } => {
                    let value = tape.const_intervals[index as usize];
                    let mut out = LaneBuf::default();
                    for k in 0..active {
                        out.set(k, value);
                    }
                    regs[dst as usize] = out;
                }
                RegInstr::Var { dst, var } => {
                    let mut out = LaneBuf::default();
                    for (k, region) in regions.iter().enumerate().take(active) {
                        out.set(k, region[var as usize]);
                    }
                    regs[dst as usize] = out;
                }
                RegInstr::Unary { op, dst, a } => {
                    let va = &regs[a as usize];
                    let mut out = LaneBuf::default();
                    match op {
                        UnaryOp::Neg => neg_lanes(va, &mut out, active),
                        // Transcendentals and partial-domain kernels stay
                        // per-lane: their libm calls dominate and don't
                        // vectorize, so delegation costs nothing extra.
                        _ => {
                            for k in 0..active {
                                out.set(k, op.apply_interval(va.get(k)));
                            }
                        }
                    }
                    // Choice recording reads the operand lanes, so it must
                    // happen before `dst` is written — `dst` may reuse the
                    // operand's register.
                    if record_choices {
                        let site = self.choice_of[self.defined_slot(pc).expect("unary defines")];
                        if site != NO_CHOICE {
                            for (k, lane) in choices.iter_mut().enumerate().take(active) {
                                lane[site as usize] = Choice::of_abs(va.get(k));
                            }
                        }
                    }
                    regs[dst as usize] = out;
                }
                RegInstr::Binary { op, dst, a, b } => {
                    let va = &regs[a as usize];
                    let vb = &regs[b as usize];
                    let mut out = LaneBuf::default();
                    match op {
                        BinaryOp::Add => add_lanes(va, vb, &mut out, active),
                        BinaryOp::Sub => sub_lanes(va, vb, &mut out, active),
                        BinaryOp::Mul => mul_lanes(va, vb, &mut out, active),
                        BinaryOp::Min => min_lanes(va, vb, &mut out, active),
                        BinaryOp::Max => max_lanes(va, vb, &mut out, active),
                        BinaryOp::Div => {
                            for k in 0..active {
                                out.set(k, op.apply_interval(va.get(k), vb.get(k)));
                            }
                        }
                    }
                    if record_choices {
                        let site = self.choice_of[self.defined_slot(pc).expect("binary defines")];
                        if site != NO_CHOICE {
                            for (k, lane) in choices.iter_mut().enumerate().take(active) {
                                lane[site as usize] = match op {
                                    BinaryOp::Min => Choice::of_min(va.get(k), vb.get(k)),
                                    BinaryOp::Max => Choice::of_max(va.get(k), vb.get(k)),
                                    _ => unreachable!("only min/max sites carry choice ids"),
                                };
                            }
                        }
                    }
                    regs[dst as usize] = out;
                }
                RegInstr::Powi { dst, a, n } => {
                    let va = &regs[a as usize];
                    let mut out = LaneBuf::default();
                    for k in 0..active {
                        out.set(k, va.get(k).powi(n));
                    }
                    regs[dst as usize] = out;
                }
                RegInstr::Load { dst, spill: s } => regs[dst as usize] = spill[s as usize],
                RegInstr::Store { spill: s, src } => spill[s as usize] = regs[src as usize],
            }
            if RECORD {
                if let Some(slot) = self.defined_slot(pc) {
                    let dst = instr.dst().expect("defining instructions have a dst");
                    let buf = &regs[dst as usize];
                    for (k, trace) in traces.iter_mut().enumerate() {
                        trace[slot] = buf.get(k);
                    }
                }
            }
        }
    }
}
