//! Operator tags shared by the expression tree.

use nncps_interval::Interval;

/// Unary operators supported by [`crate::Expr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent.
    Tan,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Hyperbolic tangent (the `tansig` activation of the paper).
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Arctangent.
    Atan,
}

impl UnaryOp {
    /// Applies the operator to a floating-point value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnaryOp::Neg => -x,
            UnaryOp::Sin => x.sin(),
            UnaryOp::Cos => x.cos(),
            UnaryOp::Tan => x.tan(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Ln => x.ln(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Abs => x.abs(),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Atan => x.atan(),
        }
    }

    /// Applies the operator to an interval (sound enclosure).
    pub fn apply_interval(self, x: Interval) -> Interval {
        match self {
            UnaryOp::Neg => -x,
            UnaryOp::Sin => x.sin(),
            UnaryOp::Cos => x.cos(),
            UnaryOp::Tan => x.tan(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Ln => x.ln(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Abs => x.abs(),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Sigmoid => x.sigmoid(),
            UnaryOp::Atan => x.atan(),
        }
    }

    /// The textual name used by [`std::fmt::Display`] for expressions.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Sin => "sin",
            UnaryOp::Cos => "cos",
            UnaryOp::Tan => "tan",
            UnaryOp::Exp => "exp",
            UnaryOp::Ln => "ln",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Abs => "abs",
            UnaryOp::Tanh => "tanh",
            UnaryOp::Sigmoid => "sigmoid",
            UnaryOp::Atan => "atan",
        }
    }
}

/// Binary operators supported by [`crate::Expr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Pointwise minimum.
    Min,
    /// Pointwise maximum.
    Max,
}

impl BinaryOp {
    /// Applies the operator to floating-point values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
        }
    }

    /// Applies the operator to intervals (sound enclosure).
    pub fn apply_interval(self, a: Interval, b: Interval) -> Interval {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Min => a.min(&b),
            BinaryOp::Max => a.max(&b),
        }
    }

    /// The textual symbol used by [`std::fmt::Display`] for expressions.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Min => "min",
            BinaryOp::Max => "max",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_ops_match_std_functions() {
        let x = 0.7;
        assert_eq!(UnaryOp::Neg.apply(x), -x);
        assert_eq!(UnaryOp::Sin.apply(x), x.sin());
        assert_eq!(UnaryOp::Cos.apply(x), x.cos());
        assert_eq!(UnaryOp::Tan.apply(x), x.tan());
        assert_eq!(UnaryOp::Exp.apply(x), x.exp());
        assert_eq!(UnaryOp::Ln.apply(x), x.ln());
        assert_eq!(UnaryOp::Sqrt.apply(x), x.sqrt());
        assert_eq!(UnaryOp::Abs.apply(-x), x);
        assert_eq!(UnaryOp::Tanh.apply(x), x.tanh());
        assert!((UnaryOp::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
        assert_eq!(UnaryOp::Atan.apply(x), x.atan());
    }

    #[test]
    fn binary_ops_match_std_functions() {
        assert_eq!(BinaryOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinaryOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinaryOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(BinaryOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(BinaryOp::Max.apply(2.0, 3.0), 3.0);
    }

    #[test]
    fn interval_application_encloses_pointwise() {
        use nncps_interval::Interval;
        let x = Interval::new(0.2, 0.8);
        let y = Interval::new(-0.5, 0.5);
        for op in [
            UnaryOp::Neg,
            UnaryOp::Sin,
            UnaryOp::Cos,
            UnaryOp::Exp,
            UnaryOp::Tanh,
            UnaryOp::Sigmoid,
            UnaryOp::Abs,
            UnaryOp::Atan,
            UnaryOp::Sqrt,
            UnaryOp::Ln,
        ] {
            let iv = op.apply_interval(x);
            assert!(iv.contains(op.apply(0.5)), "{op:?} failed enclosure");
        }
        for op in [
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Min,
            BinaryOp::Max,
        ] {
            let iv = op.apply_interval(x, y);
            assert!(iv.contains(op.apply(0.5, 0.0)), "{op:?} failed enclosure");
        }
    }

    #[test]
    fn names_and_symbols_are_nonempty() {
        assert_eq!(UnaryOp::Tanh.name(), "tanh");
        assert_eq!(BinaryOp::Add.symbol(), "+");
        assert_eq!(BinaryOp::Min.symbol(), "min");
    }
}
