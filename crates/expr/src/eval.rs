//! Numeric and interval evaluation of expressions.

use nncps_interval::{Interval, IntervalBox};

use crate::expr::Node;
use crate::Expr;

impl Expr {
    /// Evaluates the expression at the given variable assignment.
    ///
    /// `values[i]` is the value of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a variable index that is out of
    /// bounds for `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        match self.node() {
            Node::Const(c) => *c,
            Node::Var(i) => {
                assert!(
                    *i < values.len(),
                    "expression references variable x{i} but only {} values were supplied",
                    values.len()
                );
                values[*i]
            }
            Node::Unary(op, a) => op.apply(a.eval(values)),
            Node::Binary(op, a, b) => op.apply(a.eval(values), b.eval(values)),
            Node::Powi(a, n) => a.eval(values).powi(*n),
        }
    }

    /// Evaluates the expression over an interval box, returning a sound
    /// enclosure of the expression's range on that box.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a variable index that is out of
    /// bounds for the box.
    pub fn eval_box(&self, region: &IntervalBox) -> Interval {
        match self.node() {
            Node::Const(c) => Interval::singleton(*c),
            Node::Var(i) => {
                assert!(
                    *i < region.dim(),
                    "expression references variable x{i} but the box has {} dimensions",
                    region.dim()
                );
                region[*i]
            }
            Node::Unary(op, a) => op.apply_interval(a.eval_box(region)),
            Node::Binary(op, a, b) => op.apply_interval(a.eval_box(region), b.eval_box(region)),
            Node::Powi(a, n) => a.eval_box(region).powi(*n),
        }
    }

    /// Evaluates the gradient of the expression (vector of partial
    /// derivatives) at the given point using symbolic differentiation.
    ///
    /// The returned vector has length `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() < dim` or the expression references a variable
    /// index `>= values.len()`.
    pub fn eval_gradient(&self, values: &[f64], dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|i| self.differentiate(i).eval(values))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_composite_expression() {
        // f(x, y) = sin(x) * y + exp(-x^2)
        let x = Expr::var(0);
        let y = Expr::var(1);
        let f = x.clone().sin() * y + (-(x.powi(2))).exp();
        let got = f.eval(&[1.2, -0.5]);
        let want = 1.2_f64.sin() * -0.5 + (-(1.2_f64 * 1.2)).exp();
        assert!((got - want).abs() < 1e-14);
    }

    #[test]
    fn eval_box_encloses_sampled_values() {
        let x = Expr::var(0);
        let y = Expr::var(1);
        let f = (x.clone() * y.clone()).tanh() + x.clone().cos() - y.powi(3);
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (0.0, 2.0)]);
        let enclosure = f.eval_box(&region);
        for i in 0..=10 {
            for j in 0..=10 {
                let px = -1.0 + 0.2 * i as f64;
                let py = 0.2 * j as f64;
                assert!(enclosure.contains(f.eval(&[px, py])));
            }
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let x = Expr::var(0);
        let y = Expr::var(1);
        let f = x.clone().sin() * y.clone() + x.clone() * x.clone() * y.clone();
        let point = [0.8, -1.3];
        let grad = f.eval_gradient(&point, 2);
        let h = 1e-6;
        for k in 0..2 {
            let mut plus = point;
            let mut minus = point;
            plus[k] += h;
            minus[k] -= h;
            let fd = (f.eval(&plus) - f.eval(&minus)) / (2.0 * h);
            assert!((grad[k] - fd).abs() < 1e-5, "component {k}");
        }
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn eval_with_missing_variable_panics() {
        let f = Expr::var(3);
        let _ = f.eval(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn eval_box_with_missing_dimension_panics() {
        let f = Expr::var(2);
        let _ = f.eval_box(&IntervalBox::from_bounds(&[(0.0, 1.0)]));
    }

    proptest! {
        #[test]
        fn prop_interval_evaluation_encloses_point_evaluation(
            a in -2.0f64..2.0, b in -2.0f64..2.0,
            ta in 0.0f64..1.0, tb in 0.0f64..1.0,
        ) {
            let x = Expr::var(0);
            let y = Expr::var(1);
            let f = (x.clone() * y.clone() + x.clone().tanh()).sin()
                + (y.clone() - 0.5).powi(2) * x.clone().cos();
            let lo_a = a.min(a + 1.0);
            let lo_b = b.min(b + 0.5);
            let region = IntervalBox::from_bounds(&[(lo_a, lo_a + 1.0), (lo_b, lo_b + 0.5)]);
            let px = lo_a + ta * 1.0;
            let py = lo_b + tb * 0.5;
            let enclosure = f.eval_box(&region);
            prop_assert!(enclosure.contains(f.eval(&[px, py])));
        }
    }
}
