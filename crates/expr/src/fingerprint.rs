//! Structural fingerprints: 128-bit identity keys for expression DAGs.
//!
//! The scenario sweep engine reuses compiled artifacts (evaluation tapes,
//! compiled δ-SAT formulas, gradient bundles) across family members that
//! share dynamics.  The cache key must capture *everything* the compiled
//! artifact depends on — operator structure, variable indices, and the exact
//! bits of every constant — so that a key hit is guaranteed to return an
//! artifact whose evaluation is bit-identical to recompiling.
//!
//! [`StructuralHasher`] is an incremental 128-bit FNV-1a variant (two
//! independently seeded 64-bit lanes) with a DAG-aware expression writer:
//! subtrees shared via `Arc` are serialized once and referenced by a local
//! id afterwards, so fingerprinting a neural-network closed loop costs one
//! walk of the *DAG*, not of the exponentially larger unshared tree.
//!
//! Two structurally identical expressions with different internal sharing
//! serialize differently (the reference structure participates in the key).
//! That is deliberate and safe: differing keys can only cause a cache miss
//! (a recompile), never a wrong hit, and expressions produced by the same
//! construction path — the case the sweep cache exists for — share bit-equal
//! keys.
//!
//! # Examples
//!
//! ```
//! use nncps_expr::{Expr, StructuralHasher};
//!
//! let fingerprint = |e: &Expr| {
//!     let mut h = StructuralHasher::new();
//!     h.write_expr(e);
//!     h.finish()
//! };
//! let a = (Expr::var(0) * 2.0).tanh();
//! let b = (Expr::var(0) * 2.0).tanh();
//! let c = (Expr::var(0) * 2.5).tanh();
//! assert_eq!(fingerprint(&a), fingerprint(&b));
//! assert_ne!(fingerprint(&a), fingerprint(&c));
//! ```

use std::collections::HashMap;

use crate::expr::Node;
use crate::Expr;

/// A 128-bit structural identity key (see the [module docs](self)).
///
/// With 128 bits, accidental collisions between distinct keys are
/// negligible for any realistic cache population (billions of entries), so
/// cache maps can store the fingerprint instead of the full serialized key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME_A: u64 = 0x0000_0100_0000_01b3;
// Second lane: same prime, different offset (FNV offset basis xored with a
// fixed pattern) and a per-byte lane-mixing tweak, so the two lanes are not
// simply equal.
const OFFSET_B: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;

/// Incremental structural hasher producing a [`Fingerprint`].
///
/// `Clone` is cheap enough to use for key derivation: callers absorb a
/// shared prefix once, then clone and extend per derived key.
#[derive(Debug, Clone)]
pub struct StructuralHasher {
    a: u64,
    b: u64,
    /// First-visit ids of `Arc`-shared subtrees, keyed by node address.
    seen: HashMap<*const Node, u32>,
}

impl Default for StructuralHasher {
    fn default() -> Self {
        StructuralHasher::new()
    }
}

impl StructuralHasher {
    /// Creates an empty hasher.
    pub fn new() -> Self {
        StructuralHasher {
            a: OFFSET_A,
            b: OFFSET_B,
            seen: HashMap::new(),
        }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(PRIME_A);
            // The second lane sees a rotated byte so the lanes decorrelate.
            self.b = (self.b ^ (byte as u64).rotate_left(17)).wrapping_mul(PRIME_A);
        }
    }

    /// Absorbs one `u8` tag (used to separate record kinds and fields).
    pub fn write_u8(&mut self, value: u8) {
        self.write_bytes(&[value]);
    }

    /// Absorbs a `u64`.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs a `usize` (as 64 bits, so keys are portable across targets).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Absorbs the exact bits of an `f64` (distinguishing `-0.0` from `0.0`
    /// and every NaN payload — compiled artifacts are bit-sensitive).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Absorbs every bit of an expression DAG: operators, variable indices,
    /// constants, and the sharing structure (see the [module docs](self)).
    pub fn write_expr(&mut self, expr: &Expr) {
        // Explicit stack: NN closed-loop expressions can nest deeply enough
        // that recursion depth would depend on controller width.
        enum Step<'a> {
            Visit(&'a Expr),
        }
        let mut stack = vec![Step::Visit(expr)];
        while let Some(Step::Visit(e)) = stack.pop() {
            let address = std::sync::Arc::as_ptr(e.arc_node());
            if let Some(&id) = self.seen.get(&address) {
                // Back-reference: shared subtree already serialized.
                self.write_u8(0x01);
                self.write_u64(id as u64);
                continue;
            }
            let id = self.seen.len() as u32;
            self.seen.insert(address, id);
            match e.node() {
                Node::Const(c) => {
                    self.write_u8(0x02);
                    self.write_f64(*c);
                }
                Node::Var(i) => {
                    self.write_u8(0x03);
                    self.write_usize(*i);
                }
                Node::Unary(op, a) => {
                    self.write_u8(0x04);
                    self.write_u8(*op as u8);
                    stack.push(Step::Visit(a));
                }
                Node::Binary(op, a, b) => {
                    self.write_u8(0x05);
                    self.write_u8(*op as u8);
                    // Right first, so the left operand serializes first
                    // (pre-order), giving a canonical traversal order.
                    stack.push(Step::Visit(b));
                    stack.push(Step::Visit(a));
                }
                Node::Powi(a, n) => {
                    self.write_u8(0x06);
                    self.write_bytes(&n.to_le_bytes());
                    stack.push(Step::Visit(a));
                }
            }
        }
    }

    /// Finishes the hash.  The hasher can keep absorbing afterwards (the
    /// fingerprint is a running digest).
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(build: impl Fn() -> Expr) -> Fingerprint {
        let mut h = StructuralHasher::new();
        h.write_expr(&build());
        h.finish()
    }

    #[test]
    fn equal_structure_equal_fingerprint() {
        let a = fp(|| (Expr::var(0) + 1.0).sin() * Expr::var(1));
        let b = fp(|| (Expr::var(0) + 1.0).sin() * Expr::var(1));
        assert_eq!(a, b);
    }

    #[test]
    fn structure_differences_change_the_fingerprint() {
        let base = fp(|| Expr::var(0) + 1.0);
        assert_ne!(base, fp(|| Expr::var(0) + 2.0), "constant bits");
        assert_ne!(base, fp(|| Expr::var(1) + 1.0), "variable index");
        assert_ne!(base, fp(|| Expr::var(0) - 1.0), "operator");
        assert_ne!(base, fp(|| (Expr::var(0) + 1.0).sin()), "extra node");
        assert_ne!(
            fp(|| Expr::var(0).powi(2)),
            fp(|| Expr::var(0).powi(3)),
            "powi exponent"
        );
        assert_ne!(
            fp(|| Expr::constant(0.0)),
            fp(|| Expr::constant(-0.0)),
            "sign of zero is a distinct bit pattern"
        );
    }

    #[test]
    fn shared_subtrees_use_back_references() {
        // A deep chain of shared nodes: naive tree serialization would be
        // exponential; the DAG writer visits each node once.
        let mut e = Expr::var(0);
        for _ in 0..64 {
            e = e.clone() + e;
        }
        let mut h = StructuralHasher::new();
        h.write_expr(&e);
        // 65 unique nodes (the var plus 64 adds).
        assert_eq!(h.seen.len(), 65);
        let shared = h.finish();

        // The same value built without sharing (three levels are enough to
        // check the keys differ: sharing structure is part of identity).
        let x = Expr::var(0);
        let unshared = (x.clone() + x.clone()) + (x.clone() + x);
        let mut e2 = Expr::var(0);
        for _ in 0..2 {
            e2 = e2.clone() + e2;
        }
        let mut h2 = StructuralHasher::new();
        h2.write_expr(&e2);
        let mut h3 = StructuralHasher::new();
        h3.write_expr(&unshared);
        assert_ne!(shared, h3.finish());
        assert_ne!(h2.finish(), h3.finish());
    }

    #[test]
    fn scalar_writers_are_order_sensitive() {
        let mut h1 = StructuralHasher::new();
        h1.write_u64(1);
        h1.write_u64(2);
        let mut h2 = StructuralHasher::new();
        h2.write_u64(2);
        h2.write_u64(1);
        assert_ne!(h1.finish(), h2.finish());
        let mut h3 = StructuralHasher::new();
        h3.write_f64(1.5);
        h3.write_u8(7);
        h3.write_usize(9);
        assert_eq!(format!("{}", h3.finish()).len(), 32);
    }
}
