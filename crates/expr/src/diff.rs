//! Symbolic differentiation.

use crate::expr::Node;
use crate::{BinaryOp, Expr, UnaryOp};

impl Expr {
    /// Computes the partial derivative of the expression with respect to the
    /// variable with index `var`.
    ///
    /// The result is not simplified; call [`Expr::simplified`] afterwards when
    /// a compact form matters (for example before exporting a gradient into an
    /// SMT query).
    ///
    /// `abs`, `min`, and `max` are differentiated piecewise using sign/choice
    /// expressions that agree with the true derivative wherever it exists;
    /// on the measure-zero kink sets one of the one-sided derivatives is
    /// produced.
    pub fn differentiate(&self, var: usize) -> Expr {
        match self.node() {
            Node::Const(_) => Expr::zero(),
            Node::Var(i) => {
                if *i == var {
                    Expr::one()
                } else {
                    Expr::zero()
                }
            }
            Node::Powi(a, n) => {
                // d/dx a^n = n * a^(n-1) * a'
                let da = a.differentiate(var);
                Expr::constant(f64::from(*n)) * a.clone().powi(n - 1) * da
            }
            Node::Unary(op, a) => {
                let da = a.differentiate(var);
                let outer = match op {
                    UnaryOp::Neg => -Expr::one(),
                    UnaryOp::Sin => a.clone().cos(),
                    UnaryOp::Cos => -a.clone().sin(),
                    // d/dx tan = 1 + tan^2
                    UnaryOp::Tan => Expr::one() + a.clone().tan().powi(2),
                    UnaryOp::Exp => a.clone().exp(),
                    UnaryOp::Ln => Expr::one() / a.clone(),
                    UnaryOp::Sqrt => Expr::constant(0.5) / a.clone().sqrt(),
                    // d/dx |a| = a / |a| (valid away from zero)
                    UnaryOp::Abs => a.clone() / a.clone().abs(),
                    // d/dx tanh = 1 - tanh^2
                    UnaryOp::Tanh => Expr::one() - a.clone().tanh().powi(2),
                    // d/dx sigmoid = sigmoid * (1 - sigmoid)
                    UnaryOp::Sigmoid => a.clone().sigmoid() * (Expr::one() - a.clone().sigmoid()),
                    UnaryOp::Atan => Expr::one() / (Expr::one() + a.clone().powi(2)),
                };
                outer * da
            }
            Node::Binary(op, a, b) => {
                let da = a.differentiate(var);
                let db = b.differentiate(var);
                match op {
                    BinaryOp::Add => da + db,
                    BinaryOp::Sub => da - db,
                    BinaryOp::Mul => da * b.clone() + a.clone() * db,
                    BinaryOp::Div => (da * b.clone() - a.clone() * db) / b.clone().powi(2),
                    // Piecewise: pick the branch that is currently active.
                    // d/dx min(a,b) = a' where a <= b, else b'. We encode the
                    // selector with min/max so interval evaluation stays sound
                    // in the weak sense of covering both branch derivatives.
                    BinaryOp::Min => select_leq(a, b, da, db),
                    BinaryOp::Max => select_leq(a, b, db, da),
                }
            }
        }
    }

    /// Computes the full gradient as a vector of expressions of length `dim`.
    pub fn gradient(&self, dim: usize) -> Vec<Expr> {
        (0..dim).map(|i| self.differentiate(i)).collect()
    }
}

/// Builds an expression equal to `da` where `a <= b` and `db` elsewhere.
///
/// The encoding uses the identity
/// `select = da + step(a - b) * (db - da)` with `step(t) = (sign(t)+1)/2`
/// realised via `t / |t|`; at the kink (`a == b`) the expression evaluates via
/// `0/0 = NaN` so callers differentiating `min`/`max` should avoid sampling
/// exactly on the kink (simulation traces almost surely do not).
fn select_leq(a: &Expr, b: &Expr, da: Expr, db: Expr) -> Expr {
    let t = a.clone() - b.clone();
    let step = (t.clone() / t.abs() + 1.0) * 0.5;
    da.clone() + step * (db - da)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn finite_diff(f: &Expr, point: &[f64], var: usize) -> f64 {
        let h = 1e-6;
        let mut plus = point.to_vec();
        let mut minus = point.to_vec();
        plus[var] += h;
        minus[var] -= h;
        (f.eval(&plus) - f.eval(&minus)) / (2.0 * h)
    }

    #[test]
    fn polynomial_derivatives() {
        // f = 3x^2 + 2x + 7 -> f' = 6x + 2
        let x = Expr::var(0);
        let f = Expr::constant(3.0) * x.clone().powi(2) + Expr::constant(2.0) * x + 7.0;
        let df = f.differentiate(0);
        assert!((df.eval(&[2.0]) - 14.0).abs() < 1e-12);
        assert!((df.eval(&[-1.0]) + 4.0).abs() < 1e-12);
        // Derivative with respect to an absent variable is zero.
        assert_eq!(f.differentiate(1).simplified().as_constant(), Some(0.0));
    }

    #[test]
    fn product_and_quotient_rules() {
        let x = Expr::var(0);
        let y = Expr::var(1);
        let f = x.clone() * y.clone();
        assert!((f.differentiate(0).eval(&[2.0, 3.0]) - 3.0).abs() < 1e-12);
        assert!((f.differentiate(1).eval(&[2.0, 3.0]) - 2.0).abs() < 1e-12);
        let g = x.clone() / y.clone();
        // d/dy (x/y) = -x / y^2
        assert!((g.differentiate(1).eval(&[2.0, 4.0]) + 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn transcendental_derivatives_match_finite_differences() {
        let x = Expr::var(0);
        let cases: Vec<Expr> = vec![
            x.clone().sin(),
            x.clone().cos(),
            x.clone().tan(),
            x.clone().exp(),
            (x.clone() + 2.0).ln(),
            (x.clone() + 2.0).sqrt(),
            x.clone().tanh(),
            x.clone().sigmoid(),
            x.clone().atan(),
            (x.clone() * 2.0 + 0.3).tanh() * x.clone(),
        ];
        for f in cases {
            for &p in &[-0.8, 0.1, 0.9] {
                let sym = f.differentiate(0).eval(&[p]);
                let num = finite_diff(&f, &[p], 0);
                assert!(
                    (sym - num).abs() < 1e-5,
                    "mismatch for {f} at {p}: {sym} vs {num}"
                );
            }
        }
    }

    #[test]
    fn abs_min_max_derivatives_away_from_kinks() {
        let x = Expr::var(0);
        let f = x.clone().abs();
        assert!((f.differentiate(0).eval(&[2.0]) - 1.0).abs() < 1e-12);
        assert!((f.differentiate(0).eval(&[-2.0]) + 1.0).abs() < 1e-12);

        let g = x.clone().min(Expr::constant(1.0));
        assert!((g.differentiate(0).eval(&[0.5]) - 1.0).abs() < 1e-12);
        assert!(g.differentiate(0).eval(&[2.0]).abs() < 1e-12);

        let h = x.clone().max(Expr::constant(1.0));
        assert!(h.differentiate(0).eval(&[0.5]).abs() < 1e-12);
        assert!((h.differentiate(0).eval(&[2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_rule_through_powers() {
        // f = tanh(x)^3 -> f' = 3 tanh(x)^2 (1 - tanh(x)^2)
        let x = Expr::var(0);
        let f = x.clone().tanh().powi(3);
        let p = 0.4_f64;
        let want = 3.0 * p.tanh().powi(2) * (1.0 - p.tanh().powi(2));
        assert!((f.differentiate(0).eval(&[p]) - want).abs() < 1e-12);
    }

    #[test]
    fn gradient_has_requested_length() {
        let f = Expr::var(0) * Expr::var(1);
        let grad = f.gradient(3);
        assert_eq!(grad.len(), 3);
        assert!((grad[0].eval(&[2.0, 5.0, 0.0]) - 5.0).abs() < 1e-12);
        assert!(grad[2].eval(&[2.0, 5.0, 0.0]).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_symbolic_derivative_matches_finite_difference(
            a in -1.0f64..1.0, b in -1.0f64..1.0, p0 in -1.0f64..1.0, p1 in -1.0f64..1.0,
        ) {
            let x = Expr::var(0);
            let y = Expr::var(1);
            let f = (x.clone() * a + y.clone() * b).tanh() * x.clone().sin()
                + (x.clone() * y.clone()).cos()
                + x.clone().powi(3) * 0.1;
            let point = [p0, p1];
            for var in 0..2 {
                let sym = f.differentiate(var).eval(&point);
                let num = finite_diff(&f, &point, var);
                prop_assert!((sym - num).abs() < 1e-4,
                    "var {} at {:?}: {} vs {}", var, point, sym, num);
            }
        }
    }
}
