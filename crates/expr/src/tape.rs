//! Compiled evaluation tapes: flat SSA programs lowered from [`Expr`] trees.
//!
//! The δ-SAT hot loop evaluates the same expressions millions of times — once
//! per box for feasibility, and once per node per box inside the HC4
//! contractor.  Walking the `Arc`-linked tree is cache-hostile and repeats
//! every shared subexpression per occurrence.  A [`Tape`] fixes both problems
//! at compile time:
//!
//! * **Lowering** flattens the tree into a topologically ordered instruction
//!   list (children always precede parents), stored struct-of-arrays, so a
//!   forward evaluation is one linear sweep over dense memory.
//! * **Common-subexpression elimination** hash-conses structurally identical
//!   subtrees (and `Arc`-shared ones in O(1) via pointer identity) into a
//!   single slot: a neural-network pre-activation referenced by the network
//!   output *and* by its symbolic derivative is computed once.
//! * **Constant folding** collapses variable-free subtrees into `Const`
//!   instructions.  A folded constant stores both its scalar value and the
//!   *interval enclosure* the runtime interval evaluation of the subtree
//!   would have produced, so folding is bit-invisible: scalar and interval
//!   results are identical to evaluating the original tree.
//! * Evaluation is a non-recursive register machine writing into a
//!   caller-owned slot buffer, so steady-state evaluation performs **zero
//!   heap allocations** — the buffers are reused across calls.
//!
//! Several expressions (for example every constraint of a δ-SAT clause) can
//! be compiled into one tape with [`Tape::compile_many`], sharing slots
//! across roots.
//!
//! # Determinism
//!
//! For any expression and input, [`Tape::eval`] is bit-identical to
//! [`Expr::eval`] and [`Tape::eval_box`] is bit-identical to
//! [`Expr::eval_box`]: the tape performs the same floating-point operations
//! in the same dependency order, merely skipping redundant recomputation of
//! shared subexpressions (which would produce the same bits) and
//! pre-computing variable-free subexpressions (storing exactly the bits the
//! runtime would produce).
//!
//! # Examples
//!
//! ```
//! use nncps_expr::{Expr, Tape};
//!
//! let x = Expr::var(0);
//! let shared = (x.clone() * 2.0).tanh();
//! // `shared` appears twice; the tape computes it once.
//! let f = shared.clone() + shared.clone() * x.clone();
//! let tape = Tape::compile(&f);
//! assert!(tape.num_slots() < f.node_count());
//! assert_eq!(tape.eval(&[0.3]).to_bits(), f.eval(&[0.3]).to_bits());
//! ```

use std::collections::HashMap;

use nncps_interval::{Interval, IntervalBox};

use crate::expr::Node;
use crate::{BinaryOp, Expr, UnaryOp};

/// Sentinel in [`Tape::choice_index`] (and per-view choice-id columns) for
/// instructions that are not choice sites.
pub(crate) const NO_CHOICE: u16 = u16::MAX;

/// Branch decision recorded at a `min`/`max`/`abs` *choice site* during a
/// forward interval sweep.
///
/// The recorded byte captures pure interval *separation* on the current
/// region — `Left`/`Right` mean the operand intervals are strictly ordered
/// (for `abs`: the operand is strictly positive/negative), `Both` means the
/// site is still undecided.  Specialization applies its NaN/clip taint veto
/// later, at emission time, so recording costs one branch per site and
/// nothing on choice-free tapes.
///
/// For `min(a, b)` and `max(a, b)`, `Left` selects `a` and `Right` selects
/// `b`.  For `abs(a)`, `Left` means `abs` is the identity (operand strictly
/// positive) and `Right` means it is a negation (operand strictly negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Choice {
    /// Undecided: both branches of the site remain reachable.
    #[default]
    Both = 0,
    /// The left branch wins (`min`/`max` selects `lhs`; `abs` is identity).
    Left = 1,
    /// The right branch wins (`min`/`max` selects `rhs`; `abs` negates).
    Right = 2,
}

impl Choice {
    /// Separation choice of `min(a, b)` — identical predicate to the decide
    /// pass of tape-level specialization.
    #[inline]
    pub(crate) fn of_min(a: Interval, b: Interval) -> Choice {
        if a.hi() < b.lo() {
            Choice::Left
        } else if b.hi() < a.lo() {
            Choice::Right
        } else {
            Choice::Both
        }
    }

    /// Separation choice of `max(a, b)`.
    #[inline]
    pub(crate) fn of_max(a: Interval, b: Interval) -> Choice {
        if a.lo() > b.hi() {
            Choice::Left
        } else if b.lo() > a.hi() {
            Choice::Right
        } else {
            Choice::Both
        }
    }

    /// Sign choice of `abs(a)`: `Left` when strictly positive, `Right` when
    /// strictly negative, `Both` otherwise (including the empty interval,
    /// whose `lo > 0 && hi < 0` bounds would satisfy either test).
    #[inline]
    pub(crate) fn of_abs(a: Interval) -> Choice {
        if a.is_empty() {
            Choice::Both
        } else if a.lo() > 0.0 {
            Choice::Left
        } else if a.hi() < 0.0 {
            Choice::Right
        } else {
            Choice::Both
        }
    }
}

/// Operation tag of one tape instruction (the struct-of-arrays "opcode"
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum OpCode {
    /// Load a (possibly folded) constant; `lhs` indexes the constant pools.
    Const,
    /// Load variable `lhs`.
    Var,
    /// Apply a unary operator to slot `lhs`.
    Unary(UnaryOp),
    /// Apply a binary operator to slots `lhs` and `rhs`.
    Binary(BinaryOp),
    /// Raise slot `lhs` to the integer power bit-stored in `rhs`.
    Powi,
}

/// Structural hash-consing key: two subtrees with the same key always
/// evaluate to the same value, so they share one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CseKey {
    /// Constant identified by the exact bits of its scalar value and its
    /// interval enclosure (a folded constant's enclosure can be wider than a
    /// literal's singleton, so all three participate in identity).
    Const(u64, u64, u64),
    Var(usize),
    Unary(UnaryOp, u32),
    Binary(BinaryOp, u32, u32),
    Powi(u32, i32),
}

/// A pattern-matchable view of one tape instruction, analogous to
/// [`ExprView`](crate::ExprView) but with operands given as slot indices.
///
/// External consumers (such as the δ-SAT contractor's backward pass) use this
/// to walk the compiled program without the crate exposing its internal
/// encoding.
#[derive(Debug, Clone, Copy)]
pub enum TapeInstr {
    /// A constant: scalar value and interval enclosure.  For literal
    /// constants the enclosure is the singleton interval; for folded
    /// subtrees it is the enclosure interval arithmetic would have produced
    /// at runtime.
    Const(f64, Interval),
    /// A variable identified by its index.
    Var(usize),
    /// A unary operation applied to the value in the given slot.
    Unary(UnaryOp, usize),
    /// A binary operation applied to the values in the given slots.
    Binary(BinaryOp, usize, usize),
    /// An integer power of the value in the given slot.
    Powi(usize, i32),
}

/// A compiled, immutable evaluation program shared by scalar and interval
/// evaluation (and by the δ-SAT solver's HC4 contractor).
///
/// Lowering performs common-subexpression elimination and constant folding;
/// evaluation is a non-recursive register machine over caller-owned slot
/// buffers whose scalar and interval results are bit-identical to
/// [`Expr::eval`] / [`Expr::eval_box`] on the compiled expressions.
///
/// # Examples
///
/// Compiling a clause of expressions into one shared tape:
///
/// ```
/// use nncps_expr::{Expr, Tape};
/// use nncps_interval::IntervalBox;
///
/// let x = Expr::var(0);
/// let u = (x.clone() * 0.5).tanh();
/// // Two constraints over the same controller output `u`.
/// let tape = Tape::compile_many(&[u.clone() + 1.0, u.clone() * 2.0]);
/// assert_eq!(tape.num_roots(), 2);
///
/// let mut slots = Vec::new();
/// tape.eval_interval_into(&IntervalBox::from_bounds(&[(-1.0, 1.0)]), &mut slots);
/// let first = slots[tape.root_slot(0)];
/// assert!(first.contains((0.25f64).tanh() + 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Tape {
    /// Opcode column (struct-of-arrays with `lhs`/`rhs`).
    pub(crate) ops: Vec<OpCode>,
    /// First operand column: slot index, variable index, or constant index.
    pub(crate) lhs: Vec<u32>,
    /// Second operand column: slot index or `powi` exponent bits.
    pub(crate) rhs: Vec<u32>,
    /// Scalar constant pool.
    pub(crate) const_scalars: Vec<f64>,
    /// Interval constant pool (same indexing as `const_scalars`).
    pub(crate) const_intervals: Vec<Interval>,
    /// Root slots, one per compiled expression, in compilation order.
    pub(crate) roots: Vec<u32>,
    /// `1 + max variable index`, or `0` when no variables occur.
    pub(crate) num_vars: usize,
    /// Per-slot choice-site id (`NO_CHOICE` for non-sites).  A slot is a
    /// choice site when its opcode is `min`, `max`, or `abs` — the
    /// operations whose interval result can collapse to one operand's cone.
    pub(crate) choice_index: Vec<u16>,
    /// Per-choice-id slot (inverse of `choice_index`), in slot order.
    pub(crate) choice_slots: Vec<u32>,
}

/// Hash-consing state used during lowering.
#[derive(Default)]
struct Builder {
    ops: Vec<OpCode>,
    lhs: Vec<u32>,
    rhs: Vec<u32>,
    const_scalars: Vec<f64>,
    const_intervals: Vec<Interval>,
    /// Structural CSE table.
    cse: HashMap<CseKey, u32>,
    /// `Arc` pointer identity cache: shared subtrees resolve in O(1) without
    /// re-walking them.
    by_ptr: HashMap<usize, u32>,
    num_vars: usize,
}

impl Builder {
    fn lower(&mut self, expr: &Expr) -> u32 {
        let ptr = expr.node() as *const Node as usize;
        if let Some(&slot) = self.by_ptr.get(&ptr) {
            return slot;
        }
        let slot = match expr.node() {
            Node::Const(c) => self.add_const(*c, Interval::singleton(*c)),
            Node::Var(i) => {
                self.num_vars = self.num_vars.max(i + 1);
                self.add(CseKey::Var(*i), OpCode::Var, *i as u32, 0)
            }
            Node::Unary(op, a) => {
                let a = self.lower(a);
                self.add_unary(*op, a)
            }
            Node::Binary(op, a, b) => {
                let a = self.lower(a);
                let b = self.lower(b);
                self.add_binary(*op, a, b)
            }
            Node::Powi(a, n) => {
                let a = self.lower(a);
                self.add_powi(a, *n)
            }
        };
        self.by_ptr.insert(ptr, slot);
        slot
    }

    /// Returns the constant-pool index of `slot` when it holds a constant.
    fn const_index(&self, slot: u32) -> Option<usize> {
        if self.ops[slot as usize] == OpCode::Const {
            Some(self.lhs[slot as usize] as usize)
        } else {
            None
        }
    }

    fn add_const(&mut self, scalar: f64, enclosure: Interval) -> u32 {
        let key = CseKey::Const(
            scalar.to_bits(),
            enclosure.lo().to_bits(),
            enclosure.hi().to_bits(),
        );
        if let Some(&slot) = self.cse.get(&key) {
            return slot;
        }
        let index = self.const_scalars.len() as u32;
        self.const_scalars.push(scalar);
        self.const_intervals.push(enclosure);
        let slot = self.push(OpCode::Const, index, 0);
        self.cse.insert(key, slot);
        slot
    }

    fn add_unary(&mut self, op: UnaryOp, a: u32) -> u32 {
        if let Some(ci) = self.const_index(a) {
            // Variable-free subtree: fold both the scalar value and the
            // interval enclosure exactly as runtime evaluation would.
            return self.add_const(
                op.apply(self.const_scalars[ci]),
                op.apply_interval(self.const_intervals[ci]),
            );
        }
        self.add(CseKey::Unary(op, a), OpCode::Unary(op), a, 0)
    }

    fn add_binary(&mut self, op: BinaryOp, a: u32, b: u32) -> u32 {
        if let (Some(ca), Some(cb)) = (self.const_index(a), self.const_index(b)) {
            return self.add_const(
                op.apply(self.const_scalars[ca], self.const_scalars[cb]),
                op.apply_interval(self.const_intervals[ca], self.const_intervals[cb]),
            );
        }
        self.add(CseKey::Binary(op, a, b), OpCode::Binary(op), a, b)
    }

    fn add_powi(&mut self, a: u32, n: i32) -> u32 {
        if let Some(ci) = self.const_index(a) {
            return self.add_const(
                self.const_scalars[ci].powi(n),
                self.const_intervals[ci].powi(n),
            );
        }
        self.add(CseKey::Powi(a, n), OpCode::Powi, a, n as u32)
    }

    fn add(&mut self, key: CseKey, op: OpCode, lhs: u32, rhs: u32) -> u32 {
        if let Some(&slot) = self.cse.get(&key) {
            return slot;
        }
        let slot = self.push(op, lhs, rhs);
        self.cse.insert(key, slot);
        slot
    }

    fn push(&mut self, op: OpCode, lhs: u32, rhs: u32) -> u32 {
        let slot = self.ops.len() as u32;
        self.ops.push(op);
        self.lhs.push(lhs);
        self.rhs.push(rhs);
        slot
    }

    /// Dead-code elimination: constant folding can orphan the instructions
    /// it folded away (and their pool entries), so keep only slots reachable
    /// from the roots, preserving their relative (topological) order.
    fn compact(self, roots: Vec<u32>) -> Tape {
        let mut live = vec![false; self.ops.len()];
        for &root in &roots {
            live[root as usize] = true;
        }
        for i in (0..self.ops.len()).rev() {
            if !live[i] {
                continue;
            }
            match self.ops[i] {
                OpCode::Const | OpCode::Var => {}
                OpCode::Unary(_) | OpCode::Powi => live[self.lhs[i] as usize] = true,
                OpCode::Binary(_) => {
                    live[self.lhs[i] as usize] = true;
                    live[self.rhs[i] as usize] = true;
                }
            }
        }
        let mut slot_map = vec![u32::MAX; self.ops.len()];
        let mut const_map: HashMap<u32, u32> = HashMap::new();
        let mut tape = Tape {
            ops: Vec::new(),
            lhs: Vec::new(),
            rhs: Vec::new(),
            const_scalars: Vec::new(),
            const_intervals: Vec::new(),
            roots: Vec::new(),
            num_vars: self.num_vars,
            choice_index: Vec::new(),
            choice_slots: Vec::new(),
        };
        for i in 0..self.ops.len() {
            if !live[i] {
                continue;
            }
            slot_map[i] = tape.ops.len() as u32;
            let (lhs, rhs) = match self.ops[i] {
                OpCode::Const => {
                    let old = self.lhs[i];
                    let new = *const_map.entry(old).or_insert_with(|| {
                        let idx = tape.const_scalars.len() as u32;
                        tape.const_scalars.push(self.const_scalars[old as usize]);
                        tape.const_intervals
                            .push(self.const_intervals[old as usize]);
                        idx
                    });
                    (new, 0)
                }
                OpCode::Var => (self.lhs[i], 0),
                OpCode::Unary(_) | OpCode::Powi => (slot_map[self.lhs[i] as usize], self.rhs[i]),
                OpCode::Binary(_) => (
                    slot_map[self.lhs[i] as usize],
                    slot_map[self.rhs[i] as usize],
                ),
            };
            tape.ops.push(self.ops[i]);
            tape.lhs.push(lhs);
            tape.rhs.push(rhs);
        }
        tape.roots = roots.iter().map(|&r| slot_map[r as usize]).collect();
        tape.index_choice_sites();
        tape
    }
}

impl Tape {
    /// Compiles a single expression.
    pub fn compile(root: &Expr) -> Tape {
        Tape::compile_many(std::slice::from_ref(root))
    }

    /// Compiles several expressions into one tape with shared slots.
    ///
    /// Root `k` of the result corresponds to `roots[k]`; subexpressions
    /// common to several roots are computed once per evaluation.
    pub fn compile_many(roots: &[Expr]) -> Tape {
        nncps_fault::panic_point(nncps_fault::SITE_TAPE_COMPILE);
        let mut builder = Builder::default();
        let root_slots: Vec<u32> = roots.iter().map(|r| builder.lower(r)).collect();
        builder.compact(root_slots)
    }

    /// Number of instructions (equivalently, slots) in the tape.
    ///
    /// After CSE this is at most — and for expressions with sharing strictly
    /// less than — the total [`Expr::node_count`] of the compiled roots.
    pub fn num_slots(&self) -> usize {
        self.ops.len()
    }

    /// Number of compiled root expressions.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// The slot holding the value of root `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.num_roots()`.
    pub fn root_slot(&self, k: usize) -> usize {
        self.roots[k] as usize
    }

    /// `1 + max variable index` referenced by the tape (the minimum input
    /// length accepted by the evaluators), or `0` for variable-free tapes.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of choice sites (`min`/`max`/`abs` instructions) in the tape.
    ///
    /// Choice ids index the buffers used by the recording evaluators
    /// ([`Tape::eval_interval_extend_into_recording`]) and by
    /// choice-trace specialization ([`crate::specialize::ChoiceAnalysis`]).
    pub fn num_choices(&self) -> usize {
        self.choice_slots.len()
    }

    /// Assigns choice ids to `min`/`max`/`abs` slots after compaction.
    ///
    /// Ids are `u16`; in the (unrealistic) event a tape holds more than
    /// `u16::MAX - 1` sites, the excess sites simply get no id and are never
    /// specialized — sound, merely less aggressive.
    fn index_choice_sites(&mut self) {
        self.choice_index = vec![NO_CHOICE; self.ops.len()];
        self.choice_slots.clear();
        for i in 0..self.ops.len() {
            let is_site = matches!(
                self.ops[i],
                OpCode::Binary(BinaryOp::Min | BinaryOp::Max) | OpCode::Unary(UnaryOp::Abs)
            );
            if is_site && self.choice_slots.len() < NO_CHOICE as usize {
                self.choice_index[i] = self.choice_slots.len() as u16;
                self.choice_slots.push(i as u32);
            }
        }
    }

    /// Returns a view of instruction `slot`.
    ///
    /// Instructions are topologically ordered: operands always refer to
    /// strictly smaller slots, so iterating `0..num_slots()` is a valid
    /// forward schedule and iterating in reverse is a valid backward one.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.num_slots()`.
    pub fn instr(&self, slot: usize) -> TapeInstr {
        let lhs = self.lhs[slot] as usize;
        match self.ops[slot] {
            OpCode::Const => TapeInstr::Const(self.const_scalars[lhs], self.const_intervals[lhs]),
            OpCode::Var => TapeInstr::Var(lhs),
            OpCode::Unary(op) => TapeInstr::Unary(op, lhs),
            OpCode::Binary(op) => TapeInstr::Binary(op, lhs, self.rhs[slot] as usize),
            OpCode::Powi => TapeInstr::Powi(lhs, self.rhs[slot] as i32),
        }
    }

    fn check_scalar_inputs(&self, len: usize) {
        assert!(
            self.num_vars <= len,
            "expression references variable x{} but only {len} values were supplied",
            self.num_vars - 1
        );
    }

    fn check_box_inputs(&self, dim: usize) {
        assert!(
            self.num_vars <= dim,
            "expression references variable x{} but the box has {dim} dimensions",
            self.num_vars - 1
        );
    }

    /// Evaluates every slot at a point, reusing `slots` as the register file
    /// (it is cleared and refilled; once warm no allocation occurs).
    ///
    /// Root values are read back via `slots[self.root_slot(k)]`.
    ///
    /// # Panics
    ///
    /// Panics if the tape references a variable index out of bounds for
    /// `values`.
    pub fn eval_scalar_into(&self, values: &[f64], slots: &mut Vec<f64>) {
        self.check_scalar_inputs(values.len());
        slots.clear();
        slots.reserve(self.ops.len());
        for i in 0..self.ops.len() {
            let lhs = self.lhs[i] as usize;
            let v = match self.ops[i] {
                OpCode::Const => self.const_scalars[lhs],
                OpCode::Var => values[lhs],
                OpCode::Unary(op) => op.apply(slots[lhs]),
                OpCode::Binary(op) => op.apply(slots[lhs], slots[self.rhs[i] as usize]),
                OpCode::Powi => slots[lhs].powi(self.rhs[i] as i32),
            };
            slots.push(v);
        }
    }

    /// Evaluates every slot over an interval box, reusing `slots` as the
    /// register file (cleared and refilled; no allocation once warm).
    ///
    /// # Panics
    ///
    /// Panics if the tape references a variable index out of bounds for the
    /// box.
    pub fn eval_interval_into(&self, region: &IntervalBox, slots: &mut Vec<Interval>) {
        self.eval_interval_prefix_into(region, slots, self.ops.len());
    }

    /// Evaluates only the first `count` slots over an interval box.
    ///
    /// Because instructions are topologically ordered, the prefix
    /// `0..=self.root_slot(k)` contains everything root `k` depends on — the
    /// δ-SAT contractor uses this to revise one constraint of a multi-root
    /// clause without evaluating the later roots' exclusive slots.
    ///
    /// # Panics
    ///
    /// Panics if `count > self.num_slots()` or the evaluated prefix
    /// references a variable index out of bounds for the box.
    pub fn eval_interval_prefix_into(
        &self,
        region: &IntervalBox,
        slots: &mut Vec<Interval>,
        count: usize,
    ) {
        slots.clear();
        self.eval_interval_extend_into(region, slots, count);
    }

    /// Extends a partial forward evaluation: computes slots
    /// `slots.len()..count`, assuming the already-present prefix was
    /// produced by this tape on the *same* region.
    ///
    /// This is the incremental form of [`Tape::eval_interval_prefix_into`]
    /// the δ-SAT contractor uses to grow one shared forward sweep across the
    /// revises of a contraction pass instead of re-evaluating the common
    /// prefix per constraint; the computed values are bit-identical to a
    /// fresh prefix evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `count > self.num_slots()` or the evaluated range
    /// references a variable index out of bounds for the box.
    pub fn eval_interval_extend_into(
        &self,
        region: &IntervalBox,
        slots: &mut Vec<Interval>,
        count: usize,
    ) {
        assert!(count <= self.ops.len(), "prefix exceeds tape length");
        self.check_box_inputs(region.dim());
        slots.reserve(count.saturating_sub(slots.len()));
        for i in slots.len()..count {
            let lhs = self.lhs[i] as usize;
            let v = match self.ops[i] {
                OpCode::Const => self.const_intervals[lhs],
                OpCode::Var => region[lhs],
                OpCode::Unary(op) => op.apply_interval(slots[lhs]),
                OpCode::Binary(op) => op.apply_interval(slots[lhs], slots[self.rhs[i] as usize]),
                OpCode::Powi => slots[lhs].powi(self.rhs[i] as i32),
            };
            slots.push(v);
        }
    }

    /// Recording twin of [`Tape::eval_interval_extend_into`]: additionally
    /// records a [`Choice`] byte per evaluated choice site into `choices`
    /// (indexed by choice id; see [`Tape::num_choices`]).
    ///
    /// The recorded values are the pure separation decisions of the current
    /// region; computed slot values are bit-identical to the non-recording
    /// sweep.  Callers with choice-free tapes should use the non-recording
    /// variant (the per-instruction id lookup is the only overhead).
    ///
    /// # Panics
    ///
    /// Panics if `count > self.num_slots()`, if `choices` is shorter than
    /// [`Tape::num_choices`], or the evaluated range references a variable
    /// index out of bounds for the box.
    pub fn eval_interval_extend_into_recording(
        &self,
        region: &IntervalBox,
        slots: &mut Vec<Interval>,
        count: usize,
        choices: &mut [Choice],
    ) {
        assert!(count <= self.ops.len(), "prefix exceeds tape length");
        self.check_box_inputs(region.dim());
        slots.reserve(count.saturating_sub(slots.len()));
        for i in slots.len()..count {
            let lhs = self.lhs[i] as usize;
            let v = match self.ops[i] {
                OpCode::Const => self.const_intervals[lhs],
                OpCode::Var => region[lhs],
                OpCode::Unary(op) => {
                    let va = slots[lhs];
                    let id = self.choice_index[i];
                    if id != NO_CHOICE {
                        choices[id as usize] = Choice::of_abs(va);
                    }
                    op.apply_interval(va)
                }
                OpCode::Binary(op) => {
                    let va = slots[lhs];
                    let vb = slots[self.rhs[i] as usize];
                    let id = self.choice_index[i];
                    if id != NO_CHOICE {
                        choices[id as usize] = match op {
                            BinaryOp::Min => Choice::of_min(va, vb),
                            _ => Choice::of_max(va, vb),
                        };
                    }
                    op.apply_interval(va, vb)
                }
                OpCode::Powi => slots[lhs].powi(self.rhs[i] as i32),
            };
            slots.push(v);
        }
    }

    /// Evaluates the first root at a point (convenience wrapper allocating a
    /// fresh slot buffer; hot paths should use [`Tape::eval_scalar_into`]).
    ///
    /// Bit-identical to [`Expr::eval`] on the compiled expression.
    ///
    /// # Panics
    ///
    /// Panics if the tape has no roots or references an out-of-bounds
    /// variable.
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut slots = Vec::new();
        self.eval_scalar_into(values, &mut slots);
        slots[self.root_slot(0)]
    }

    /// Evaluates the first root over a box (convenience wrapper; hot paths
    /// should use [`Tape::eval_interval_into`]).
    ///
    /// Bit-identical to [`Expr::eval_box`] on the compiled expression.
    ///
    /// # Panics
    ///
    /// Panics if the tape has no roots or references an out-of-bounds
    /// variable.
    pub fn eval_box(&self, region: &IntervalBox) -> Interval {
        let mut slots = Vec::new();
        self.eval_interval_into(region, &mut slots);
        slots[self.root_slot(0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    #[test]
    fn scalar_evaluation_is_bit_identical_to_tree() {
        let f = (x().sin() * y() + (-(x().powi(2))).exp()).tanh() / (y() + 3.0);
        let tape = Tape::compile(&f);
        for p in [[1.2, -0.5], [0.0, 0.0], [-3.3, 2.0]] {
            assert_eq!(tape.eval(&p).to_bits(), f.eval(&p).to_bits());
        }
    }

    #[test]
    fn interval_evaluation_is_bit_identical_to_tree() {
        let f = (x() * y()).tanh() + x().cos() - y().powi(3) + x().abs().sqrt();
        let tape = Tape::compile(&f);
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (0.0, 2.0)]);
        let tree = f.eval_box(&region);
        let tape_val = tape.eval_box(&region);
        assert_eq!(tape_val.lo().to_bits(), tree.lo().to_bits());
        assert_eq!(tape_val.hi().to_bits(), tree.hi().to_bits());
    }

    #[test]
    fn cse_merges_arc_shared_and_structurally_equal_subtrees() {
        // `shared` is Arc-shared; `rebuilt` is structurally identical but a
        // distinct allocation. Both must land in one slot.
        let shared = (x() * 2.0).tanh();
        let rebuilt = (x() * 2.0).tanh();
        let f = shared.clone() + shared.clone() * rebuilt;
        let tape = Tape::compile(&f);
        // Slots: x, 2, x*2, tanh, tanh*tanh, tanh+product = 6 < node_count.
        assert!(tape.num_slots() < f.node_count());
        assert_eq!(tape.eval(&[0.7]).to_bits(), f.eval(&[0.7]).to_bits());
    }

    #[test]
    fn constant_folding_collapses_variable_free_subtrees() {
        let f = (Expr::constant(2.0) * Expr::constant(3.0)).sin() + x();
        let tape = Tape::compile(&f);
        // folded constant, x, sum.
        assert_eq!(tape.num_slots(), 3);
        assert_eq!(tape.eval(&[0.25]).to_bits(), f.eval(&[0.25]).to_bits());
        // The folded constant's interval enclosure matches the runtime one.
        let region = IntervalBox::from_bounds(&[(0.0, 1.0)]);
        let tree = f.eval_box(&region);
        let tape_val = tape.eval_box(&region);
        assert_eq!(tape_val.lo().to_bits(), tree.lo().to_bits());
        assert_eq!(tape_val.hi().to_bits(), tree.hi().to_bits());
    }

    #[test]
    fn folded_constants_with_distinct_enclosures_stay_distinct() {
        // 6.0 as a literal has a singleton enclosure; 2*3 folds to scalar 6.0
        // with an outward-rounded enclosure. They must not be conflated.
        let literal = Expr::constant(6.0) + x();
        let folded = Expr::constant(2.0) * Expr::constant(3.0) + x();
        let region = IntervalBox::from_bounds(&[(0.0, 0.0)]);
        let tape = Tape::compile_many(&[literal.clone(), folded.clone()]);
        let mut slots = Vec::new();
        tape.eval_interval_into(&region, &mut slots);
        let lit_val = slots[tape.root_slot(0)];
        let fold_val = slots[tape.root_slot(1)];
        assert_eq!(
            lit_val.lo().to_bits(),
            literal.eval_box(&region).lo().to_bits()
        );
        assert_eq!(
            fold_val.lo().to_bits(),
            folded.eval_box(&region).lo().to_bits()
        );
        assert_ne!(lit_val.lo().to_bits(), fold_val.lo().to_bits());
    }

    #[test]
    fn multi_root_compilation_shares_subexpressions() {
        let u = (x() * 0.5 + y()).tanh();
        let roots = [u.clone() + 1.0, u.clone() * 2.0, u.clone().powi(2)];
        let tape = Tape::compile_many(&roots);
        assert_eq!(tape.num_roots(), 3);
        let separate: usize = roots.iter().map(Expr::node_count).sum();
        assert!(tape.num_slots() < separate);
        let mut slots = Vec::new();
        tape.eval_scalar_into(&[0.4, -0.2], &mut slots);
        for (k, root) in roots.iter().enumerate() {
            assert_eq!(
                slots[tape.root_slot(k)].to_bits(),
                root.eval(&[0.4, -0.2]).to_bits()
            );
        }
    }

    #[test]
    fn instruction_views_cover_the_program() {
        let f = x().powi(3) + (y() * 2.0).sigmoid();
        let tape = Tape::compile(&f);
        let mut saw_powi = false;
        let mut saw_unary = false;
        for i in 0..tape.num_slots() {
            match tape.instr(i) {
                TapeInstr::Powi(a, n) => {
                    assert!(a < i);
                    assert_eq!(n, 3);
                    saw_powi = true;
                }
                TapeInstr::Unary(op, a) => {
                    assert!(a < i);
                    assert_eq!(op, UnaryOp::Sigmoid);
                    saw_unary = true;
                }
                TapeInstr::Binary(_, a, b) => {
                    assert!(a < i && b < i);
                }
                TapeInstr::Const(..) | TapeInstr::Var(_) => {}
            }
        }
        assert!(saw_powi && saw_unary);
        assert_eq!(tape.num_vars(), 2);
    }

    #[test]
    fn negative_powi_exponents_round_trip() {
        let f = (x() + 2.0).powi(-2);
        let tape = Tape::compile(&f);
        assert_eq!(tape.eval(&[1.0]).to_bits(), f.eval(&[1.0]).to_bits());
        let found = (0..tape.num_slots()).any(|i| matches!(tape.instr(i), TapeInstr::Powi(_, -2)));
        assert!(found, "negative exponent must survive encoding");
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn scalar_eval_with_missing_variable_panics() {
        let tape = Tape::compile(&Expr::var(3));
        let _ = tape.eval(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn interval_eval_with_missing_dimension_panics() {
        let tape = Tape::compile(&Expr::var(2));
        let _ = tape.eval_box(&IntervalBox::from_bounds(&[(0.0, 1.0)]));
    }
}
