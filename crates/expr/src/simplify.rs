//! Algebraic simplification (constant folding plus identity rewrites).

use crate::expr::Node;
use crate::{BinaryOp, Expr, UnaryOp};

impl Expr {
    /// Returns an algebraically simplified copy of the expression.
    ///
    /// Simplification performs constant folding and removes the most common
    /// identity operations produced by symbolic differentiation:
    ///
    /// * `e + 0`, `0 + e`, `e - 0`  →  `e`
    /// * `e * 1`, `1 * e`, `e / 1`  →  `e`
    /// * `e * 0`, `0 * e`, `0 / e`  →  `0`
    /// * `-(-e)`                    →  `e`
    /// * `e^0` → `1`, `e^1` → `e`
    ///
    /// The rewrite never changes the value of the expression at any point of
    /// its domain (with the usual caveat that `0 * e → 0` assumes `e` is
    /// finite, which holds for every expression the pipeline constructs over
    /// bounded domains).
    pub fn simplified(&self) -> Expr {
        match self.node() {
            Node::Const(c) => Expr::constant(*c),
            Node::Var(i) => Expr::var(*i),
            Node::Powi(a, n) => {
                let a = a.simplified();
                if let Some(c) = a.as_constant() {
                    return Expr::constant(c.powi(*n));
                }
                match n {
                    0 => Expr::one(),
                    1 => a,
                    _ => a.powi(*n),
                }
            }
            Node::Unary(op, a) => {
                let a = a.simplified();
                if let Some(c) = a.as_constant() {
                    return Expr::constant(op.apply(c));
                }
                // -(-e) => e
                if *op == UnaryOp::Neg {
                    if let Node::Unary(UnaryOp::Neg, inner) = a.node() {
                        return inner.clone();
                    }
                }
                Expr::unary(*op, a)
            }
            Node::Binary(op, a, b) => {
                let a = a.simplified();
                let b = b.simplified();
                if let (Some(ca), Some(cb)) = (a.as_constant(), b.as_constant()) {
                    return Expr::constant(op.apply(ca, cb));
                }
                match op {
                    BinaryOp::Add => {
                        if a.is_zero() {
                            return b;
                        }
                        if b.is_zero() {
                            return a;
                        }
                        a + b
                    }
                    BinaryOp::Sub => {
                        if b.is_zero() {
                            return a;
                        }
                        if a.is_zero() {
                            return -b;
                        }
                        a - b
                    }
                    BinaryOp::Mul => {
                        if a.is_zero() || b.is_zero() {
                            return Expr::zero();
                        }
                        if a.is_one() {
                            return b;
                        }
                        if b.is_one() {
                            return a;
                        }
                        a * b
                    }
                    BinaryOp::Div => {
                        if a.is_zero() {
                            return Expr::zero();
                        }
                        if b.is_one() {
                            return a;
                        }
                        a / b
                    }
                    BinaryOp::Min => a.min(b),
                    BinaryOp::Max => a.max(b),
                }
            }
        }
    }

    /// Returns `true` if the expression is the literal constant `0`.
    pub fn is_zero(&self) -> bool {
        self.as_constant() == Some(0.0)
    }

    /// Returns `true` if the expression is the literal constant `1`.
    pub fn is_one(&self) -> bool {
        self.as_constant() == Some(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_folding() {
        let e = Expr::constant(2.0) * Expr::constant(3.0) + Expr::constant(1.0);
        assert_eq!(e.simplified().as_constant(), Some(7.0));
        let t = Expr::constant(0.0).tanh();
        assert_eq!(t.simplified().as_constant(), Some(0.0));
        let p = Expr::constant(2.0).powi(10);
        assert_eq!(p.simplified().as_constant(), Some(1024.0));
    }

    #[test]
    fn identity_elimination() {
        let x = Expr::var(0);
        assert_eq!(format!("{}", (x.clone() + 0.0).simplified()), "x0");
        assert_eq!(format!("{}", (0.0 + x.clone()).simplified()), "x0");
        assert_eq!(format!("{}", (x.clone() - 0.0).simplified()), "x0");
        assert_eq!(format!("{}", (x.clone() * 1.0).simplified()), "x0");
        assert_eq!(format!("{}", (1.0 * x.clone()).simplified()), "x0");
        assert_eq!(format!("{}", (x.clone() / 1.0).simplified()), "x0");
        assert_eq!((x.clone() * 0.0).simplified().as_constant(), Some(0.0));
        assert_eq!((0.0 * x.clone()).simplified().as_constant(), Some(0.0));
        assert_eq!(
            (0.0 / (x.clone() + 5.0)).simplified().as_constant(),
            Some(0.0)
        );
        assert_eq!(format!("{}", x.clone().powi(1).simplified()), "x0");
        assert_eq!(x.clone().powi(0).simplified().as_constant(), Some(1.0));
        assert_eq!(format!("{}", (0.0 - x.clone()).simplified()), "(-x0)");
        assert_eq!(format!("{}", (-(-x)).simplified()), "x0");
    }

    #[test]
    fn simplification_shrinks_differentiation_output() {
        let x = Expr::var(0);
        let f = Expr::constant(3.0) * x.clone().powi(2) + x.clone() * 2.0 + 7.0;
        let df = f.differentiate(0);
        let simplified = df.simplified();
        assert!(simplified.node_count() < df.node_count());
        for p in [-1.5, 0.0, 2.5] {
            assert!((simplified.eval(&[p]) - df.eval(&[p])).abs() < 1e-12);
        }
    }

    #[test]
    fn min_max_with_constants_fold() {
        let e = Expr::constant(2.0).min(Expr::constant(5.0));
        assert_eq!(e.simplified().as_constant(), Some(2.0));
        let e = Expr::constant(2.0).max(Expr::constant(5.0));
        assert_eq!(e.simplified().as_constant(), Some(5.0));
    }

    proptest! {
        #[test]
        fn prop_simplification_preserves_value(
            a in -3.0f64..3.0, b in -3.0f64..3.0, p in -2.0f64..2.0, q in -2.0f64..2.0,
        ) {
            let x = Expr::var(0);
            let y = Expr::var(1);
            let f = (x.clone() * a + 0.0) * 1.0
                + (y.clone() * b).tanh() * (x.clone() + 0.0)
                + (x.clone() - 0.0).sin() * Expr::constant(0.0)
                + x.clone().powi(1) * y.clone().powi(0)
                + (x.clone() * y.clone()).cos() / 1.0;
            let s = f.simplified();
            let fv = f.eval(&[p, q]);
            let sv = s.eval(&[p, q]);
            prop_assert!((fv - sv).abs() < 1e-10, "{} vs {}", fv, sv);
            prop_assert!(s.node_count() <= f.node_count());
        }
    }
}
