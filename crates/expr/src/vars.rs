//! Named variable registry.

use std::collections::HashMap;
use std::fmt;

use crate::Expr;

/// A registry mapping human-readable variable names to expression indices.
///
/// The expression tree itself only knows variable *indices*; a [`VarSet`]
/// keeps the association with names such as `d_err` and `theta_err` so that
/// models, SMT queries, and diagnostics all agree on the ordering.
///
/// # Examples
///
/// ```
/// use nncps_expr::VarSet;
///
/// let mut vars = VarSet::new();
/// let d = vars.var("d_err");
/// let th = vars.var("theta_err");
/// assert_eq!(vars.len(), 2);
/// assert_eq!(vars.index_of("theta_err"), Some(1));
/// let f = d + th.sin();
/// assert_eq!(f.num_vars(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarSet {
    names: Vec<String>,
    indices: HashMap<String, usize>,
}

impl VarSet {
    /// Creates an empty variable set.
    pub fn new() -> Self {
        VarSet::default()
    }

    /// Creates a variable set from a list of names.
    ///
    /// # Panics
    ///
    /// Panics if the list contains duplicate names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut set = VarSet::new();
        for name in names {
            let name = name.into();
            assert!(
                !set.indices.contains_key(&name),
                "duplicate variable name: {name}"
            );
            set.push(name);
        }
        set
    }

    fn push(&mut self, name: String) -> usize {
        let index = self.names.len();
        self.indices.insert(name.clone(), index);
        self.names.push(name);
        index
    }

    /// Returns the expression for the named variable, registering the name if
    /// it has not been seen before.
    pub fn var(&mut self, name: &str) -> Expr {
        let index = match self.indices.get(name) {
            Some(&i) => i,
            None => self.push(name.to_string()),
        };
        Expr::var(index)
    }

    /// Returns the expression for an already-registered variable.
    pub fn existing_var(&self, name: &str) -> Option<Expr> {
        self.indices.get(name).map(|&i| Expr::var(i))
    }

    /// Index of a registered variable name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.indices.get(name).copied()
    }

    /// Name of the variable at `index`, if present.
    pub fn name_of(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(String::as_str)
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no variables are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over the registered names in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, String> {
        self.names.iter()
    }

    /// All registered names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, name) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "x{i}={name}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut vars = VarSet::new();
        let a = vars.var("a");
        let a_again = vars.var("a");
        assert_eq!(a.as_var(), a_again.as_var());
        assert_eq!(vars.len(), 1);
        let b = vars.var("b");
        assert_eq!(b.as_var(), Some(1));
        assert_eq!(vars.len(), 2);
        assert!(!vars.is_empty());
    }

    #[test]
    fn lookup_by_name_and_index() {
        let vars = VarSet::from_names(["x", "y", "z"]);
        assert_eq!(vars.index_of("y"), Some(1));
        assert_eq!(vars.index_of("missing"), None);
        assert_eq!(vars.name_of(2), Some("z"));
        assert_eq!(vars.name_of(9), None);
        assert_eq!(vars.existing_var("z").unwrap().as_var(), Some(2));
        assert!(vars.existing_var("missing").is_none());
        assert_eq!(vars.names(), &["x", "y", "z"]);
        let collected: Vec<&String> = vars.iter().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn display_lists_name_bindings() {
        let vars = VarSet::from_names(["d_err", "theta_err"]);
        let s = format!("{vars}");
        assert!(s.contains("x0=d_err"));
        assert!(s.contains("x1=theta_err"));
    }

    #[test]
    #[should_panic(expected = "duplicate variable name")]
    fn duplicate_names_panic() {
        let _ = VarSet::from_names(["x", "x"]);
    }

    #[test]
    fn empty_set() {
        let vars = VarSet::new();
        assert!(vars.is_empty());
        assert_eq!(vars.len(), 0);
    }
}
