//! Linear-scan register allocation over compiled tapes.
//!
//! A [`Tape`] (or a specialized [`TapeView`]) is an SSA program: every slot
//! is written exactly once and read by later slots.  Its stock evaluators
//! materialise *every* slot in a growable buffer, which is exactly what the
//! HC4 contractor's backward pass wants — but a forward-only evaluation
//! (feasibility classification, batched sweeps) touches far more memory than
//! it needs: most intermediate values die within a few instructions.
//!
//! [`AllocatedTape`] re-schedules the same program onto a *fixed register
//! file* (default [`DEFAULT_REGISTERS`]) using the classic linear-scan
//! discipline of SSA virtual machines (cf. fidget's `REGISTER_LIMIT`
//! backends): one forward pass computes each slot's last use, a second pass
//! walks the program keeping live values in registers and *spilling* to a
//! spill arena — emitting explicit [`RegInstr::Store`] / [`RegInstr::Load`]
//! instructions — when the file overflows.  Because slots are immutable, a
//! value is stored at most once; later evictions of a reloaded value are
//! free.
//!
//! The allocation is *bit-invisible*: evaluating an allocated tape performs
//! exactly the floating-point operations of the source program in the same
//! order, merely routing intermediate values through registers instead of
//! the dense slot buffer.  The batched struct-of-lanes evaluator
//! (`crate::batch`) builds on this: a register file of a couple dozen
//! multi-lane registers fits in L1 regardless of tape length.
//!
//! # Examples
//!
//! ```
//! use nncps_expr::{AllocatedTape, Expr, Tape};
//!
//! let x = Expr::var(0);
//! let f = (x.clone() * 2.0).tanh() + x.clone().powi(2);
//! let tape = Tape::compile(&f);
//! let alloc = AllocatedTape::from_tape(&tape, 4);
//! assert_eq!(
//!     alloc.eval_scalar(&tape, &[0.7]).to_bits(),
//!     tape.eval(&[0.7]).to_bits(),
//! );
//! ```

use nncps_interval::{Interval, IntervalBox};

use crate::tape::OpCode;
use crate::{BinaryOp, Tape, TapeView, UnaryOp};

/// Default register-file size of an [`AllocatedTape`].
///
/// Two dozen registers hold the live set of the paper's Lie-derivative
/// tapes without spilling while keeping a batched 8-lane register file
/// (24 × 8 lanes × 2 bounds × 8 bytes = 3 KiB) comfortably inside L1.
pub const DEFAULT_REGISTERS: usize = 24;

/// Sentinel for "no SSA slot" in the side table of [`AllocatedTape::ssa`].
const NO_SSA: u32 = u32::MAX;

/// One instruction of a register-allocated program.
///
/// Register operands (`dst`, `a`, `b`, `src`) index the fixed register
/// file; `spill` indexes the spill arena.  `Const` keeps indexing the
/// *parent tape's* constant pools (exactly like [`TapeView`]), so an
/// allocated tape borrows its constants instead of copying them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegInstr {
    /// Load constant-pool entry `index` into register `dst`.
    Const {
        /// Destination register.
        dst: u16,
        /// Index into the parent tape's constant pools.
        index: u32,
    },
    /// Load variable `var` into register `dst`.
    Var {
        /// Destination register.
        dst: u16,
        /// Variable index.
        var: u32,
    },
    /// Apply a unary operator to register `a`.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Destination register.
        dst: u16,
        /// Operand register.
        a: u16,
    },
    /// Apply a binary operator to registers `a` and `b`.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Destination register.
        dst: u16,
        /// First operand register.
        a: u16,
        /// Second operand register.
        b: u16,
    },
    /// Raise register `a` to the integer power `n`.
    Powi {
        /// Destination register.
        dst: u16,
        /// Operand register.
        a: u16,
        /// The exponent.
        n: i32,
    },
    /// Reload spill-arena entry `spill` into register `dst`.
    Load {
        /// Destination register.
        dst: u16,
        /// Spill-arena index.
        spill: u32,
    },
    /// Save register `src` to spill-arena entry `spill` (emitted once per
    /// spilled value; SSA values are immutable, so the copy stays valid).
    Store {
        /// Spill-arena index.
        spill: u32,
        /// Source register.
        src: u16,
    },
}

impl RegInstr {
    /// The destination register of a value-defining instruction (`None`
    /// for `Store`, which writes the spill arena instead).
    pub fn dst(&self) -> Option<u16> {
        match *self {
            RegInstr::Const { dst, .. }
            | RegInstr::Var { dst, .. }
            | RegInstr::Unary { dst, .. }
            | RegInstr::Binary { dst, .. }
            | RegInstr::Powi { dst, .. }
            | RegInstr::Load { dst, .. } => Some(dst),
            RegInstr::Store { .. } => None,
        }
    }
}

/// Where a root value lives after the program has run (registers hold the
/// values that were never evicted; evicted roots live in the spill arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootLoc {
    /// The root value is in this register.
    Reg(u16),
    /// The root value is in this spill-arena entry.
    Spill(u32),
}

/// A register-allocated form of a [`Tape`] or [`TapeView`].
///
/// Built by [`RegAlloc`] (or the [`AllocatedTape::from_tape`] /
/// [`AllocatedTape::from_view`] conveniences).  The allocated program is
/// the bit-invisible register-machine schedule of its source: same
/// operations, same order, plus `Load`/`Store` data movement.  It does not
/// own constants — evaluation takes the parent [`Tape`] exactly like
/// [`TapeView`] evaluation does.
///
/// # Examples
///
/// Forcing a tiny register file makes the allocator spill:
///
/// ```
/// use nncps_expr::{AllocatedTape, Expr, RegInstr, Tape};
///
/// let x = Expr::var(0);
/// let y = Expr::var(1);
/// // A wide expression: many values live at once.
/// let f = x.clone().sin() * y.clone().cos() + x.clone().exp() * y.clone().tanh();
/// let tape = Tape::compile(&f);
/// let alloc = AllocatedTape::from_tape(&tape, 2);
/// assert_eq!(alloc.num_registers(), 2);
/// assert!(alloc.num_spill_slots() > 0);
/// assert!(alloc
///     .instructions()
///     .iter()
///     .any(|i| matches!(i, RegInstr::Store { .. })));
/// // ... and stays bit-identical to the unallocated program.
/// assert_eq!(
///     alloc.eval_scalar(&tape, &[0.3, -0.8]).to_bits(),
///     tape.eval(&[0.3, -0.8]).to_bits(),
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct AllocatedTape {
    /// The register program.
    instrs: Vec<RegInstr>,
    /// Per instruction: the source SSA slot it defines, or [`NO_SSA`] for
    /// pure data movement (`Load`/`Store`).  Recording evaluators use this
    /// to materialise the full slot buffer the HC4 backward pass expects.
    ssa: Vec<u32>,
    /// Per source root: where its value lives after the program has run
    /// (`None` for roots dropped by specialization).
    root_loc: Vec<Option<RootLoc>>,
    /// Per source slot: the choice-site id of that slot
    /// ([`crate::tape::NO_CHOICE`] for non-sites).  Copied from the source
    /// program so recording batch sweeps can emit choice traces without
    /// consulting it.
    pub(crate) choice_of: Vec<u16>,
    /// Register-file size the program was allocated for.
    num_registers: usize,
    /// Spill-arena size the program requires.
    num_spill_slots: usize,
    /// Length of the source program (slots `0..source_len`).
    source_len: usize,
}

impl AllocatedTape {
    /// Register-allocates a whole tape (see [`RegAlloc::allocate_tape_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `registers < 2` or `registers >= u16::MAX`.
    pub fn from_tape(tape: &Tape, registers: usize) -> AllocatedTape {
        let mut out = AllocatedTape::default();
        RegAlloc::new().allocate_tape_into(tape, registers, &mut out);
        out
    }

    /// Register-allocates a specialized view (see
    /// [`RegAlloc::allocate_view_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `registers < 2` or `registers >= u16::MAX`.
    pub fn from_view(view: &TapeView, registers: usize) -> AllocatedTape {
        let mut out = AllocatedTape::default();
        RegAlloc::new().allocate_view_into(view, registers, &mut out);
        out
    }

    /// The allocated instruction stream.
    pub fn instructions(&self) -> &[RegInstr] {
        &self.instrs
    }

    /// Per instruction, the source slot it defines (`None` for
    /// `Load`/`Store` data movement).
    pub fn defined_slot(&self, instr: usize) -> Option<usize> {
        let ssa = self.ssa[instr];
        (ssa != NO_SSA).then_some(ssa as usize)
    }

    /// Register-file size the program was allocated for.
    pub fn num_registers(&self) -> usize {
        self.num_registers
    }

    /// Spill-arena size the program requires (0 when nothing spilled).
    pub fn num_spill_slots(&self) -> usize {
        self.num_spill_slots
    }

    /// Number of instructions in the source program (every source slot is
    /// defined by exactly one allocated instruction).
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Number of root entries (equal to the source program's root count).
    pub fn num_roots(&self) -> usize {
        self.root_loc.len()
    }

    /// Where root `k`'s value lives after the program has run, or `None`
    /// when the root was dropped by specialization.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.num_roots()`.
    pub fn root_loc(&self, k: usize) -> Option<RootLoc> {
        self.root_loc[k]
    }

    /// Evaluates the allocated program on scalar inputs, returning the
    /// value of root 0.
    ///
    /// Bit-identical to [`Tape::eval`] on the source program.  Allocates
    /// scratch internally; hot paths should use
    /// [`AllocatedTape::eval_scalar_roots_into`].
    ///
    /// # Panics
    ///
    /// Panics if `tape` is not the parent of the source program, `values`
    /// is shorter than the variables referenced, or root 0 was dropped.
    pub fn eval_scalar(&self, tape: &Tape, values: &[f64]) -> f64 {
        let mut scratch = RegScratch::default();
        let mut roots = Vec::new();
        self.eval_scalar_roots_into(tape, values, &mut scratch, &mut roots);
        roots[0].expect("root 0 was dropped by specialization")
    }

    /// Evaluates the allocated program on scalar inputs, collecting every
    /// root value into `roots` (`None` for dropped roots).
    ///
    /// Reuses `scratch` and `roots`; zero heap allocations once warm.
    ///
    /// # Panics
    ///
    /// Panics if `tape` is not the parent of the source program or
    /// `values` is shorter than the variables referenced.
    pub fn eval_scalar_roots_into(
        &self,
        tape: &Tape,
        values: &[f64],
        scratch: &mut RegScratch,
        roots: &mut Vec<Option<f64>>,
    ) {
        let regs = &mut scratch.scalar_regs;
        let spill = &mut scratch.scalar_spill;
        regs.clear();
        regs.resize(self.num_registers, 0.0);
        spill.clear();
        spill.resize(self.num_spill_slots, 0.0);
        for instr in &self.instrs {
            match *instr {
                RegInstr::Const { dst, index } => {
                    regs[dst as usize] = tape.const_scalars[index as usize];
                }
                RegInstr::Var { dst, var } => regs[dst as usize] = values[var as usize],
                RegInstr::Unary { op, dst, a } => {
                    regs[dst as usize] = op.apply(regs[a as usize]);
                }
                RegInstr::Binary { op, dst, a, b } => {
                    regs[dst as usize] = op.apply(regs[a as usize], regs[b as usize]);
                }
                RegInstr::Powi { dst, a, n } => regs[dst as usize] = regs[a as usize].powi(n),
                RegInstr::Load { dst, spill: s } => regs[dst as usize] = spill[s as usize],
                RegInstr::Store { spill: s, src } => spill[s as usize] = regs[src as usize],
            }
        }
        roots.clear();
        roots.extend(self.root_loc.iter().map(|loc| {
            loc.map(|loc| match loc {
                RootLoc::Reg(r) => regs[r as usize],
                RootLoc::Spill(s) => spill[s as usize],
            })
        }));
    }

    /// Evaluates the allocated program over an interval box, collecting
    /// every root enclosure into `roots` (`None` for dropped roots).
    ///
    /// Bit-identical to [`Tape::eval_interval_into`] (respectively
    /// [`TapeView::eval_interval_into`]) on the source program: the same
    /// outward-rounded interval kernels run in the same order.  Reuses
    /// `scratch` and `roots`; zero heap allocations once warm.
    ///
    /// # Panics
    ///
    /// Panics if `tape` is not the parent of the source program or the
    /// region has fewer dimensions than the variables referenced.
    pub fn eval_interval_roots_into(
        &self,
        tape: &Tape,
        region: &IntervalBox,
        scratch: &mut RegScratch,
        roots: &mut Vec<Option<Interval>>,
    ) {
        let regs = &mut scratch.interval_regs;
        let spill = &mut scratch.interval_spill;
        regs.clear();
        regs.resize(self.num_registers, Interval::EMPTY);
        spill.clear();
        spill.resize(self.num_spill_slots, Interval::EMPTY);
        for instr in &self.instrs {
            match *instr {
                RegInstr::Const { dst, index } => {
                    regs[dst as usize] = tape.const_intervals[index as usize];
                }
                RegInstr::Var { dst, var } => regs[dst as usize] = region[var as usize],
                RegInstr::Unary { op, dst, a } => {
                    regs[dst as usize] = op.apply_interval(regs[a as usize]);
                }
                RegInstr::Binary { op, dst, a, b } => {
                    regs[dst as usize] = op.apply_interval(regs[a as usize], regs[b as usize]);
                }
                RegInstr::Powi { dst, a, n } => regs[dst as usize] = regs[a as usize].powi(n),
                RegInstr::Load { dst, spill: s } => regs[dst as usize] = spill[s as usize],
                RegInstr::Store { spill: s, src } => spill[s as usize] = regs[src as usize],
            }
        }
        roots.clear();
        roots.extend(self.root_loc.iter().map(|loc| {
            loc.map(|loc| match loc {
                RootLoc::Reg(r) => regs[r as usize],
                RootLoc::Spill(s) => spill[s as usize],
            })
        }));
    }
}

/// Reusable scratch of the single-box [`AllocatedTape`] evaluators: the
/// scalar and interval register files and spill arenas.
#[derive(Debug, Clone, Default)]
pub struct RegScratch {
    scalar_regs: Vec<f64>,
    scalar_spill: Vec<f64>,
    interval_regs: Vec<Interval>,
    interval_spill: Vec<Interval>,
}

/// Reusable linear-scan allocator state.
///
/// Allocation into an existing [`AllocatedTape`] reuses every internal
/// buffer, so re-allocating per specialized view in the solver's
/// steady-state loop performs zero heap allocations once warm (proved by
/// `crates/deltasat/tests/allocation_free.rs`).
///
/// # Examples
///
/// ```
/// use nncps_expr::{AllocatedTape, Expr, RegAlloc, Tape};
///
/// let x = Expr::var(0);
/// let tape = Tape::compile(&(x.clone().sin() + x.clone().cos()));
/// let mut alloc = RegAlloc::new();
/// let mut out = AllocatedTape::default();
/// alloc.allocate_tape_into(&tape, 8, &mut out);
/// assert_eq!(out.source_len(), tape.num_slots());
/// ```
#[derive(Debug, Default)]
pub struct RegAlloc {
    /// Per source slot: index of the last instruction reading it
    /// (`usize::MAX` for roots, which stay live to the end).
    last_use: Vec<usize>,
    /// Per source slot: register currently holding it (`u16::MAX` = none).
    reg_of: Vec<u16>,
    /// Per source slot: assigned spill-arena entry (`u32::MAX` = none).
    spill_of: Vec<u32>,
    /// Per register: source slot currently resident (`u32::MAX` = free).
    resident: Vec<u32>,
}

/// Sentinels of the allocator's dense maps.
const NO_REG: u16 = u16::MAX;
const NO_SPILL: u32 = u32::MAX;
const FREE: u32 = u32::MAX;
/// Root sentinel of [`TapeView`] raw roots (dropped by specialization).
const DROPPED: u32 = u32::MAX;

impl RegAlloc {
    /// Creates a fresh allocator.
    pub fn new() -> RegAlloc {
        RegAlloc::default()
    }

    /// Register-allocates a whole tape into `out`, reusing both `self`'s
    /// and `out`'s buffers.
    ///
    /// # Panics
    ///
    /// Panics if `registers < 2` (a binary operator needs two simultaneous
    /// operand registers) or `registers > u16::MAX + 1`.
    pub fn allocate_tape_into(&mut self, tape: &Tape, registers: usize, out: &mut AllocatedTape) {
        self.allocate(
            &tape.ops,
            &tape.lhs,
            &tape.rhs,
            &tape.roots,
            &tape.choice_index,
            registers,
            out,
        );
    }

    /// Register-allocates a specialized view into `out`, reusing both
    /// `self`'s and `out`'s buffers.
    ///
    /// The allocated program's SSA side table indexes *view* slots, so a
    /// recording evaluation lines up with the view's slot buffer exactly as
    /// [`TapeView::eval_interval_into`] fills it.
    ///
    /// # Panics
    ///
    /// Panics if `registers < 2` or `registers >= u16::MAX`.
    pub fn allocate_view_into(
        &mut self,
        view: &TapeView,
        registers: usize,
        out: &mut AllocatedTape,
    ) {
        let (ops, lhs, rhs, roots) = view.raw_parts();
        self.allocate(
            ops,
            lhs,
            rhs,
            roots,
            view.choice_id_column(),
            registers,
            out,
        );
    }

    /// The linear scan over raw program columns (shared by tape and view).
    #[allow(clippy::too_many_arguments)]
    fn allocate(
        &mut self,
        ops: &[OpCode],
        lhs: &[u32],
        rhs: &[u32],
        roots: &[u32],
        choice_of: &[u16],
        registers: usize,
        out: &mut AllocatedTape,
    ) {
        assert!(
            registers >= 2,
            "register file must hold at least 2 registers, got {registers}"
        );
        assert!(
            registers < u16::MAX as usize,
            "register file too large: {registers}"
        );
        let n = ops.len();

        // Pass 1: last use per slot; roots stay live to the end of the
        // program so their values remain addressable afterwards.
        self.last_use.clear();
        self.last_use.resize(n, 0);
        for i in 0..n {
            match ops[i] {
                OpCode::Const | OpCode::Var => {}
                OpCode::Unary(_) | OpCode::Powi => self.last_use[lhs[i] as usize] = i,
                OpCode::Binary(_) => {
                    self.last_use[lhs[i] as usize] = i;
                    self.last_use[rhs[i] as usize] = i;
                }
            }
        }
        for &root in roots {
            if root != DROPPED {
                self.last_use[root as usize] = usize::MAX;
            }
        }

        // Pass 2: forward scan, keeping live values in registers.
        self.reg_of.clear();
        self.reg_of.resize(n, NO_REG);
        self.spill_of.clear();
        self.spill_of.resize(n, NO_SPILL);
        self.resident.clear();
        self.resident.resize(registers, FREE);
        out.instrs.clear();
        out.ssa.clear();
        out.root_loc.clear();
        out.choice_of.clear();
        out.choice_of.extend_from_slice(choice_of);
        out.num_registers = registers;
        out.num_spill_slots = 0;
        out.source_len = n;

        for i in 0..n {
            let (a, b) = match ops[i] {
                OpCode::Const | OpCode::Var => (NO_REG, NO_REG),
                OpCode::Unary(_) | OpCode::Powi => {
                    (self.ensure_in_reg(lhs[i] as usize, NO_REG, out), NO_REG)
                }
                OpCode::Binary(_) => {
                    let a = self.ensure_in_reg(lhs[i] as usize, NO_REG, out);
                    let b = self.ensure_in_reg(rhs[i] as usize, a, out);
                    (a, b)
                }
            };
            // Operands dying here free their registers *before* the
            // destination is chosen: the evaluator reads operands before
            // writing `dst`, so `dst` may reuse a dying operand's register.
            for operand in [a, b] {
                if operand != NO_REG {
                    let slot = self.resident[operand as usize];
                    if slot != FREE && self.last_use[slot as usize] <= i {
                        self.resident[operand as usize] = FREE;
                        self.reg_of[slot as usize] = NO_REG;
                    }
                }
            }
            let dst = self.take_register(NO_REG, out);
            self.resident[dst as usize] = i as u32;
            self.reg_of[i] = dst;
            out.instrs.push(match ops[i] {
                OpCode::Const => RegInstr::Const { dst, index: lhs[i] },
                OpCode::Var => RegInstr::Var { dst, var: lhs[i] },
                OpCode::Unary(op) => RegInstr::Unary { op, dst, a },
                OpCode::Binary(op) => RegInstr::Binary { op, dst, a, b },
                OpCode::Powi => RegInstr::Powi {
                    dst,
                    a,
                    n: rhs[i] as i32,
                },
            });
            out.ssa.push(i as u32);
            // A value never read and not a root dies immediately.
            if self.last_use[i] <= i {
                self.resident[dst as usize] = FREE;
                self.reg_of[i] = NO_REG;
            }
        }

        out.root_loc.extend(roots.iter().map(|&root| {
            if root == DROPPED {
                return None;
            }
            let slot = root as usize;
            Some(if self.reg_of[slot] != NO_REG {
                RootLoc::Reg(self.reg_of[slot])
            } else {
                RootLoc::Spill(self.spill_of[slot])
            })
        }));
    }

    /// Makes sure `slot` is in a register (reloading it from the spill
    /// arena if necessary), never touching `locked`.
    fn ensure_in_reg(&mut self, slot: usize, locked: u16, out: &mut AllocatedTape) -> u16 {
        if self.reg_of[slot] != NO_REG {
            return self.reg_of[slot];
        }
        let dst = self.take_register(locked, out);
        out.instrs.push(RegInstr::Load {
            dst,
            spill: self.spill_of[slot],
        });
        out.ssa.push(NO_SSA);
        self.resident[dst as usize] = slot as u32;
        self.reg_of[slot] = dst;
        dst
    }

    /// Claims a register: the lowest free one, or — when the file is full —
    /// evicts the resident value whose last use is furthest away (emitting
    /// its one-time `Store` if it was never spilled).  Never picks `locked`.
    fn take_register(&mut self, locked: u16, out: &mut AllocatedTape) -> u16 {
        for (r, &slot) in self.resident.iter().enumerate() {
            if slot == FREE && r as u16 != locked {
                return r as u16;
            }
        }
        let victim = self
            .resident
            .iter()
            .enumerate()
            .filter(|&(r, _)| r as u16 != locked)
            .max_by_key(|&(r, &slot)| (self.last_use[slot as usize], std::cmp::Reverse(r)))
            .map(|(r, _)| r as u16)
            .expect("register file has at least 2 registers");
        let evicted = self.resident[victim as usize] as usize;
        if self.spill_of[evicted] == NO_SPILL {
            let spill = out.num_spill_slots as u32;
            out.num_spill_slots += 1;
            self.spill_of[evicted] = spill;
            out.instrs.push(RegInstr::Store { spill, src: victim });
            out.ssa.push(NO_SSA);
        }
        self.reg_of[evicted] = NO_REG;
        self.resident[victim as usize] = FREE;
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TapeInstr;
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// Builds a random expression DAG from a script of small integers: a
    /// stack machine where each opcode either pushes a leaf or combines the
    /// top of the stack.  Reused (in spirit) by the lane-oracle integration
    /// suite; deterministic in the script, and rich in shared subtrees
    /// because operands are cloned from arbitrary stack depths.
    pub(crate) fn dag_from_script(script: &[usize], num_vars: usize) -> Expr {
        let mut stack: Vec<Expr> = vec![Expr::var(0)];
        for (i, &code) in script.iter().enumerate() {
            let pick = |d: usize| stack[(i + d) % stack.len()].clone();
            let e = match code % 14 {
                0 => Expr::var(i % num_vars.max(1)),
                1 => Expr::constant((i as f64 - 3.0) * 0.37),
                2 => pick(0).sin(),
                3 => pick(0).tanh(),
                4 => pick(1).abs(),
                5 => pick(0).exp(),
                6 => pick(1).atan(),
                7 => pick(0).powi((i % 4) as i32 + 2),
                8 => pick(0) + pick(1),
                9 => pick(0) - pick(2),
                10 => pick(0) * pick(1),
                11 => pick(0).min(pick(2)),
                12 => pick(1).max(pick(0)),
                _ => pick(0) * 0.5 + pick(1),
            };
            stack.push(e);
        }
        stack
            .into_iter()
            .reduce(|acc, e| acc + e)
            .expect("stack starts non-empty")
    }

    use crate::Expr;

    /// A wide expression with many simultaneously live values, forcing a
    /// tiny register file into heavy spilling.
    fn wide_expr() -> Expr {
        let x = Expr::var(0);
        let y = Expr::var(1);
        let terms = [
            x.clone().sin() * y.clone().cos(),
            x.clone().exp() * y.clone().tanh(),
            (x.clone() * y.clone()).atan(),
            (x.clone() - y.clone()).powi(3),
            x.clone().sigmoid() + y.clone().sqrt().abs(),
        ];
        let sum = terms.iter().cloned().reduce(|a, b| a + b).unwrap();
        // A min/max cone over large sub-cones exercises liveness across
        // the clamp structure of the paper's saturated controllers.
        sum.clone().min(terms[0].clone().max(sum * 0.5))
    }

    /// Replays an allocated program symbolically, checking that every
    /// operand register holds exactly the source slot the original program
    /// reads, that loads only read stored values, and that root locations
    /// are accurate.  This is the structural proof that liveness tracking
    /// is correct for any schedule the allocator emits.
    fn assert_well_formed(tape: &Tape, alloc: &AllocatedTape) {
        let mut reg_state: Vec<Option<u32>> = vec![None; alloc.num_registers()];
        let mut spill_state: Vec<Option<u32>> = vec![None; alloc.num_spill_slots()];
        let mut defined = vec![false; alloc.source_len()];
        for (pc, instr) in alloc.instructions().iter().enumerate() {
            match *instr {
                RegInstr::Load { dst, spill } => {
                    let slot = spill_state[spill as usize].expect("load of an unwritten spill");
                    reg_state[dst as usize] = Some(slot);
                    assert!(alloc.defined_slot(pc).is_none());
                }
                RegInstr::Store { spill, src } => {
                    let slot = reg_state[src as usize].expect("store of an unwritten register");
                    spill_state[spill as usize] = Some(slot);
                    assert!(alloc.defined_slot(pc).is_none());
                }
                _ => {
                    let ssa = alloc.defined_slot(pc).expect("defining instruction") as u32;
                    assert!(!defined[ssa as usize], "slot {ssa} defined twice");
                    defined[ssa as usize] = true;
                    let expect_operands = match tape.instr(ssa as usize) {
                        TapeInstr::Const(..) | TapeInstr::Var(_) => (None, None),
                        TapeInstr::Unary(_, a) | TapeInstr::Powi(a, _) => (Some(a as u32), None),
                        TapeInstr::Binary(_, a, b) => (Some(a as u32), Some(b as u32)),
                    };
                    let got_operands = match *instr {
                        RegInstr::Unary { a, .. } | RegInstr::Powi { a, .. } => {
                            (reg_state[a as usize], None)
                        }
                        RegInstr::Binary { a, b, .. } => {
                            (reg_state[a as usize], reg_state[b as usize])
                        }
                        _ => (None, None),
                    };
                    assert_eq!(
                        got_operands,
                        (
                            expect_operands.0.map(Some).unwrap_or_default(),
                            expect_operands.1.map(Some).unwrap_or_default()
                        ),
                        "instruction {pc} reads the wrong values"
                    );
                    let dst = instr.dst().unwrap();
                    reg_state[dst as usize] = Some(ssa);
                }
            }
        }
        assert!(defined.iter().all(|&d| d), "every source slot is defined");
        for k in 0..alloc.num_roots() {
            let root = tape.roots[k];
            match alloc.root_loc(k).expect("tape roots are never dropped") {
                RootLoc::Reg(r) => assert_eq!(reg_state[r as usize], Some(root)),
                RootLoc::Spill(s) => assert_eq!(spill_state[s as usize], Some(root)),
            }
        }
    }

    /// Bitwise comparison of allocated scalar and interval evaluation
    /// against the stock tape evaluators.
    fn assert_bit_identical(tape: &Tape, alloc: &AllocatedTape, values: &[f64]) {
        let mut scratch = RegScratch::default();
        let mut scalar_roots = Vec::new();
        alloc.eval_scalar_roots_into(tape, values, &mut scratch, &mut scalar_roots);
        let mut slots = Vec::new();
        tape.eval_scalar_into(values, &mut slots);
        for k in 0..tape.num_roots() {
            assert_eq!(
                scalar_roots[k].unwrap().to_bits(),
                slots[tape.root_slot(k)].to_bits(),
                "scalar root {k} diverged"
            );
        }

        let bounds: Vec<(f64, f64)> = values.iter().map(|&v| (v - 0.25, v + 0.5)).collect();
        let region = IntervalBox::from_bounds(&bounds);
        let mut interval_roots = Vec::new();
        alloc.eval_interval_roots_into(tape, &region, &mut scratch, &mut interval_roots);
        let mut islots = Vec::new();
        tape.eval_interval_into(&region, &mut islots);
        for k in 0..tape.num_roots() {
            let got = interval_roots[k].unwrap();
            let want = islots[tape.root_slot(k)];
            assert_eq!(got.lo().to_bits(), want.lo().to_bits());
            assert_eq!(got.hi().to_bits(), want.hi().to_bits());
        }
    }

    #[test]
    fn tiny_register_files_spill_and_stay_bit_identical() {
        let tape = Tape::compile(&wide_expr());
        let full = AllocatedTape::from_tape(&tape, DEFAULT_REGISTERS);
        for registers in [2, 3, 4, 8, DEFAULT_REGISTERS] {
            let alloc = AllocatedTape::from_tape(&tape, registers);
            assert_eq!(alloc.num_registers(), registers);
            assert_eq!(alloc.source_len(), tape.num_slots());
            assert_well_formed(&tape, &alloc);
            assert_bit_identical(&tape, &alloc, &[0.7, -0.4]);
            assert_bit_identical(&tape, &alloc, &[-2.5, 1.9]);
            if registers == 2 {
                let stores = alloc
                    .instructions()
                    .iter()
                    .filter(|i| matches!(i, RegInstr::Store { .. }))
                    .count();
                assert!(stores > 0, "2 registers must force spilling");
                assert!(alloc.num_spill_slots() >= stores);
            }
        }
        // A comfortable register file for this tape should avoid spills
        // entirely (the live set is small).
        assert_eq!(full.num_spill_slots(), 0);
    }

    #[test]
    fn liveness_spans_min_max_dependency_cones() {
        // Both cones of the clamp stay live across each other's
        // evaluation; a 3-register file must juggle them through spills
        // without ever handing an operator a stale value.
        let x = Expr::var(0);
        let y = Expr::var(1);
        let cone_a = (x.clone().sin() + y.clone().cos()) * (x.clone() - y.clone()).tanh();
        let cone_b = (x.clone() * y.clone()).exp() + x.clone().atan() * 0.3;
        let clamped = cone_a
            .clone()
            .max(cone_b.clone())
            .min(cone_a * 0.5 + cone_b);
        let tape = Tape::compile(&clamped);
        for registers in [2, 3, 4] {
            let alloc = AllocatedTape::from_tape(&tape, registers);
            assert_well_formed(&tape, &alloc);
            assert_bit_identical(&tape, &alloc, &[0.31, -1.2]);
        }
    }

    #[test]
    fn multiple_roots_stay_addressable_after_the_program() {
        let x = Expr::var(0);
        let exprs: Vec<Expr> = (0..6)
            .map(|i| (x.clone() * (i as f64 + 0.5)).tanh() + x.clone().powi(i + 2))
            .collect();
        let tape = Tape::compile_many(&exprs);
        // 2 registers cannot hold 6 roots: most roots must end in the
        // spill arena, and their recorded locations must stay accurate.
        let alloc = AllocatedTape::from_tape(&tape, 2);
        assert_well_formed(&tape, &alloc);
        assert_bit_identical(&tape, &alloc, &[0.83]);
        let spilled_roots = (0..alloc.num_roots())
            .filter(|&k| matches!(alloc.root_loc(k), Some(RootLoc::Spill(_))))
            .count();
        assert!(spilled_roots >= 4, "got {spilled_roots} spilled roots");
    }

    #[test]
    fn allocator_and_output_buffers_are_reusable() {
        let tape_a = Tape::compile(&wide_expr());
        let tape_b = Tape::compile(&(Expr::var(0).sin() + 1.0));
        let mut ra = RegAlloc::new();
        let mut out = AllocatedTape::default();
        ra.allocate_tape_into(&tape_a, 4, &mut out);
        let len_a = out.instructions().len();
        // Re-allocating a different (smaller) program into the same
        // buffers must fully reset the output.
        ra.allocate_tape_into(&tape_b, 4, &mut out);
        assert!(out.instructions().len() < len_a);
        assert_eq!(out.source_len(), tape_b.num_slots());
        assert_well_formed(&tape_b, &out);
        assert_bit_identical(&tape_b, &out, &[1.1]);
    }

    proptest! {
        #[test]
        fn prop_allocated_eval_matches_unallocated_eval_bitwise(
            script in vec(0usize..14, 4..80),
            registers in 2usize..27,
            a in -3.0f64..3.0,
            b in -3.0f64..3.0,
            c in -3.0f64..3.0,
        ) {
            let expr = dag_from_script(&script, 3);
            let tape = Tape::compile(&expr);
            let alloc = AllocatedTape::from_tape(&tape, registers);
            assert_well_formed(&tape, &alloc);
            let values = [a, b, c];
            let mut scratch = RegScratch::default();
            let mut roots = Vec::new();
            alloc.eval_scalar_roots_into(&tape, &values, &mut scratch, &mut roots);
            prop_assert_eq!(
                roots[0].unwrap().to_bits(),
                tape.eval(&values).to_bits()
            );
            let region = IntervalBox::from_bounds(&[(a, a + 0.7), (b, b + 0.1), (c, c + 2.0)]);
            let mut iroots = Vec::new();
            alloc.eval_interval_roots_into(&tape, &region, &mut scratch, &mut iroots);
            let mut slots = Vec::new();
            tape.eval_interval_into(&region, &mut slots);
            let want = slots[tape.root_slot(0)];
            let got = iroots[0].unwrap();
            prop_assert_eq!(got.lo().to_bits(), want.lo().to_bits());
            prop_assert_eq!(got.hi().to_bits(), want.hi().to_bits());
        }
    }
}
