//! Region specialization: shortening a compiled [`Tape`] for a sub-region.
//!
//! The δ-SAT branch-and-prune search evaluates the same tape thousands of
//! times over a shrinking tree of boxes.  Deep in that tree most of the
//! program is already decided: a `min`/`max` whose branches no longer
//! overlap always selects the same operand, a sign-decided `abs` is a plain
//! copy or negation, and the losing branch's whole dependency cone is dead
//! weight.  A [`TapeView`] is a shortened, renumbered view of a tape that
//! drops exactly those instructions for one region — the fidget-style
//! "shorten on descent" idea — so work per box shrinks as boxes shrink.
//!
//! # Bit-identity
//!
//! Specialization is *bit-invisible*: for every point of the region and for
//! every sub-box of the region, evaluating a [`TapeView`] produces exactly
//! the same bits as evaluating the full tape (for the roots the view keeps).
//! Only rewrites with that property are performed:
//!
//! * `min(a, b)` where the recorded enclosures satisfy `a.hi < b.lo` is an
//!   alias of `a`: on any sub-box the operand enclosures can only shrink, so
//!   the comparison stays strict and both the interval result
//!   (`[min(lo), min(hi)] = a`) and the scalar result (`pa < pb`) are
//!   bitwise `a`.  Symmetrically for `max`.
//! * `abs(a)` with `a.lo > 0` is an alias of `a`; with `a.hi < 0` it is
//!   rewritten to `neg(a)` ([`Interval::abs`] returns exactly `-a` there,
//!   and IEEE `abs`/negation agree bit-for-bit on negative values).
//! * Instructions reachable only from dropped roots are removed.
//!
//! A `min`/`max` is only aliased when the *chosen* operand provably cannot
//! evaluate to NaN at a point of the region (a cheap conservative taint
//! analysis over the recorded enclosures): IEEE `min`/`max` swallow a NaN
//! operand, so aliasing a NaN-able branch would change scalar results.
//!
//! Saturated monotone activations (`tanh`, `sigmoid`) are *not* folded to
//! constants: their interval enclosure keeps an outward-rounded width (for
//! example `[1 − ulp, 1]`) whose exact bits on a sub-box depend on the
//! underlying libm, so folding them could not guarantee bit-identity.  Their
//! cost is one instruction; the pay-off of specialization is in the dead
//! cones of decided choices and decided constraint atoms.
//!
//! # Examples
//!
//! ```
//! use nncps_expr::{Expr, SpecializeScratch, Tape};
//! use nncps_interval::IntervalBox;
//!
//! let x = Expr::var(0);
//! // max(x², −x²) and the dead branch's extra work.
//! let f = x.clone().powi(2).max(-(x.clone().powi(2))) + x.clone().sin();
//! let tape = Tape::compile(&f);
//!
//! // On [1, 2] the two branches cannot overlap: x² ∈ [1, 4], −x² ∈ [−4, −1].
//! let region = IntervalBox::from_bounds(&[(1.0, 2.0)]);
//! let mut scratch = SpecializeScratch::default();
//! let view = tape.specialize(&region, &mut scratch);
//! assert!(view.len() < tape.num_slots());
//!
//! // Bit-identical on any sub-box and point of the region.
//! let sub = IntervalBox::from_bounds(&[(1.25, 1.5)]);
//! let mut full = Vec::new();
//! let mut short = Vec::new();
//! tape.eval_interval_into(&sub, &mut full);
//! view.eval_interval_into(&tape, &sub, &mut short);
//! let root = view.root_slot(0).unwrap();
//! assert_eq!(short[root].lo().to_bits(), full[tape.root_slot(0)].lo().to_bits());
//! assert_eq!(short[root].hi().to_bits(), full[tape.root_slot(0)].hi().to_bits());
//! ```

use nncps_interval::{Interval, IntervalBox};

use crate::tape::OpCode;
use crate::{BinaryOp, Tape, TapeInstr, UnaryOp};

/// Sentinel for a dropped root in [`TapeView::roots`].
const DROPPED: u32 = u32::MAX;

/// What specialization does with one source instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Emit the instruction unchanged (operands renumbered).
    Keep,
    /// The instruction always equals its left operand; emit nothing.
    AliasLhs,
    /// The instruction always equals its right operand; emit nothing.
    AliasRhs,
    /// A sign-decided `abs` of a negative operand: emit `neg` instead.
    RewriteNeg,
}

/// Reusable buffers for [`Tape::specialize`] / [`TapeView::respecialize_into`].
///
/// Create one per worker and pass it to every call; the buffers grow to a
/// high-water mark on first use and are reused allocation-free afterwards.
#[derive(Debug, Default, Clone)]
pub struct SpecializeScratch {
    /// Forward interval values (used by [`Tape::specialize`] only).
    slots: Vec<Interval>,
    /// Per-slot "scalar evaluation may be NaN" flag.
    taint: Vec<bool>,
    /// Per-slot rewrite decision.
    action: Vec<Action>,
    /// Per-slot liveness under the kept roots.
    live: Vec<bool>,
    /// Source slot → view slot renumbering.
    slot_map: Vec<u32>,
}

/// A shortened, renumbered view of a [`Tape`], specialized to a region.
///
/// A view borrows nothing: it stores its own instruction columns (constants
/// keep indexing the parent tape's pools), so views can be pooled and reused
/// by the solver without lifetime entanglement.  All evaluation entry points
/// take the parent tape explicitly.
///
/// Views can be re-specialized from views ([`TapeView::respecialize_into`]),
/// so a descent can keep shortening: the cost of each specialization is
/// proportional to the *current* view length, not the full tape.
#[derive(Debug, Default, Clone)]
pub struct TapeView {
    ops: Vec<OpCode>,
    lhs: Vec<u32>,
    rhs: Vec<u32>,
    /// Per original root: slot in this view, or [`DROPPED`].
    roots: Vec<u32>,
}

impl Tape {
    /// Specializes the tape to `region`: performs one forward interval sweep
    /// and prunes every instruction that is decided on the region (see the
    /// [module documentation](crate::specialize) for the exact — and
    /// bit-invisible — rewrite rules).  All roots are kept.
    ///
    /// The forward sweep is the same work [`Tape::eval_interval_into`] does,
    /// so callers that already hold the forward slot values of a region
    /// should prefer [`Tape::specialize_from_slots`] and pay nothing extra.
    ///
    /// # Panics
    ///
    /// Panics if the tape references a variable index out of bounds for the
    /// box.
    pub fn specialize(&self, region: &IntervalBox, scratch: &mut SpecializeScratch) -> TapeView {
        let mut slots = std::mem::take(&mut scratch.slots);
        self.eval_interval_into(region, &mut slots);
        let mut out = TapeView::default();
        let keep = vec![true; self.num_roots()];
        self.specialize_from_slots(&slots, &keep, scratch, &mut out);
        scratch.slots = slots;
        out
    }

    /// Specializes the tape given the forward interval values `slots` of a
    /// region (as produced by [`Tape::eval_interval_into`]), keeping only the
    /// roots with `keep_root[k] == true`, writing the shortened view into
    /// `out` (cleared and refilled; no allocation once warm).
    ///
    /// Returns `true` when the view is strictly shorter than the source (an
    /// instruction was pruned or a root dropped), `false` when specialization
    /// found nothing to do.
    ///
    /// # Panics
    ///
    /// Panics if `slots.len() < self.num_slots()` or
    /// `keep_root.len() != self.num_roots()`.
    pub fn specialize_from_slots(
        &self,
        slots: &[Interval],
        keep_root: &[bool],
        scratch: &mut SpecializeScratch,
        out: &mut TapeView,
    ) -> bool {
        specialize_program(
            self,
            &self.ops,
            &self.lhs,
            &self.rhs,
            &self.roots,
            slots,
            keep_root,
            scratch,
            out,
        )
    }
}

impl TapeView {
    /// The identity view of a tape: every instruction, every root.
    ///
    /// This is the root of a specialization descent; derive shorter views
    /// from it with [`TapeView::respecialize_into`].
    pub fn full(tape: &Tape) -> TapeView {
        TapeView {
            ops: tape.ops.clone(),
            lhs: tape.lhs.clone(),
            rhs: tape.rhs.clone(),
            roots: tape.roots.clone(),
        }
    }

    /// Raw program columns for crate-internal passes (register allocation
    /// walks `ops`/`lhs`/`rhs`/`roots` directly; dropped roots carry the
    /// `DROPPED` sentinel).
    pub(crate) fn raw_parts(&self) -> (&[OpCode], &[u32], &[u32], &[u32]) {
        (&self.ops, &self.lhs, &self.rhs, &self.roots)
    }

    /// Number of instructions in the view.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the view contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of root entries (equal to the parent tape's
    /// [`Tape::num_roots`]; dropped roots keep their index).
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// The view slot holding root `k`, or `None` when that root was dropped
    /// by specialization.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.num_roots()`.
    pub fn root_slot(&self, k: usize) -> Option<usize> {
        let slot = self.roots[k];
        (slot != DROPPED).then_some(slot as usize)
    }

    /// Returns a view of instruction `slot`, resolving constants through the
    /// parent tape's pools.
    ///
    /// Instructions stay topologically ordered, so — exactly as for
    /// [`Tape::instr`] — iterating `0..len()` is a valid forward schedule.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.len()` or `tape` is not the view's parent.
    pub fn instr(&self, tape: &Tape, slot: usize) -> TapeInstr {
        let lhs = self.lhs[slot] as usize;
        match self.ops[slot] {
            OpCode::Const => TapeInstr::Const(tape.const_scalars[lhs], tape.const_intervals[lhs]),
            OpCode::Var => TapeInstr::Var(lhs),
            OpCode::Unary(op) => TapeInstr::Unary(op, lhs),
            OpCode::Binary(op) => TapeInstr::Binary(op, lhs, self.rhs[slot] as usize),
            OpCode::Powi => TapeInstr::Powi(lhs, self.rhs[slot] as i32),
        }
    }

    /// Evaluates every view slot over an interval box, reusing `slots` as
    /// the register file (cleared and refilled; no allocation once warm).
    ///
    /// Bit-identical to evaluating the parent tape on any sub-box of the
    /// region the view was specialized to.
    ///
    /// # Panics
    ///
    /// Panics if the view references a variable index out of bounds for the
    /// box or `tape` is not the view's parent.
    pub fn eval_interval_into(&self, tape: &Tape, region: &IntervalBox, slots: &mut Vec<Interval>) {
        self.eval_interval_prefix_into(tape, region, slots, self.ops.len());
    }

    /// Evaluates only the first `count` view slots over an interval box.
    ///
    /// As with [`Tape::eval_interval_prefix_into`], topological order means
    /// the prefix `0..=root` contains everything a root depends on.
    ///
    /// # Panics
    ///
    /// Panics if `count > self.len()`, the evaluated prefix references an
    /// out-of-bounds variable, or `tape` is not the view's parent.
    pub fn eval_interval_prefix_into(
        &self,
        tape: &Tape,
        region: &IntervalBox,
        slots: &mut Vec<Interval>,
        count: usize,
    ) {
        slots.clear();
        self.eval_interval_extend_into(tape, region, slots, count);
    }

    /// Extends a partial forward evaluation of the view (the incremental
    /// form of [`TapeView::eval_interval_prefix_into`]; see
    /// [`Tape::eval_interval_extend_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `count > self.len()`, the evaluated range references an
    /// out-of-bounds variable, or `tape` is not the view's parent.
    pub fn eval_interval_extend_into(
        &self,
        tape: &Tape,
        region: &IntervalBox,
        slots: &mut Vec<Interval>,
        count: usize,
    ) {
        assert!(count <= self.ops.len(), "prefix exceeds view length");
        slots.reserve(count.saturating_sub(slots.len()));
        for i in slots.len()..count {
            let lhs = self.lhs[i] as usize;
            let v = match self.ops[i] {
                OpCode::Const => tape.const_intervals[lhs],
                OpCode::Var => region[lhs],
                OpCode::Unary(op) => op.apply_interval(slots[lhs]),
                OpCode::Binary(op) => op.apply_interval(slots[lhs], slots[self.rhs[i] as usize]),
                OpCode::Powi => slots[lhs].powi(self.rhs[i] as i32),
            };
            slots.push(v);
        }
    }

    /// Evaluates every view slot at a point, reusing `slots` as the register
    /// file.
    ///
    /// Bit-identical to evaluating the parent tape at any point of the
    /// region the view was specialized to.
    ///
    /// # Panics
    ///
    /// Panics if the view references a variable index out of bounds for
    /// `values` or `tape` is not the view's parent.
    pub fn eval_scalar_into(&self, tape: &Tape, values: &[f64], slots: &mut Vec<f64>) {
        slots.clear();
        slots.reserve(self.ops.len());
        for i in 0..self.ops.len() {
            let lhs = self.lhs[i] as usize;
            let v = match self.ops[i] {
                OpCode::Const => tape.const_scalars[lhs],
                OpCode::Var => values[lhs],
                OpCode::Unary(op) => op.apply(slots[lhs]),
                OpCode::Binary(op) => op.apply(slots[lhs], slots[self.rhs[i] as usize]),
                OpCode::Powi => slots[lhs].powi(self.rhs[i] as i32),
            };
            slots.push(v);
        }
    }

    /// Specializes this view further, given the forward interval values
    /// `slots` of this view on a sub-region (as produced by
    /// [`TapeView::eval_interval_into`]), keeping only the roots with
    /// `keep_root[k] == true` (roots already dropped stay dropped), writing
    /// into `out`.
    ///
    /// Returns `true` when `out` is strictly shorter than `self`.
    ///
    /// # Panics
    ///
    /// Panics if `slots.len() < self.len()`,
    /// `keep_root.len() != self.num_roots()`, or `tape` is not the view's
    /// parent.
    pub fn respecialize_into(
        &self,
        tape: &Tape,
        slots: &[Interval],
        keep_root: &[bool],
        scratch: &mut SpecializeScratch,
        out: &mut TapeView,
    ) -> bool {
        specialize_program(
            tape,
            &self.ops,
            &self.lhs,
            &self.rhs,
            &self.roots,
            slots,
            keep_root,
            scratch,
            out,
        )
    }
}

/// The shared shortening pass over one program (a tape or a view of it).
///
/// Three linear sweeps over the source program: decide (taint + rewrite
/// actions from the recorded enclosures), mark (liveness backward from the
/// kept roots, following alias decisions so dead branches stay dead), emit
/// (renumber forward).
#[allow(clippy::too_many_arguments)]
fn specialize_program(
    tape: &Tape,
    ops: &[OpCode],
    lhs: &[u32],
    rhs: &[u32],
    roots: &[u32],
    slots: &[Interval],
    keep_root: &[bool],
    scratch: &mut SpecializeScratch,
    out: &mut TapeView,
) -> bool {
    let n = ops.len();
    assert!(slots.len() >= n, "forward slot values missing");
    assert_eq!(keep_root.len(), roots.len(), "root mask length mismatch");

    // --- decide ---------------------------------------------------------
    scratch.taint.clear();
    scratch.taint.resize(n, false);
    scratch.action.clear();
    scratch.action.resize(n, Action::Keep);
    for i in 0..n {
        let a = lhs[i] as usize;
        let b = rhs[i] as usize;
        let (taint, action) = match ops[i] {
            // A folded constant can carry a scalar its enclosure does not
            // contain (IEEE min/max swallow the NaN of a nowhere-defined
            // operand at fold time, interval semantics keeps EMPTY); every
            // such scalar/interval-divergent constant poisons downstream
            // decisions exactly like a runtime NaN.
            OpCode::Const => (
                tape.const_scalars[a].is_nan()
                    || !tape.const_intervals[a].contains(tape.const_scalars[a]),
                Action::Keep,
            ),
            OpCode::Var => (false, Action::Keep),
            OpCode::Unary(op) => {
                let ta = scratch.taint[a];
                let va = slots[a];
                let taint = ta
                    || match op {
                        // NaN only for an infinite operand point.
                        UnaryOp::Sin | UnaryOp::Cos | UnaryOp::Tan => !va.is_bounded(),
                        // NaN for a negative operand point.
                        UnaryOp::Ln => va.lo() < 0.0,
                        UnaryOp::Sqrt => va.lo() < 0.0,
                        // NaN-transparent.
                        UnaryOp::Neg
                        | UnaryOp::Exp
                        | UnaryOp::Abs
                        | UnaryOp::Tanh
                        | UnaryOp::Sigmoid
                        | UnaryOp::Atan => false,
                    };
                // A NaN-able operand blocks the abs rewrites too: IEEE `abs`
                // clears the sign bit of a NaN where a plain copy (or
                // negation) would not.
                let action = if op == UnaryOp::Abs && !va.is_empty() && !ta {
                    if va.lo() > 0.0 {
                        Action::AliasLhs
                    } else if va.hi() < 0.0 {
                        Action::RewriteNeg
                    } else {
                        Action::Keep
                    }
                } else {
                    Action::Keep
                };
                (taint, action)
            }
            OpCode::Binary(op) => {
                let (ta, tb) = (scratch.taint[a], scratch.taint[b]);
                let (va, vb) = (slots[a], slots[b]);
                let taint = ta
                    || tb
                    || match op {
                        // +inf + -inf (and the subtraction analogue).
                        BinaryOp::Add | BinaryOp::Sub => !va.is_bounded() && !vb.is_bounded(),
                        // 0 · ±inf.
                        BinaryOp::Mul => {
                            (va.contains(0.0) && !vb.is_bounded())
                                || (vb.contains(0.0) && !va.is_bounded())
                        }
                        // 0 / 0 or ±inf / ±inf.
                        BinaryOp::Div => vb.contains(0.0) || (!va.is_bounded() && !vb.is_bounded()),
                        // IEEE min/max swallow single-NaN operands.
                        BinaryOp::Min | BinaryOp::Max => false,
                    };
                let action = match op {
                    // Strict separation keeps scalar comparisons strict on
                    // every sub-box, so the winning operand's bits survive
                    // IEEE min/max ties.  Both branches must be untainted:
                    // the chosen one must not produce a NaN the full program
                    // would swallow, and the dead one must not contain a
                    // partial function (`sqrt`/`ln` over a sign-straddling
                    // operand) whose HC4 inversion clips variable domains —
                    // skipping that cone in a backward pass would change the
                    // contraction.
                    BinaryOp::Min if va.hi() < vb.lo() && !ta && !tb => Action::AliasLhs,
                    BinaryOp::Min if vb.hi() < va.lo() && !ta && !tb => Action::AliasRhs,
                    BinaryOp::Max if va.lo() > vb.hi() && !ta && !tb => Action::AliasLhs,
                    BinaryOp::Max if vb.lo() > va.hi() && !ta && !tb => Action::AliasRhs,
                    _ => Action::Keep,
                };
                (taint, action)
            }
            OpCode::Powi => (scratch.taint[a], Action::Keep),
        };
        scratch.taint[i] = taint;
        scratch.action[i] = action;
    }

    // --- mark -----------------------------------------------------------
    // A caller-requested root drop is vetoed when the root's cone is
    // tainted: dropping it would also skip the partial-function domain
    // clips (`sqrt`/`ln`) its HC4 backward pass performs, changing the
    // contraction.  The veto keeps specialization bit-invisible; the root
    // merely stays evaluated.
    scratch.live.clear();
    scratch.live.resize(n, false);
    for (k, &root) in roots.iter().enumerate() {
        if root != DROPPED && (keep_root[k] || scratch.taint[root as usize]) {
            scratch.live[root as usize] = true;
        }
    }
    for i in (0..n).rev() {
        if !scratch.live[i] {
            continue;
        }
        match scratch.action[i] {
            Action::AliasLhs => scratch.live[lhs[i] as usize] = true,
            Action::AliasRhs => scratch.live[rhs[i] as usize] = true,
            Action::RewriteNeg => scratch.live[lhs[i] as usize] = true,
            Action::Keep => match ops[i] {
                OpCode::Const | OpCode::Var => {}
                OpCode::Unary(_) | OpCode::Powi => scratch.live[lhs[i] as usize] = true,
                OpCode::Binary(_) => {
                    scratch.live[lhs[i] as usize] = true;
                    scratch.live[rhs[i] as usize] = true;
                }
            },
        }
    }

    // --- emit -----------------------------------------------------------
    scratch.slot_map.clear();
    scratch.slot_map.resize(n, DROPPED);
    out.ops.clear();
    out.lhs.clear();
    out.rhs.clear();
    out.roots.clear();
    for i in 0..n {
        if !scratch.live[i] {
            continue;
        }
        match scratch.action[i] {
            Action::AliasLhs => scratch.slot_map[i] = scratch.slot_map[lhs[i] as usize],
            Action::AliasRhs => scratch.slot_map[i] = scratch.slot_map[rhs[i] as usize],
            Action::RewriteNeg => {
                scratch.slot_map[i] = out.ops.len() as u32;
                out.ops.push(OpCode::Unary(UnaryOp::Neg));
                out.lhs.push(scratch.slot_map[lhs[i] as usize]);
                out.rhs.push(0);
            }
            Action::Keep => {
                scratch.slot_map[i] = out.ops.len() as u32;
                let (new_lhs, new_rhs) = match ops[i] {
                    // Constant-pool and variable indices pass through.
                    OpCode::Const | OpCode::Var => (lhs[i], rhs[i]),
                    OpCode::Unary(_) | OpCode::Powi => (scratch.slot_map[lhs[i] as usize], rhs[i]),
                    OpCode::Binary(_) => (
                        scratch.slot_map[lhs[i] as usize],
                        scratch.slot_map[rhs[i] as usize],
                    ),
                };
                out.ops.push(ops[i]);
                out.lhs.push(new_lhs);
                out.rhs.push(new_rhs);
            }
        }
    }
    for (k, &root) in roots.iter().enumerate() {
        if root == DROPPED || !(keep_root[k] || scratch.taint[root as usize]) {
            out.roots.push(DROPPED);
        } else {
            out.roots.push(scratch.slot_map[root as usize]);
        }
    }
    out.ops.len() < n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn assert_view_matches(
        tape: &Tape,
        view: &TapeView,
        region: &IntervalBox,
        points: &[Vec<f64>],
    ) {
        let mut full_i = Vec::new();
        let mut view_i = Vec::new();
        tape.eval_interval_into(region, &mut full_i);
        view.eval_interval_into(tape, region, &mut view_i);
        for k in 0..tape.num_roots() {
            let Some(root) = view.root_slot(k) else {
                continue;
            };
            let a = view_i[root];
            let b = full_i[tape.root_slot(k)];
            assert_eq!(
                a.lo().to_bits(),
                b.lo().to_bits(),
                "root {k} lo on {region}"
            );
            assert_eq!(
                a.hi().to_bits(),
                b.hi().to_bits(),
                "root {k} hi on {region}"
            );
        }
        let mut full_s = Vec::new();
        let mut view_s = Vec::new();
        for p in points {
            tape.eval_scalar_into(p, &mut full_s);
            view.eval_scalar_into(tape, p, &mut view_s);
            for k in 0..tape.num_roots() {
                let Some(root) = view.root_slot(k) else {
                    continue;
                };
                assert_eq!(
                    view_s[root].to_bits(),
                    full_s[tape.root_slot(k)].to_bits(),
                    "root {k} at {p:?}"
                );
            }
        }
    }

    #[test]
    fn decided_min_drops_the_losing_cone() {
        // On [2, 3]: x² ∈ [4, 9] and sin(y) − 5 ≤ −4, so the min always
        // takes the right branch and the x² cone dies.
        let f = (x().powi(2)).min(y().sin() - 5.0);
        let tape = Tape::compile(&f);
        let region = IntervalBox::from_bounds(&[(2.0, 3.0), (-1.0, 1.0)]);
        let mut scratch = SpecializeScratch::default();
        let view = tape.specialize(&region, &mut scratch);
        assert!(
            view.len() < tape.num_slots(),
            "{} vs {}",
            view.len(),
            tape.num_slots()
        );
        assert_view_matches(
            &tape,
            &view,
            &IntervalBox::from_bounds(&[(2.25, 2.75), (0.0, 0.5)]),
            &[vec![2.5, 0.25], vec![2.0, -1.0], vec![3.0, 1.0]],
        );
    }

    #[test]
    fn sign_decided_abs_aliases_or_negates() {
        let f = (x().abs() + 1.0) * y().abs();
        let tape = Tape::compile(&f);
        let mut scratch = SpecializeScratch::default();
        // x > 0, y < 0: |x| aliases to x, |y| rewrites to −y.
        let region = IntervalBox::from_bounds(&[(0.5, 2.0), (-3.0, -0.25)]);
        let view = tape.specialize(&region, &mut scratch);
        assert!(view.len() < tape.num_slots());
        assert_view_matches(
            &tape,
            &view,
            &IntervalBox::from_bounds(&[(1.0, 1.5), (-2.0, -1.0)]),
            &[vec![1.2, -1.5], vec![0.5, -0.25]],
        );
        // Straddling zero: nothing is decided.
        let wide = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let view = tape.specialize(&wide, &mut scratch);
        assert_eq!(view.len(), tape.num_slots());
    }

    #[test]
    fn dropped_roots_remove_their_exclusive_cone() {
        let shared = (x() * 0.5).tanh();
        let a = shared.clone() + y().exp();
        let b = shared.clone() * 2.0;
        let tape = Tape::compile_many(&[a, b]);
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let mut slots = Vec::new();
        tape.eval_interval_into(&region, &mut slots);
        let mut scratch = SpecializeScratch::default();
        let mut view = TapeView::default();
        // Dropping root 0 kills the exp(y) cone but keeps the shared tanh.
        let shortened = tape.specialize_from_slots(&slots, &[false, true], &mut scratch, &mut view);
        assert!(shortened);
        assert!(view.root_slot(0).is_none());
        assert!(view.root_slot(1).is_some());
        assert!(view.len() < tape.num_slots());
        assert_view_matches(&tape, &view, &region, &[vec![0.3, -0.4]]);
    }

    #[test]
    fn respecialization_keeps_shortening_on_descent() {
        // min(x, y) over a region where it is undecided, then decided on the
        // child region: the second specialization must shorten further.
        let f = x().min(y()) + (x() + y()).tanh();
        let tape = Tape::compile(&f);
        let parent_region = IntervalBox::from_bounds(&[(-1.0, 1.0), (0.0, 2.0)]);
        let mut scratch = SpecializeScratch::default();
        let parent = tape.specialize(&parent_region, &mut scratch);
        assert_eq!(parent.len(), tape.num_slots(), "undecided on the parent");

        let child_region = IntervalBox::from_bounds(&[(-1.0, -0.5), (0.0, 2.0)]);
        let mut slots = Vec::new();
        parent.eval_interval_into(&tape, &child_region, &mut slots);
        let mut child = TapeView::default();
        let shortened = parent.respecialize_into(&tape, &slots, &[true], &mut scratch, &mut child);
        assert!(shortened, "x < y is decided on the child");
        assert!(child.len() < parent.len());
        assert_view_matches(
            &tape,
            &child,
            &IntervalBox::from_bounds(&[(-0.9, -0.6), (0.5, 1.0)]),
            &[vec![-0.75, 0.8], vec![-1.0, 0.0]],
        );
    }

    #[test]
    fn nan_able_branches_are_not_aliased() {
        // sqrt(x) over a partially negative region can be NaN at points even
        // though its enclosure [0, 1] beats the other branch; IEEE min would
        // swallow that NaN, so aliasing must be refused.
        let f = x().sqrt().min(y() + 10.0);
        let tape = Tape::compile(&f);
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (0.0, 1.0)]);
        let mut scratch = SpecializeScratch::default();
        let view = tape.specialize(&region, &mut scratch);
        assert_eq!(view.len(), tape.num_slots(), "tainted branch must be kept");
        // The scalar results at a NaN point agree because nothing changed.
        let mut full = Vec::new();
        let mut short = Vec::new();
        tape.eval_scalar_into(&[-0.5, 0.0], &mut full);
        view.eval_scalar_into(&tape, &[-0.5, 0.0], &mut short);
        assert_eq!(
            short[view.root_slot(0).unwrap()].to_bits(),
            full[tape.root_slot(0)].to_bits()
        );
    }

    #[test]
    fn full_view_is_the_identity() {
        let f = x().tanh() * y() + x().powi(3);
        let tape = Tape::compile(&f);
        let view = TapeView::full(&tape);
        assert_eq!(view.len(), tape.num_slots());
        assert_eq!(view.num_roots(), 1);
        let region = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        assert_view_matches(&tape, &view, &region, &[vec![0.5, -1.5]]);
        // Instruction views resolve through the parent tape.
        for i in 0..view.len() {
            match view.instr(&tape, i) {
                TapeInstr::Binary(_, a, b) => assert!(a < i && b < i),
                TapeInstr::Unary(_, a) | TapeInstr::Powi(a, _) => assert!(a < i),
                TapeInstr::Const(..) | TapeInstr::Var(_) => {}
            }
        }
    }
}
