//! Region specialization: shortening a compiled [`Tape`] for a sub-region.
//!
//! The δ-SAT branch-and-prune search evaluates the same tape thousands of
//! times over a shrinking tree of boxes.  Deep in that tree most of the
//! program is already decided: a `min`/`max` whose branches no longer
//! overlap always selects the same operand, a sign-decided `abs` is a plain
//! copy or negation, and the losing branch's whole dependency cone is dead
//! weight.  A [`TapeView`] is a shortened, renumbered view of a tape that
//! drops exactly those instructions for one region — the fidget-style
//! "shorten on descent" idea — so work per box shrinks as boxes shrink.
//!
//! # Choice traces
//!
//! Every `min`/`max`/`abs` instruction is a *choice site* (see
//! [`Tape::num_choices`]).  The forward interval sweeps the solver already
//! performs can record a [`Choice`] byte per site at essentially zero cost
//! (one branch per site; see
//! [`Tape::eval_interval_extend_into_recording`]), capturing whether the
//! site's operands separated on the current region.  Specialization then
//! works from the recorded trace instead of re-deriving decisions:
//!
//! * **Compile time** ([`ChoiceAnalysis::analyze`], memoized per compiled
//!   clause): instructions are partitioned into *groups* enabled by the same
//!   choice-condition set, plus a per-slot root-reachability mask, so a
//!   decided choice maps to its dead group without re-walking the tape.
//! * **Descent time** ([`TapeView::respecialize_into`]): the view keeps the
//!   set of still-open choice ids; comparing it against the recorded trace
//!   costs `O(open choices)`.  When nothing newly separated and no root
//!   became droppable — the overwhelmingly common case deep in the search —
//!   respecialization exits there, paying nothing proportional to the view
//!   length.  Only when the delta is non-empty does a single forward pass
//!   re-emit the shortened child view, consulting the precomputed groups for
//!   liveness.
//!
//! # Bit-identity
//!
//! Specialization is *bit-invisible*: for every point of the region and for
//! every sub-box of the region, evaluating a [`TapeView`] produces exactly
//! the same bits as evaluating the full tape (for the roots the view keeps).
//! Only rewrites with that property are performed:
//!
//! * `min(a, b)` where the recorded enclosures satisfy `a.hi < b.lo` is an
//!   alias of `a`: on any sub-box the operand enclosures can only shrink, so
//!   the comparison stays strict and both the interval result
//!   (`[min(lo), min(hi)] = a`) and the scalar result (`pa < pb`) are
//!   bitwise `a`.  Symmetrically for `max`.
//! * `abs(a)` with `a.lo > 0` is an alias of `a`; with `a.hi < 0` it is
//!   rewritten to `neg(a)` ([`Interval::abs`] returns exactly `-a` there,
//!   and IEEE `abs`/negation agree bit-for-bit on negative values).
//! * Instructions reachable only from dropped roots are removed.
//!
//! A recorded separation is only *applied* when the NaN/clip taint veto
//! passes: IEEE `min`/`max` swallow a NaN operand, so aliasing a NaN-able
//! branch would change scalar results, and dropping a cone containing a
//! partial function (`sqrt`/`ln` over a sign-straddling operand) would skip
//! HC4 domain clips.  The taint pass runs at emission time only — recording
//! stays branch-cheap and taint-free.
//!
//! Saturated monotone activations (`tanh`, `sigmoid`) are *not* folded to
//! constants: their interval enclosure keeps an outward-rounded width (for
//! example `[1 − ulp, 1]`) whose exact bits on a sub-box depend on the
//! underlying libm, so folding them could not guarantee bit-identity.  Their
//! cost is one instruction; the pay-off of specialization is in the dead
//! cones of decided choices and decided constraint atoms.
//!
//! # Examples
//!
//! ```
//! use nncps_expr::{Expr, SpecializeScratch, Tape};
//! use nncps_interval::IntervalBox;
//!
//! let x = Expr::var(0);
//! // max(x², −x²) and the dead branch's extra work.
//! let f = x.clone().powi(2).max(-(x.clone().powi(2))) + x.clone().sin();
//! let tape = Tape::compile(&f);
//!
//! // On [1, 2] the two branches cannot overlap: x² ∈ [1, 4], −x² ∈ [−4, −1].
//! let region = IntervalBox::from_bounds(&[(1.0, 2.0)]);
//! let mut scratch = SpecializeScratch::default();
//! let view = tape.specialize(&region, &mut scratch);
//! assert!(view.len() < tape.num_slots());
//!
//! // Bit-identical on any sub-box and point of the region.
//! let sub = IntervalBox::from_bounds(&[(1.25, 1.5)]);
//! let mut full = Vec::new();
//! let mut short = Vec::new();
//! tape.eval_interval_into(&sub, &mut full);
//! view.eval_interval_into(&tape, &sub, &mut short);
//! let root = view.root_slot(0).unwrap();
//! assert_eq!(short[root].lo().to_bits(), full[tape.root_slot(0)].lo().to_bits());
//! assert_eq!(short[root].hi().to_bits(), full[tape.root_slot(0)].hi().to_bits());
//! ```

use std::collections::HashMap;

use nncps_interval::{Interval, IntervalBox};

use crate::tape::{OpCode, NO_CHOICE};
use crate::{BinaryOp, Choice, Tape, TapeInstr, UnaryOp};

/// Sentinel for a dropped root in [`TapeView::roots`].
const DROPPED: u32 = u32::MAX;

/// Condition-set size cap in [`ChoiceAnalysis`]: a slot gated by more than
/// this many distinct choice conditions is treated as unconditionally
/// enabled (sound — it is merely kept when it could have been dropped).
const MAX_CONDS: usize = 8;

/// What specialization does with one source instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Emit the instruction unchanged (operands renumbered).
    Keep,
    /// The instruction always equals its left operand; emit nothing.
    AliasLhs,
    /// The instruction always equals its right operand; emit nothing.
    AliasRhs,
    /// A sign-decided `abs` of a negative operand: emit `neg` instead.
    RewriteNeg,
}

/// Reusable buffers for [`Tape::specialize`] / [`TapeView::respecialize_into`].
///
/// Create one per worker and pass it to every call; the buffers grow to a
/// high-water mark on first use and are reused allocation-free afterwards.
#[derive(Debug, Default, Clone)]
pub struct SpecializeScratch {
    /// Forward interval values (used by [`Tape::specialize`] only).
    slots: Vec<Interval>,
    /// Per-slot "scalar evaluation may be NaN" flag.
    taint: Vec<bool>,
    /// Per-slot rewrite decision (tape-level pass only).
    action: Vec<Action>,
    /// Per-slot liveness under the kept roots (tape-level pass only).
    live: Vec<bool>,
    /// Source slot → view slot renumbering.
    slot_map: Vec<u32>,
    /// Per-group enablement under the child's choice state.
    enabled: Vec<bool>,
    /// Respecializations that exited at the O(open choices) delta check.
    delta_exits: usize,
    /// Respecializations that ran the full taint + emission pass.
    emit_passes: usize,
}

impl SpecializeScratch {
    /// Number of [`TapeView::respecialize_into`] calls that exited at the
    /// cheap choice-delta check (cost proportional to the open choices, not
    /// the view length).
    pub fn delta_exits(&self) -> usize {
        self.delta_exits
    }

    /// Number of [`TapeView::respecialize_into`] calls that ran the full
    /// emission pass because a choice newly separated or a root became
    /// droppable.  Over one descent this is bounded by the number of choice
    /// sites plus roots — each can change at most once — independent of
    /// depth.
    pub fn emit_passes(&self) -> usize {
        self.emit_passes
    }
}

/// Compile-time partition of a tape into groups of instructions enabled by
/// the same set of choice conditions, plus per-slot root reachability.
///
/// Computed once per tape ([`ChoiceAnalysis::analyze`]; the δ-SAT layer
/// memoizes it next to its register allocation) and consulted by
/// [`TapeView::respecialize_into`] so a decided choice maps to its dead
/// instruction group without re-walking the tape.
///
/// A slot's *condition set* is the set of `(choice id, side)` pairs such
/// that every use-path from the slot to a root passes through that side of
/// that `min`/`max` site; the slot is enabled for a choice state iff every
/// condition's choice is still open or decided to that side.  Sets are
/// intersected over use-paths (an over-approximation of liveness — extra
/// kept slots are bit-invisible) and capped at a small size.  `abs` sites
/// contribute no conditions: both their resolutions keep the operand alive.
#[derive(Debug, Clone)]
pub struct ChoiceAnalysis {
    /// Per original slot: group id.
    group_of: Vec<u32>,
    /// Per group: range into `conds` (length `num_groups + 1`).
    cond_start: Vec<u32>,
    /// Flattened `(choice id, required side)` conditions.
    conds: Vec<(u16, Choice)>,
    /// Per original slot: bitmask of roots that can reach it (bit
    /// `min(k, 63)`; roots beyond 63 share the last bit, which only ever
    /// keeps extra slots).
    root_mask: Vec<u64>,
}

impl ChoiceAnalysis {
    /// Analyzes `tape` in one backward pass over its instructions.
    pub fn analyze(tape: &Tape) -> ChoiceAnalysis {
        let n = tape.ops.len();
        // Condition set per slot: `None` until first reached from a root.
        let mut sets: Vec<Option<Vec<(u16, Choice)>>> = vec![None; n];
        let mut root_mask = vec![0u64; n];
        for (k, &root) in tape.roots.iter().enumerate() {
            sets[root as usize] = Some(Vec::new());
            root_mask[root as usize] |= 1u64 << k.min(63);
        }
        // `merge` intersects a new use-path contribution into a slot's set,
        // capping oversized sets to the empty (always-enabled) set *before*
        // they propagate further, which preserves the closure invariant
        // `S(operand) ⊆ S(user) ∪ edge condition` that emission relies on.
        fn merge(slot: &mut Option<Vec<(u16, Choice)>>, contribution: &[(u16, Choice)]) {
            match slot {
                None => {
                    let mut s = contribution.to_vec();
                    if s.len() > MAX_CONDS {
                        s.clear();
                    }
                    *slot = Some(s);
                }
                Some(existing) => existing.retain(|c| contribution.contains(c)),
            }
        }
        let mut with_edge = Vec::new();
        for i in (0..n).rev() {
            let Some(si) = sets[i].take() else {
                continue;
            };
            let a = tape.lhs[i] as usize;
            let b = tape.rhs[i] as usize;
            let mask = root_mask[i];
            match tape.ops[i] {
                OpCode::Const | OpCode::Var => {}
                OpCode::Unary(_) | OpCode::Powi => {
                    // `abs` keeps its operand under both resolutions, so no
                    // condition is attached even at an abs choice site.
                    merge(&mut sets[a], &si);
                    root_mask[a] |= mask;
                }
                OpCode::Binary(op) => {
                    let id = tape.choice_index[i];
                    if id != NO_CHOICE && matches!(op, BinaryOp::Min | BinaryOp::Max) {
                        for (operand, side) in [(a, Choice::Left), (b, Choice::Right)] {
                            with_edge.clear();
                            with_edge.extend_from_slice(&si);
                            if !with_edge.contains(&(id, side)) {
                                with_edge.push((id, side));
                            }
                            if with_edge.len() > MAX_CONDS {
                                with_edge.clear();
                            }
                            merge(&mut sets[operand], &with_edge);
                            root_mask[operand] |= mask;
                        }
                    } else {
                        merge(&mut sets[a], &si);
                        merge(&mut sets[b], &si);
                        root_mask[a] |= mask;
                        root_mask[b] |= mask;
                    }
                }
            }
            sets[i] = Some(si);
        }
        // Dedupe condition sets into groups.
        let mut group_of = vec![0u32; n];
        let mut cond_start = vec![0u32];
        let mut conds = Vec::new();
        let mut group_ids: HashMap<Vec<(u16, Choice)>, u32> = HashMap::new();
        for i in 0..n {
            let mut set = sets[i].take().unwrap_or_default();
            set.sort_unstable_by_key(|&(id, side)| (id, side as u8));
            let g = match group_ids.get(&set) {
                Some(&g) => g,
                None => {
                    let g = group_ids.len() as u32;
                    conds.extend_from_slice(&set);
                    cond_start.push(conds.len() as u32);
                    group_ids.insert(set, g);
                    g
                }
            };
            group_of[i] = g;
        }
        ChoiceAnalysis {
            group_of,
            cond_start,
            conds,
            root_mask,
        }
    }

    /// Number of distinct condition-set groups.
    pub fn num_groups(&self) -> usize {
        self.cond_start.len() - 1
    }

    /// Whether group `g` is enabled under `state` (every condition's choice
    /// open or decided to the required side).
    fn enabled(&self, g: usize, state: &[Choice]) -> bool {
        let lo = self.cond_start[g] as usize;
        let hi = self.cond_start[g + 1] as usize;
        self.conds[lo..hi].iter().all(|&(id, side)| {
            let s = state[id as usize];
            s == Choice::Both || s == side
        })
    }
}

/// A shortened, renumbered view of a [`Tape`], specialized to a region.
///
/// A view borrows nothing: it stores its own instruction columns (constants
/// keep indexing the parent tape's pools), so views can be pooled and reused
/// by the solver without lifetime entanglement.  All evaluation entry points
/// take the parent tape explicitly.
///
/// Views can be re-specialized from views ([`TapeView::respecialize_into`]),
/// so a descent keeps shortening.  Each view carries its choice state — the
/// sides already decided for `min`/`max`/`abs` sites and the ids still open
/// — so deriving a child costs `O(open choices)` when the recorded trace
/// shows no new separation, and one forward pass only when it does.
#[derive(Debug, Default, Clone)]
pub struct TapeView {
    ops: Vec<OpCode>,
    lhs: Vec<u32>,
    rhs: Vec<u32>,
    /// Per original root: slot in this view, or [`DROPPED`].
    roots: Vec<u32>,
    /// Per view slot: the originating slot in the parent tape.
    src: Vec<u32>,
    /// Per view slot: choice id (original tape numbering) or `NO_CHOICE`.
    choice_ids: Vec<u16>,
    /// Per original choice id: decided side, or `Both` while open (or when
    /// the site's cone is dead — then the value is simply never consulted).
    choice_state: Vec<Choice>,
    /// Choice ids still undecided *and* present in this view, in slot order.
    open_choices: Vec<u16>,
}

impl Tape {
    /// Specializes the tape to `region`: performs one forward interval sweep
    /// and prunes every instruction that is decided on the region (see the
    /// [module documentation](crate::specialize) for the exact — and
    /// bit-invisible — rewrite rules).  All roots are kept.
    ///
    /// The forward sweep is the same work [`Tape::eval_interval_into`] does,
    /// so callers that already hold the forward slot values of a region
    /// should prefer [`Tape::specialize_from_slots`] and pay nothing extra.
    ///
    /// # Panics
    ///
    /// Panics if the tape references a variable index out of bounds for the
    /// box.
    pub fn specialize(&self, region: &IntervalBox, scratch: &mut SpecializeScratch) -> TapeView {
        let mut slots = std::mem::take(&mut scratch.slots);
        self.eval_interval_into(region, &mut slots);
        let mut out = TapeView::default();
        let keep = vec![true; self.num_roots()];
        self.specialize_from_slots(&slots, &keep, scratch, &mut out);
        scratch.slots = slots;
        out
    }

    /// Specializes the tape given the forward interval values `slots` of a
    /// region (as produced by [`Tape::eval_interval_into`]), keeping only the
    /// roots with `keep_root[k] == true`, writing the shortened view into
    /// `out` (cleared and refilled; no allocation once warm).
    ///
    /// This is the full three-pass derivation (decide from enclosures, mark
    /// liveness, emit) — the entry point of a specialization descent and the
    /// reference against which the incremental
    /// [`TapeView::respecialize_into`] is benchmarked.
    ///
    /// Returns `true` when the view is strictly shorter than the source (an
    /// instruction was pruned or a root dropped), `false` when specialization
    /// found nothing to do.
    ///
    /// # Panics
    ///
    /// Panics if `slots.len() < self.num_slots()` or
    /// `keep_root.len() != self.num_roots()`.
    pub fn specialize_from_slots(
        &self,
        slots: &[Interval],
        keep_root: &[bool],
        scratch: &mut SpecializeScratch,
        out: &mut TapeView,
    ) -> bool {
        specialize_program(self, slots, keep_root, scratch, out)
    }
}

impl TapeView {
    /// The identity view of a tape: every instruction, every root, every
    /// choice open.
    ///
    /// This is the root of a specialization descent; derive shorter views
    /// from it with [`TapeView::respecialize_into`].
    pub fn full(tape: &Tape) -> TapeView {
        TapeView {
            ops: tape.ops.clone(),
            lhs: tape.lhs.clone(),
            rhs: tape.rhs.clone(),
            roots: tape.roots.clone(),
            src: (0..tape.ops.len() as u32).collect(),
            choice_ids: tape.choice_index.clone(),
            choice_state: vec![Choice::Both; tape.num_choices()],
            open_choices: (0..tape.num_choices() as u16).collect(),
        }
    }

    /// Raw program columns for crate-internal passes (register allocation
    /// walks `ops`/`lhs`/`rhs`/`roots` directly; dropped roots carry the
    /// `DROPPED` sentinel).
    pub(crate) fn raw_parts(&self) -> (&[OpCode], &[u32], &[u32], &[u32]) {
        (&self.ops, &self.lhs, &self.rhs, &self.roots)
    }

    /// Per-view-slot choice ids (original tape numbering; `NO_CHOICE` for
    /// non-sites), for crate-internal recording evaluators.
    pub(crate) fn choice_id_column(&self) -> &[u16] {
        &self.choice_ids
    }

    /// Number of instructions in the view.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the view contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of root entries (equal to the parent tape's
    /// [`Tape::num_roots`]; dropped roots keep their index).
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// Number of choice sites still undecided and present in this view —
    /// the cost of the delta check a no-change
    /// [`TapeView::respecialize_into`] pays.
    pub fn num_open_choices(&self) -> usize {
        self.open_choices.len()
    }

    /// The view slot holding root `k`, or `None` when that root was dropped
    /// by specialization.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.num_roots()`.
    pub fn root_slot(&self, k: usize) -> Option<usize> {
        let slot = self.roots[k];
        (slot != DROPPED).then_some(slot as usize)
    }

    /// Returns a view of instruction `slot`, resolving constants through the
    /// parent tape's pools.
    ///
    /// Instructions stay topologically ordered, so — exactly as for
    /// [`Tape::instr`] — iterating `0..len()` is a valid forward schedule.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.len()` or `tape` is not the view's parent.
    pub fn instr(&self, tape: &Tape, slot: usize) -> TapeInstr {
        let lhs = self.lhs[slot] as usize;
        match self.ops[slot] {
            OpCode::Const => TapeInstr::Const(tape.const_scalars[lhs], tape.const_intervals[lhs]),
            OpCode::Var => TapeInstr::Var(lhs),
            OpCode::Unary(op) => TapeInstr::Unary(op, lhs),
            OpCode::Binary(op) => TapeInstr::Binary(op, lhs, self.rhs[slot] as usize),
            OpCode::Powi => TapeInstr::Powi(lhs, self.rhs[slot] as i32),
        }
    }

    /// Evaluates every view slot over an interval box, reusing `slots` as
    /// the register file (cleared and refilled; no allocation once warm).
    ///
    /// Bit-identical to evaluating the parent tape on any sub-box of the
    /// region the view was specialized to.
    ///
    /// # Panics
    ///
    /// Panics if the view references a variable index out of bounds for the
    /// box or `tape` is not the view's parent.
    pub fn eval_interval_into(&self, tape: &Tape, region: &IntervalBox, slots: &mut Vec<Interval>) {
        self.eval_interval_prefix_into(tape, region, slots, self.ops.len());
    }

    /// Evaluates only the first `count` view slots over an interval box.
    ///
    /// As with [`Tape::eval_interval_prefix_into`], topological order means
    /// the prefix `0..=root` contains everything a root depends on.
    ///
    /// # Panics
    ///
    /// Panics if `count > self.len()`, the evaluated prefix references an
    /// out-of-bounds variable, or `tape` is not the view's parent.
    pub fn eval_interval_prefix_into(
        &self,
        tape: &Tape,
        region: &IntervalBox,
        slots: &mut Vec<Interval>,
        count: usize,
    ) {
        slots.clear();
        self.eval_interval_extend_into(tape, region, slots, count);
    }

    /// Extends a partial forward evaluation of the view (the incremental
    /// form of [`TapeView::eval_interval_prefix_into`]; see
    /// [`Tape::eval_interval_extend_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `count > self.len()`, the evaluated range references an
    /// out-of-bounds variable, or `tape` is not the view's parent.
    pub fn eval_interval_extend_into(
        &self,
        tape: &Tape,
        region: &IntervalBox,
        slots: &mut Vec<Interval>,
        count: usize,
    ) {
        assert!(count <= self.ops.len(), "prefix exceeds view length");
        slots.reserve(count.saturating_sub(slots.len()));
        for i in slots.len()..count {
            let lhs = self.lhs[i] as usize;
            let v = match self.ops[i] {
                OpCode::Const => tape.const_intervals[lhs],
                OpCode::Var => region[lhs],
                OpCode::Unary(op) => op.apply_interval(slots[lhs]),
                OpCode::Binary(op) => op.apply_interval(slots[lhs], slots[self.rhs[i] as usize]),
                OpCode::Powi => slots[lhs].powi(self.rhs[i] as i32),
            };
            slots.push(v);
        }
    }

    /// Recording twin of [`TapeView::eval_interval_extend_into`]: also
    /// writes a [`Choice`] byte per evaluated choice site into `choices`,
    /// indexed by *original* choice id ([`Tape::num_choices`] entries).
    ///
    /// Computed slot values are bit-identical to the non-recording sweep.
    ///
    /// # Panics
    ///
    /// Panics if `count > self.len()`, `choices` is shorter than
    /// [`Tape::num_choices`], the evaluated range references an
    /// out-of-bounds variable, or `tape` is not the view's parent.
    pub fn eval_interval_extend_into_recording(
        &self,
        tape: &Tape,
        region: &IntervalBox,
        slots: &mut Vec<Interval>,
        count: usize,
        choices: &mut [Choice],
    ) {
        assert!(count <= self.ops.len(), "prefix exceeds view length");
        slots.reserve(count.saturating_sub(slots.len()));
        for i in slots.len()..count {
            let lhs = self.lhs[i] as usize;
            let v = match self.ops[i] {
                OpCode::Const => tape.const_intervals[lhs],
                OpCode::Var => region[lhs],
                OpCode::Unary(op) => {
                    let va = slots[lhs];
                    let id = self.choice_ids[i];
                    if id != NO_CHOICE {
                        choices[id as usize] = Choice::of_abs(va);
                    }
                    op.apply_interval(va)
                }
                OpCode::Binary(op) => {
                    let va = slots[lhs];
                    let vb = slots[self.rhs[i] as usize];
                    let id = self.choice_ids[i];
                    if id != NO_CHOICE {
                        choices[id as usize] = match op {
                            BinaryOp::Min => Choice::of_min(va, vb),
                            _ => Choice::of_max(va, vb),
                        };
                    }
                    op.apply_interval(va, vb)
                }
                OpCode::Powi => slots[lhs].powi(self.rhs[i] as i32),
            };
            slots.push(v);
        }
    }

    /// Evaluates every view slot at a point, reusing `slots` as the register
    /// file.
    ///
    /// Bit-identical to evaluating the parent tape at any point of the
    /// region the view was specialized to.
    ///
    /// # Panics
    ///
    /// Panics if the view references a variable index out of bounds for
    /// `values` or `tape` is not the view's parent.
    pub fn eval_scalar_into(&self, tape: &Tape, values: &[f64], slots: &mut Vec<f64>) {
        slots.clear();
        slots.reserve(self.ops.len());
        for i in 0..self.ops.len() {
            let lhs = self.lhs[i] as usize;
            let v = match self.ops[i] {
                OpCode::Const => tape.const_scalars[lhs],
                OpCode::Var => values[lhs],
                OpCode::Unary(op) => op.apply(slots[lhs]),
                OpCode::Binary(op) => op.apply(slots[lhs], slots[self.rhs[i] as usize]),
                OpCode::Powi => slots[lhs].powi(self.rhs[i] as i32),
            };
            slots.push(v);
        }
    }

    /// Specializes this view further from the recorded choice trace of a
    /// sub-region, keeping only the roots with `keep_root[k] == true` (roots
    /// already dropped stay dropped), writing into `out`.
    ///
    /// `slots` are this view's forward interval values on the sub-region and
    /// `recorded` the choice trace of the same sweep (both as produced by
    /// [`TapeView::eval_interval_extend_into_recording`]); `analysis` is the
    /// parent tape's memoized [`ChoiceAnalysis`].
    ///
    /// The call first compares `recorded` against this view's open choices —
    /// `O(open choices + roots)`.  When no open choice newly separated and
    /// no kept root became droppable it returns `false` without touching
    /// `out`.  Otherwise one taint pass applies the NaN/clip veto, the new
    /// choice state maps to enabled groups via `analysis`, and a single
    /// forward pass emits the child view.
    ///
    /// Returns `true` when `out` was written (some choice was decided or a
    /// root dropped), `false` when this view is already fully specialized
    /// for the sub-region.
    ///
    /// # Panics
    ///
    /// Panics if `slots.len() < self.len()`,
    /// `recorded.len() < tape.num_choices()`,
    /// `keep_root.len() != self.num_roots()`, or `tape`/`analysis` are not
    /// the view's parents.
    // Every parameter is a distinct pooled buffer the allocation-free solver
    // loop owns; bundling them would force per-call moves or a borrow knot.
    #[allow(clippy::too_many_arguments)]
    pub fn respecialize_into(
        &self,
        tape: &Tape,
        analysis: &ChoiceAnalysis,
        slots: &[Interval],
        recorded: &[Choice],
        keep_root: &[bool],
        scratch: &mut SpecializeScratch,
        out: &mut TapeView,
    ) -> bool {
        let n = self.ops.len();
        assert!(slots.len() >= n, "forward slot values missing");
        assert!(
            recorded.len() >= tape.num_choices(),
            "choice trace shorter than the tape's choice count"
        );
        assert_eq!(
            keep_root.len(),
            self.roots.len(),
            "root mask length mismatch"
        );

        // --- delta check: O(open choices + roots) -----------------------
        let changed = self
            .open_choices
            .iter()
            .any(|&id| recorded[id as usize] != Choice::Both);
        let droppable = self
            .roots
            .iter()
            .zip(keep_root)
            .any(|(&root, &keep)| root != DROPPED && !keep);
        if !changed && !droppable {
            scratch.delta_exits += 1;
            return false;
        }
        scratch.emit_passes += 1;

        // --- taint pass + choice resolution: O(view length) -------------
        // Taint is only needed now that something may actually change; the
        // rules are identical to the tape-level decide pass.
        scratch.taint.clear();
        scratch.taint.resize(n, false);
        out.choice_state.clear();
        out.choice_state.extend_from_slice(&self.choice_state);
        let mut decided_any = false;
        for i in 0..n {
            let a = self.lhs[i] as usize;
            let b = self.rhs[i] as usize;
            scratch.taint[i] = instr_taint(tape, self.ops[i], a, b, slots, &scratch.taint);
            let id = self.choice_ids[i];
            if id == NO_CHOICE {
                continue;
            }
            let rec = recorded[id as usize];
            if rec == Choice::Both {
                continue;
            }
            // The veto mirrors the decide pass: aliasing a NaN-able branch
            // (or dropping a clip-bearing cone) would not be bit-invisible.
            let vetoed = match self.ops[i] {
                OpCode::Unary(_) => scratch.taint[a],
                _ => scratch.taint[a] || scratch.taint[b],
            };
            if !vetoed {
                out.choice_state[id as usize] = rec;
                decided_any = true;
            }
        }

        // Effective kept roots: a caller-requested drop is vetoed when the
        // root's cone is tainted — dropping it would skip the partial-
        // function domain clips its HC4 backward pass performs.
        let mut kept_mask = 0u64;
        let mut dropped_now = false;
        for (k, &root) in self.roots.iter().enumerate() {
            if root == DROPPED {
                continue;
            }
            if keep_root[k] || scratch.taint[root as usize] {
                kept_mask |= 1u64 << k.min(63);
            } else {
                dropped_now = true;
            }
        }
        if !decided_any && !dropped_now {
            // Every separation and every drop was taint-vetoed: the child
            // would be identical, so keep the parent view.
            return false;
        }

        // --- group enablement under the child state: O(groups) ----------
        scratch.enabled.clear();
        scratch.enabled.resize(analysis.num_groups(), false);
        for g in 0..analysis.num_groups() {
            scratch.enabled[g] = analysis.enabled(g, &out.choice_state);
        }

        // --- emission: one forward pass over the parent view ------------
        scratch.slot_map.clear();
        scratch.slot_map.resize(n, DROPPED);
        out.ops.clear();
        out.lhs.clear();
        out.rhs.clear();
        out.roots.clear();
        out.src.clear();
        out.choice_ids.clear();
        out.open_choices.clear();
        for i in 0..n {
            let s = self.src[i] as usize;
            if !scratch.enabled[analysis.group_of[s] as usize]
                || (analysis.root_mask[s] & kept_mask) == 0
            {
                continue;
            }
            let id = self.choice_ids[i];
            let state = if id != NO_CHOICE {
                out.choice_state[id as usize]
            } else {
                Choice::Both
            };
            if state != Choice::Both {
                match self.ops[i] {
                    OpCode::Binary(_) => {
                        let winner = if state == Choice::Left {
                            self.lhs[i]
                        } else {
                            self.rhs[i]
                        };
                        scratch.slot_map[i] = scratch.slot_map[winner as usize];
                    }
                    // A sign-decided abs: identity on the positive side,
                    // negation on the negative side.
                    OpCode::Unary(_) if state == Choice::Left => {
                        scratch.slot_map[i] = scratch.slot_map[self.lhs[i] as usize];
                    }
                    OpCode::Unary(_) => {
                        scratch.slot_map[i] = out.ops.len() as u32;
                        out.ops.push(OpCode::Unary(UnaryOp::Neg));
                        out.lhs.push(scratch.slot_map[self.lhs[i] as usize]);
                        out.rhs.push(0);
                        out.src.push(self.src[i]);
                        out.choice_ids.push(NO_CHOICE);
                    }
                    _ => unreachable!("only min/max/abs carry choice ids"),
                }
                continue;
            }
            scratch.slot_map[i] = out.ops.len() as u32;
            let (new_lhs, new_rhs) = match self.ops[i] {
                // Constant-pool and variable indices pass through.
                OpCode::Const | OpCode::Var => (self.lhs[i], self.rhs[i]),
                OpCode::Unary(_) | OpCode::Powi => {
                    (scratch.slot_map[self.lhs[i] as usize], self.rhs[i])
                }
                OpCode::Binary(_) => (
                    scratch.slot_map[self.lhs[i] as usize],
                    scratch.slot_map[self.rhs[i] as usize],
                ),
            };
            out.ops.push(self.ops[i]);
            out.lhs.push(new_lhs);
            out.rhs.push(new_rhs);
            out.src.push(self.src[i]);
            out.choice_ids.push(id);
            if id != NO_CHOICE {
                out.open_choices.push(id);
            }
        }
        for (k, &root) in self.roots.iter().enumerate() {
            if root == DROPPED || !(keep_root[k] || scratch.taint[root as usize]) {
                out.roots.push(DROPPED);
            } else {
                out.roots.push(scratch.slot_map[root as usize]);
            }
        }
        true
    }
}

/// NaN/clip taint of one instruction, given operand taints and the recorded
/// forward enclosures.  Shared verbatim by the tape-level decide pass and
/// the view-level emission pass.
#[inline]
fn instr_taint(
    tape: &Tape,
    op: OpCode,
    a: usize,
    b: usize,
    slots: &[Interval],
    taint: &[bool],
) -> bool {
    match op {
        // A folded constant can carry a scalar its enclosure does not
        // contain (IEEE min/max swallow the NaN of a nowhere-defined
        // operand at fold time, interval semantics keeps EMPTY); every
        // such scalar/interval-divergent constant poisons downstream
        // decisions exactly like a runtime NaN.
        OpCode::Const => {
            tape.const_scalars[a].is_nan()
                || !tape.const_intervals[a].contains(tape.const_scalars[a])
        }
        OpCode::Var => false,
        OpCode::Unary(op) => {
            let va = slots[a];
            taint[a]
                || match op {
                    // NaN only for an infinite operand point.
                    UnaryOp::Sin | UnaryOp::Cos | UnaryOp::Tan => !va.is_bounded(),
                    // NaN for a negative operand point.
                    UnaryOp::Ln | UnaryOp::Sqrt => va.lo() < 0.0,
                    // NaN-transparent.
                    UnaryOp::Neg
                    | UnaryOp::Exp
                    | UnaryOp::Abs
                    | UnaryOp::Tanh
                    | UnaryOp::Sigmoid
                    | UnaryOp::Atan => false,
                }
        }
        OpCode::Binary(op) => {
            let (va, vb) = (slots[a], slots[b]);
            taint[a]
                || taint[b]
                || match op {
                    // +inf + -inf (and the subtraction analogue).
                    BinaryOp::Add | BinaryOp::Sub => !va.is_bounded() && !vb.is_bounded(),
                    // 0 · ±inf.
                    BinaryOp::Mul => {
                        (va.contains(0.0) && !vb.is_bounded())
                            || (vb.contains(0.0) && !va.is_bounded())
                    }
                    // 0 / 0 or ±inf / ±inf.
                    BinaryOp::Div => vb.contains(0.0) || (!va.is_bounded() && !vb.is_bounded()),
                    // IEEE min/max swallow single-NaN operands.
                    BinaryOp::Min | BinaryOp::Max => false,
                }
        }
        OpCode::Powi => taint[a],
    }
}

/// The full three-pass shortening of a tape: decide (taint + rewrite
/// actions from the recorded enclosures), mark (liveness backward from the
/// kept roots, following alias decisions so dead branches stay dead), emit
/// (renumber forward, seeding the emitted view's choice state so descents
/// can continue with [`TapeView::respecialize_into`]).
fn specialize_program(
    tape: &Tape,
    slots: &[Interval],
    keep_root: &[bool],
    scratch: &mut SpecializeScratch,
    out: &mut TapeView,
) -> bool {
    let ops = &tape.ops;
    let lhs = &tape.lhs;
    let rhs = &tape.rhs;
    let roots = &tape.roots;
    let n = ops.len();
    assert!(slots.len() >= n, "forward slot values missing");
    assert_eq!(keep_root.len(), roots.len(), "root mask length mismatch");

    // --- decide ---------------------------------------------------------
    scratch.taint.clear();
    scratch.taint.resize(n, false);
    scratch.action.clear();
    scratch.action.resize(n, Action::Keep);
    out.choice_state.clear();
    out.choice_state.resize(tape.num_choices(), Choice::Both);
    for i in 0..n {
        let a = lhs[i] as usize;
        let b = rhs[i] as usize;
        scratch.taint[i] = instr_taint(tape, ops[i], a, b, slots, &scratch.taint);
        let action = match ops[i] {
            OpCode::Unary(UnaryOp::Abs) => {
                // A NaN-able operand blocks the abs rewrites too: IEEE `abs`
                // clears the sign bit of a NaN where a plain copy (or
                // negation) would not.
                if scratch.taint[a] {
                    Action::Keep
                } else {
                    match Choice::of_abs(slots[a]) {
                        Choice::Left => Action::AliasLhs,
                        Choice::Right => Action::RewriteNeg,
                        Choice::Both => Action::Keep,
                    }
                }
            }
            OpCode::Binary(op @ (BinaryOp::Min | BinaryOp::Max)) => {
                // Strict separation keeps scalar comparisons strict on
                // every sub-box, so the winning operand's bits survive
                // IEEE min/max ties.  Both branches must be untainted:
                // the chosen one must not produce a NaN the full program
                // would swallow, and the dead one must not contain a
                // partial function (`sqrt`/`ln` over a sign-straddling
                // operand) whose HC4 inversion clips variable domains —
                // skipping that cone in a backward pass would change the
                // contraction.
                if scratch.taint[a] || scratch.taint[b] {
                    Action::Keep
                } else {
                    let choice = match op {
                        BinaryOp::Min => Choice::of_min(slots[a], slots[b]),
                        _ => Choice::of_max(slots[a], slots[b]),
                    };
                    match choice {
                        Choice::Left => Action::AliasLhs,
                        Choice::Right => Action::AliasRhs,
                        Choice::Both => Action::Keep,
                    }
                }
            }
            _ => Action::Keep,
        };
        scratch.action[i] = action;
        // Seed the emitted view's choice state (harmless for sites whose
        // cone turns out dead: the state is then never consulted).
        let id = tape.choice_index[i];
        if id != NO_CHOICE {
            out.choice_state[id as usize] = match action {
                Action::Keep => Choice::Both,
                Action::AliasLhs => Choice::Left,
                Action::AliasRhs | Action::RewriteNeg => Choice::Right,
            };
        }
    }

    // --- mark -----------------------------------------------------------
    // A caller-requested root drop is vetoed when the root's cone is
    // tainted: dropping it would also skip the partial-function domain
    // clips (`sqrt`/`ln`) its HC4 backward pass performs, changing the
    // contraction.  The veto keeps specialization bit-invisible; the root
    // merely stays evaluated.
    scratch.live.clear();
    scratch.live.resize(n, false);
    for (k, &root) in roots.iter().enumerate() {
        if root != DROPPED && (keep_root[k] || scratch.taint[root as usize]) {
            scratch.live[root as usize] = true;
        }
    }
    for i in (0..n).rev() {
        if !scratch.live[i] {
            continue;
        }
        match scratch.action[i] {
            Action::AliasLhs => scratch.live[lhs[i] as usize] = true,
            Action::AliasRhs => scratch.live[rhs[i] as usize] = true,
            Action::RewriteNeg => scratch.live[lhs[i] as usize] = true,
            Action::Keep => match ops[i] {
                OpCode::Const | OpCode::Var => {}
                OpCode::Unary(_) | OpCode::Powi => scratch.live[lhs[i] as usize] = true,
                OpCode::Binary(_) => {
                    scratch.live[lhs[i] as usize] = true;
                    scratch.live[rhs[i] as usize] = true;
                }
            },
        }
    }

    // --- emit -----------------------------------------------------------
    scratch.slot_map.clear();
    scratch.slot_map.resize(n, DROPPED);
    out.ops.clear();
    out.lhs.clear();
    out.rhs.clear();
    out.roots.clear();
    out.src.clear();
    out.choice_ids.clear();
    out.open_choices.clear();
    for i in 0..n {
        if !scratch.live[i] {
            continue;
        }
        match scratch.action[i] {
            Action::AliasLhs => scratch.slot_map[i] = scratch.slot_map[lhs[i] as usize],
            Action::AliasRhs => scratch.slot_map[i] = scratch.slot_map[rhs[i] as usize],
            Action::RewriteNeg => {
                scratch.slot_map[i] = out.ops.len() as u32;
                out.ops.push(OpCode::Unary(UnaryOp::Neg));
                out.lhs.push(scratch.slot_map[lhs[i] as usize]);
                out.rhs.push(0);
                out.src.push(i as u32);
                out.choice_ids.push(NO_CHOICE);
            }
            Action::Keep => {
                scratch.slot_map[i] = out.ops.len() as u32;
                let (new_lhs, new_rhs) = match ops[i] {
                    // Constant-pool and variable indices pass through.
                    OpCode::Const | OpCode::Var => (lhs[i], rhs[i]),
                    OpCode::Unary(_) | OpCode::Powi => (scratch.slot_map[lhs[i] as usize], rhs[i]),
                    OpCode::Binary(_) => (
                        scratch.slot_map[lhs[i] as usize],
                        scratch.slot_map[rhs[i] as usize],
                    ),
                };
                out.ops.push(ops[i]);
                out.lhs.push(new_lhs);
                out.rhs.push(new_rhs);
                out.src.push(i as u32);
                let id = tape.choice_index[i];
                out.choice_ids.push(id);
                if id != NO_CHOICE {
                    out.open_choices.push(id);
                }
            }
        }
    }
    for (k, &root) in roots.iter().enumerate() {
        if root == DROPPED || !(keep_root[k] || scratch.taint[root as usize]) {
            out.roots.push(DROPPED);
        } else {
            out.roots.push(scratch.slot_map[root as usize]);
        }
    }
    out.ops.len() < n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn assert_view_matches(
        tape: &Tape,
        view: &TapeView,
        region: &IntervalBox,
        points: &[Vec<f64>],
    ) {
        let mut full_i = Vec::new();
        let mut view_i = Vec::new();
        tape.eval_interval_into(region, &mut full_i);
        view.eval_interval_into(tape, region, &mut view_i);
        for k in 0..tape.num_roots() {
            let Some(root) = view.root_slot(k) else {
                continue;
            };
            let a = view_i[root];
            let b = full_i[tape.root_slot(k)];
            assert_eq!(
                a.lo().to_bits(),
                b.lo().to_bits(),
                "root {k} lo on {region}"
            );
            assert_eq!(
                a.hi().to_bits(),
                b.hi().to_bits(),
                "root {k} hi on {region}"
            );
        }
        let mut full_s = Vec::new();
        let mut view_s = Vec::new();
        for p in points {
            tape.eval_scalar_into(p, &mut full_s);
            view.eval_scalar_into(tape, p, &mut view_s);
            for k in 0..tape.num_roots() {
                let Some(root) = view.root_slot(k) else {
                    continue;
                };
                assert_eq!(
                    view_s[root].to_bits(),
                    full_s[tape.root_slot(k)].to_bits(),
                    "root {k} at {p:?}"
                );
            }
        }
    }

    /// Records this view's choice trace on `region` into a fresh buffer.
    fn record(view: &TapeView, tape: &Tape, region: &IntervalBox) -> (Vec<Interval>, Vec<Choice>) {
        let mut slots = Vec::new();
        let mut choices = vec![Choice::Both; tape.num_choices()];
        view.eval_interval_extend_into_recording(
            tape,
            region,
            &mut slots,
            view.len(),
            &mut choices,
        );
        (slots, choices)
    }

    #[test]
    fn decided_min_drops_the_losing_cone() {
        // On [2, 3]: x² ∈ [4, 9] and sin(y) − 5 ≤ −4, so the min always
        // takes the right branch and the x² cone dies.
        let f = (x().powi(2)).min(y().sin() - 5.0);
        let tape = Tape::compile(&f);
        let region = IntervalBox::from_bounds(&[(2.0, 3.0), (-1.0, 1.0)]);
        let mut scratch = SpecializeScratch::default();
        let view = tape.specialize(&region, &mut scratch);
        assert!(
            view.len() < tape.num_slots(),
            "{} vs {}",
            view.len(),
            tape.num_slots()
        );
        assert_view_matches(
            &tape,
            &view,
            &IntervalBox::from_bounds(&[(2.25, 2.75), (0.0, 0.5)]),
            &[vec![2.5, 0.25], vec![2.0, -1.0], vec![3.0, 1.0]],
        );
    }

    #[test]
    fn sign_decided_abs_aliases_or_negates() {
        let f = (x().abs() + 1.0) * y().abs();
        let tape = Tape::compile(&f);
        let mut scratch = SpecializeScratch::default();
        // x > 0, y < 0: |x| aliases to x, |y| rewrites to −y.
        let region = IntervalBox::from_bounds(&[(0.5, 2.0), (-3.0, -0.25)]);
        let view = tape.specialize(&region, &mut scratch);
        assert!(view.len() < tape.num_slots());
        assert_view_matches(
            &tape,
            &view,
            &IntervalBox::from_bounds(&[(1.0, 1.5), (-2.0, -1.0)]),
            &[vec![1.2, -1.5], vec![0.5, -0.25]],
        );
        // Straddling zero: nothing is decided.
        let wide = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let view = tape.specialize(&wide, &mut scratch);
        assert_eq!(view.len(), tape.num_slots());
    }

    #[test]
    fn dropped_roots_remove_their_exclusive_cone() {
        let shared = (x() * 0.5).tanh();
        let a = shared.clone() + y().exp();
        let b = shared.clone() * 2.0;
        let tape = Tape::compile_many(&[a, b]);
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let mut slots = Vec::new();
        tape.eval_interval_into(&region, &mut slots);
        let mut scratch = SpecializeScratch::default();
        let mut view = TapeView::default();
        // Dropping root 0 kills the exp(y) cone but keeps the shared tanh.
        let shortened = tape.specialize_from_slots(&slots, &[false, true], &mut scratch, &mut view);
        assert!(shortened);
        assert!(view.root_slot(0).is_none());
        assert!(view.root_slot(1).is_some());
        assert!(view.len() < tape.num_slots());
        assert_view_matches(&tape, &view, &region, &[vec![0.3, -0.4]]);
    }

    #[test]
    fn respecialization_keeps_shortening_on_descent() {
        // min(x, y) over a region where it is undecided, then decided on the
        // child region: the second specialization must shorten further.
        let f = x().min(y()) + (x() + y()).tanh();
        let tape = Tape::compile(&f);
        let analysis = ChoiceAnalysis::analyze(&tape);
        let parent_region = IntervalBox::from_bounds(&[(-1.0, 1.0), (0.0, 2.0)]);
        let mut scratch = SpecializeScratch::default();
        let parent = tape.specialize(&parent_region, &mut scratch);
        assert_eq!(parent.len(), tape.num_slots(), "undecided on the parent");
        assert_eq!(parent.num_open_choices(), 1);

        let child_region = IntervalBox::from_bounds(&[(-1.0, -0.5), (0.0, 2.0)]);
        let (slots, choices) = record(&parent, &tape, &child_region);
        let mut child = TapeView::default();
        let shortened = parent.respecialize_into(
            &tape,
            &analysis,
            &slots,
            &choices,
            &[true],
            &mut scratch,
            &mut child,
        );
        assert!(shortened, "x < y is decided on the child");
        assert!(child.len() < parent.len());
        assert_eq!(child.num_open_choices(), 0);
        assert_view_matches(
            &tape,
            &child,
            &IntervalBox::from_bounds(&[(-0.9, -0.6), (0.5, 1.0)]),
            &[vec![-0.75, 0.8], vec![-1.0, 0.0]],
        );
    }

    #[test]
    fn unchanged_choices_exit_at_the_delta_check() {
        let f = x().min(y()) + x().max(y()) + (x() * y()).abs();
        let tape = Tape::compile(&f);
        assert_eq!(tape.num_choices(), 3);
        let analysis = ChoiceAnalysis::analyze(&tape);
        let mut scratch = SpecializeScratch::default();
        // Nothing separates on a zero-straddling region…
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let parent = tape.specialize(&region, &mut scratch);
        assert_eq!(parent.num_open_choices(), 3);
        // …nor on this sub-region, so respecialization must refuse in O(C).
        let sub = IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]);
        let (slots, choices) = record(&parent, &tape, &sub);
        let mut child = TapeView::default();
        let wrote = parent.respecialize_into(
            &tape,
            &analysis,
            &slots,
            &choices,
            &[true],
            &mut scratch,
            &mut child,
        );
        assert!(!wrote);
        assert_eq!(scratch.delta_exits(), 1);
        assert_eq!(scratch.emit_passes(), 0);
    }

    #[test]
    fn emit_passes_stay_bounded_on_a_deep_descent() {
        // A ReLU-style chain: each layer is max(w·prev + b, 0).  Descend 40
        // times toward a point; every site decides at most once, so the
        // number of full emission passes is bounded by the choice count
        // (plus nothing for the depth).
        let mut z = x();
        for k in 0..12 {
            let w = 0.7 + 0.05 * k as f64;
            z = (z * w + 0.3).max(Expr::constant(0.0));
        }
        let z = z + y().min(x());
        let tape = Tape::compile(&z);
        let nc = tape.num_choices();
        assert!(nc >= 13);
        let analysis = ChoiceAnalysis::analyze(&tape);
        let mut scratch = SpecializeScratch::default();

        let mut lo = [-8.0, -8.0];
        let mut hi = [8.0, 8.0];
        let region = IntervalBox::from_bounds(&[(lo[0], hi[0]), (lo[1], hi[1])]);
        let mut view = tape.specialize(&region, &mut scratch);
        let mut next = TapeView::default();
        let depth = 40;
        for _ in 0..depth {
            // Halve toward the point (1.7, -3.1).
            for d in 0..2 {
                let target = [1.7, -3.1][d];
                let mid = 0.5 * (lo[d] + hi[d]);
                if target <= mid {
                    hi[d] = mid;
                } else {
                    lo[d] = mid;
                }
            }
            let sub = IntervalBox::from_bounds(&[(lo[0], hi[0]), (lo[1], hi[1])]);
            let (slots, choices) = record(&view, &tape, &sub);
            if view.respecialize_into(
                &tape,
                &analysis,
                &slots,
                &choices,
                &vec![true; tape.num_roots()],
                &mut scratch,
                &mut next,
            ) {
                std::mem::swap(&mut view, &mut next);
            }
            assert_view_matches(&tape, &view, &sub, &[vec![1.7, -3.1]]);
        }
        assert!(
            scratch.emit_passes() <= nc,
            "{} emission passes for {nc} choice sites over {depth} levels",
            scratch.emit_passes()
        );
        assert!(
            scratch.delta_exits() >= depth - nc,
            "most levels must exit at the delta check"
        );
        // Deep in the descent everything is decided: every site was
        // aliased away (for a positive ReLU chain the winning affine cone
        // stays — the saving per site is the site instruction itself).
        assert_eq!(view.num_open_choices(), 0);
        assert!(view.len() <= tape.num_slots() - nc);
    }

    #[test]
    fn nan_able_branches_are_not_aliased() {
        // sqrt(x) over a partially negative region can be NaN at points even
        // though its enclosure [0, 1] beats the other branch; IEEE min would
        // swallow that NaN, so aliasing must be refused.
        let f = x().sqrt().min(y() + 10.0);
        let tape = Tape::compile(&f);
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (0.0, 1.0)]);
        let mut scratch = SpecializeScratch::default();
        let view = tape.specialize(&region, &mut scratch);
        assert_eq!(view.len(), tape.num_slots(), "tainted branch must be kept");
        // The scalar results at a NaN point agree because nothing changed.
        let mut full = Vec::new();
        let mut short = Vec::new();
        tape.eval_scalar_into(&[-0.5, 0.0], &mut full);
        view.eval_scalar_into(&tape, &[-0.5, 0.0], &mut short);
        assert_eq!(
            short[view.root_slot(0).unwrap()].to_bits(),
            full[tape.root_slot(0)].to_bits()
        );
    }

    #[test]
    fn taint_vetoes_recorded_separations_in_respecialization() {
        // The same NaN-able separation, but arriving through the recorded
        // trace of a respecialization: the veto must hold there too.
        let f = x().sqrt().min(y() + 10.0);
        let tape = Tape::compile(&f);
        let analysis = ChoiceAnalysis::analyze(&tape);
        let mut scratch = SpecializeScratch::default();
        let region = IntervalBox::from_bounds(&[(-1.0, 1.0), (0.0, 1.0)]);
        let parent = tape.specialize(&region, &mut scratch);
        let sub = IntervalBox::from_bounds(&[(-1.0, 0.5), (0.0, 1.0)]);
        let (slots, choices) = record(&parent, &tape, &sub);
        // The trace *does* show separation (sqrt enclosure beats y + 10)…
        assert_ne!(choices[0], Choice::Both);
        let mut child = TapeView::default();
        let wrote = parent.respecialize_into(
            &tape,
            &analysis,
            &slots,
            &choices,
            &[true],
            &mut scratch,
            &mut child,
        );
        // …but the tainted branch blocks it, and with nothing else to do
        // the parent view is kept as-is.
        assert!(!wrote);
    }

    #[test]
    fn full_view_is_the_identity() {
        let f = x().tanh() * y() + x().powi(3);
        let tape = Tape::compile(&f);
        let view = TapeView::full(&tape);
        assert_eq!(view.len(), tape.num_slots());
        assert_eq!(view.num_roots(), 1);
        let region = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        assert_view_matches(&tape, &view, &region, &[vec![0.5, -1.5]]);
        // Instruction views resolve through the parent tape.
        for i in 0..view.len() {
            match view.instr(&tape, i) {
                TapeInstr::Binary(_, a, b) => assert!(a < i && b < i),
                TapeInstr::Unary(_, a) | TapeInstr::Powi(a, _) => assert!(a < i),
                TapeInstr::Const(..) | TapeInstr::Var(_) => {}
            }
        }
    }

    #[test]
    fn recording_sweeps_match_plain_sweeps_bitwise() {
        let f = (x().min(y()) * 2.0).abs().max(x() * y());
        let tape = Tape::compile(&f);
        let region = IntervalBox::from_bounds(&[(-2.0, 3.0), (-1.0, 4.0)]);
        let mut plain = Vec::new();
        tape.eval_interval_into(&region, &mut plain);
        let mut recorded = Vec::new();
        let mut choices = vec![Choice::Both; tape.num_choices()];
        tape.eval_interval_extend_into_recording(
            &region,
            &mut recorded,
            tape.num_slots(),
            &mut choices,
        );
        for (p, r) in plain.iter().zip(&recorded) {
            assert_eq!(p.lo().to_bits(), r.lo().to_bits());
            assert_eq!(p.hi().to_bits(), r.hi().to_bits());
        }
    }
}
