//! Parameterized scenario families: typed axes expanded into concrete
//! scenarios.
//!
//! A [`Family`] is a base [`Scenario`] plus a list of [`ParamAxis`]s —
//! typed parameter dimensions over initial-set corners, unsafe-set (safe
//! region) bounds, neural-controller weight perturbation, plant constants,
//! and solver precision/configuration.  Each axis carries a value list
//! produced by a **grid**, a **linspace**, or a **deterministic
//! seeded-random** sampler; [`Family::expand`] takes the cartesian product
//! and yields one concrete scenario per combination, named
//! `{family}-{index:03}`.
//!
//! Families are declared programmatically (the
//! [built-in families](crate::registry::builtin_families)) or in the TOML
//! manifest as `[[family]]` tables with nested `[[family.axis]]` tables —
//! see `scenarios/families.toml` in the repository for the format.
//!
//! Because a sweep deliberately crosses certification boundaries, members
//! default to [`ExpectedVerdict::Any`] and the family instead pins the
//! aggregate verdict **counts** ([`ExpectedCounts`]): the batch runner fails
//! when a family no longer produces, say, "22 certified / 2 inconclusive",
//! which freezes sweep semantics without hand-labelling hundreds of
//! members.
//!
//! # Examples
//!
//! ```
//! use nncps_scenarios::{AxisParam, Family, ParamAxis, Registry};
//!
//! let base = Registry::builtin().get("linear-unstable-canary").unwrap().clone();
//! let family = Family::new("canary-sweep", "contraction-rate sweep", base)
//!     .with_axis(ParamAxis::grid(AxisParam::plant("matrix_scale"), vec![-4.0, -2.0, 1.0]))
//!     .with_axis(ParamAxis::linspace(AxisParam::Delta, 1e-4, 1e-3, 2));
//! assert_eq!(family.len(), 6);
//! let members = family.expand().unwrap();
//! assert_eq!(members[0].name(), "canary-sweep-000");
//! assert_eq!(members.len(), 6);
//! ```

use nncps_barrier::SafetySpec;
use nncps_interval::IntervalBox;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::scenario::{ExpectedVerdict, ManifestError, PlantSpec, Scenario};
use crate::toml::TomlTable;
use crate::Registry;

/// The quantity a [`ParamAxis`] varies.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisParam {
    /// Lower corner of the initial set `X0` in the given state dimension.
    X0Lo(usize),
    /// Upper corner of the initial set `X0` in the given state dimension.
    X0Hi(usize),
    /// Lower bound of the safe region (i.e. of the rectangle whose
    /// complement is the unsafe set) in the given state dimension.
    SafeLo(usize),
    /// Upper bound of the safe region in the given state dimension.
    SafeHi(usize),
    /// δ-SAT solver precision (`VerificationConfig::delta`).
    Delta,
    /// Decrease slack `γ` (`VerificationConfig::gamma`).
    Gamma,
    /// RNG seed of the seed-trace sampling (`VerificationConfig::seed`);
    /// values must be non-negative integers.
    Seed,
    /// Number of seed traces (`VerificationConfig::num_seed_traces`);
    /// values must be positive integers.
    NumSeedTraces,
    /// Simulation horizon (`VerificationConfig::sim_duration`).
    SimDuration,
    /// Relative magnitude of the neural-controller weight perturbation
    /// (`0.0` = the unmodified controller); the perturbation direction is
    /// drawn from the family's `weight_seed`.
    WeightPerturbation,
    /// A named plant constant (`speed`, `k_theta`, `max_force`,
    /// `matrix_scale`, ... — validated against the base plant kind at
    /// expansion time).
    Plant(String),
}

impl AxisParam {
    /// Convenience constructor for a named plant constant.
    pub fn plant(name: impl Into<String>) -> Self {
        AxisParam::Plant(name.into())
    }

    /// The manifest spelling.
    fn label(&self) -> String {
        match self {
            AxisParam::X0Lo(d) => format!("x0_lo[{d}]"),
            AxisParam::X0Hi(d) => format!("x0_hi[{d}]"),
            AxisParam::SafeLo(d) => format!("safe_lo[{d}]"),
            AxisParam::SafeHi(d) => format!("safe_hi[{d}]"),
            AxisParam::Delta => "delta".to_string(),
            AxisParam::Gamma => "gamma".to_string(),
            AxisParam::Seed => "seed".to_string(),
            AxisParam::NumSeedTraces => "num_seed_traces".to_string(),
            AxisParam::SimDuration => "sim_duration".to_string(),
            AxisParam::WeightPerturbation => "weight_perturbation".to_string(),
            AxisParam::Plant(name) => name.clone(),
        }
    }
}

/// One parameter dimension of a family: a target quantity plus the concrete
/// values the sweep visits.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamAxis {
    param: AxisParam,
    values: Vec<f64>,
}

impl ParamAxis {
    /// An axis over explicitly listed values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn grid(param: AxisParam, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "axis needs at least one value");
        ParamAxis { param, values }
    }

    /// An axis over `count` evenly spaced values from `lo` to `hi`
    /// (inclusive; `count == 1` yields just `lo`).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn linspace(param: AxisParam, lo: f64, hi: f64, count: usize) -> Self {
        assert!(count > 0, "axis needs at least one value");
        let values = (0..count)
            .map(|i| {
                if count == 1 {
                    lo
                } else {
                    lo + (hi - lo) * (i as f64) / ((count - 1) as f64)
                }
            })
            .collect();
        ParamAxis { param, values }
    }

    /// An axis over `count` values drawn uniformly from `[lo, hi)` by a
    /// deterministic ChaCha8 RNG seeded with `seed` — the same declaration
    /// regenerates the same values on every machine.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn random(param: AxisParam, lo: f64, hi: f64, count: usize, seed: u64) -> Self {
        assert!(count > 0, "axis needs at least one value");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let values = (0..count)
            .map(|_| lo + (hi - lo) * rng.gen::<f64>())
            .collect();
        ParamAxis { param, values }
    }

    /// The varied quantity.
    pub fn param(&self) -> &AxisParam {
        &self.param
    }

    /// The concrete values this axis sweeps.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Loads one `[[family.axis]]` table.
    fn from_toml(table: &TomlTable) -> Result<Self, ManifestError> {
        let param_name = table
            .get_str("param")
            .ok_or_else(|| ManifestError::new("axis is missing `param`"))?;
        let dim = || {
            table.get_usize("dim").ok_or_else(|| {
                ManifestError::new(format!(
                    "axis `{param_name}` needs a state dimension (`dim = 0`, `dim = 1`, ...)"
                ))
            })
        };
        let param = match param_name {
            "x0_lo" => AxisParam::X0Lo(dim()?),
            "x0_hi" => AxisParam::X0Hi(dim()?),
            "safe_lo" => AxisParam::SafeLo(dim()?),
            "safe_hi" => AxisParam::SafeHi(dim()?),
            "delta" => AxisParam::Delta,
            "gamma" => AxisParam::Gamma,
            "seed" => AxisParam::Seed,
            "num_seed_traces" => AxisParam::NumSeedTraces,
            "sim_duration" => AxisParam::SimDuration,
            "weight_perturbation" => AxisParam::WeightPerturbation,
            other => AxisParam::Plant(other.to_string()),
        };
        if let Some(grid) = table.get("grid") {
            let values: Vec<f64> = grid
                .as_array()
                .map(|items| items.iter().filter_map(|v| v.as_f64()).collect())
                .unwrap_or_default();
            let len = grid.as_array().map_or(0, <[_]>::len);
            if values.is_empty() || values.len() != len {
                return Err(ManifestError::new(format!(
                    "axis `{param_name}` needs a non-empty numeric `grid = [...]`"
                )));
            }
            return Ok(ParamAxis { param, values });
        }
        let sampler = table.get_str("sampler").ok_or_else(|| {
            ManifestError::new(format!(
                "axis `{param_name}` needs `grid = [...]` or `sampler = \"linspace\"/\"random\"`"
            ))
        })?;
        let number = |key: &str| {
            table.get_f64(key).ok_or_else(|| {
                ManifestError::new(format!("axis `{param_name}` needs numeric `{key}`"))
            })
        };
        let count = table.get_usize("count").filter(|&n| n > 0).ok_or_else(|| {
            ManifestError::new(format!(
                "axis `{param_name}` needs a positive integer `count`"
            ))
        })?;
        match sampler {
            "linspace" => Ok(ParamAxis::linspace(
                param,
                number("lo")?,
                number("hi")?,
                count,
            )),
            "random" => {
                let seed = table.get_usize("seed").ok_or_else(|| {
                    ManifestError::new(format!(
                        "random axis `{param_name}` needs a non-negative integer `seed`"
                    ))
                })? as u64;
                Ok(ParamAxis::random(
                    param,
                    number("lo")?,
                    number("hi")?,
                    count,
                    seed,
                ))
            }
            other => Err(ManifestError::new(format!(
                "unknown sampler `{other}` (use \"linspace\" or \"random\")"
            ))),
        }
    }
}

/// Pinned aggregate verdict counts of a family (the family-level regression
/// gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedCounts {
    /// Members that must certify.
    pub certified: usize,
    /// Members that must stay inconclusive.
    pub inconclusive: usize,
}

/// A parameterized scenario family (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    name: String,
    description: String,
    base: Scenario,
    axes: Vec<ParamAxis>,
    expected: ExpectedVerdict,
    expected_counts: Option<ExpectedCounts>,
    weight_seed: u64,
}

impl Family {
    /// Creates a family over a base scenario with no axes yet (expanding to
    /// the single unmodified base).  Members default to
    /// [`ExpectedVerdict::Any`].
    pub fn new(name: impl Into<String>, description: impl Into<String>, base: Scenario) -> Self {
        Family {
            name: name.into(),
            description: description.into(),
            base,
            axes: Vec::new(),
            expected: ExpectedVerdict::Any,
            expected_counts: None,
            weight_seed: 0,
        }
    }

    /// Appends a parameter axis (builder style).
    pub fn with_axis(mut self, axis: ParamAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Sets the per-member expected verdict (builder style).
    pub fn with_expected(mut self, expected: ExpectedVerdict) -> Self {
        self.expected = expected;
        self
    }

    /// Pins the aggregate verdict counts (builder style).
    pub fn with_counts(mut self, certified: usize, inconclusive: usize) -> Self {
        self.expected_counts = Some(ExpectedCounts {
            certified,
            inconclusive,
        });
        self
    }

    /// Sets the seed of the weight-perturbation direction (builder style).
    pub fn with_weight_seed(mut self, seed: u64) -> Self {
        self.weight_seed = seed;
        self
    }

    /// The family name (member names are `{name}-{index:03}`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The base scenario the axes modify.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// The parameter axes, in declaration order (the last axis varies
    /// fastest in the expansion).
    pub fn axes(&self) -> &[ParamAxis] {
        &self.axes
    }

    /// The pinned aggregate verdict counts, if any.
    pub fn expected_counts(&self) -> Option<ExpectedCounts> {
        self.expected_counts
    }

    /// Number of members the family expands to (the product of the axis
    /// lengths; `1` for an axis-free family).
    #[allow(clippy::len_without_is_empty)] // a family is never empty
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Expands the cartesian product of the axes into concrete scenarios.
    ///
    /// Member `i` uses the mixed-radix digits of `i` over the axis lengths
    /// (last axis fastest), so the expansion order — and therefore every
    /// member name — is a pure function of the declaration.
    ///
    /// # Errors
    ///
    /// Returns a [`ManifestError`] when an axis value is invalid for the
    /// base scenario (dimension out of range, empty boxes, `X0` escaping the
    /// safe region, unknown plant constants, perturbation of a plant
    /// without a neural controller, non-integer counts).
    pub fn expand(&self) -> Result<Vec<Scenario>, ManifestError> {
        let total = self.len();
        let mut members = Vec::with_capacity(total);
        for index in 0..total {
            members.push(self.member(index)?);
        }
        Ok(members)
    }

    /// Expands just the `index`-th member (see [`Family::expand`]).
    ///
    /// # Errors
    ///
    /// As for [`Family::expand`]; additionally errors when `index` is out of
    /// range.
    pub fn member(&self, index: usize) -> Result<Scenario, ManifestError> {
        let total = self.len();
        if index >= total {
            return Err(ManifestError::new(format!(
                "family `{}` has {total} members, index {index} is out of range",
                self.name
            )));
        }
        let in_family = |message: String| {
            ManifestError::new(format!("family `{}`, member {index}: {message}", self.name))
        };

        // Mixed-radix decomposition of the member index, last axis fastest.
        let mut assignment = Vec::with_capacity(self.axes.len());
        let mut rest = index;
        for axis in self.axes.iter().rev() {
            let radix = axis.values.len();
            assignment.push(axis.values[rest % radix]);
            rest /= radix;
        }
        assignment.reverse();

        let dim = self.base.spec().dim();
        let mut plant = self.base.plant().clone();
        let mut config = self.base.config().clone();
        let mut initial: Vec<(f64, f64)> = (0..dim)
            .map(|i| {
                let interval = &self.base.spec().initial_set()[i];
                (interval.lo(), interval.hi())
            })
            .collect();
        // Families assume the paper's rectangular layout: the safe region is
        // the domain of interest, and the unsafe set is its complement.
        let mut safe: Vec<(f64, f64)> = (0..dim)
            .map(|i| {
                let interval = &self.base.spec().domain()[i];
                (interval.lo(), interval.hi())
            })
            .collect();

        let mut summary = String::new();
        for (axis, &value) in self.axes.iter().zip(&assignment) {
            if !summary.is_empty() {
                summary.push_str(", ");
            }
            summary.push_str(&format!("{}={}", axis.param.label(), value));
            let bound = |d: usize| -> Result<(), ManifestError> {
                if d < dim {
                    Ok(())
                } else {
                    Err(in_family(format!(
                        "state dimension {d} is out of range for the {dim}-dimensional plant"
                    )))
                }
            };
            let as_count = |what: &str| -> Result<usize, ManifestError> {
                if value >= 0.0 && value.fract() == 0.0 {
                    Ok(value as usize)
                } else {
                    Err(in_family(format!(
                        "`{what}` values must be non-negative integers, got {value}"
                    )))
                }
            };
            match &axis.param {
                AxisParam::X0Lo(d) => {
                    bound(*d)?;
                    initial[*d].0 = value;
                }
                AxisParam::X0Hi(d) => {
                    bound(*d)?;
                    initial[*d].1 = value;
                }
                AxisParam::SafeLo(d) => {
                    bound(*d)?;
                    safe[*d].0 = value;
                }
                AxisParam::SafeHi(d) => {
                    bound(*d)?;
                    safe[*d].1 = value;
                }
                AxisParam::Delta => config.delta = value,
                AxisParam::Gamma => config.gamma = value,
                AxisParam::Seed => config.seed = as_count("seed")? as u64,
                AxisParam::NumSeedTraces => {
                    config.num_seed_traces = as_count("num_seed_traces")?;
                    if config.num_seed_traces == 0 {
                        return Err(in_family("`num_seed_traces` must be positive".to_string()));
                    }
                }
                AxisParam::SimDuration => config.sim_duration = value,
                AxisParam::WeightPerturbation => {
                    if !plant.has_controller() {
                        return Err(in_family(
                            "weight perturbation needs a neural controller".to_string(),
                        ));
                    }
                    plant = match plant {
                        PlantSpec::Perturbed { base, seed, .. } => PlantSpec::Perturbed {
                            base,
                            scale: value,
                            seed,
                        },
                        base => PlantSpec::Perturbed {
                            base: Box::new(base),
                            scale: value,
                            seed: self.weight_seed,
                        },
                    };
                }
                AxisParam::Plant(name) => {
                    apply_plant_param(&mut plant, name, value).map_err(&in_family)?;
                }
            }
        }

        for (d, &(lo, hi)) in initial.iter().enumerate() {
            if lo > hi {
                return Err(in_family(format!(
                    "initial set is empty in dimension {d} ([{lo}, {hi}])"
                )));
            }
        }
        for (d, &(lo, hi)) in safe.iter().enumerate() {
            if lo > hi {
                return Err(in_family(format!(
                    "safe region is empty in dimension {d} ([{lo}, {hi}])"
                )));
            }
        }
        let initial_box = IntervalBox::from_bounds(&initial);
        let safe_box = IntervalBox::from_bounds(&safe);
        if !safe_box.contains_box(&initial_box) {
            return Err(in_family(
                "initial set escapes the safe region under this assignment".to_string(),
            ));
        }

        let description = if summary.is_empty() {
            self.description.clone()
        } else {
            format!("{} [{summary}]", self.description)
        };
        Ok(Scenario::new(
            format!("{}-{index:03}", self.name),
            description,
            plant,
            SafetySpec::rectangular(initial_box, safe_box),
            config,
            self.expected,
        ))
    }

    /// Loads one `[[family]]` manifest table; `bases` resolves the `base`
    /// scenario reference (built-in registry, or scenarios declared in the
    /// same manifest).
    pub fn from_toml(table: &TomlTable, bases: &Registry) -> Result<Self, ManifestError> {
        let name = table
            .get_str("name")
            .ok_or_else(|| ManifestError::new("family is missing `name`"))?
            .to_string();
        let in_family = |message: String| ManifestError::new(format!("family `{name}`: {message}"));
        let base_name = table
            .get_str("base")
            .ok_or_else(|| in_family("missing `base` scenario reference".to_string()))?;
        let base = bases
            .get(base_name)
            .ok_or_else(|| in_family(format!("unknown base scenario `{base_name}`")))?
            .clone();
        let mut family = Family::new(
            name.clone(),
            table.get_str("description").unwrap_or_default(),
            base,
        );
        if let Some(expected) = table.get_str("expected") {
            family.expected = ExpectedVerdict::parse(expected).map_err(|e| in_family(e.message))?;
        }
        if let Some(seed) = table.get("weight_seed") {
            family.weight_seed = seed.as_usize().ok_or_else(|| {
                in_family("`weight_seed` must be a non-negative integer".to_string())
            })? as u64;
        }
        if let Some(counts) = table.get_table("counts") {
            let count = |key: &str| {
                counts.get_usize(key).ok_or_else(|| {
                    in_family(format!(
                        "[family.counts] needs a non-negative integer `{key}`"
                    ))
                })
            };
            family.expected_counts = Some(ExpectedCounts {
                certified: count("certified")?,
                inconclusive: count("inconclusive")?,
            });
        }
        for axis_table in table.tables("axis") {
            family
                .axes
                .push(ParamAxis::from_toml(axis_table).map_err(|e| in_family(e.message))?);
        }
        if let Some(counts) = family.expected_counts {
            if counts.certified + counts.inconclusive != family.len() {
                return Err(in_family(format!(
                    "[family.counts] pins {} + {} verdicts but the family expands to {} members",
                    counts.certified,
                    counts.inconclusive,
                    family.len()
                )));
            }
        }
        Ok(family)
    }
}

/// Sets a named plant constant, recursing through weight perturbations.
fn apply_plant_param(plant: &mut PlantSpec, name: &str, value: f64) -> Result<(), String> {
    let positive_count = || {
        if value >= 1.0 && value.fract() == 0.0 {
            Ok(value as usize)
        } else {
            Err(format!("`{name}` must be a positive integer, got {value}"))
        }
    };
    match plant {
        PlantSpec::Dubins {
            hidden_neurons,
            speed,
        } => match name {
            "speed" => *speed = value,
            "hidden_neurons" => *hidden_neurons = positive_count()?,
            _ => return Err(format!("dubins plants have no constant `{name}`")),
        },
        PlantSpec::Pendulum {
            hidden_neurons,
            k_theta,
            k_omega,
            max_torque,
            damping,
            ..
        } => match name {
            "k_theta" => *k_theta = value,
            "k_omega" => *k_omega = value,
            "max_torque" => *max_torque = value,
            "damping" => *damping = value,
            "hidden_neurons" => *hidden_neurons = positive_count()?,
            _ => return Err(format!("pendulum plants have no constant `{name}`")),
        },
        PlantSpec::Train {
            hidden_neurons,
            k_position,
            k_velocity,
            max_force,
            drag,
            mass,
        } => match name {
            "k_position" => *k_position = value,
            "k_velocity" => *k_velocity = value,
            "max_force" => *max_force = value,
            "drag" => *drag = value,
            "mass" => *mass = value,
            "hidden_neurons" => *hidden_neurons = positive_count()?,
            _ => return Err(format!("train plants have no constant `{name}`")),
        },
        PlantSpec::Linear { matrix } => match name {
            "matrix_scale" => {
                for row in matrix {
                    for cell in row {
                        *cell *= value;
                    }
                }
            }
            _ => return Err(format!("linear plants have no constant `{name}`")),
        },
        PlantSpec::Perturbed { base, .. } => return apply_plant_param(base, name, value),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml;

    fn linear_base() -> Scenario {
        Registry::from_toml_str(crate::SMOKE_MANIFEST)
            .unwrap()
            .get("smoke-stable-spiral")
            .unwrap()
            .clone()
    }

    #[test]
    fn expansion_is_the_cartesian_product_in_declared_order() {
        let family = Family::new("f", "demo", linear_base())
            .with_axis(ParamAxis::grid(AxisParam::X0Hi(0), vec![0.4, 0.5]))
            .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4, 1e-5]));
        assert_eq!(family.len(), 6);
        let members = family.expand().unwrap();
        assert_eq!(members.len(), 6);
        // Last axis fastest: members 0..3 share x0_hi = 0.4.
        assert_eq!(members[0].spec().initial_set()[0].hi(), 0.4);
        assert_eq!(members[0].config().delta, 1e-3);
        assert_eq!(members[1].config().delta, 1e-4);
        assert_eq!(members[3].spec().initial_set()[0].hi(), 0.5);
        assert_eq!(members[5].config().delta, 1e-5);
        assert_eq!(members[5].name(), "f-005");
        assert!(members[2].description().contains("delta=0.00001"));
        // Axis values are surfaced through accessors too.
        assert_eq!(family.axes()[0].values(), &[0.4, 0.5]);
        assert_eq!(family.axes()[0].param(), &AxisParam::X0Hi(0));
        // Single-member expansion matches the bulk expansion.
        assert_eq!(family.member(4).unwrap(), members[4]);
        assert!(family.member(6).is_err());
    }

    #[test]
    fn linspace_and_random_samplers_are_deterministic() {
        let lin = ParamAxis::linspace(AxisParam::Gamma, 0.0, 1.0, 5);
        assert_eq!(lin.values(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(
            ParamAxis::linspace(AxisParam::Gamma, 2.0, 9.0, 1).values(),
            &[2.0]
        );
        let a = ParamAxis::random(AxisParam::Delta, 1e-4, 1e-3, 8, 42);
        let b = ParamAxis::random(AxisParam::Delta, 1e-4, 1e-3, 8, 42);
        assert_eq!(a.values(), b.values());
        assert!(a.values().iter().all(|&v| (1e-4..1e-3).contains(&v)));
        let c = ParamAxis::random(AxisParam::Delta, 1e-4, 1e-3, 8, 43);
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn invalid_assignments_are_rejected_with_context() {
        let shrunk = Family::new("bad", "x0 escapes", linear_base())
            .with_axis(ParamAxis::grid(AxisParam::SafeHi(0), vec![0.1]));
        let err = shrunk.expand().unwrap_err();
        assert!(err.to_string().contains("escapes"), "{err}");

        let empty = Family::new("bad", "empty box", linear_base())
            .with_axis(ParamAxis::grid(AxisParam::X0Lo(1), vec![2.0]));
        assert!(empty.expand().unwrap_err().to_string().contains("empty"));

        let out_of_range = Family::new("bad", "dim", linear_base())
            .with_axis(ParamAxis::grid(AxisParam::X0Lo(7), vec![0.0]));
        assert!(out_of_range
            .expand()
            .unwrap_err()
            .to_string()
            .contains("out of range"));

        let bad_seed = Family::new("bad", "seed", linear_base())
            .with_axis(ParamAxis::grid(AxisParam::Seed, vec![1.5]));
        assert!(bad_seed
            .expand()
            .unwrap_err()
            .to_string()
            .contains("non-negative integers"));

        let no_controller = Family::new("bad", "perturb linear", linear_base())
            .with_axis(ParamAxis::grid(AxisParam::WeightPerturbation, vec![0.1]));
        assert!(no_controller
            .expand()
            .unwrap_err()
            .to_string()
            .contains("neural controller"));

        let unknown_constant = Family::new("bad", "constant", linear_base())
            .with_axis(ParamAxis::grid(AxisParam::plant("warp"), vec![1.0]));
        assert!(unknown_constant
            .expand()
            .unwrap_err()
            .to_string()
            .contains("no constant"));
    }

    #[test]
    fn weight_perturbation_wraps_nn_plants_once() {
        let base = Registry::builtin().get("pendulum-tanh-16").unwrap().clone();
        let family = Family::new("p", "perturb", base)
            .with_weight_seed(9)
            .with_axis(ParamAxis::grid(AxisParam::WeightPerturbation, vec![0.02]))
            .with_axis(ParamAxis::grid(AxisParam::plant("k_theta"), vec![1.3]));
        let member = family.expand().unwrap().remove(0);
        match member.plant() {
            PlantSpec::Perturbed { base, scale, seed } => {
                assert_eq!((*scale, *seed), (0.02, 9));
                match base.as_ref() {
                    PlantSpec::Pendulum { k_theta, .. } => assert_eq!(*k_theta, 1.3),
                    other => panic!("unexpected base {other:?}"),
                }
            }
            other => panic!("expected a perturbed plant, got {other:?}"),
        }
        assert_eq!(member.plant().kind(), "pendulum");
        assert!(member.plant().has_controller());
        // The perturbed closed loop builds and differs from the unperturbed
        // one.
        let perturbed = member.build_system();
        let reference = family.base().build_system();
        let p = perturbed.derivative(&[0.1, -0.05]);
        let r = reference.derivative(&[0.1, -0.05]);
        assert_eq!(p.len(), 2);
        assert_ne!(p, r);
    }

    #[test]
    fn family_toml_roundtrip_and_errors() {
        let bases = Registry::builtin();
        let doc = toml::parse(
            r#"
            [[family]]
            name = "dubins-grid"
            description = "speed x delta"
            base = "dubins-paper"
            expected = "any"
            weight_seed = 11
            [family.counts]
            certified = 5
            inconclusive = 1
            [[family.axis]]
            param = "speed"
            grid = [0.9, 1.0, 1.1]
            [[family.axis]]
            param = "delta"
            sampler = "linspace"
            lo = 1e-4
            hi = 1e-3
            count = 2
            "#,
        )
        .unwrap();
        let family = Family::from_toml(doc.tables("family")[0], &bases).unwrap();
        assert_eq!(family.name(), "dubins-grid");
        assert_eq!(family.description(), "speed x delta");
        assert_eq!(family.len(), 6);
        assert_eq!(
            family.expected_counts(),
            Some(ExpectedCounts {
                certified: 5,
                inconclusive: 1
            })
        );
        assert_eq!(family.base().name(), "dubins-paper");

        let errors = [
            ("[[family]]\nbase = \"dubins-paper\"\n", "missing `name`"),
            ("[[family]]\nname = \"f\"\n", "missing `base`"),
            (
                "[[family]]\nname = \"f\"\nbase = \"no-such\"\n",
                "unknown base",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\nexpected = \"maybe\"\n",
                "unknown expected verdict",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\nweight_seed = -1\n",
                "non-negative integer",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[family.counts]\ncertified = 1\n",
                "inconclusive",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[family.counts]\ncertified = 1\ninconclusive = 1\n",
                "expands to 1 members",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[[family.axis]]\ngrid = [1.0]\n",
                "missing `param`",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[[family.axis]]\nparam = \"x0_lo\"\ngrid = [1.0]\n",
                "state dimension",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[[family.axis]]\nparam = \"delta\"\ngrid = []\n",
                "non-empty numeric",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[[family.axis]]\nparam = \"delta\"\ngrid = [1.0, true]\n",
                "non-empty numeric",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[[family.axis]]\nparam = \"delta\"\n",
                "needs `grid",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[[family.axis]]\nparam = \"delta\"\nsampler = \"sobol\"\nlo = 0\nhi = 1\ncount = 2\n",
                "unknown sampler",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[[family.axis]]\nparam = \"delta\"\nsampler = \"linspace\"\nlo = 0\ncount = 2\n",
                "needs numeric `hi`",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[[family.axis]]\nparam = \"delta\"\nsampler = \"linspace\"\nlo = 0\nhi = 1\ncount = 0\n",
                "positive integer `count`",
            ),
            (
                "[[family]]\nname = \"f\"\nbase = \"dubins-paper\"\n[[family.axis]]\nparam = \"delta\"\nsampler = \"random\"\nlo = 0\nhi = 1\ncount = 2\n",
                "needs a non-negative integer `seed`",
            ),
        ];
        for (text, needle) in errors {
            let doc = toml::parse(text).unwrap();
            let err = Family::from_toml(doc.tables("family")[0], &bases).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "expected `{needle}` in `{err}` for:\n{text}"
            );
        }
    }
}
