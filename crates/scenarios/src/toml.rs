//! A TOML subset parser for scenario manifests.
//!
//! The build environment is offline, so instead of the `toml` crate this
//! module implements exactly the grammar the scenario manifests use:
//!
//! * comments (`# ...`),
//! * `key = value` pairs with string, integer, float, boolean, and
//!   (arbitrarily nested) inline-array values,
//! * `[table]` and `[table.subtable]` headers,
//! * `[[array-of-tables]]` headers (with standard TOML semantics: a
//!   `[scenario.plant]` header after a `[[scenario]]` header nests into the
//!   most recent `scenario` element).
//!
//! Dates, multi-line strings, and inline tables are not supported; the
//! manifest loader does not need them.

use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic `"..."` string.
    String(String),
    /// An integer literal.
    Integer(i64),
    /// A float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// An inline array `[a, b, ...]`, possibly nested.
    Array(Vec<TomlValue>),
    /// A (sub)table, from `[header]` / `[[header]]` sections.
    Table(TomlTable),
}

impl TomlValue {
    /// Numeric payload, accepting both integer and float literals.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Integer(n) => Some(*n as f64),
            TomlValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer payload.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            TomlValue::Integer(n) if *n >= 0 => Some(*n as usize),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Table payload.
    pub fn as_table(&self) -> Option<&TomlTable> {
        match self {
            TomlValue::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// An insertion-ordered table of keys to values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlTable {
    entries: Vec<(String, TomlValue)>,
}

impl TomlTable {
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All `(key, value)` pairs in insertion order.
    pub fn entries(&self) -> &[(String, TomlValue)] {
        &self.entries
    }

    /// String value for a key.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(TomlValue::as_str)
    }

    /// Numeric value for a key (integer or float literal).
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(TomlValue::as_f64)
    }

    /// Non-negative integer value for a key.
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get(key).and_then(TomlValue::as_usize)
    }

    /// Sub-table for a key.
    pub fn get_table(&self, key: &str) -> Option<&TomlTable> {
        self.get(key).and_then(TomlValue::as_table)
    }

    /// The elements of an array-of-tables key (`[[key]]` sections), or an
    /// empty slice if the key is absent.
    pub fn tables(&self, key: &str) -> Vec<&TomlTable> {
        match self.get(key) {
            Some(TomlValue::Array(items)) => items.iter().filter_map(TomlValue::as_table).collect(),
            _ => Vec::new(),
        }
    }

    fn get_mut(&mut self, key: &str) -> Option<&mut TomlValue> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn insert(&mut self, key: String, value: TomlValue) -> bool {
        if self.get(&key).is_some() {
            return false;
        }
        self.entries.push((key, value));
        true
    }
}

/// Error from [`parse`], with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// What went wrong.
    pub message: String,
    /// 1-based line the error was found on.
    pub line: usize,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TomlError {}

/// Parses a manifest into its root table.
///
/// # Examples
///
/// ```
/// use nncps_scenarios::toml;
///
/// let doc = toml::parse(
///     r#"
///     title = "demo"                # comment
///     [[scenario]]
///     name = "a"
///     bounds = [[-1.0, 1.0], [0, 2]]
///     [scenario.config]
///     seed = 2018
///     [[scenario]]
///     name = "b"
///     "#,
/// )
/// .unwrap();
/// assert_eq!(doc.get_str("title"), Some("demo"));
/// let scenarios = doc.tables("scenario");
/// assert_eq!(scenarios.len(), 2);
/// assert_eq!(scenarios[0].get_table("config").unwrap().get_usize("seed"), Some(2018));
/// ```
pub fn parse(text: &str) -> Result<TomlTable, TomlError> {
    let mut root = TomlTable::default();
    // Path of the currently open `[section]`, as (key, index-into-array)
    // steps; key-value lines attach to the table this path points at.
    let mut current_path: Vec<String> = Vec::new();
    // Signatures of every explicit `[header]` seen so far (scoped to the
    // array-of-tables element they landed in), so redefining a table is an
    // error like in standard TOML.
    let mut defined_headers: Vec<String> = Vec::new();

    for (line_index, raw_line) in text.lines().enumerate() {
        let line_no = line_index + 1;
        let err = |message: String| TomlError {
            message,
            line: line_no,
        };
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let Some(header) = header.strip_suffix("]]") else {
                return Err(err("unterminated `[[` header".to_string()));
            };
            let path = parse_key_path(header).map_err(&err)?;
            append_array_element(&mut root, &path).map_err(&err)?;
            current_path = path;
        } else if let Some(header) = line.strip_prefix('[') {
            let Some(header) = header.strip_suffix(']') else {
                return Err(err("unterminated `[` header".to_string()));
            };
            let path = parse_key_path(header).map_err(&err)?;
            let signature = header_signature(&root, &path);
            if defined_headers.contains(&signature) {
                return Err(err(format!("duplicate table header `[{header}]`")));
            }
            defined_headers.push(signature);
            open_table(&mut root, &path, false).map_err(&err)?;
            current_path = path;
        } else {
            let Some(eq) = find_unquoted(line, '=') else {
                return Err(err(format!("expected `key = value`, got `{line}`")));
            };
            let key = line[..eq].trim();
            if key.is_empty() {
                return Err(err("empty key".to_string()));
            }
            let (value, rest) = parse_value(line[eq + 1..].trim()).map_err(&err)?;
            if !rest.trim().is_empty() {
                return Err(err(format!("trailing characters `{}`", rest.trim())));
            }
            let table = navigate_mut(&mut root, &current_path)
                .expect("section headers always create their tables");
            if !table.insert(key.to_string(), value) {
                return Err(err(format!("duplicate key `{key}`")));
            }
        }
    }
    Ok(root)
}

/// The identity of a `[header]` path *within its array-of-tables scope*:
/// path segments landing on an array of tables carry the index of the
/// element the header attaches to, so `[scenario.plant]` under the second
/// `[[scenario]]` does not collide with the one under the first.
fn header_signature(root: &TomlTable, path: &[String]) -> String {
    let mut signature = String::new();
    let mut table = Some(root);
    for key in path {
        signature.push('.');
        signature.push_str(key);
        let value = table.and_then(|t| t.get(key));
        if let Some(TomlValue::Array(items)) = value {
            signature.push_str(&format!("[{}]", items.len().saturating_sub(1)));
        }
        table = match value {
            Some(TomlValue::Table(t)) => Some(t),
            Some(TomlValue::Array(items)) => items.last().and_then(TomlValue::as_table),
            _ => None,
        };
    }
    signature
}

fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Finds `needle` outside of any double-quoted string.
fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
        } else if c == '"' {
            in_string = true;
        } else if c == needle {
            return Some(i);
        }
    }
    None
}

fn parse_key_path(header: &str) -> Result<Vec<String>, String> {
    let path: Vec<String> = header
        .split('.')
        .map(|part| part.trim().to_string())
        .collect();
    if path.iter().any(|part| {
        part.is_empty()
            || !part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    }) {
        return Err(format!("invalid table header `{header}`"));
    }
    Ok(path)
}

/// Walks `path` from the root, stepping into the last element of
/// arrays-of-tables, without creating anything.
fn navigate_mut<'a>(root: &'a mut TomlTable, path: &[String]) -> Option<&'a mut TomlTable> {
    let mut table = root;
    for key in path {
        let value = table.get_mut(key)?;
        table = match value {
            TomlValue::Table(t) => t,
            TomlValue::Array(items) => match items.last_mut() {
                Some(TomlValue::Table(t)) => t,
                _ => return None,
            },
            _ => return None,
        };
    }
    Some(table)
}

/// Ensures the `[header]` path exists, creating intermediate tables.
///
/// Intermediate path segments (and, with `allow_array_tail`, the final one)
/// may land on an array of tables, in which case the walk steps into its
/// most recent element — that is how `[scenario.plant]` nests under the
/// latest `[[scenario]]`, and how `[[family.axis]]` appends inside the
/// latest `[[family]]`.  Without the flag, a plain `[header]` naming an
/// existing array of tables is an error (standard TOML forbids redefining
/// `[[x]]` as `[x]`).
fn open_table(root: &mut TomlTable, path: &[String], allow_array_tail: bool) -> Result<(), String> {
    let mut table = root;
    for (depth, key) in path.iter().enumerate() {
        if table.get(key).is_none() {
            table.insert(key.clone(), TomlValue::Table(TomlTable::default()));
        }
        let value = table.get_mut(key).expect("just inserted");
        table = match value {
            TomlValue::Table(t) => t,
            TomlValue::Array(items) if depth + 1 < path.len() || allow_array_tail => {
                match items.last_mut() {
                    Some(TomlValue::Table(t)) => t,
                    _ => return Err(format!("`{key}` is not a table")),
                }
            }
            _ => return Err(format!("`{key}` is not a table")),
        };
    }
    Ok(())
}

/// Appends a fresh element for a `[[header]]` path.
fn append_array_element(root: &mut TomlTable, path: &[String]) -> Result<(), String> {
    let (last, prefix) = path.split_last().expect("headers are non-empty");
    let parent = if prefix.is_empty() {
        root
    } else {
        open_table(root, prefix, true)?;
        navigate_mut(root, prefix).ok_or_else(|| "invalid header path".to_string())?
    };
    if parent.get(last).is_none() {
        parent.insert(last.clone(), TomlValue::Array(Vec::new()));
    }
    match parent.get_mut(last) {
        Some(TomlValue::Array(items)) => {
            items.push(TomlValue::Table(TomlTable::default()));
            Ok(())
        }
        _ => Err(format!("`{last}` is not an array of tables")),
    }
}

/// Maximum inline-array nesting depth: manifests use two levels
/// (`[[lo, hi], ...]`); the cap turns pathological inputs into a parse
/// error instead of unbounded recursion.
const MAX_ARRAY_DEPTH: usize = 32;

/// Parses one value, returning it and the unconsumed remainder of the line.
fn parse_value(text: &str) -> Result<(TomlValue, &str), String> {
    parse_value_at(text, 0)
}

fn parse_value_at(text: &str, depth: usize) -> Result<(TomlValue, &str), String> {
    let text = text.trim_start();
    if let Some(rest) = text.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((TomlValue::String(out), &rest[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    other => return Err(format!("unsupported escape `\\{other:?}`")),
                },
                c => out.push(c),
            }
        }
        return Err("unterminated string".to_string());
    }
    if let Some(mut rest) = text.strip_prefix('[') {
        if depth >= MAX_ARRAY_DEPTH {
            return Err(format!("arrays nest deeper than {MAX_ARRAY_DEPTH} levels"));
        }
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((TomlValue::Array(items), after));
            }
            let (item, after) = parse_value_at(rest, depth + 1)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with(']') {
                return Err(format!("expected `,` or `]` in array, got `{rest}`"));
            }
        }
    }
    if let Some(rest) = text.strip_prefix("true") {
        return Ok((TomlValue::Bool(true), rest));
    }
    if let Some(rest) = text.strip_prefix("false") {
        return Ok((TomlValue::Bool(false), rest));
    }
    // A number: consume the longest prefix of number-ish characters.
    let end = text
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '+' | '-' | '.' | 'e' | 'E' | '_')))
        .unwrap_or(text.len());
    let (number, rest) = text.split_at(end);
    let cleaned: String = number.chars().filter(|&c| c != '_').collect();
    if cleaned.is_empty() {
        return Err(format!("expected a value, got `{text}`"));
    }
    if !cleaned.contains(['.', 'e', 'E']) {
        if let Ok(n) = cleaned.parse::<i64>() {
            return Ok((TomlValue::Integer(n), rest));
        }
    }
    cleaned
        .parse::<f64>()
        .map(|x| (TomlValue::Float(x), rest))
        .map_err(|_| format!("invalid number `{number}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_comments() {
        let doc =
            parse("a = 1\nb = -2.5  # trailing comment\nc = \"x # not a comment\"\nd = true\n")
                .unwrap();
        assert_eq!(doc.get_usize("a"), Some(1));
        assert_eq!(doc.get_f64("b"), Some(-2.5));
        assert_eq!(doc.get_str("c"), Some("x # not a comment"));
        assert_eq!(doc.get("d"), Some(&TomlValue::Bool(true)));
        assert_eq!(doc.get_f64("a"), Some(1.0), "integers read as numbers too");
    }

    #[test]
    fn nested_inline_arrays() {
        let doc = parse("m = [[-1.0, 1], [0.5, 2.5]]\nempty = []\n").unwrap();
        let m = doc.get("m").unwrap().as_array().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].as_array().unwrap()[1].as_f64(), Some(1.0));
        assert_eq!(doc.get("empty").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn array_of_tables_with_subtables() {
        let doc = parse(
            r#"
            [[scenario]]
            name = "first"
            [scenario.plant]
            kind = "linear"
            [[scenario]]
            name = "second"
            [scenario.plant]
            kind = "dubins"
            width = 20
            "#,
        )
        .unwrap();
        let scenarios = doc.tables("scenario");
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].get_str("name"), Some("first"));
        assert_eq!(
            scenarios[0].get_table("plant").unwrap().get_str("kind"),
            Some("linear")
        );
        assert_eq!(
            scenarios[1].get_table("plant").unwrap().get_usize("width"),
            Some(20)
        );
    }

    #[test]
    fn plain_tables_nest() {
        let doc = parse("[outer]\na = 1\n[outer.inner]\nb = 2\n").unwrap();
        let outer = doc.get_table("outer").unwrap();
        assert_eq!(outer.get_usize("a"), Some(1));
        assert_eq!(outer.get_table("inner").unwrap().get_usize("b"), Some(2));
        assert_eq!(doc.entries().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("a = 1\nb = \n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("a = 1\na = 2\n")
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        assert!(parse("[unclosed\n").is_err());
        assert!(parse("nonsense\n").is_err());
        assert!(parse("x = [1, \n").is_err());
        assert!(parse("x = \"abc\n").is_err());
    }

    #[test]
    fn underscored_numbers_and_signs() {
        let doc = parse("big = 2_000_000\nneg = -4\nexp = 1e-6\n").unwrap();
        assert_eq!(doc.get_usize("big"), Some(2_000_000));
        assert_eq!(doc.get_f64("neg"), Some(-4.0));
        assert_eq!(doc.get_f64("exp"), Some(1e-6));
        assert_eq!(doc.get("neg").unwrap().as_usize(), None);
    }
}
