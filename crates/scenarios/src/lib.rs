//! Scenario registry and batch verification runner.
//!
//! The paper's contribution is a *pipeline* — simulate, falsify, synthesize
//! a barrier candidate, δ-SAT-check it — and this crate turns the problems
//! that pipeline runs on into **data**: a [`Scenario`] names a plant (with
//! its neural controller), a safety specification, a pipeline
//! configuration, and the expected verdict.  A [`Registry`] is an ordered
//! collection of scenarios, either the [built-in set](Registry::builtin)
//! (the Dubins, pendulum, and train case studies plus parameterized
//! variants) or loaded from a TOML manifest ([`Registry::from_toml_file`]).
//!
//! [`run_batch`] executes the full falsify→verify pipeline over a registry
//! — fanning scenarios out over the workspace's thread-parallel layer —
//! and produces a [`BatchReport`]: per-scenario verdict, certificate
//! fingerprint, counterexample witnesses, δ-SAT box counts, and wall
//! times, serialized as deterministic JSON.  CI diffs that report against
//! the checked-in `SCENARIOS_expected.json` baseline and fails on any
//! verdict or witness drift (see `ci.sh`'s scenario-regression stage and
//! the `nncps-batch` binary).
//!
//! # Examples
//!
//! ```
//! use nncps_scenarios::{run_batch, BatchOptions, Registry};
//!
//! // Run a slice of the built-in registry and serialize the report.
//! let registry = Registry::builtin().filtered("canary");
//! let report = run_batch(&registry, &BatchOptions::default());
//! assert!(report.all_match_expected());
//! let json = report.to_json(true);
//! assert!(json.contains("\"linear-unstable-canary\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod family;
pub mod json;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod serve;
pub mod toml;

pub use family::{AxisParam, ExpectedCounts, Family, ParamAxis};
pub use json::{Json, JsonError};
#[doc(hidden)]
pub use registry::SMOKE_MANIFEST;
pub use registry::{builtin_families, families_from_toml_str, Registry};
pub use report::{BatchReport, CrashedMember, FamilyRollup, RunStats, ScenarioResult};
pub use runner::{
    run_batch, run_scenario, run_scenario_cached, run_scenario_governed, run_sweep, BatchOptions,
    SweepCache, SweepOptions,
};
pub use scenario::{
    pd_controller, pendulum_controller, ExpectedVerdict, ManifestError, PlantSpec, Scenario,
};
pub use serve::{Directive, ServeEngine, ServeOptions, PROTOCOL_VERSION};
