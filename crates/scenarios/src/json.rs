//! A minimal JSON value type with a deterministic writer and a strict parser.
//!
//! The batch runner's reports must be byte-identical across runs (the CI
//! scenario-regression stage diffs them), so the writer makes no formatting
//! decisions at runtime: object keys keep their insertion order and floats
//! are printed with Rust's shortest round-trip representation.  The parser
//! exists so the CI comparators can read the checked-in baselines back; it
//! accepts exactly the constructs the writer emits plus ordinary JSON.
//!
//! The build environment is offline (no `serde`), hence this hand-rolled
//! module; the surface is deliberately tiny.

use std::fmt;

/// A JSON document.
///
/// Objects preserve insertion order — this is what makes
/// `Json::to_string` (via [`fmt::Display`]) deterministic, and it
/// round-trips through
/// [`Json::parse`] bit-exactly (floats use the shortest representation that
/// parses back to the same `f64`).
///
/// # Examples
///
/// ```
/// use nncps_scenarios::Json;
///
/// let doc = Json::object([
///     ("name".to_string(), Json::from("dubins-paper")),
///     ("certified".to_string(), Json::Bool(true)),
///     ("level".to_string(), Json::Number(0.1875)),
/// ]);
/// let text = doc.to_string();
/// assert_eq!(Json::parse(&text).unwrap(), doc);
/// assert_eq!(doc.get("name").and_then(Json::as_str), Some("dubins-paper"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.  (NaN and infinities are not representable in JSON;
    /// the writer panics on them rather than emit an unparsable document.)
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::String(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Number(x)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Number(n as f64)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn object(fields: impl IntoIterator<Item = (String, Json)>) -> Self {
        Json::Object(fields.into_iter().collect())
    }

    /// Builds an array of numbers.
    pub fn numbers<'a>(values: impl IntoIterator<Item = &'a f64>) -> Self {
        Json::Array(values.into_iter().map(|&x| Json::Number(x)).collect())
    }

    /// Looks a key up in an object (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => {
                assert!(x.is_finite(), "JSON cannot represent {x}");
                // Exactly-representable integers (counters, box counts)
                // print without a fractional part; everything else uses
                // `{:?}`, Rust's shortest round-trip float formatting.
                // Both forms parse back to the same bits.
                if x.fract() == 0.0
                    && x.abs() <= 9_007_199_254_740_992.0
                    && (*x != 0.0 || x.is_sign_positive())
                {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x:?}"));
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, Json::Array(_) | Json::Object(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        push_indent(out, indent + 1);
                        item.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    push_indent(out, indent);
                    out.push(']');
                }
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Serializes onto a single line (no indentation, no trailing newline) —
    /// the framing unit of the `nncps-serve` line protocol, where one
    /// document must occupy exactly one `\n`-terminated line.
    ///
    /// # Panics
    ///
    /// Panics if the document contains a non-finite number.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_compact(out);
                }
                out.push('}');
            }
            // Scalars never contain newlines (strings escape them).
            scalar => scalar.write(out, 0),
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Serializes with two-space indentation and a trailing newline, so
/// `doc.to_string()` is the canonical on-disk form.
///
/// # Panics
///
/// Panics if the document contains a non-finite number.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Json::parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where the parser stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth: reports nest three levels; the cap
/// turns adversarial `[[[[...` inputs into a parse error instead of a
/// stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the ASCII
                            // reports this crate writes; reject them rather
                            // than decode them wrongly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unpaired surrogate in \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `c`.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    if start + len > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Number(0.0),
            Json::Number(-1.5),
            Json::Number(6.342e-3),
            Json::Number(1e300),
            Json::String("hello \"world\"\n\t\\".to_string()),
            Json::String("unicode: π ≤ 4".to_string()),
        ] {
            let text = doc.to_string();
            assert_eq!(Json::parse(&text).unwrap(), doc, "text: {text}");
        }
    }

    #[test]
    fn float_bits_survive_the_round_trip() {
        for &x in &[
            0.1,
            2.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            0.0,
            349.0,
            -17.0,
            9_007_199_254_740_993.0,
        ] {
            let text = Json::Number(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "text: {text}");
        }
        // Counters print without a fractional part.
        assert_eq!(Json::Number(349.0).to_string(), "349\n");
        assert_eq!(Json::Number(-0.0).to_string(), "-0.0\n");
    }

    #[test]
    fn nested_structures_round_trip_and_preserve_order() {
        let doc = Json::object([
            ("zeta".to_string(), Json::numbers(&[1.0, 2.5, -3.0])),
            (
                "alpha".to_string(),
                Json::Array(vec![
                    Json::object([("k".to_string(), Json::Null)]),
                    Json::Array(vec![]),
                    Json::Object(vec![]),
                ]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Insertion order is preserved (zeta stays before alpha).
        let keys: Vec<&str> = back
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["zeta", "alpha"]);
    }

    #[test]
    fn parses_foreign_formatting() {
        let doc = Json::parse("  {\"a\":[1,2 , 3e2],\"b\":{\"c\":null}} ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "[1] x",
        ] {
            assert!(Json::parse(text).is_err(), "should reject: {text}");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::object([("n".to_string(), Json::from(3usize))]);
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
        assert_eq!(Json::from("s").as_str(), Some("s"));
        assert!(Json::Null.as_array().is_none());
        assert!(Json::Null.as_object().is_none());
        assert!(format!("{doc}").contains("\"n\""));
    }

    #[test]
    #[should_panic(expected = "JSON cannot represent")]
    fn non_finite_numbers_panic_the_writer() {
        let _ = Json::Number(f64::NAN).to_string();
    }
}
