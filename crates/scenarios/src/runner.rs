//! The batch runner: the full falsify→verify pipeline over a registry, and
//! the warm-start sweep engine over scenario families.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use nncps_barrier::{
    Budget, ClosedLoopSystem, VerificationRequest, VerificationSession, WarmStart,
};
use nncps_sim::ExprDynamics;

use crate::family::Family;
use crate::report::{BatchReport, CrashedMember, FamilyRollup, ScenarioResult};
use crate::scenario::{ManifestError, PlantSpec, Scenario};
use crate::Registry;

/// Options of a batch run.
///
/// The default fans scenarios out over one worker per available core
/// (`threads == 0`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOptions {
    /// Scenario-level worker threads (`0` = one per available core, `1` =
    /// sequential).  Scenarios are independent verification problems, so
    /// the batch fans them out through
    /// [`nncps_parallel::parallel_map`]; results keep registry order and
    /// are bit-identical for every thread count (per-scenario determinism
    /// is governed by each scenario's own `smt_threads` setting, not by
    /// this knob).
    pub threads: usize,
    /// Deterministic per-member fuel limit (tape instructions); `None` =
    /// unlimited.  Each member gets a fresh [`Budget`], so the limit is
    /// per scenario, not shared across the batch.
    pub fuel: Option<u64>,
    /// Per-member wall-clock deadline in milliseconds (non-deterministic;
    /// excluded from pinned report forms); `None` = unlimited.
    pub deadline_ms: Option<u64>,
}

/// Options of a family sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Scenario-level worker threads (same semantics as
    /// [`BatchOptions::threads`]).
    pub threads: usize,
    /// Whether family members share a [`SweepCache`] (compiled queries,
    /// simulation bundles, LP candidates, built dynamics).  Reused
    /// artifacts are bit-identical to recomputation, so this switch changes
    /// wall-clock time only — the deterministic report is byte-identical
    /// either way (asserted by `tests/family_warm_start.rs`).
    pub warm_start: bool,
    /// Deterministic per-member fuel limit (same semantics as
    /// [`BatchOptions::fuel`]).
    pub fuel: Option<u64>,
    /// Per-member wall-clock deadline in milliseconds (same semantics as
    /// [`BatchOptions::deadline_ms`]).
    pub deadline_ms: Option<u64>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            warm_start: true,
            fuel: None,
            deadline_ms: None,
        }
    }
}

/// A fresh per-member [`Budget`] from the batch/sweep governance knobs.
///
/// Budgets are deliberately *not* shared across members: fuel accounting
/// stays a deterministic per-scenario quantity, and a member's deadline
/// clock starts when its own verification starts.
pub(crate) fn member_budget(fuel: Option<u64>, deadline_ms: Option<u64>) -> Budget {
    let mut budget = Budget::unlimited();
    if let Some(instructions) = fuel {
        budget = budget.with_fuel(instructions);
    }
    if let Some(ms) = deadline_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    budget
}

/// Shared memoization state of one family sweep: a
/// [`VerificationSession`] (compiled δ-SAT queries, simulation bundles, LP
/// candidates, whole-outcome memo, optionally disk-backed) plus the built
/// symbolic dynamics per distinct [`PlantSpec`] (family members sharing a
/// plant expand the neural controller into its symbolic closed loop once).
///
/// Workers share one instance read-mostly; every cached artifact is a pure
/// function of its key, so sweep results are independent of hit/miss
/// patterns and thread interleavings.
#[derive(Debug, Default)]
pub struct SweepCache {
    session: Arc<VerificationSession>,
    plants: Mutex<Vec<(PlantSpec, Arc<ExprDynamics>)>>,
}

impl SweepCache {
    /// Creates an empty cache with in-memory caches only.
    pub fn new() -> Self {
        SweepCache::default()
    }

    /// A cache over an existing (possibly disk-backed) session — the
    /// constructor a resident server uses so its store outlives every
    /// sweep.
    pub fn with_session(session: Arc<VerificationSession>) -> Self {
        SweepCache {
            session,
            plants: Mutex::new(Vec::new()),
        }
    }

    /// The verification session shared by this cache's members.
    pub fn session(&self) -> &VerificationSession {
        &self.session
    }

    /// The verifier-level warm-start state (for hit/miss reporting).
    pub fn warm_start(&self) -> &WarmStart {
        self.session.warm_start()
    }

    /// Number of distinct plants whose dynamics were built so far.
    pub fn plants_built(&self) -> usize {
        // A crashed sweep member can leave this mutex poisoned; every entry
        // is a pure function of its key built outside the lock, so the
        // stored state is never torn and recovery is safe.
        self.plants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// The symbolic closed-loop dynamics of a plant, built once per
    /// distinct spec.  [`PlantSpec::build_dynamics`] is deterministic, so
    /// the shared value is bit-identical to a per-member rebuild.
    fn dynamics_for(&self, plant: &PlantSpec) -> Arc<ExprDynamics> {
        if let Some((_, found)) = self
            .plants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|(spec, _)| spec == plant)
        {
            return Arc::clone(found);
        }
        // Build outside the lock (symbolic NN expansion can be slow); a
        // racing duplicate build is dropped in favour of the first insert.
        let built = Arc::new(plant.build_dynamics());
        let mut plants = self.plants.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((_, found)) = plants.iter().find(|(spec, _)| spec == plant) {
            return Arc::clone(found);
        }
        plants.push((plant.clone(), Arc::clone(&built)));
        built
    }
}

/// Runs one scenario end to end (build the closed loop, run the verifier)
/// and assembles its report entry.
///
/// # Examples
///
/// ```
/// use nncps_scenarios::{run_scenario, Registry};
///
/// let registry = Registry::builtin();
/// let result = run_scenario(registry.get("linear-unstable-canary").unwrap());
/// assert_eq!(result.verdict, "inconclusive");
/// assert!(result.matches_expected);
/// ```
pub fn run_scenario(scenario: &Scenario) -> ScenarioResult {
    run_scenario_cached(scenario, None)
}

/// [`run_scenario`] with an optional shared [`SweepCache`]: dynamics come
/// from the plant cache and the verifier runs with the sweep's warm-start
/// state.  The result is bit-identical to the cache-free run; only the
/// wall-time fields differ.
pub fn run_scenario_cached(scenario: &Scenario, cache: Option<&SweepCache>) -> ScenarioResult {
    run_scenario_governed(scenario, cache, &Budget::unlimited())
}

/// [`run_scenario_cached`] under a resource [`Budget`]: the verifier polls
/// the budget at its stage boundaries and inner loops, degrading to an
/// inconclusive outcome with a machine-readable
/// [`ExhaustionReason`](nncps_barrier::ExhaustionReason) when it trips.  An
/// unlimited budget leaves the run bit-identical to [`run_scenario_cached`].
pub fn run_scenario_governed(
    scenario: &Scenario,
    cache: Option<&SweepCache>,
    budget: &Budget,
) -> ScenarioResult {
    let build_start = Instant::now();
    let system = match cache {
        Some(cache) => {
            let dynamics = cache.dynamics_for(scenario.plant());
            ClosedLoopSystem::from_dynamics(&*dynamics, scenario.spec().clone())
        }
        None => scenario.build_system(),
    };
    let build_time_s = build_start.elapsed().as_secs_f64();
    let request = VerificationRequest::over(&system)
        .with_config(scenario.config().clone())
        .with_budget(budget.clone());
    let verify_start = Instant::now();
    let outcome = match cache {
        Some(cache) => cache.session().verify(&request),
        // Cache-free runs stay genuinely cold: the pipeline executes from
        // scratch with no memo layers, exactly as before the session API.
        None => VerificationSession::new().verify(&request.cold()),
    };
    let wall_time_s = verify_start.elapsed().as_secs_f64();
    ScenarioResult::from_outcome(scenario, &outcome, wall_time_s, build_time_s)
}

/// Splits the order-preserving isolated fan-out into the surviving results
/// and the crashed-member rows, tagging each crash with its scenario name.
fn partition_outcomes(
    outcomes: Vec<Result<ScenarioResult, nncps_parallel::Crash>>,
    scenarios: &[Scenario],
) -> (Vec<ScenarioResult>, Vec<CrashedMember>) {
    let mut results = Vec::with_capacity(outcomes.len());
    let mut crashed = Vec::new();
    for (outcome, scenario) in outcomes.into_iter().zip(scenarios) {
        match outcome {
            Ok(result) => results.push(result),
            Err(crash) => crashed.push(CrashedMember {
                scenario: scenario.name().to_string(),
                payload: crash.payload,
            }),
        }
    }
    (results, crashed)
}

/// Runs every scenario of the registry and collects the batch report.
///
/// The scenarios fan out over `options.threads` workers via the workspace's
/// parallel layer; the report lists results in registry order regardless of
/// completion order.  Each member runs panic-isolated
/// ([`nncps_parallel::parallel_map_isolated`]): a member that panics becomes
/// a [`CrashedMember`] row in the report while every other member completes
/// normally.
pub fn run_batch(registry: &Registry, options: &BatchOptions) -> BatchReport {
    let scenarios: Vec<Scenario> = registry.iter().cloned().collect();
    let outcomes = nncps_parallel::parallel_map_isolated(&scenarios, options.threads, |scenario| {
        run_scenario_governed(
            scenario,
            None,
            &member_budget(options.fuel, options.deadline_ms),
        )
    });
    let (results, crashed) = partition_outcomes(outcomes, &scenarios);
    BatchReport {
        threads: options.threads,
        results,
        families: Vec::new(),
        crashed,
    }
}

/// Expands every family and runs all members through the sweep engine,
/// producing a report with per-family roll-ups.
///
/// Members run in expansion order (families in input order, members in
/// index order) over `options.threads` workers; with
/// [`SweepOptions::warm_start`] enabled (the default) all workers share one
/// [`SweepCache`].  The deterministic report form is byte-identical across
/// thread counts *and* across the warm-start switch.
///
/// # Errors
///
/// Returns a [`ManifestError`] when two families share a name or an axis
/// assignment is invalid for its base scenario (see [`Family::expand`]).
///
/// # Examples
///
/// ```
/// use nncps_scenarios::{run_sweep, AxisParam, Family, ParamAxis, Registry, SweepOptions};
///
/// let base = Registry::builtin().get("linear-unstable-canary").unwrap().clone();
/// let family = Family::new("canary", "delta sweep", base)
///     .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4]))
///     .with_counts(0, 2);
/// let report = run_sweep(&[family], &SweepOptions::default()).unwrap();
/// assert_eq!(report.results.len(), 2);
/// assert_eq!(report.families[0].inconclusive, 2);
/// assert!(report.check_family_counts().is_ok());
/// ```
pub fn run_sweep(
    families: &[Family],
    options: &SweepOptions,
) -> Result<BatchReport, ManifestError> {
    let (scenarios, groups) = expand_families(families)?;
    let cache = options.warm_start.then(SweepCache::new);
    let outcomes = nncps_parallel::parallel_map_isolated(&scenarios, options.threads, |scenario| {
        run_scenario_governed(
            scenario,
            cache.as_ref(),
            &member_budget(options.fuel, options.deadline_ms),
        )
    });
    Ok(assemble_sweep_report(
        families,
        &groups,
        outcomes,
        &scenarios,
        options.threads,
    ))
}

/// The flat member list plus each family's `[start, end)` slice of it.
pub(crate) type ExpandedFamilies = (Vec<Scenario>, Vec<(usize, usize)>);

/// Expands families into the flat member list plus each family's
/// `[start, end)` slice of it, rejecting duplicate family names.  Shared
/// between [`run_sweep`] and the serve engine, so both expand identically.
pub(crate) fn expand_families(families: &[Family]) -> Result<ExpandedFamilies, ManifestError> {
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut groups: Vec<(usize, usize)> = Vec::with_capacity(families.len());
    for (index, family) in families.iter().enumerate() {
        if families[..index].iter().any(|f| f.name() == family.name()) {
            return Err(ManifestError::new(format!(
                "duplicate family name `{}`",
                family.name()
            )));
        }
        let start = scenarios.len();
        scenarios.extend(family.expand()?);
        groups.push((start, scenarios.len()));
    }
    Ok((scenarios, groups))
}

/// Assembles the sweep report from per-member outcomes in expansion order
/// — the single definition of the report shape, so a server-side sweep is
/// byte-identical (in deterministic form) to an in-process one.
pub(crate) fn assemble_sweep_report(
    families: &[Family],
    groups: &[(usize, usize)],
    outcomes: Vec<Result<ScenarioResult, nncps_parallel::Crash>>,
    scenarios: &[Scenario],
    threads: usize,
) -> BatchReport {
    // Count crashes per family group before partitioning strips them: a
    // crashed member leaves no `ScenarioResult`, so the surviving results of
    // family `f` are a contiguous slice shorter than its member count.
    let group_crashes: Vec<usize> = groups
        .iter()
        .map(|&(start, end)| outcomes[start..end].iter().filter(|o| o.is_err()).count())
        .collect();
    let (results, crashed) = partition_outcomes(outcomes, scenarios);
    let mut survivors_start = 0;
    let rollups = families
        .iter()
        .zip(groups.iter().zip(&group_crashes))
        .map(|(family, (&(start, end), &fam_crashed))| {
            let survived = (end - start) - fam_crashed;
            let slice = &results[survivors_start..survivors_start + survived];
            survivors_start += survived;
            FamilyRollup::from_results(family.name(), slice, fam_crashed, family.expected_counts())
        })
        .collect();
    BatchReport {
        threads,
        results,
        families: rollups,
        crashed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{AxisParam, ParamAxis};

    /// The shared two-scenario linear fixture (cheap: no NN case studies).
    fn small_registry() -> Registry {
        Registry::from_toml_str(crate::SMOKE_MANIFEST).expect("smoke manifest parses")
    }

    #[test]
    fn batch_runs_match_expectations_and_keep_order() {
        let registry = small_registry();
        let report = run_batch(&registry, &BatchOptions::default());
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.results[0].name, "smoke-stable-spiral");
        assert_eq!(report.results[0].verdict, "certified");
        assert!(report.results[0].level.is_some());
        assert!(!report.results[0].generator_coefficients.is_empty());
        assert_eq!(report.results[1].name, "smoke-unstable");
        assert_eq!(report.results[1].verdict, "inconclusive");
        assert!(report.results[1].reason.is_some());
        assert!(report.all_match_expected());
        // Solver effort is surfaced per scenario.
        assert!(report.results[0].stats.boxes_explored > 0);
        assert!(report.results[0].stats.clauses_examined > 0);
    }

    #[test]
    fn scenario_parallelism_does_not_change_the_report() {
        let registry = small_registry();
        let sequential = run_batch(
            &registry,
            &BatchOptions {
                threads: 1,
                ..BatchOptions::default()
            },
        );
        let parallel = run_batch(
            &registry,
            &BatchOptions {
                threads: 4,
                ..BatchOptions::default()
            },
        );
        // Scenario-level fan-out is observationally pure: the deterministic
        // report form is byte-identical across thread counts.
        assert_eq!(sequential.to_json(false), parallel.to_json(false));
    }

    #[test]
    fn sweep_rollups_count_verdicts_and_share_the_cache() {
        let registry = small_registry();
        let stable = registry.get("smoke-stable-spiral").unwrap().clone();
        let family = Family::new("spiral", "delta sweep over the stable spiral", stable)
            .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4, 1e-5]))
            .with_counts(3, 0);
        let report = run_sweep(
            std::slice::from_ref(&family),
            &SweepOptions {
                threads: 1,
                warm_start: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.results.len(), 3);
        assert_eq!(report.results[0].name, "spiral-000");
        assert_eq!(report.families.len(), 1);
        let rollup = &report.families[0];
        assert_eq!(
            (rollup.members, rollup.certified, rollup.inconclusive),
            (3, 3, 0)
        );
        assert_eq!(rollup.unexpected, 0);
        assert!(report.check_family_counts().is_ok());

        // Wrong pinned counts are reported as drift.
        let wrong = family.with_counts(0, 3);
        let report = run_sweep(&[wrong], &SweepOptions::default()).unwrap();
        let findings = report.check_family_counts().unwrap_err();
        assert!(findings[0].contains("counts drifted"), "{findings:?}");
    }

    #[test]
    fn duplicate_family_names_are_rejected() {
        let base = small_registry().get("smoke-unstable").unwrap().clone();
        let family = Family::new("twice", "", base);
        let err = run_sweep(&[family.clone(), family], &SweepOptions::default()).unwrap_err();
        assert!(err.to_string().contains("duplicate family name"));
    }

    #[test]
    fn sweep_cache_builds_each_distinct_plant_once() {
        let cache = SweepCache::new();
        let registry = small_registry();
        let stable = registry.get("smoke-stable-spiral").unwrap();
        let a = cache.dynamics_for(stable.plant());
        let b = cache.dynamics_for(stable.plant());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.plants_built(), 1);
        cache.dynamics_for(registry.get("smoke-unstable").unwrap().plant());
        assert_eq!(cache.plants_built(), 2);
    }
}
