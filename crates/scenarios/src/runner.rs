//! The batch runner: the full falsify→verify pipeline over a registry.

use std::time::Instant;

use nncps_barrier::Verifier;

use crate::report::{BatchReport, ScenarioResult};
use crate::scenario::Scenario;
use crate::Registry;

/// Options of a batch run.
///
/// The default fans scenarios out over one worker per available core
/// (`threads == 0`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOptions {
    /// Scenario-level worker threads (`0` = one per available core, `1` =
    /// sequential).  Scenarios are independent verification problems, so
    /// the batch fans them out through
    /// [`nncps_parallel::parallel_map`]; results keep registry order and
    /// are bit-identical for every thread count (per-scenario determinism
    /// is governed by each scenario's own `smt_threads` setting, not by
    /// this knob).
    pub threads: usize,
}

/// Runs one scenario end to end (build the closed loop, run the verifier)
/// and assembles its report entry.
///
/// # Examples
///
/// ```
/// use nncps_scenarios::{run_scenario, Registry};
///
/// let registry = Registry::builtin();
/// let result = run_scenario(registry.get("linear-unstable-canary").unwrap());
/// assert_eq!(result.verdict, "inconclusive");
/// assert!(result.matches_expected);
/// ```
pub fn run_scenario(scenario: &Scenario) -> ScenarioResult {
    let build_start = Instant::now();
    let system = scenario.build_system();
    let build_time_s = build_start.elapsed().as_secs_f64();
    let verifier = Verifier::new(scenario.config().clone());
    let verify_start = Instant::now();
    let outcome = verifier.verify(&system);
    let wall_time_s = verify_start.elapsed().as_secs_f64();
    ScenarioResult::from_outcome(scenario, &outcome, wall_time_s, build_time_s)
}

/// Runs every scenario of the registry and collects the batch report.
///
/// The scenarios fan out over `options.threads` workers via the workspace's
/// parallel layer; the report lists results in registry order regardless of
/// completion order.
pub fn run_batch(registry: &Registry, options: &BatchOptions) -> BatchReport {
    let scenarios: Vec<&Scenario> = registry.iter().collect();
    let results = nncps_parallel::parallel_map(&scenarios, options.threads, |scenario| {
        run_scenario(scenario)
    });
    BatchReport {
        threads: options.threads,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared two-scenario linear fixture (cheap: no NN case studies).
    fn small_registry() -> Registry {
        Registry::from_toml_str(crate::SMOKE_MANIFEST).expect("smoke manifest parses")
    }

    #[test]
    fn batch_runs_match_expectations_and_keep_order() {
        let registry = small_registry();
        let report = run_batch(&registry, &BatchOptions::default());
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.results[0].name, "smoke-stable-spiral");
        assert_eq!(report.results[0].verdict, "certified");
        assert!(report.results[0].level.is_some());
        assert!(!report.results[0].generator_coefficients.is_empty());
        assert_eq!(report.results[1].name, "smoke-unstable");
        assert_eq!(report.results[1].verdict, "inconclusive");
        assert!(report.results[1].reason.is_some());
        assert!(report.all_match_expected());
        // Solver effort is surfaced per scenario.
        assert!(report.results[0].stats.boxes_explored > 0);
        assert!(report.results[0].stats.clauses_examined > 0);
    }

    #[test]
    fn scenario_parallelism_does_not_change_the_report() {
        let registry = small_registry();
        let sequential = run_batch(&registry, &BatchOptions { threads: 1 });
        let parallel = run_batch(&registry, &BatchOptions { threads: 4 });
        // Scenario-level fan-out is observationally pure: the deterministic
        // report form is byte-identical across thread counts.
        assert_eq!(sequential.to_json(false), parallel.to_json(false));
    }
}
