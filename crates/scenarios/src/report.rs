//! Machine-readable batch reports and the verdict-drift check that CI runs.

use nncps_barrier::{ExhaustionReason, VerificationOutcome, VerificationStats};

use crate::json::Json;
use crate::scenario::Scenario;

/// The per-scenario slice of a [`BatchReport`].
///
/// Everything except `wall_time_s` and `build_time_s` is deterministic for a
/// fixed registry and thread configuration, and is covered by
/// [`ScenarioResult::fingerprint`]; the timings are reporting-only and are
/// excluded from the deterministic serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario name (registry key).
    pub name: String,
    /// The plant kind (`dubins`, `pendulum`, ...).
    pub plant_kind: String,
    /// The verdict the registry expects (`certified` / `inconclusive`).
    pub expected: String,
    /// The verdict the pipeline produced (`certified` / `inconclusive`).
    pub verdict: String,
    /// Whether `verdict == expected`.
    pub matches_expected: bool,
    /// The inconclusive reason, if any.
    pub reason: Option<String>,
    /// The certified level `ℓ`, if any.
    pub level: Option<f64>,
    /// The certified generator function, flattened as the rows of `P`
    /// followed by `q` and `c` (empty when inconclusive).
    pub generator_coefficients: Vec<f64>,
    /// Midpoints of the decrease-check counterexample witness boxes, in
    /// discovery order.
    pub counterexample_witnesses: Vec<Vec<f64>>,
    /// Pipeline counters (Table 1 quantities plus δ-SAT search totals).
    pub stats: RunStats,
    /// Machine-readable resource-exhaustion cause of an inconclusive run
    /// (`None` when the run completed or failed for a non-resource reason).
    /// Serialized only when present, and in the deterministic report form
    /// only for deterministic reasons (box and fuel budgets) — wall-clock
    /// deadlines and cancellation are excluded from pinned reports.
    pub exhaustion: Option<ExhaustionReason>,
    /// Wall-clock seconds spent inside the verifier.
    pub wall_time_s: f64,
    /// Wall-clock seconds spent building the closed-loop system (symbolic
    /// network expansion).
    pub build_time_s: f64,
}

/// The deterministic counters of one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Candidate-generator iterations.
    pub generator_iterations: usize,
    /// LP solves.
    pub lp_solves: usize,
    /// Decrease-condition δ-SAT checks.
    pub smt_decrease_checks: usize,
    /// Counterexamples fed back into the LP.
    pub counterexamples: usize,
    /// Level-set bisection iterations.
    pub level_iterations: usize,
    /// Total δ-SAT boxes explored across all queries.
    pub boxes_explored: usize,
    /// Total δ-SAT boxes pruned.
    pub boxes_pruned: usize,
    /// Total δ-SAT bisections.
    pub bisections: usize,
    /// Total DNF clauses examined.
    pub clauses_examined: usize,
    /// Total tape instructions executed by solver forward sweeps.
    pub instructions_executed: usize,
    /// Σ of active (possibly region-specialized) program lengths over all
    /// solver boxes — the work-per-box integral specialization shrinks.
    pub specialized_tape_len_sum: usize,
    /// Derivative-guided cuts (monotonicity collapses + interval-Newton
    /// narrowings) applied by the solver.
    pub newton_cuts: usize,
}

impl ScenarioResult {
    /// Assembles the result of one scenario run.
    pub fn from_outcome(
        scenario: &Scenario,
        outcome: &VerificationOutcome,
        wall_time_s: f64,
        build_time_s: f64,
    ) -> Self {
        let stats = outcome.stats();
        let (verdict, reason) = match outcome {
            VerificationOutcome::Certified { .. } => ("certified".to_string(), None),
            VerificationOutcome::Inconclusive { reason, .. } => {
                ("inconclusive".to_string(), Some(reason.clone()))
            }
        };
        let (level, generator_coefficients) = match outcome.certificate() {
            Some(certificate) => (Some(certificate.level()), flatten_generator(certificate)),
            None => (None, Vec::new()),
        };
        ScenarioResult {
            name: scenario.name().to_string(),
            plant_kind: scenario.plant().kind().to_string(),
            expected: scenario.expected().as_str().to_string(),
            matches_expected: scenario.expected().matches(outcome),
            verdict,
            reason,
            level,
            generator_coefficients,
            counterexample_witnesses: stats.counterexample_witnesses.clone(),
            stats: RunStats::from_verification(stats),
            exhaustion: stats.exhaustion,
            wall_time_s,
            build_time_s,
        }
    }

    /// A 64-bit FNV-1a hash over every deterministic field that identifies
    /// the run's semantics: verdict, reason, level and generator bits, and
    /// the counterexample-witness trail.  CI diffs this hash against
    /// `SCENARIOS_expected.json`, so any drift in verdicts *or* in the
    /// certified object itself fails the gate.
    pub fn fingerprint(&self) -> String {
        let mut hash = Fnv1a::new();
        hash.write(self.name.as_bytes());
        hash.write(&[0xff]);
        hash.write(self.verdict.as_bytes());
        hash.write(&[0xff]);
        // A presence byte keeps `None` distinguishable from `Some("")`.
        match &self.reason {
            Some(reason) => {
                hash.write(&[0x01]);
                hash.write(reason.as_bytes());
            }
            None => hash.write(&[0x00]),
        }
        hash.write(&[0xff]);
        if let Some(level) = self.level {
            hash.write(&level.to_bits().to_le_bytes());
        }
        hash.write(&[0xff]);
        for &c in &self.generator_coefficients {
            hash.write(&c.to_bits().to_le_bytes());
        }
        hash.write(&[0xff]);
        for witness in &self.counterexample_witnesses {
            for &x in witness {
                hash.write(&x.to_bits().to_le_bytes());
            }
            hash.write(&[0xfe]);
        }
        format!("{:016x}", hash.finish())
    }

    fn to_json(&self, include_timings: bool) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::from(self.name.as_str())),
            ("plant".to_string(), Json::from(self.plant_kind.as_str())),
            ("expected".to_string(), Json::from(self.expected.as_str())),
            ("verdict".to_string(), Json::from(self.verdict.as_str())),
            (
                "matches_expected".to_string(),
                Json::Bool(self.matches_expected),
            ),
            (
                "reason".to_string(),
                match &self.reason {
                    Some(reason) => Json::from(reason.as_str()),
                    None => Json::Null,
                },
            ),
            (
                "level".to_string(),
                match self.level {
                    Some(level) => Json::Number(level),
                    None => Json::Null,
                },
            ),
            (
                "generator_coefficients".to_string(),
                Json::numbers(&self.generator_coefficients),
            ),
            (
                "counterexample_witnesses".to_string(),
                Json::Array(
                    self.counterexample_witnesses
                        .iter()
                        .map(Json::numbers)
                        .collect(),
                ),
            ),
            ("stats".to_string(), self.stats.to_json()),
            ("fingerprint".to_string(), Json::String(self.fingerprint())),
        ];
        // The machine-readable exhaustion cause serializes only when
        // present, so reports without one stay byte-identical to the
        // pre-governance schema.  Non-deterministic reasons (deadline,
        // cancellation) appear only in the timing-bearing form.
        if let Some(exhaustion) = self
            .exhaustion
            .filter(|e| include_timings || e.is_deterministic())
        {
            fields.push((
                "exhaustion".to_string(),
                Json::object([
                    ("kind".to_string(), Json::from(exhaustion.kind())),
                    (
                        "limit".to_string(),
                        match exhaustion.limit() {
                            Some(limit) => Json::from(limit as usize),
                            None => Json::Null,
                        },
                    ),
                ]),
            ));
        }
        if include_timings {
            fields.push(("wall_time_s".to_string(), Json::Number(self.wall_time_s)));
            fields.push(("build_time_s".to_string(), Json::Number(self.build_time_s)));
        }
        Json::Object(fields)
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let str_field = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("result is missing string field `{key}`"))
        };
        let result = ScenarioResult {
            name: str_field("name")?,
            plant_kind: str_field("plant")?,
            expected: str_field("expected")?,
            verdict: str_field("verdict")?,
            matches_expected: match json.get("matches_expected") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("result is missing bool field `matches_expected`".to_string()),
            },
            reason: match json.get("reason") {
                Some(Json::String(s)) => Some(s.clone()),
                Some(Json::Null) | None => None,
                _ => return Err("`reason` must be a string or null".to_string()),
            },
            level: match json.get("level") {
                Some(Json::Number(x)) => Some(*x),
                Some(Json::Null) | None => None,
                _ => return Err("`level` must be a number or null".to_string()),
            },
            generator_coefficients: number_array(json.get("generator_coefficients"))?,
            counterexample_witnesses: json
                .get("counterexample_witnesses")
                .and_then(Json::as_array)
                .unwrap_or_default()
                .iter()
                .map(|w| number_array(Some(w)))
                .collect::<Result<_, _>>()?,
            stats: RunStats::from_json(
                json.get("stats")
                    .ok_or_else(|| "result is missing `stats`".to_string())?,
            )?,
            exhaustion: match json.get("exhaustion") {
                Some(entry) => {
                    let kind = entry
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or_else(|| "`exhaustion` is missing `kind`".to_string())?;
                    let limit = entry.get("limit").and_then(Json::as_f64).map(|x| x as u64);
                    Some(ExhaustionReason::from_parts(kind, limit).ok_or_else(|| {
                        format!("unknown exhaustion kind `{kind}` (limit {limit:?})")
                    })?)
                }
                None => None,
            },
            wall_time_s: json
                .get("wall_time_s")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            build_time_s: json
                .get("build_time_s")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        };
        let recorded = json
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| "result is missing `fingerprint`".to_string())?;
        if recorded != result.fingerprint() {
            return Err(format!(
                "fingerprint of `{}` does not match its fields (corrupted report?)",
                result.name
            ));
        }
        Ok(result)
    }
}

fn number_array(json: Option<&Json>) -> Result<Vec<f64>, String> {
    json.and_then(Json::as_array)
        .ok_or_else(|| "expected a numeric array".to_string())?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| "expected a number".to_string()))
        .collect()
}

fn flatten_generator(certificate: &nncps_barrier::BarrierCertificate) -> Vec<f64> {
    let generator = certificate.generator();
    let n = generator.dim();
    let mut coefficients = Vec::with_capacity(n * n + n + 1);
    for i in 0..n {
        for j in 0..n {
            coefficients.push(generator.quadratic_part()[(i, j)]);
        }
    }
    for i in 0..n {
        coefficients.push(generator.linear_part()[i]);
    }
    coefficients.push(generator.constant_part());
    coefficients
}

impl RunStats {
    /// Extracts the deterministic counters from the pipeline statistics.
    pub fn from_verification(stats: &VerificationStats) -> Self {
        RunStats {
            generator_iterations: stats.generator_iterations,
            lp_solves: stats.lp_solves,
            smt_decrease_checks: stats.smt_decrease_checks,
            counterexamples: stats.counterexamples,
            level_iterations: stats.level_iterations,
            boxes_explored: stats.solver.boxes_explored,
            boxes_pruned: stats.solver.boxes_pruned,
            bisections: stats.solver.bisections,
            clauses_examined: stats.solver.clauses_examined,
            instructions_executed: stats.solver.instructions_executed,
            specialized_tape_len_sum: stats.solver.specialized_tape_len_sum,
            newton_cuts: stats.solver.newton_cuts,
        }
    }

    fn to_json(self) -> Json {
        Json::object([
            (
                "generator_iterations".to_string(),
                Json::from(self.generator_iterations),
            ),
            ("lp_solves".to_string(), Json::from(self.lp_solves)),
            (
                "smt_decrease_checks".to_string(),
                Json::from(self.smt_decrease_checks),
            ),
            (
                "counterexamples".to_string(),
                Json::from(self.counterexamples),
            ),
            (
                "level_iterations".to_string(),
                Json::from(self.level_iterations),
            ),
            (
                "boxes_explored".to_string(),
                Json::from(self.boxes_explored),
            ),
            ("boxes_pruned".to_string(), Json::from(self.boxes_pruned)),
            ("bisections".to_string(), Json::from(self.bisections)),
            (
                "clauses_examined".to_string(),
                Json::from(self.clauses_examined),
            ),
            (
                "instructions_executed".to_string(),
                Json::from(self.instructions_executed),
            ),
            (
                "specialized_tape_len_sum".to_string(),
                Json::from(self.specialized_tape_len_sum),
            ),
            ("newton_cuts".to_string(), Json::from(self.newton_cuts)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let count = |key: &str| {
            json.get(key)
                .and_then(Json::as_f64)
                .map(|x| x as usize)
                .ok_or_else(|| format!("stats is missing `{key}`"))
        };
        // The evaluation-cost counters were added in a later schema
        // revision; older reports parse with zeroes.
        let optional_count = |key: &str| {
            json.get(key)
                .and_then(Json::as_f64)
                .map(|x| x as usize)
                .unwrap_or(0)
        };
        Ok(RunStats {
            generator_iterations: count("generator_iterations")?,
            lp_solves: count("lp_solves")?,
            smt_decrease_checks: count("smt_decrease_checks")?,
            counterexamples: count("counterexamples")?,
            level_iterations: count("level_iterations")?,
            boxes_explored: count("boxes_explored")?,
            boxes_pruned: count("boxes_pruned")?,
            bisections: count("bisections")?,
            clauses_examined: count("clauses_examined")?,
            instructions_executed: optional_count("instructions_executed"),
            specialized_tape_len_sum: optional_count("specialized_tape_len_sum"),
            newton_cuts: optional_count("newton_cuts"),
        })
    }
}

/// A batch or sweep member whose verification panicked.
///
/// The sweep engine isolates each member behind
/// [`parallel_map_isolated`](nncps_parallel::parallel_map_isolated), so a
/// poisoned member becomes one of these rows — with the panic payload
/// preserved for diagnosis — while its siblings' results are exactly what
/// an undisturbed run would have produced.  Crash rows live *outside* the
/// fingerprinted per-scenario results: crashes are failures of the harness
/// or injected faults, not verification semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashedMember {
    /// The scenario (member) name.
    pub scenario: String,
    /// The panic payload, downcast to a string when possible.
    pub payload: String,
}

impl CrashedMember {
    fn to_json(&self) -> Json {
        Json::object([
            ("scenario".to_string(), Json::from(self.scenario.as_str())),
            ("payload".to_string(), Json::from(self.payload.as_str())),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let field = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("crashed row is missing `{key}`"))
        };
        Ok(CrashedMember {
            scenario: field("scenario")?,
            payload: field("payload")?,
        })
    }
}

/// Per-family aggregate of a sweep run: verdict counts over the family's
/// members, diffed against the family's pinned [`ExpectedCounts`] when it
/// has them.
///
/// [`ExpectedCounts`]: crate::family::ExpectedCounts
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyRollup {
    /// The family name.
    pub name: String,
    /// Number of members that ran.
    pub members: usize,
    /// Members that certified.
    pub certified: usize,
    /// Members that stayed inconclusive.
    pub inconclusive: usize,
    /// Members whose verdict contradicted their (non-`any`) expectation.
    pub unexpected: usize,
    /// Members that panicked instead of producing a verdict (their rows are
    /// in [`BatchReport::crashed`]); serialized only when non-zero.
    pub crashed: usize,
    /// The pinned certified count, if the family declares one.
    pub expected_certified: Option<usize>,
    /// The pinned inconclusive count, if the family declares one.
    pub expected_inconclusive: Option<usize>,
}

impl FamilyRollup {
    /// Aggregates the results of one family's members; `crashed` counts the
    /// members that panicked and therefore appear in no result row.
    pub fn from_results(
        name: impl Into<String>,
        results: &[ScenarioResult],
        crashed: usize,
        expected: Option<crate::family::ExpectedCounts>,
    ) -> Self {
        FamilyRollup {
            name: name.into(),
            members: results.len() + crashed,
            certified: results.iter().filter(|r| r.verdict == "certified").count(),
            inconclusive: results
                .iter()
                .filter(|r| r.verdict == "inconclusive")
                .count(),
            unexpected: results.iter().filter(|r| !r.matches_expected).count(),
            crashed,
            expected_certified: expected.map(|c| c.certified),
            expected_inconclusive: expected.map(|c| c.inconclusive),
        }
    }

    /// The count-drift findings of this family (empty means the family-level
    /// gate passes; families without pinned counts always pass).
    pub fn findings(&self) -> Vec<String> {
        let mut findings = Vec::new();
        if self.crashed > 0 {
            // A crashed member produced no verdict, so the pinned verdict
            // counts cannot add up — report the crash itself instead of a
            // spurious count-drift finding.
            findings.push(format!(
                "family `{}` has {} crashed member(s)",
                self.name, self.crashed
            ));
        } else if let (Some(certified), Some(inconclusive)) =
            (self.expected_certified, self.expected_inconclusive)
        {
            if certified != self.certified || inconclusive != self.inconclusive {
                findings.push(format!(
                    "family `{}` verdict counts drifted: expected {certified} certified / \
                     {inconclusive} inconclusive, got {} / {}",
                    self.name, self.certified, self.inconclusive
                ));
            }
        }
        if self.unexpected > 0 {
            findings.push(format!(
                "family `{}` has {} member(s) with unexpected verdicts",
                self.name, self.unexpected
            ));
        }
        findings
    }

    fn to_json(&self) -> Json {
        let optional = |value: Option<usize>| match value {
            Some(n) => Json::from(n),
            None => Json::Null,
        };
        let mut fields = vec![
            ("name".to_string(), Json::from(self.name.as_str())),
            ("members".to_string(), Json::from(self.members)),
            ("certified".to_string(), Json::from(self.certified)),
            ("inconclusive".to_string(), Json::from(self.inconclusive)),
            ("unexpected".to_string(), Json::from(self.unexpected)),
        ];
        // Serialized only when non-zero: crash-free reports keep the
        // pre-governance byte layout.
        if self.crashed > 0 {
            fields.push(("crashed".to_string(), Json::from(self.crashed)));
        }
        fields.push((
            "expected_certified".to_string(),
            optional(self.expected_certified),
        ));
        fields.push((
            "expected_inconclusive".to_string(),
            optional(self.expected_inconclusive),
        ));
        Json::Object(fields)
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let count = |key: &str| {
            json.get(key)
                .and_then(Json::as_f64)
                .map(|x| x as usize)
                .ok_or_else(|| format!("family rollup is missing `{key}`"))
        };
        let optional = |key: &str| match json.get(key) {
            Some(Json::Number(x)) => Some(*x as usize),
            _ => None,
        };
        Ok(FamilyRollup {
            name: json
                .get("name")
                .and_then(Json::as_str)
                .ok_or("family rollup is missing `name`")?
                .to_string(),
            members: count("members")?,
            certified: count("certified")?,
            inconclusive: count("inconclusive")?,
            unexpected: count("unexpected")?,
            crashed: optional("crashed").unwrap_or(0),
            expected_certified: optional("expected_certified"),
            expected_inconclusive: optional("expected_inconclusive"),
        })
    }
}

/// The report of one batch run over a scenario registry.
///
/// # Examples
///
/// ```
/// use nncps_scenarios::{BatchOptions, Registry, run_batch};
///
/// let registry = Registry::builtin().filtered("canary");
/// let report = run_batch(&registry, &BatchOptions::default());
/// assert_eq!(report.results.len(), 1);
/// assert!(report.all_match_expected());
/// let deterministic = report.to_json(false);
/// assert_eq!(
///     nncps_scenarios::BatchReport::from_json(&deterministic).unwrap().to_json(false),
///     deterministic
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Scenario-level worker threads the batch ran with (`0` = one per
    /// core).  Serialized only in the timing-bearing report form:
    /// scenario-level parallelism cannot affect results (unlike δ-SAT
    /// internal parallelism, which each scenario pins via `smt_threads`),
    /// so the deterministic form is byte-identical across thread counts.
    pub threads: usize,
    /// Per-scenario results, in registry order.
    pub results: Vec<ScenarioResult>,
    /// Per-family aggregates of a sweep run (empty for plain registry
    /// batches; serialized only when non-empty).
    pub families: Vec<FamilyRollup>,
    /// Members that panicked instead of producing a result, in run order
    /// (serialized only when non-empty, and never fingerprinted — see
    /// [`CrashedMember`]).
    pub crashed: Vec<CrashedMember>,
}

impl BatchReport {
    /// Serializes the report.
    ///
    /// With `include_timings == false` the output is fully deterministic:
    /// two runs of the same registry produce byte-identical documents
    /// regardless of the scenario-level thread count (this is asserted by
    /// the crate's tests and is what makes the CI diff meaningful).  The
    /// thread count and wall times appear only in the timing-bearing form.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut fields = vec![
            ("schema".to_string(), Json::from("nncps-batch-report/v1")),
            ("scenario_count".to_string(), Json::from(self.results.len())),
            (
                "all_match_expected".to_string(),
                Json::Bool(self.all_match_expected()),
            ),
        ];
        if include_timings {
            let total: f64 = self
                .results
                .iter()
                .map(|r| r.wall_time_s + r.build_time_s)
                .sum();
            fields.push(("threads".to_string(), Json::from(self.threads)));
            fields.push(("total_time_s".to_string(), Json::Number(total)));
        }
        if !self.families.is_empty() {
            fields.push((
                "families".to_string(),
                Json::Array(self.families.iter().map(FamilyRollup::to_json).collect()),
            ));
        }
        if !self.crashed.is_empty() {
            fields.push((
                "crashed".to_string(),
                Json::Array(self.crashed.iter().map(CrashedMember::to_json).collect()),
            ));
        }
        fields.push((
            "results".to_string(),
            Json::Array(
                self.results
                    .iter()
                    .map(|r| r.to_json(include_timings))
                    .collect(),
            ),
        ));
        Json::Object(fields).to_string()
    }

    /// Parses a report serialized by [`BatchReport::to_json`], verifying
    /// every per-scenario fingerprint.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        match json.get("schema").and_then(Json::as_str) {
            Some("nncps-batch-report/v1") => {}
            other => return Err(format!("unsupported report schema {other:?}")),
        }
        // `threads` is only present in the timing-bearing form; parsing a
        // deterministic report yields the (equivalent) sequential default.
        let threads = json.get("threads").and_then(Json::as_f64).unwrap_or(1.0) as usize;
        let results = json
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| "report is missing `results`".to_string())?
            .iter()
            .map(ScenarioResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let families = json
            .get("families")
            .and_then(Json::as_array)
            .unwrap_or_default()
            .iter()
            .map(FamilyRollup::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let crashed = json
            .get("crashed")
            .and_then(Json::as_array)
            .unwrap_or_default()
            .iter()
            .map(CrashedMember::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchReport {
            threads,
            results,
            families,
            crashed,
        })
    }

    /// Whether any member panicked instead of producing a result.
    pub fn has_crashes(&self) -> bool {
        !self.crashed.is_empty()
    }

    /// Whether every scenario produced its expected verdict.
    pub fn all_match_expected(&self) -> bool {
        self.results.iter().all(|r| r.matches_expected)
    }

    /// Diffs every family's verdict counts against its pinned expectation.
    /// Empty result means the family-level gate passes.
    pub fn check_family_counts(&self) -> Result<(), Vec<String>> {
        let findings: Vec<String> = self
            .families
            .iter()
            .flat_map(FamilyRollup::findings)
            .collect();
        if findings.is_empty() {
            Ok(())
        } else {
            Err(findings)
        }
    }

    /// The checked-in baseline format: scenario name → verdict +
    /// fingerprint.  This is intentionally a *subset* of the full report so
    /// the baseline does not churn when reporting-only fields evolve.
    pub fn expected_json(&self) -> String {
        Json::object([
            (
                "schema".to_string(),
                Json::from("nncps-scenarios-expected/v1"),
            ),
            (
                "scenarios".to_string(),
                Json::Array(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::object([
                                ("name".to_string(), Json::from(r.name.as_str())),
                                ("verdict".to_string(), Json::from(r.verdict.as_str())),
                                ("fingerprint".to_string(), Json::String(r.fingerprint())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// Diffs this run against a checked-in baseline (the text of
    /// `SCENARIOS_expected.json`).
    ///
    /// `Ok(warnings)` means the gate passes; the warnings list any baseline
    /// fields this version does not understand (written by a newer tool and
    /// ignored here — forward compatibility is warn-and-ignore, never a hard
    /// failure).  `Err(findings)` lists genuine drift: verdict or fingerprint
    /// changes, missing members, or an unparseable/incompatible baseline.
    pub fn check_against_expected(&self, baseline: &str) -> Result<Vec<String>, Vec<String>> {
        let parsed = match Json::parse(baseline) {
            Ok(json) => json,
            Err(e) => return Err(vec![format!("cannot parse baseline: {e}")]),
        };
        let mut findings = Vec::new();
        let mut warnings = Vec::new();
        if parsed.get("schema").and_then(Json::as_str) != Some("nncps-scenarios-expected/v1") {
            findings.push("baseline has an unsupported schema".to_string());
            return Err(findings);
        }
        if let Some(fields) = parsed.as_object() {
            for (key, _) in fields {
                if key != "schema" && key != "scenarios" {
                    warnings.push(format!(
                        "baseline has unknown field `{key}` (written by a newer \
                         tool?); ignoring it"
                    ));
                }
            }
        }
        let expected = parsed
            .get("scenarios")
            .and_then(Json::as_array)
            .unwrap_or_default();
        for entry in expected {
            if let Some(fields) = entry.as_object() {
                for (key, _) in fields {
                    if !matches!(key.as_str(), "name" | "verdict" | "fingerprint") {
                        warnings.push(format!(
                            "baseline entry `{}` has unknown field `{key}`; ignoring it",
                            entry.get("name").and_then(Json::as_str).unwrap_or("?"),
                        ));
                    }
                }
            }
            let Some(name) = entry.get("name").and_then(Json::as_str) else {
                findings.push("baseline entry without a name".to_string());
                continue;
            };
            let Some(result) = self.results.iter().find(|r| r.name == name) else {
                findings.push(format!(
                    "scenario `{name}` is in the baseline but was not run"
                ));
                continue;
            };
            let expected_verdict = entry.get("verdict").and_then(Json::as_str).unwrap_or("");
            if result.verdict != expected_verdict {
                findings.push(format!(
                    "verdict drift on `{name}`: expected {expected_verdict}, got {} ({})",
                    result.verdict,
                    result.reason.as_deref().unwrap_or("certified"),
                ));
                continue;
            }
            let expected_fingerprint = entry
                .get("fingerprint")
                .and_then(Json::as_str)
                .unwrap_or("");
            let actual_fingerprint = result.fingerprint();
            if actual_fingerprint != expected_fingerprint {
                findings.push(format!(
                    "witness/certificate drift on `{name}`: fingerprint {expected_fingerprint} \
                     -> {actual_fingerprint} (verdict unchanged: {})",
                    result.verdict
                ));
            }
        }
        for result in &self.results {
            let known = expected
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some(result.name.as_str()));
            if !known {
                findings.push(format!(
                    "scenario `{}` ran but is missing from the baseline \
                     (regenerate with --write-expected)",
                    result.name
                ));
            }
        }
        if findings.is_empty() {
            Ok(warnings)
        } else {
            Err(findings)
        }
    }
}

/// Incremental 64-bit FNV-1a.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(name: &str, verdict: &str) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            plant_kind: "linear".to_string(),
            expected: "certified".to_string(),
            verdict: verdict.to_string(),
            matches_expected: verdict == "certified",
            reason: (verdict == "inconclusive").then(|| "budget exhausted".to_string()),
            level: (verdict == "certified").then_some(0.1875),
            generator_coefficients: vec![1.0, 0.25, 0.25, 2.0, 0.0, 0.0, -0.5],
            counterexample_witnesses: vec![vec![0.5, -0.25]],
            stats: RunStats {
                generator_iterations: 2,
                lp_solves: 2,
                smt_decrease_checks: 2,
                counterexamples: 1,
                level_iterations: 3,
                boxes_explored: 120,
                boxes_pruned: 80,
                bisections: 40,
                clauses_examined: 9,
                instructions_executed: 5400,
                specialized_tape_len_sum: 3600,
                newton_cuts: 12,
            },
            exhaustion: None,
            wall_time_s: 1.25,
            build_time_s: 0.03,
        }
    }

    fn sample_report() -> BatchReport {
        BatchReport {
            threads: 1,
            results: vec![
                sample_result("alpha", "certified"),
                sample_result("beta", "inconclusive"),
            ],
            families: Vec::new(),
            crashed: Vec::new(),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        for include_timings in [false, true] {
            let text = report.to_json(include_timings);
            let back = BatchReport::from_json(&text).unwrap();
            assert_eq!(back.to_json(include_timings), text);
            if include_timings {
                assert_eq!(back, report);
            }
        }
    }

    #[test]
    fn deterministic_serialization_excludes_timings() {
        let mut a = sample_report();
        let mut b = sample_report();
        a.results[0].wall_time_s = 1.0;
        b.results[0].wall_time_s = 99.0;
        assert_eq!(a.to_json(false), b.to_json(false));
        assert_ne!(a.to_json(true), b.to_json(true));
    }

    #[test]
    fn fingerprint_tracks_semantic_fields_only() {
        let base = sample_result("alpha", "certified");
        let mut timing_change = base.clone();
        timing_change.wall_time_s *= 10.0;
        assert_eq!(base.fingerprint(), timing_change.fingerprint());

        let mut level_change = base.clone();
        level_change.level = Some(0.1876);
        assert_ne!(base.fingerprint(), level_change.fingerprint());

        let mut witness_change = base.clone();
        witness_change.counterexample_witnesses[0][1] += 1e-12;
        assert_ne!(base.fingerprint(), witness_change.fingerprint());

        let mut coefficient_change = base.clone();
        coefficient_change.generator_coefficients[3] = 2.0000001;
        assert_ne!(base.fingerprint(), coefficient_change.fingerprint());

        // A missing reason and an empty reason are different states.
        let mut empty_reason = base.clone();
        assert_eq!(empty_reason.reason, None);
        empty_reason.reason = Some(String::new());
        assert_ne!(base.fingerprint(), empty_reason.fingerprint());
    }

    #[test]
    fn corrupted_fingerprints_are_rejected_on_parse() {
        let report = sample_report();
        let text = report.to_json(false);
        let tampered = text.replace("0.1875", "0.1874");
        let err = BatchReport::from_json(&tampered).unwrap_err();
        assert!(err.contains("fingerprint"), "err: {err}");
    }

    #[test]
    fn expected_baseline_check_passes_on_itself() {
        let report = sample_report();
        let baseline = report.expected_json();
        assert_eq!(report.check_against_expected(&baseline), Ok(Vec::new()));
    }

    #[test]
    fn unknown_baseline_fields_warn_instead_of_failing() {
        let report = sample_report();
        // Simulate a baseline written by a future tool: extra top-level and
        // per-entry fields that this version has never heard of.
        let mut parsed = Json::parse(&report.expected_json()).unwrap();
        let Json::Object(fields) = &mut parsed else {
            panic!("baseline is an object");
        };
        fields.push(("store_epoch".to_string(), Json::Number(7.0)));
        let Some((_, Json::Array(entries))) = fields.iter_mut().find(|(k, _)| k == "scenarios")
        else {
            panic!("baseline has scenarios");
        };
        let Json::Object(entry) = &mut entries[0] else {
            panic!("entries are objects");
        };
        entry.push(("wall_time_budget".to_string(), Json::Number(1.5)));
        let future = parsed.to_string();
        let warnings = report
            .check_against_expected(&future)
            .expect("unknown fields must not fail the gate");
        assert!(
            warnings.iter().any(|w| w.contains("`store_epoch`")),
            "{warnings:?}"
        );
        assert!(
            warnings.iter().any(|w| w.contains("`wall_time_budget`")),
            "{warnings:?}"
        );
        // Drift detection still works on the known fields of that baseline.
        let mut drifted = report.clone();
        drifted.results[0].verdict = "inconclusive".to_string();
        assert!(drifted.check_against_expected(&future).is_err());
    }

    #[test]
    fn expected_baseline_check_reports_drift() {
        let report = sample_report();
        let baseline = report.expected_json();

        // Verdict drift.
        let mut drifted = report.clone();
        drifted.results[1].verdict = "certified".to_string();
        drifted.results[1].reason = None;
        let findings = drifted.check_against_expected(&baseline).unwrap_err();
        assert!(findings
            .iter()
            .any(|f| f.contains("verdict drift on `beta`")));

        // Witness drift with an unchanged verdict.
        let mut witness_drift = report.clone();
        witness_drift.results[0].counterexample_witnesses[0][0] = 0.75;
        let findings = witness_drift.check_against_expected(&baseline).unwrap_err();
        assert!(findings.iter().any(|f| f.contains("drift on `alpha`")));

        // Baseline scenario that did not run + run scenario not in baseline.
        let mut renamed = report.clone();
        renamed.results[0].name = "gamma".to_string();
        let findings = renamed.check_against_expected(&baseline).unwrap_err();
        assert!(findings
            .iter()
            .any(|f| f.contains("`alpha` is in the baseline")));
        assert!(findings
            .iter()
            .any(|f| f.contains("`gamma` ran but is missing")));

        // Unparseable and wrong-schema baselines.
        assert!(report.check_against_expected("{").is_err());
        assert!(report
            .check_against_expected("{\"schema\": \"other/v9\"}")
            .is_err());
    }

    #[test]
    fn exhaustion_round_trips_and_respects_the_deterministic_form() {
        let mut report = sample_report();
        report.results[1].exhaustion = Some(ExhaustionReason::Fuel(300));

        // Deterministic reasons survive both serialization forms.
        for include_timings in [false, true] {
            let text = report.to_json(include_timings);
            assert!(text.contains("\"exhaustion\""), "{text}");
            assert!(text.contains("\"fuel\""), "{text}");
            let back = BatchReport::from_json(&text).unwrap();
            assert_eq!(
                back.results[1].exhaustion,
                Some(ExhaustionReason::Fuel(300))
            );
            assert_eq!(back.to_json(include_timings), text);
        }
        let boxes = {
            let mut r = report.clone();
            r.results[1].exhaustion = Some(ExhaustionReason::Boxes(2_000_000));
            BatchReport::from_json(&r.to_json(false)).unwrap().results[1].exhaustion
        };
        assert_eq!(boxes, Some(ExhaustionReason::Boxes(2_000_000)));

        // Non-deterministic reasons appear only in the timing-bearing form.
        report.results[1].exhaustion = Some(ExhaustionReason::Deadline);
        let deterministic = report.to_json(false);
        assert!(!deterministic.contains("\"exhaustion\""), "{deterministic}");
        let back = BatchReport::from_json(&deterministic).unwrap();
        assert_eq!(back.results[1].exhaustion, None);
        let timed = report.to_json(true);
        assert!(timed.contains("\"deadline\""), "{timed}");
        let back = BatchReport::from_json(&timed).unwrap();
        assert_eq!(back.results[1].exhaustion, Some(ExhaustionReason::Deadline));

        // The exhaustion field never feeds the fingerprint: crash-free
        // pre-governance baselines must keep matching.
        let mut with = sample_result("alpha", "inconclusive");
        with.exhaustion = Some(ExhaustionReason::Fuel(7));
        let mut without = with.clone();
        without.exhaustion = None;
        assert_eq!(with.fingerprint(), without.fingerprint());

        // Unknown kinds are rejected on parse.
        let tampered = report.to_json(true).replace("\"deadline\"", "\"teapot\"");
        let err = BatchReport::from_json(&tampered).unwrap_err();
        assert!(err.contains("unknown exhaustion kind"), "{err}");
    }

    #[test]
    fn crashed_rows_round_trip_outside_the_results() {
        let mut report = sample_report();
        assert!(!report.has_crashes());
        report.crashed = vec![CrashedMember {
            scenario: "gamma-003".to_string(),
            payload: "injected panic at solver.box_pop".to_string(),
        }];
        assert!(report.has_crashes());
        for include_timings in [false, true] {
            let text = report.to_json(include_timings);
            assert!(text.contains("\"crashed\""), "{text}");
            assert!(text.contains("solver.box_pop"), "{text}");
            let back = BatchReport::from_json(&text).unwrap();
            assert_eq!(back.crashed, report.crashed);
            assert_eq!(back.to_json(include_timings), text);
        }
        // A crash-free report serializes without the field at all.
        let clean = sample_report().to_json(false);
        assert!(!clean.contains("\"crashed\""), "{clean}");

        // A crashed member suppresses the count-drift finding in favour of
        // a crash finding.
        let results = vec![sample_result("fam-000", "certified")];
        let crashed_rollup = FamilyRollup::from_results(
            "fam",
            &results,
            1,
            Some(crate::family::ExpectedCounts {
                certified: 2,
                inconclusive: 0,
            }),
        );
        assert_eq!(crashed_rollup.members, 2);
        assert_eq!(crashed_rollup.crashed, 1);
        let findings = crashed_rollup.findings();
        assert!(
            findings.iter().any(|f| f.contains("1 crashed member")),
            "{findings:?}"
        );
        assert!(
            findings.iter().all(|f| !f.contains("counts drifted")),
            "{findings:?}"
        );
        // And the rollup's crashed count round-trips.
        report.families = vec![crashed_rollup.clone()];
        let back = BatchReport::from_json(&report.to_json(false)).unwrap();
        assert_eq!(back.families, vec![crashed_rollup]);
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        assert!(BatchReport::from_json("{}").is_err());
        assert!(BatchReport::from_json("not json").is_err());
        let no_results = "{\"schema\": \"nncps-batch-report/v1\", \"threads\": 1}";
        assert!(BatchReport::from_json(no_results).is_err());
    }

    #[test]
    fn family_rollups_aggregate_and_round_trip() {
        let results = vec![
            sample_result("fam-000", "certified"),
            sample_result("fam-001", "inconclusive"),
            sample_result("fam-002", "certified"),
        ];
        let rollup = FamilyRollup::from_results(
            "fam",
            &results,
            0,
            Some(crate::family::ExpectedCounts {
                certified: 2,
                inconclusive: 1,
            }),
        );
        assert_eq!(
            (rollup.members, rollup.certified, rollup.inconclusive),
            (3, 2, 1)
        );
        // `sample_result` marks inconclusive rows as unexpected.
        assert_eq!(rollup.unexpected, 1);
        assert!(rollup
            .findings()
            .iter()
            .any(|f| f.contains("unexpected verdicts")));

        let mut report = sample_report();
        report.families = vec![rollup.clone()];
        let text = report.to_json(false);
        assert!(text.contains("\"families\""));
        let back = BatchReport::from_json(&text).unwrap();
        assert_eq!(back.families, vec![rollup.clone()]);
        assert_eq!(back.to_json(false), text);
        // Count drift is reported; matching counts pass.
        assert!(report.check_family_counts().is_err());
        let mut matching = rollup;
        matching.unexpected = 0;
        matching.expected_certified = Some(2);
        matching.expected_inconclusive = Some(1);
        report.families = vec![matching];
        assert!(report.check_family_counts().is_ok());
        // Families without pinned counts never fail the counts gate.
        let unpinned = FamilyRollup::from_results("loose", &results, 0, None);
        assert!(
            unpinned.findings().len() == 1,
            "only the unexpected-verdict finding remains"
        );
        // Reports without a families section parse to an empty list.
        let plain = sample_report();
        let parsed = BatchReport::from_json(&plain.to_json(false)).unwrap();
        assert!(parsed.families.is_empty());
    }
}
