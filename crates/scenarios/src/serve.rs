//! The serve engine: verification-as-a-service over a line-based JSON
//! protocol.
//!
//! A resident verification server outlives any single sweep, which changes
//! the economics of warm starting: the second client to submit a family pays
//! only for cache lookups, and with an on-disk store even a *restarted*
//! server replays earlier work.  This module is the transport-agnostic core
//! of that server — [`ServeEngine::handle_line`] maps one request line to a
//! stream of response lines, and the `nncps-serve` binary is a thin
//! TCP shim around it (one connection per thread, one `handle_line` call per
//! request line).  Keeping the engine free of sockets makes the protocol
//! unit-testable in-process and lets the request-overhead benchmark measure
//! the engine without network noise.
//!
//! # Protocol
//!
//! One JSON object per line in each direction (`\n`-terminated, no framing
//! beyond that).  Requests:
//!
//! ```text
//! {"op": "ping"}
//! {"op": "stats"}
//! {"op": "submit", "family": "all" | NAME, "fuel": N?, "deadline_ms": N?}
//! {"op": "shutdown"}
//! ```
//!
//! Responses (one or more lines per request; the terminal line of a submit
//! is its `done` event):
//!
//! ```text
//! {"event": "pong", "protocol": "nncps-serve/v1"}
//! {"event": "stats", ...cache/store counters...}
//! {"event": "member", "index": i, "name": ..., "verdict": ..., ...}
//! {"event": "crash", "index": i, "name": ..., "payload": ...}
//! {"event": "done", "members": n, "crashed": n, "report": TEXT,
//!  "report_timed": TEXT}
//! {"event": "bye"}
//! {"event": "error", "message": ...}
//! ```
//!
//! `member` events stream in **completion order** (the pool makes no
//! ordering promises); the `done` event carries the full report assembled in
//! expansion order, so its `report` field — the deterministic serialization,
//! embedded as a JSON string — is byte-identical to an in-process
//! [`run_sweep`](crate::run_sweep) over the same families.  Unknown request
//! fields are ignored (same forward-compatibility stance as the baseline
//! checker); unknown *ops* are errors.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use nncps_barrier::{DiskStore, VerificationSession};
use nncps_parallel::{catch_crash, Crash, WorkerPool};

use crate::family::Family;
use crate::json::Json;
use crate::report::ScenarioResult;
use crate::runner::{
    assemble_sweep_report, expand_families, member_budget, run_scenario_governed, SweepCache,
};
use crate::scenario::Scenario;

/// Protocol identifier reported by `ping` and checked by clients.
pub const PROTOCOL_VERSION: &str = "nncps-serve/v1";

/// What the caller should do after a request line has been handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Keep reading request lines.
    Continue,
    /// The client asked the server to shut down: stop accepting work.
    Shutdown,
}

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Worker threads of the resident pool (`0` = one per available core).
    pub threads: usize,
    /// Root directory of the content-addressed on-disk store; `None` keeps
    /// all caches in memory (they still persist across *requests*, just not
    /// across server restarts).
    pub store: Option<PathBuf>,
}

/// The resident verification service: a family catalogue, one shared
/// [`SweepCache`] (session + optional disk store) that lives for the
/// server's lifetime, and a long-lived work-stealing [`WorkerPool`].
///
/// # Examples
///
/// ```
/// use nncps_scenarios::{builtin_families, Directive, ServeEngine, ServeOptions};
///
/// let engine = ServeEngine::new(
///     builtin_families(),
///     &ServeOptions { threads: 1, store: None },
/// )
/// .unwrap();
/// let mut replies = Vec::new();
/// let directive = engine.handle_line("{\"op\": \"ping\"}", &mut |line| {
///     replies.push(line.to_string());
/// });
/// assert_eq!(directive, Directive::Continue);
/// assert!(replies[0].contains("\"pong\""));
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    families: Vec<Family>,
    cache: Arc<SweepCache>,
    pool: WorkerPool,
    requests: AtomicUsize,
    members_verified: AtomicUsize,
}

impl ServeEngine {
    /// Builds the engine: opens (or creates) the disk store when one is
    /// configured, wires it into a fresh [`VerificationSession`], and starts
    /// the worker pool.
    ///
    /// # Errors
    ///
    /// Returns a one-line diagnostic when the store directory cannot be
    /// created or opened.
    pub fn new(families: Vec<Family>, options: &ServeOptions) -> Result<ServeEngine, String> {
        let session = match &options.store {
            Some(root) => {
                let store = DiskStore::open(root)
                    .map_err(|e| format!("cannot open store {}: {e}", root.display()))?;
                Arc::new(VerificationSession::with_store(Arc::new(store)))
            }
            None => Arc::new(VerificationSession::new()),
        };
        Ok(ServeEngine {
            families,
            cache: Arc::new(SweepCache::with_session(session)),
            pool: WorkerPool::new(options.threads),
            requests: AtomicUsize::new(0),
            members_verified: AtomicUsize::new(0),
        })
    }

    /// The families this engine serves (`submit` resolves names against
    /// this catalogue).
    pub fn families(&self) -> &[Family] {
        &self.families
    }

    /// The shared sweep cache (exposed for benchmarks and tests that
    /// compare the protocol path against direct session calls).
    pub fn cache(&self) -> &SweepCache {
        &self.cache
    }

    /// Handles one request line, pushing each response line through `emit`
    /// (without the trailing newline — the transport owns framing).
    ///
    /// Every request produces at least one response line; malformed input
    /// produces an `error` event and never kills the connection, so a
    /// confused client gets a diagnostic instead of a hang.
    pub fn handle_line(&self, line: &str, emit: &mut dyn FnMut(&str)) -> Directive {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let request = match Json::parse(line) {
            Ok(json) => json,
            Err(e) => {
                emit(&error_event(&format!("malformed request: {e}")).to_line());
                return Directive::Continue;
            }
        };
        match request.get("op").and_then(Json::as_str) {
            Some("ping") => {
                emit(
                    &Json::object([
                        ("event".to_string(), Json::from("pong")),
                        ("protocol".to_string(), Json::from(PROTOCOL_VERSION)),
                    ])
                    .to_line(),
                );
                Directive::Continue
            }
            Some("stats") => {
                emit(&self.stats_event().to_line());
                Directive::Continue
            }
            Some("submit") => {
                self.handle_submit(&request, emit);
                Directive::Continue
            }
            Some("shutdown") => {
                emit(&Json::object([("event".to_string(), Json::from("bye"))]).to_line());
                Directive::Shutdown
            }
            Some(other) => {
                emit(&error_event(&format!("unknown op `{other}`")).to_line());
                Directive::Continue
            }
            None => {
                emit(&error_event("request has no `op` field").to_line());
                Directive::Continue
            }
        }
    }

    /// The `stats` response: protocol/service counters plus every cache
    /// layer the session exposes, flattened into one object.
    fn stats_event(&self) -> Json {
        let session = self.cache.session().stats();
        let mut fields = vec![
            ("event".to_string(), Json::from("stats")),
            ("threads".to_string(), Json::from(self.pool.threads())),
            (
                "requests".to_string(),
                Json::from(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "members_verified".to_string(),
                Json::from(self.members_verified.load(Ordering::Relaxed)),
            ),
            ("outcome_hits".to_string(), Json::from(session.outcome_hits)),
            (
                "outcome_misses".to_string(),
                Json::from(session.outcome_misses),
            ),
            (
                "disk_outcome_hits".to_string(),
                Json::from(session.disk_outcome_hits),
            ),
            (
                "trace_hits".to_string(),
                Json::from(session.warm.trace_hits),
            ),
            (
                "candidate_hits".to_string(),
                Json::from(session.warm.candidate_hits),
            ),
            (
                "formula_hits".to_string(),
                Json::from(session.warm.formula_hits),
            ),
            (
                "disk_trace_hits".to_string(),
                Json::from(session.warm.disk_trace_hits),
            ),
            (
                "disk_candidate_hits".to_string(),
                Json::from(session.warm.disk_candidate_hits),
            ),
        ];
        if let Some(store) = self.cache.session().store() {
            let stats = store.stats();
            fields.extend([
                ("store_hits".to_string(), Json::from(stats.hits)),
                ("store_misses".to_string(), Json::from(stats.misses)),
                ("store_writes".to_string(), Json::from(stats.writes)),
                (
                    "store_quarantined".to_string(),
                    Json::from(stats.quarantined),
                ),
            ]);
        }
        Json::object(fields)
    }

    /// The `submit` op: resolve the family selection, fan the members out
    /// over the resident pool, stream completion events, and finish with
    /// the assembled report.
    fn handle_submit(&self, request: &Json, emit: &mut dyn FnMut(&str)) {
        let Some(selection) = request.get("family").and_then(Json::as_str) else {
            emit(&error_event("submit needs a `family` field").to_line());
            return;
        };
        let selected: Vec<Family> = if selection == "all" {
            self.families.clone()
        } else {
            self.families
                .iter()
                .filter(|f| f.name() == selection)
                .cloned()
                .collect()
        };
        if selected.is_empty() {
            emit(&error_event(&format!("no family named `{selection}`")).to_line());
            return;
        }
        let fuel = request.get("fuel").and_then(Json::as_f64).map(|x| x as u64);
        let deadline_ms = request
            .get("deadline_ms")
            .and_then(Json::as_f64)
            .map(|x| x as u64);
        let (scenarios, groups) = match expand_families(&selected) {
            Ok(expanded) => expanded,
            Err(e) => {
                emit(&error_event(&e.to_string()).to_line());
                return;
            }
        };

        // Fan out: every member becomes one pool job reporting back over a
        // channel, tagged with its expansion index so the report can be
        // reassembled in deterministic order while events stream in
        // completion order.
        let (tx, rx) = mpsc::channel::<(usize, Result<ScenarioResult, Crash>)>();
        for (index, scenario) in scenarios.iter().enumerate() {
            let scenario: Scenario = scenario.clone();
            let cache = Arc::clone(&self.cache);
            let budget = member_budget(fuel, deadline_ms);
            let tx = tx.clone();
            self.pool.spawn(move || {
                let outcome =
                    catch_crash(|| run_scenario_governed(&scenario, Some(&cache), &budget));
                // A dropped receiver means the request was abandoned; the
                // result still landed in the shared caches, so losing the
                // send is harmless.
                let _ = tx.send((index, outcome));
            });
        }
        drop(tx);

        let mut slots: Vec<Option<Result<ScenarioResult, Crash>>> =
            (0..scenarios.len()).map(|_| None).collect();
        for (index, outcome) in rx {
            self.members_verified.fetch_add(1, Ordering::Relaxed);
            emit(&member_event(index, &scenarios[index], &outcome).to_line());
            slots[index] = Some(outcome);
        }
        let outcomes: Vec<Result<ScenarioResult, Crash>> = slots
            .into_iter()
            .map(|slot| slot.expect("every member job reports exactly once"))
            .collect();
        let crashed = outcomes.iter().filter(|o| o.is_err()).count();
        let report = assemble_sweep_report(
            &selected,
            &groups,
            outcomes,
            &scenarios,
            self.pool.threads(),
        );
        emit(
            &Json::object([
                ("event".to_string(), Json::from("done")),
                ("members".to_string(), Json::from(scenarios.len())),
                ("crashed".to_string(), Json::from(crashed)),
                // The deterministic report text, embedded verbatim as a JSON
                // string: a client that unescapes it gets bytes identical to an
                // in-process `run_sweep(...).to_json(false)`.
                ("report".to_string(), Json::String(report.to_json(false))),
                (
                    "report_timed".to_string(),
                    Json::String(report.to_json(true)),
                ),
            ])
            .to_line(),
        );
    }
}

/// One streamed member-completion (or crash) event.
fn member_event(
    index: usize,
    scenario: &Scenario,
    outcome: &Result<ScenarioResult, Crash>,
) -> Json {
    match outcome {
        Ok(result) => Json::object([
            ("event".to_string(), Json::from("member")),
            ("index".to_string(), Json::from(index)),
            ("name".to_string(), Json::from(result.name.as_str())),
            ("verdict".to_string(), Json::from(result.verdict.as_str())),
            (
                "matches_expected".to_string(),
                Json::Bool(result.matches_expected),
            ),
            (
                "wall_time_s".to_string(),
                Json::from(result.wall_time_s + result.build_time_s),
            ),
        ]),
        Err(crash) => Json::object([
            ("event".to_string(), Json::from("crash")),
            ("index".to_string(), Json::from(index)),
            ("name".to_string(), Json::from(scenario.name())),
            ("payload".to_string(), Json::from(crash.payload.as_str())),
        ]),
    }
}

fn error_event(message: &str) -> Json {
    Json::object([
        ("event".to_string(), Json::from("error")),
        ("message".to_string(), Json::from(message)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{AxisParam, ParamAxis};
    use crate::Registry;

    /// A tiny two-member family over the cheap linear smoke scenarios.
    fn smoke_families() -> Vec<Family> {
        let registry = Registry::from_toml_str(crate::SMOKE_MANIFEST).unwrap();
        let base = registry.get("smoke-stable-spiral").unwrap().clone();
        vec![Family::new("smoke-pair", "delta pair", base)
            .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4]))
            .with_counts(2, 0)]
    }

    fn engine() -> ServeEngine {
        ServeEngine::new(
            smoke_families(),
            &ServeOptions {
                threads: 1,
                store: None,
            },
        )
        .unwrap()
    }

    fn collect(engine: &ServeEngine, line: &str) -> (Vec<Json>, Directive) {
        let mut replies = Vec::new();
        let directive = engine.handle_line(line, &mut |reply| {
            // The transport frames with `\n`, so a reply spanning lines would
            // corrupt the protocol for every subsequent event.
            assert!(!reply.contains('\n'), "reply must be single-line: {reply}");
            replies.push(Json::parse(reply).expect("every reply is valid JSON"));
        });
        (replies, directive)
    }

    #[test]
    fn ping_stats_and_shutdown_round_trip() {
        let engine = engine();
        let (replies, directive) = collect(&engine, "{\"op\": \"ping\"}");
        assert_eq!(directive, Directive::Continue);
        assert_eq!(
            replies[0].get("protocol").and_then(Json::as_str),
            Some(PROTOCOL_VERSION)
        );
        let (replies, _) = collect(&engine, "{\"op\": \"stats\"}");
        assert_eq!(replies[0].get("threads").and_then(Json::as_f64), Some(1.0));
        assert_eq!(replies[0].get("requests").and_then(Json::as_f64), Some(2.0));
        let (replies, directive) = collect(&engine, "{\"op\": \"shutdown\"}");
        assert_eq!(directive, Directive::Shutdown);
        assert_eq!(replies[0].get("event").and_then(Json::as_str), Some("bye"));
    }

    #[test]
    fn malformed_and_unknown_requests_are_errors_not_hangs() {
        let engine = engine();
        for bad in [
            "{not json",
            "{\"no\": \"op\"}",
            "{\"op\": \"frobnicate\"}",
            "{\"op\": \"submit\"}",
            "{\"op\": \"submit\", \"family\": \"no-such-family\"}",
        ] {
            let (replies, directive) = collect(&engine, bad);
            assert_eq!(directive, Directive::Continue, "{bad}");
            assert_eq!(
                replies[0].get("event").and_then(Json::as_str),
                Some("error"),
                "{bad}"
            );
        }
    }

    #[test]
    fn submit_streams_members_and_matches_the_in_process_sweep() {
        let families = smoke_families();
        let engine = ServeEngine::new(
            families.clone(),
            &ServeOptions {
                threads: 2,
                store: None,
            },
        )
        .unwrap();
        let (replies, _) = collect(&engine, "{\"op\": \"submit\", \"family\": \"smoke-pair\"}");
        let members: Vec<&Json> = replies
            .iter()
            .filter(|r| r.get("event").and_then(Json::as_str) == Some("member"))
            .collect();
        assert_eq!(members.len(), 2);
        let done = replies.last().unwrap();
        assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
        assert_eq!(done.get("crashed").and_then(Json::as_f64), Some(0.0));

        // The embedded deterministic report is byte-identical to an
        // in-process sweep over the same families.
        let expected = crate::run_sweep(&families, &crate::SweepOptions::default())
            .unwrap()
            .to_json(false);
        assert_eq!(
            done.get("report").and_then(Json::as_str),
            Some(expected.as_str())
        );

        // A repeat submission short-circuits at the outcome memo and still
        // produces the identical report.
        let (replies, _) = collect(&engine, "{\"op\": \"submit\", \"family\": \"smoke-pair\"}");
        let done = replies.last().unwrap();
        assert_eq!(
            done.get("report").and_then(Json::as_str),
            Some(expected.as_str())
        );
        assert!(engine.cache().session().stats().outcome_hits >= 2);
    }

    #[test]
    fn disk_backed_engines_replay_outcomes_across_instances() {
        let root =
            std::env::temp_dir().join(format!("nncps-serve-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let options = ServeOptions {
            threads: 1,
            store: Some(root.clone()),
        };
        let first = ServeEngine::new(smoke_families(), &options).unwrap();
        let (replies, _) = collect(&first, "{\"op\": \"submit\", \"family\": \"all\"}");
        let cold = replies.last().unwrap().get("report").unwrap().clone();
        drop(first);

        // A brand-new engine over the same store replays every outcome from
        // disk: same report, zero pipeline runs.
        let second = ServeEngine::new(smoke_families(), &options).unwrap();
        let (replies, _) = collect(&second, "{\"op\": \"submit\", \"family\": \"all\"}");
        assert_eq!(replies.last().unwrap().get("report"), Some(&cold));
        let stats = second.cache().session().stats();
        assert_eq!(stats.outcome_misses, 0, "{stats:?}");
        assert!(stats.disk_outcome_hits >= 2, "{stats:?}");
        std::fs::remove_dir_all(&root).ok();
    }
}
