//! The declarative description of one verification problem.

use std::fmt;

use nncps_barrier::{ClosedLoopSystem, SafetySpec, VerificationConfig, VerificationOutcome};
use nncps_dubins::{reference_controller, ErrorDynamics};
use nncps_expr::Expr;
use nncps_interval::IntervalBox;
use nncps_linalg::{Matrix, Vector};
use nncps_nn::{network_from_weights, Activation, FeedforwardNetwork};
use nncps_sim::{ExprDynamics, SymbolicDynamics};

use crate::toml::TomlTable;

/// The verdict a scenario is expected to produce, pinned in the registry so
/// the batch runner can flag drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedVerdict {
    /// The pipeline must find a barrier certificate.
    Certified,
    /// The pipeline must terminate without a certificate (the paper's
    /// inconclusive outcomes; used for the registry's canary scenarios).
    Inconclusive,
    /// Either verdict is acceptable per member.  Generated family members
    /// use this when the family pins aggregate verdict *counts* instead of
    /// per-member verdicts (see
    /// [`Family::expected_counts`](crate::family::Family::expected_counts)):
    /// a parameter sweep deliberately crosses the certification boundary, so
    /// individual flips are the data, not a failure.
    Any,
}

impl ExpectedVerdict {
    /// The manifest/report spelling of the verdict.
    pub fn as_str(self) -> &'static str {
        match self {
            ExpectedVerdict::Certified => "certified",
            ExpectedVerdict::Inconclusive => "inconclusive",
            ExpectedVerdict::Any => "any",
        }
    }

    /// Parses the manifest spelling.
    pub fn parse(s: &str) -> Result<Self, ManifestError> {
        match s {
            "certified" => Ok(ExpectedVerdict::Certified),
            "inconclusive" => Ok(ExpectedVerdict::Inconclusive),
            "any" => Ok(ExpectedVerdict::Any),
            other => Err(ManifestError::new(format!(
                "unknown expected verdict `{other}` (use \"certified\", \"inconclusive\", or \
                 \"any\")"
            ))),
        }
    }

    /// Whether an actual pipeline outcome matches the expectation.
    pub fn matches(self, outcome: &VerificationOutcome) -> bool {
        match self {
            ExpectedVerdict::Certified => outcome.is_certified(),
            ExpectedVerdict::Inconclusive => !outcome.is_certified(),
            ExpectedVerdict::Any => true,
        }
    }
}

impl fmt::Display for ExpectedVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A plant (with its embedded NN controller, where there is one) as pure
/// data.  Building the closed loop is deferred to
/// [`PlantSpec::build_dynamics`], so scenarios are cheap to enumerate and a
/// registry can be constructed from a TOML manifest without touching any
/// solver machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum PlantSpec {
    /// The paper's Dubins-vehicle path-following error dynamics with the
    /// reference tanh controller of the given width.
    Dubins {
        /// Hidden-layer width of the steering controller.
        hidden_neurons: usize,
        /// Constant vehicle speed `V`.
        speed: f64,
    },
    /// A torque-limited inverted pendulum stabilized by a single-hidden-layer
    /// PD-like neural controller.
    Pendulum {
        /// Hidden-layer width.
        hidden_neurons: usize,
        /// Hidden-layer activation ([`Activation::Tanh`] or
        /// [`Activation::Sigmoid`]; the sigmoid controller realises the same
        /// control law through the identity `tanh(z) = 2σ(2z) − 1`).
        activation: Activation,
        /// Proportional gain on the angle.
        k_theta: f64,
        /// Derivative gain on the angular velocity.
        k_omega: f64,
        /// Saturation torque multiplying the network output.
        max_torque: f64,
        /// Viscous damping coefficient.
        damping: f64,
    },
    /// A train speed controller: headway error `s` and relative speed `v`
    /// with a force-limited PD-like neural controller
    /// (`ṡ = v`, `v̇ = (F·h(s, v) − c·v) / m`).
    Train {
        /// Hidden-layer width.
        hidden_neurons: usize,
        /// Proportional gain on the headway error.
        k_position: f64,
        /// Derivative gain on the relative speed.
        k_velocity: f64,
        /// Maximum traction/brake force `F`.
        max_force: f64,
        /// Drag coefficient `c`.
        drag: f64,
        /// Train mass `m`.
        mass: f64,
    },
    /// A linear system `ẋ = A·x`, given by the rows of `A`.  Used for the
    /// registry's canary scenarios and for quick manifest experiments.
    Linear {
        /// The rows of the system matrix `A`.
        matrix: Vec<Vec<f64>>,
    },
    /// A plant whose neural controller weights are deterministically
    /// perturbed: every parameter `p` of the base controller becomes
    /// `p · (1 + scale · u)` with `u` drawn from `[-1, 1]` by an RNG seeded
    /// with `seed` (see [`FeedforwardNetwork::perturbed`]).  This realises
    /// the sweep engine's *NN weight perturbation* axis.
    Perturbed {
        /// The plant (with a neural controller) being perturbed.  Must not
        /// itself be a `Perturbed` plant.
        base: Box<PlantSpec>,
        /// Relative perturbation magnitude (`0.0` reproduces the base
        /// controller bit-for-bit).
        scale: f64,
        /// Seed of the perturbation direction.
        seed: u64,
    },
}

impl PlantSpec {
    /// State dimension of the plant.
    pub fn dim(&self) -> usize {
        match self {
            PlantSpec::Dubins { .. } | PlantSpec::Pendulum { .. } | PlantSpec::Train { .. } => 2,
            PlantSpec::Linear { matrix } => matrix.len(),
            PlantSpec::Perturbed { base, .. } => base.dim(),
        }
    }

    /// A short human-readable label for reports.  A perturbed plant reports
    /// its base kind: it is still the same physical system.
    pub fn kind(&self) -> &'static str {
        match self {
            PlantSpec::Dubins { .. } => "dubins",
            PlantSpec::Pendulum { .. } => "pendulum",
            PlantSpec::Train { .. } => "train",
            PlantSpec::Linear { .. } => "linear",
            PlantSpec::Perturbed { base, .. } => base.kind(),
        }
    }

    /// Whether the plant embeds a neural controller (and therefore supports
    /// the weight-perturbation axis).
    pub fn has_controller(&self) -> bool {
        match self {
            PlantSpec::Dubins { .. } | PlantSpec::Pendulum { .. } | PlantSpec::Train { .. } => true,
            PlantSpec::Linear { .. } => false,
            PlantSpec::Perturbed { base, .. } => base.has_controller(),
        }
    }

    /// Instantiates the closed-loop vector field.
    ///
    /// Every plant funnels through [`ExprDynamics`], the canonical
    /// [`SymbolicDynamics`] implementation, so the registry can treat the
    /// Dubins car, the pendulum, the train, and manifest-loaded systems
    /// uniformly.
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed (zero width, non-square matrix, an
    /// unsupported pendulum activation, a perturbation of a plant without a
    /// neural controller); manifest and family loading validate these up
    /// front.
    pub fn build_dynamics(&self) -> ExprDynamics {
        self.build_dynamics_perturbed(None)
    }

    /// [`PlantSpec::build_dynamics`] with an optional `(scale, seed)` weight
    /// perturbation applied to the embedded controller.
    fn build_dynamics_perturbed(&self, perturb: Option<(f64, u64)>) -> ExprDynamics {
        // Applies the pending perturbation to a freshly built controller.
        let shaken = |controller: FeedforwardNetwork| match perturb {
            Some((scale, seed)) => controller.perturbed(scale, seed),
            None => controller,
        };
        match self {
            PlantSpec::Dubins {
                hidden_neurons,
                speed,
            } => {
                let controller = shaken(reference_controller(*hidden_neurons));
                let dynamics = ErrorDynamics::new(controller, *speed);
                ExprDynamics::new(SymbolicDynamics::symbolic_vector_field(&dynamics))
            }
            PlantSpec::Pendulum {
                hidden_neurons,
                activation,
                k_theta,
                k_omega,
                max_torque,
                damping,
            } => {
                let controller = shaken(pendulum_controller(
                    *hidden_neurons,
                    *activation,
                    *k_theta,
                    *k_omega,
                ));
                // Plant constants of the case study: g = 9.81, l = m = 1.
                let gravity = 9.81;
                let inertia = 1.0;
                let theta = Expr::var(0);
                let omega = Expr::var(1);
                let u = controller
                    .forward_symbolic(&[theta.clone(), omega.clone()])
                    .remove(0);
                ExprDynamics::new(vec![
                    omega.clone(),
                    theta.sin() * gravity - omega * (*damping / inertia)
                        + u * (*max_torque / inertia),
                ])
            }
            PlantSpec::Train {
                hidden_neurons,
                k_position,
                k_velocity,
                max_force,
                drag,
                mass,
            } => {
                let controller = shaken(pd_controller(*hidden_neurons, *k_position, *k_velocity));
                let s = Expr::var(0);
                let v = Expr::var(1);
                let u = controller.forward_symbolic(&[s, v.clone()]).remove(0);
                ExprDynamics::new(vec![
                    v.clone(),
                    u * (*max_force / mass) - v * (*drag / mass),
                ])
            }
            PlantSpec::Linear { matrix } => {
                assert!(
                    perturb.is_none(),
                    "weight perturbation needs a neural controller"
                );
                let dim = matrix.len();
                let components = matrix
                    .iter()
                    .map(|row| {
                        assert_eq!(row.len(), dim, "system matrix must be square");
                        let mut sum = Expr::constant(0.0);
                        for (j, &a) in row.iter().enumerate() {
                            if a != 0.0 {
                                sum = sum + Expr::var(j) * a;
                            }
                        }
                        sum.simplified()
                    })
                    .collect();
                ExprDynamics::new(components)
            }
            PlantSpec::Perturbed { base, scale, seed } => {
                assert!(
                    perturb.is_none(),
                    "perturbed plants must not nest (apply one perturbation axis)"
                );
                base.build_dynamics_perturbed(Some((*scale, *seed)))
            }
        }
    }
}

/// Builds a 2 → `hidden` → 1 controller implementing the smooth PD law
/// `u ≈ −(k0·x0 + k1·x1)`, spread across the hidden neurons the same way the
/// Dubins reference controller is (golden-angle phases, mildly varied
/// per-neuron scales).
pub fn pd_controller(hidden: usize, k0: f64, k1: f64) -> FeedforwardNetwork {
    assert!(hidden > 0, "controller needs at least one hidden neuron");
    let mut hidden_weights = Matrix::zeros(hidden, 2);
    let hidden_biases = Vector::zeros(hidden);
    let mut output_weights = Matrix::zeros(1, hidden);
    for i in 0..hidden {
        let phase = (i as f64 + 1.0) * 2.399_963;
        let scale = 1.0 + 0.1 * phase.sin();
        hidden_weights[(i, 0)] = -k0 * scale;
        hidden_weights[(i, 1)] = -k1 * scale;
        output_weights[(0, i)] = 1.0 / (scale * hidden as f64);
    }
    network_from_weights(
        2,
        vec![
            (hidden_weights, hidden_biases, Activation::Tanh),
            (output_weights, Vector::zeros(1), Activation::Linear),
        ],
    )
}

/// The pendulum's controller: the tanh PD network of [`pd_controller`], or
/// its exact sigmoid re-expression via `tanh(z) = 2σ(2z) − 1` (same control
/// law, different symbolic closed loop for the δ-SAT queries).
///
/// # Panics
///
/// Panics for activations other than tanh and sigmoid.
pub fn pendulum_controller(
    hidden: usize,
    activation: Activation,
    k_theta: f64,
    k_omega: f64,
) -> FeedforwardNetwork {
    let tanh_net = pd_controller(hidden, k_theta, k_omega);
    match activation {
        Activation::Tanh => tanh_net,
        // Transform the tanh network's own weights so the twin stays exact
        // even if the pd_controller weight scheme evolves: per neuron,
        // o·tanh(w·x) = 2o·σ(2 w·x) − o (zero hidden biases).
        Activation::Sigmoid => {
            let tanh_hidden = &tanh_net.layers()[0];
            let tanh_output = &tanh_net.layers()[1];
            let mut hidden_weights = Matrix::zeros(hidden, 2);
            let mut output_weights = Matrix::zeros(1, hidden);
            let mut output_bias = 0.0;
            for i in 0..hidden {
                hidden_weights[(i, 0)] = 2.0 * tanh_hidden.weights()[(i, 0)];
                hidden_weights[(i, 1)] = 2.0 * tanh_hidden.weights()[(i, 1)];
                let o = tanh_output.weights()[(0, i)];
                output_weights[(0, i)] = 2.0 * o;
                output_bias -= o;
            }
            network_from_weights(
                2,
                vec![
                    (hidden_weights, Vector::zeros(hidden), Activation::Sigmoid),
                    (
                        output_weights,
                        Vector::from_slice(&[output_bias]),
                        Activation::Linear,
                    ),
                ],
            )
        }
        other => panic!("unsupported pendulum activation {other}"),
    }
}

/// One verification problem as data: a named plant, its safety
/// specification, the pipeline configuration, and the expected verdict.
///
/// # Examples
///
/// ```
/// use nncps_scenarios::Registry;
///
/// let registry = Registry::builtin();
/// let scenario = registry.get("dubins-paper").unwrap();
/// assert_eq!(scenario.plant().kind(), "dubins");
/// let system = scenario.build_system();
/// assert_eq!(system.dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    description: String,
    plant: PlantSpec,
    spec: SafetySpec,
    config: VerificationConfig,
    expected: ExpectedVerdict,
}

impl Scenario {
    /// Creates a scenario.
    ///
    /// # Panics
    ///
    /// Panics if the plant and specification dimensions disagree.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        plant: PlantSpec,
        spec: SafetySpec,
        config: VerificationConfig,
        expected: ExpectedVerdict,
    ) -> Self {
        assert_eq!(
            plant.dim(),
            spec.dim(),
            "plant and safety specification dimensions must match"
        );
        Scenario {
            name: name.into(),
            description: description.into(),
            plant,
            spec,
            config,
            expected,
        }
    }

    /// The unique scenario name (the registry key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable description for reports.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The plant description.
    pub fn plant(&self) -> &PlantSpec {
        &self.plant
    }

    /// The safety specification.
    pub fn spec(&self) -> &SafetySpec {
        &self.spec
    }

    /// The pipeline configuration this scenario runs with.
    pub fn config(&self) -> &VerificationConfig {
        &self.config
    }

    /// The pinned expected verdict.
    pub fn expected(&self) -> ExpectedVerdict {
        self.expected
    }

    /// Instantiates the closed-loop system handed to the verifier.
    pub fn build_system(&self) -> ClosedLoopSystem {
        ClosedLoopSystem::from_dynamics(&self.plant.build_dynamics(), self.spec.clone())
    }

    /// Loads a scenario from one `[[scenario]]` manifest table.
    pub fn from_toml(table: &TomlTable) -> Result<Self, ManifestError> {
        let name = table
            .get_str("name")
            .ok_or_else(|| ManifestError::new("scenario is missing `name`"))?
            .to_string();
        let in_scenario = |message: String| ManifestError::new(format!("{name}: {message}"));
        let description = table.get_str("description").unwrap_or_default().to_string();
        let expected = ExpectedVerdict::parse(
            table
                .get_str("expected")
                .ok_or_else(|| in_scenario("missing `expected` verdict".to_string()))?,
        )
        .map_err(|e| in_scenario(e.to_string()))?;
        let plant_table = table
            .get_table("plant")
            .ok_or_else(|| in_scenario("missing [scenario.plant]".to_string()))?;
        let plant = plant_from_toml(plant_table).map_err(|e| in_scenario(e.message))?;
        let spec_table = table
            .get_table("spec")
            .ok_or_else(|| in_scenario("missing [scenario.spec]".to_string()))?;
        let spec = spec_from_toml(spec_table).map_err(|e| in_scenario(e.message))?;
        let config = match table.get_table("config") {
            Some(config_table) => {
                config_from_toml(config_table).map_err(|e| in_scenario(e.message))?
            }
            None => VerificationConfig::default(),
        };
        if plant.dim() != spec.dim() {
            return Err(in_scenario(format!(
                "plant dimension {} does not match spec dimension {}",
                plant.dim(),
                spec.dim()
            )));
        }
        Ok(Scenario::new(
            name,
            description,
            plant,
            spec,
            config,
            expected,
        ))
    }
}

/// Error produced while loading a scenario manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// What went wrong.
    pub message: String,
}

impl ManifestError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ManifestError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario manifest error: {}", self.message)
    }
}

impl std::error::Error for ManifestError {}

fn plant_from_toml(table: &TomlTable) -> Result<PlantSpec, ManifestError> {
    let kind = table
        .get_str("kind")
        .ok_or_else(|| ManifestError::new("plant is missing `kind`"))?;
    match kind {
        "dubins" => Ok(PlantSpec::Dubins {
            hidden_neurons: require_positive(table, "hidden_neurons", 10)?,
            speed: table.get_f64("speed").unwrap_or(1.0),
        }),
        "pendulum" => {
            let activation_name = table.get_str("activation").unwrap_or("tanh");
            let activation: Activation = activation_name
                .parse()
                .map_err(|e| ManifestError::new(format!("{e}")))?;
            if !matches!(activation, Activation::Tanh | Activation::Sigmoid) {
                return Err(ManifestError::new(format!(
                    "pendulum controllers support tanh or sigmoid activations, not `{activation}`"
                )));
            }
            Ok(PlantSpec::Pendulum {
                hidden_neurons: require_positive(table, "hidden_neurons", 16)?,
                activation,
                k_theta: table.get_f64("k_theta").unwrap_or(1.2),
                k_omega: table.get_f64("k_omega").unwrap_or(0.5),
                max_torque: table.get_f64("max_torque").unwrap_or(20.0),
                damping: table.get_f64("damping").unwrap_or(0.5),
            })
        }
        "train" => Ok(PlantSpec::Train {
            hidden_neurons: require_positive(table, "hidden_neurons", 12)?,
            k_position: table.get_f64("k_position").unwrap_or(1.0),
            k_velocity: table.get_f64("k_velocity").unwrap_or(2.0),
            max_force: table.get_f64("max_force").unwrap_or(5.0),
            drag: table.get_f64("drag").unwrap_or(0.5),
            mass: table.get_f64("mass").unwrap_or(1.0),
        }),
        "linear" => {
            let rows = table
                .get("matrix")
                .and_then(crate::toml::TomlValue::as_array)
                .ok_or_else(|| ManifestError::new("linear plant needs `matrix = [[...], ...]`"))?;
            let matrix: Vec<Vec<f64>> = rows
                .iter()
                .map(|row| {
                    let cells = row
                        .as_array()
                        .ok_or_else(|| ManifestError::new("`matrix` rows must be arrays"))?;
                    if cells.len() != rows.len() {
                        return Err(ManifestError::new("`matrix` must be a square array"));
                    }
                    cells
                        .iter()
                        .map(|c| {
                            c.as_f64().ok_or_else(|| {
                                ManifestError::new("`matrix` entries must be numeric")
                            })
                        })
                        .collect::<Result<Vec<f64>, _>>()
                })
                .collect::<Result<_, _>>()?;
            if matrix.is_empty() {
                return Err(ManifestError::new("`matrix` must be non-empty"));
            }
            Ok(PlantSpec::Linear { matrix })
        }
        other => Err(ManifestError::new(format!(
            "unknown plant kind `{other}` (use dubins, pendulum, train, or linear)"
        ))),
    }
}

fn require_positive(table: &TomlTable, key: &str, default: usize) -> Result<usize, ManifestError> {
    match table.get(key) {
        None => Ok(default),
        Some(value) => match value.as_usize() {
            Some(n) if n > 0 => Ok(n),
            _ => Err(ManifestError::new(format!(
                "`{key}` must be a positive integer"
            ))),
        },
    }
}

fn bounds_from_toml(table: &TomlTable, key: &str) -> Result<IntervalBox, ManifestError> {
    let rows = table
        .get(key)
        .and_then(crate::toml::TomlValue::as_array)
        .ok_or_else(|| ManifestError::new(format!("spec needs `{key} = [[lo, hi], ...]`")))?;
    let bounds: Vec<(f64, f64)> = rows
        .iter()
        .map(|row| {
            let cells = row.as_array().unwrap_or_default();
            match cells {
                [lo, hi] => match (lo.as_f64(), hi.as_f64()) {
                    (Some(lo), Some(hi)) if lo <= hi => Ok((lo, hi)),
                    _ => Err(ManifestError::new(format!(
                        "`{key}` entries must be numeric [lo, hi] pairs with lo <= hi"
                    ))),
                },
                _ => Err(ManifestError::new(format!(
                    "`{key}` entries must be [lo, hi] pairs"
                ))),
            }
        })
        .collect::<Result<_, _>>()?;
    if bounds.is_empty() {
        return Err(ManifestError::new(format!("`{key}` must be non-empty")));
    }
    Ok(IntervalBox::from_bounds(&bounds))
}

fn spec_from_toml(table: &TomlTable) -> Result<SafetySpec, ManifestError> {
    let initial_set = bounds_from_toml(table, "initial_set")?;
    let safe_region = bounds_from_toml(table, "safe_region")?;
    if initial_set.dim() != safe_region.dim() {
        return Err(ManifestError::new(
            "`initial_set` and `safe_region` must have the same dimension",
        ));
    }
    if !safe_region.contains_box(&initial_set) {
        return Err(ManifestError::new(
            "`initial_set` must be contained in `safe_region`",
        ));
    }
    Ok(SafetySpec::rectangular(initial_set, safe_region))
}

fn config_from_toml(table: &TomlTable) -> Result<VerificationConfig, ManifestError> {
    let mut config = VerificationConfig::default();
    for (key, value) in table.entries() {
        let num = value
            .as_f64()
            .ok_or_else(|| ManifestError::new(format!("config `{key}` must be numeric")))?;
        let count = value.as_usize();
        let as_count = || {
            count.ok_or_else(|| {
                ManifestError::new(format!("config `{key}` must be a non-negative integer"))
            })
        };
        match key.as_str() {
            "num_seed_traces" => config.num_seed_traces = as_count()?,
            "sim_dt" => config.sim_dt = num,
            "sim_duration" => config.sim_duration = num,
            "gamma" => config.gamma = num,
            "delta" => config.delta = num,
            "max_smt_boxes" => config.max_smt_boxes = as_count()?,
            "max_candidate_iterations" => config.max_candidate_iterations = as_count()?,
            "max_level_iterations" => config.max_level_iterations = as_count()?,
            "max_samples_per_trace" => config.max_samples_per_trace = as_count()?,
            "seed" => config.seed = as_count()? as u64,
            "threads" => config.threads = as_count()?,
            "smt_threads" => config.smt_threads = as_count()?,
            other => return Err(ManifestError::new(format!("unknown config key `{other}`"))),
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml;

    #[test]
    fn pd_controller_implements_the_gain_law_near_zero() {
        let net = pd_controller(12, 1.0, 2.0);
        // Near the origin tanh is ~identity, so u ≈ -(s + 2 v).
        let u = net.forward(&[0.01, 0.02])[0];
        assert!((u - (-(0.01 + 2.0 * 0.02))).abs() < 1e-3, "u = {u}");
        // Output saturates near ±1 (the per-neuron scales put the exact
        // bound at Σ 1/(scaleᵢ·hidden) ≈ 1.005).
        assert!(net.forward(&[50.0, 50.0])[0].abs() <= 1.1);
    }

    #[test]
    fn sigmoid_pendulum_controller_matches_tanh_controller() {
        let tanh_net = pendulum_controller(8, Activation::Tanh, 1.2, 0.5);
        let sigmoid_net = pendulum_controller(8, Activation::Sigmoid, 1.2, 0.5);
        for &state in &[[0.0, 0.0], [0.3, -0.1], [-0.7, 0.9], [2.0, -2.0]] {
            let a = tanh_net.forward(&state)[0];
            let b = sigmoid_net.forward(&state)[0];
            assert!((a - b).abs() < 1e-12, "at {state:?}: {a} vs {b}");
        }
    }

    #[test]
    fn plants_build_consistent_dynamics() {
        let specs = [
            PlantSpec::Dubins {
                hidden_neurons: 4,
                speed: 1.0,
            },
            PlantSpec::Pendulum {
                hidden_neurons: 4,
                activation: Activation::Tanh,
                k_theta: 1.2,
                k_omega: 0.5,
                max_torque: 20.0,
                damping: 0.5,
            },
            PlantSpec::Train {
                hidden_neurons: 4,
                k_position: 1.0,
                k_velocity: 2.0,
                max_force: 5.0,
                drag: 0.5,
                mass: 1.0,
            },
            PlantSpec::Linear {
                matrix: vec![vec![-1.0, 0.5], vec![0.0, -2.0]],
            },
        ];
        for plant in &specs {
            let dynamics = plant.build_dynamics();
            assert_eq!(
                nncps_sim::Dynamics::dim(&dynamics),
                plant.dim(),
                "{plant:?}"
            );
            let field = dynamics.symbolic_vector_field();
            assert_eq!(field.len(), plant.dim());
        }
        // Spot-check the linear plant's vector field.
        let linear = specs[3].build_dynamics();
        let d = nncps_sim::Dynamics::derivative(&linear, &[2.0, 1.0]);
        assert!((d[0] - (-2.0 + 0.5)).abs() < 1e-15);
        assert!((d[1] + 2.0).abs() < 1e-15);
    }

    #[test]
    fn scenario_from_toml_roundtrip() {
        let doc = toml::parse(
            r#"
            [[scenario]]
            name = "manifest-linear"
            description = "stable linear demo"
            expected = "certified"
            [scenario.plant]
            kind = "linear"
            matrix = [[-1.0, 0.2], [-0.2, -1.0]]
            [scenario.spec]
            initial_set = [[-0.5, 0.5], [-0.5, 0.5]]
            safe_region = [[-3.0, 3.0], [-3.0, 3.0]]
            [scenario.config]
            num_seed_traces = 6
            sim_duration = 4.0
            smt_threads = 1
            "#,
        )
        .unwrap();
        let tables = doc.tables("scenario");
        let scenario = Scenario::from_toml(tables[0]).unwrap();
        assert_eq!(scenario.name(), "manifest-linear");
        assert_eq!(scenario.expected(), ExpectedVerdict::Certified);
        assert_eq!(scenario.config().num_seed_traces, 6);
        assert_eq!(scenario.config().sim_duration, 4.0);
        assert_eq!(scenario.plant().kind(), "linear");
        assert_eq!(scenario.build_system().dim(), 2);
        assert_eq!(scenario.description(), "stable linear demo");
    }

    #[test]
    fn manifest_errors_are_caught() {
        let cases = [
            ("[[scenario]]\nexpected = \"certified\"\n", "missing `name`"),
            ("[[scenario]]\nname = \"x\"\n", "missing `expected`"),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"maybe\"\n",
                "unknown expected verdict",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n",
                "missing [scenario.plant]",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n[scenario.plant]\nkind = \"warp\"\n",
                "unknown plant kind",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n[scenario.plant]\nkind = \"dubins\"\nhidden_neurons = 0\n",
                "positive integer",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n[scenario.plant]\nkind = \"dubins\"\n",
                "missing [scenario.spec]",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n[scenario.plant]\nkind = \"dubins\"\n[scenario.spec]\ninitial_set = [[-9, 9], [-1, 1]]\nsafe_region = [[-5, 5], [-1.5, 1.5]]\n",
                "contained in",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n[scenario.plant]\nkind = \"linear\"\nmatrix = [[-1.0]]\n[scenario.spec]\ninitial_set = [[-1, 1], [-1, 1]]\nsafe_region = [[-5, 5], [-5, 5]]\n",
                "does not match spec dimension",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n[scenario.plant]\nkind = \"linear\"\nmatrix = [[-1.0, true, 0.2], [-0.2, -1.0]]\n[scenario.spec]\ninitial_set = [[-1, 1], [-1, 1]]\nsafe_region = [[-5, 5], [-5, 5]]\n",
                "square",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n[scenario.plant]\nkind = \"linear\"\nmatrix = [[-1.0, true], [-0.2, -1.0]]\n[scenario.spec]\ninitial_set = [[-1, 1], [-1, 1]]\nsafe_region = [[-5, 5], [-5, 5]]\n",
                "numeric",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n[scenario.plant]\nkind = \"dubins\"\n[scenario.spec]\ninitial_set = [[-1, 1], [-1, 1]]\nsafe_region = [[-5, 5], [-5, 5]]\n[scenario.config]\nwarp_factor = 9\n",
                "unknown config key",
            ),
            (
                "[[scenario]]\nname = \"x\"\nexpected = \"certified\"\n[scenario.plant]\nkind = \"pendulum\"\nactivation = \"relu\"\n[scenario.spec]\ninitial_set = [[-1, 1], [-1, 1]]\nsafe_region = [[-5, 5], [-5, 5]]\n",
                "tanh or sigmoid",
            ),
        ];
        for (text, needle) in cases {
            let doc = toml::parse(text).unwrap();
            let err = Scenario::from_toml(doc.tables("scenario")[0]).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "expected `{needle}` in `{err}` for manifest:\n{text}"
            );
        }
    }

    #[test]
    fn expected_verdict_parsing_and_matching() {
        assert_eq!(
            ExpectedVerdict::parse("certified").unwrap(),
            ExpectedVerdict::Certified
        );
        assert_eq!(format!("{}", ExpectedVerdict::Inconclusive), "inconclusive");
        assert!(ExpectedVerdict::parse("nope").is_err());
    }
}
