//! The scenario registry: the enumerable set of verification problems the
//! batch runner (and CI) sweeps.

use nncps_barrier::{SafetySpec, VerificationConfig};
use nncps_interval::IntervalBox;
use nncps_nn::Activation;

use crate::scenario::{ExpectedVerdict, ManifestError, PlantSpec, Scenario};
use crate::toml;

/// An ordered, name-keyed collection of [`Scenario`]s.
///
/// The order is part of the contract: batch reports list scenarios in
/// registry order, so a fixed registry yields byte-identical reports.
///
/// # Examples
///
/// ```
/// use nncps_scenarios::Registry;
///
/// let registry = Registry::builtin();
/// assert!(registry.len() >= 6);
/// assert!(registry.get("dubins-paper").is_some());
/// let names: Vec<&str> = registry.names().collect();
/// assert!(names.contains(&"pendulum-tanh-16"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    scenarios: Vec<Scenario>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The built-in registry: the paper's Dubins case study, the pendulum
    /// and train-controller case studies, and parameterized variants
    /// (perturbed initial set, tightened unsafe region, alternative
    /// controller widths and activations), plus an expected-inconclusive
    /// canary that guards the drift detector itself.
    pub fn builtin() -> Self {
        let mut registry = Registry::new();
        for scenario in builtin_scenarios() {
            registry
                .push(scenario)
                .expect("built-in scenario names are unique");
        }
        registry
    }

    /// Loads a registry from TOML manifest text (a sequence of
    /// `[[scenario]]` tables; see `scenarios/extra.toml` in the repository
    /// for the format).
    pub fn from_toml_str(text: &str) -> Result<Self, ManifestError> {
        let doc = toml::parse(text).map_err(|e| ManifestError::new(e.to_string()))?;
        let tables = doc.tables("scenario");
        if tables.is_empty() {
            return Err(ManifestError::new(
                "manifest defines no [[scenario]] tables",
            ));
        }
        let mut registry = Registry::new();
        for table in tables {
            registry.push(Scenario::from_toml(table)?)?;
        }
        Ok(registry)
    }

    /// Loads a registry from a TOML manifest file.
    pub fn from_toml_file(path: impl AsRef<std::path::Path>) -> Result<Self, ManifestError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            ManifestError::new(format!("cannot read manifest {}: {e}", path.display()))
        })?;
        Self::from_toml_str(&text)
    }

    /// Adds a scenario, rejecting duplicate names.
    pub fn push(&mut self, scenario: Scenario) -> Result<(), ManifestError> {
        if self.get(scenario.name()).is_some() {
            return Err(ManifestError::new(format!(
                "duplicate scenario name `{}`",
                scenario.name()
            )));
        }
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name() == name)
    }

    /// The scenarios in registry order.
    pub fn iter(&self) -> std::slice::Iter<'_, Scenario> {
        self.scenarios.iter()
    }

    /// The scenario names in registry order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.scenarios.iter().map(Scenario::name)
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// A copy with only the scenarios whose name contains `pattern`.
    pub fn filtered(&self, pattern: &str) -> Registry {
        Registry {
            scenarios: self
                .scenarios
                .iter()
                .filter(|s| s.name().contains(pattern))
                .cloned()
                .collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Registry {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A tiny two-scenario linear manifest (one certified spiral, one
/// expected-inconclusive unstable system) shared by this crate's unit and
/// integration tests, so the fixture exists exactly once.
#[doc(hidden)]
pub const SMOKE_MANIFEST: &str = r#"
[[scenario]]
name = "smoke-stable-spiral"
expected = "certified"
[scenario.plant]
kind = "linear"
matrix = [[-1.0, 0.2], [-0.2, -1.0]]
[scenario.spec]
initial_set = [[-0.5, 0.5], [-0.5, 0.5]]
safe_region = [[-3.0, 3.0], [-3.0, 3.0]]
[scenario.config]
num_seed_traces = 8
sim_duration = 5.0

[[scenario]]
name = "smoke-unstable"
expected = "inconclusive"
[scenario.plant]
kind = "linear"
matrix = [[0.4, 0.0], [0.0, 0.4]]
[scenario.spec]
initial_set = [[-0.5, 0.5], [-0.5, 0.5]]
safe_region = [[-3.0, 3.0], [-3.0, 3.0]]
[scenario.config]
num_seed_traces = 4
sim_duration = 2.0
max_candidate_iterations = 2
"#;

/// The paper's Section 4.3 safety specification for the Dubins error
/// dynamics, optionally with a perturbed initial set or a tightened safe
/// region.
fn dubins_spec(initial: [(f64, f64); 2], safe: [(f64, f64); 2]) -> SafetySpec {
    SafetySpec::rectangular(
        IntervalBox::from_bounds(&initial),
        IntervalBox::from_bounds(&safe),
    )
}

fn builtin_scenarios() -> Vec<Scenario> {
    let pi = std::f64::consts::PI;
    let eps = 0.01;
    let paper_initial = [(-1.0, 1.0), (-pi / 16.0, pi / 16.0)];
    let paper_safe = [(-5.0, 5.0), (-(pi / 2.0 - eps), pi / 2.0 - eps)];
    let pendulum_spec = SafetySpec::rectangular(
        IntervalBox::from_bounds(&[(-0.2, 0.2), (-0.2, 0.2)]),
        IntervalBox::from_bounds(&[(-0.8, 0.8), (-2.0, 2.0)]),
    );
    let pendulum_config = VerificationConfig {
        num_seed_traces: 15,
        sim_duration: 6.0,
        ..VerificationConfig::default()
    };
    let pendulum_plant = |activation: Activation| PlantSpec::Pendulum {
        hidden_neurons: 16,
        activation,
        k_theta: 1.2,
        k_omega: 0.5,
        max_torque: 20.0,
        damping: 0.5,
    };

    vec![
        // --- The three case studies --------------------------------------
        Scenario::new(
            "dubins-paper",
            "The paper's Section 4 case study: Dubins path-following error \
             dynamics with the 2-10-1 tanh reference controller",
            PlantSpec::Dubins {
                hidden_neurons: 10,
                speed: 1.0,
            },
            dubins_spec(paper_initial, paper_safe),
            VerificationConfig::default(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "pendulum-tanh-16",
            "Torque-limited inverted pendulum stabilized by a 2-16-1 tanh \
             PD-like controller",
            pendulum_plant(Activation::Tanh),
            pendulum_spec.clone(),
            pendulum_config.clone(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "train-speed-control",
            "Train speed controller: headway error and relative speed under \
             a force-limited 2-12-1 tanh PD-like controller",
            PlantSpec::Train {
                hidden_neurons: 12,
                k_position: 1.0,
                k_velocity: 2.0,
                max_force: 5.0,
                drag: 0.5,
                mass: 1.0,
            },
            SafetySpec::rectangular(
                IntervalBox::from_bounds(&[(-0.3, 0.3), (-0.3, 0.3)]),
                IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]),
            ),
            VerificationConfig {
                num_seed_traces: 12,
                sim_duration: 8.0,
                ..VerificationConfig::default()
            },
            ExpectedVerdict::Certified,
        ),
        // --- Parameterized variants --------------------------------------
        Scenario::new(
            "dubins-perturbed-x0",
            "Dubins case study with an asymmetrically perturbed initial set \
             (shifted and widened relative to the paper's X0)",
            PlantSpec::Dubins {
                hidden_neurons: 10,
                speed: 1.0,
            },
            dubins_spec([(-0.6, 1.2), (-pi / 12.0, pi / 16.0)], paper_safe),
            VerificationConfig::default(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "dubins-tight-unsafe",
            "Dubins case study with a tightened unsafe region (the safe \
             corridor shrinks from ±5 m to ±3 m and the angle bound from \
             ±(π/2 − 0.01) to ±(π/2 − 0.2))",
            PlantSpec::Dubins {
                hidden_neurons: 10,
                speed: 1.0,
            },
            dubins_spec(
                paper_initial,
                [(-3.0, 3.0), (-(pi / 2.0 - 0.2), pi / 2.0 - 0.2)],
            ),
            VerificationConfig::default(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "dubins-wide-20",
            "Dubins case study with a doubled controller width (2-20-1), the \
             first step of the paper's Table 1 sweep",
            PlantSpec::Dubins {
                hidden_neurons: 20,
                speed: 1.0,
            },
            dubins_spec(paper_initial, paper_safe),
            VerificationConfig::default(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "pendulum-logsig-16",
            "Pendulum case study with the controller re-expressed through \
             logistic-sigmoid activations (same control law via \
             tanh(z) = 2·sigmoid(2z) − 1, different symbolic closed loop)",
            pendulum_plant(Activation::Sigmoid),
            pendulum_spec,
            pendulum_config,
            ExpectedVerdict::Certified,
        ),
        // --- Canary -------------------------------------------------------
        Scenario::new(
            "linear-unstable-canary",
            "Unstable linear system that must stay inconclusive — guards the \
             regression gate against silently certifying everything",
            PlantSpec::Linear {
                matrix: vec![vec![0.3, 0.0], vec![0.0, 0.3]],
            },
            SafetySpec::rectangular(
                IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
                IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
            ),
            VerificationConfig {
                num_seed_traces: 6,
                sim_duration: 3.0,
                max_candidate_iterations: 3,
                ..VerificationConfig::default()
            },
            ExpectedVerdict::Inconclusive,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_shape() {
        let registry = Registry::builtin();
        assert!(registry.len() >= 6, "acceptance floor: 6 scenarios");
        assert!(!registry.is_empty());
        // The three case studies plus at least three parameterized variants.
        for name in [
            "dubins-paper",
            "pendulum-tanh-16",
            "train-speed-control",
            "dubins-perturbed-x0",
            "dubins-tight-unsafe",
            "dubins-wide-20",
            "pendulum-logsig-16",
            "linear-unstable-canary",
        ] {
            assert!(registry.get(name).is_some(), "missing {name}");
        }
        // Names are unique.
        let mut names: Vec<&str> = registry.names().collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry.len());
        // Every scenario builds a consistent closed loop.
        for scenario in &registry {
            let system = scenario.build_system();
            assert_eq!(system.dim(), scenario.spec().dim(), "{}", scenario.name());
        }
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut registry = Registry::builtin();
        let copy = registry.get("dubins-paper").unwrap().clone();
        let err = registry.push(copy).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn filtering_by_name() {
        let registry = Registry::builtin();
        let dubins = registry.filtered("dubins");
        assert_eq!(dubins.len(), 4);
        assert!(dubins.names().all(|n| n.contains("dubins")));
        assert!(registry.filtered("no-such-scenario").is_empty());
    }

    #[test]
    fn manifest_registry_rejects_duplicates_and_empties() {
        assert!(Registry::from_toml_str("title = \"no scenarios\"\n")
            .unwrap_err()
            .to_string()
            .contains("no [[scenario]]"));
        let duplicated = r#"
            [[scenario]]
            name = "twice"
            expected = "certified"
            [scenario.plant]
            kind = "linear"
            matrix = [[-1.0]]
            [scenario.spec]
            initial_set = [[-0.5, 0.5]]
            safe_region = [[-2.0, 2.0]]
            [[scenario]]
            name = "twice"
            expected = "certified"
            [scenario.plant]
            kind = "linear"
            matrix = [[-1.0]]
            [scenario.spec]
            initial_set = [[-0.5, 0.5]]
            safe_region = [[-2.0, 2.0]]
        "#;
        assert!(Registry::from_toml_str(duplicated)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn missing_manifest_file_errors_cleanly() {
        let err = Registry::from_toml_file("/nonexistent/scenarios.toml").unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }
}
