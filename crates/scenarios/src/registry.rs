//! The scenario registry: the enumerable set of verification problems the
//! batch runner (and CI) sweeps.

use nncps_barrier::{SafetySpec, VerificationConfig};
use nncps_interval::IntervalBox;
use nncps_nn::Activation;

use crate::family::{AxisParam, Family, ParamAxis};
use crate::scenario::{ExpectedVerdict, ManifestError, PlantSpec, Scenario};
use crate::toml;

/// An ordered, name-keyed collection of [`Scenario`]s.
///
/// The order is part of the contract: batch reports list scenarios in
/// registry order, so a fixed registry yields byte-identical reports.
///
/// # Examples
///
/// ```
/// use nncps_scenarios::Registry;
///
/// let registry = Registry::builtin();
/// assert!(registry.len() >= 6);
/// assert!(registry.get("dubins-paper").is_some());
/// let names: Vec<&str> = registry.names().collect();
/// assert!(names.contains(&"pendulum-tanh-16"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    scenarios: Vec<Scenario>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The built-in registry: the paper's Dubins case study, the pendulum
    /// and train-controller case studies, and parameterized variants
    /// (perturbed initial set, tightened unsafe region, alternative
    /// controller widths and activations), plus an expected-inconclusive
    /// canary that guards the drift detector itself.
    pub fn builtin() -> Self {
        let mut registry = Registry::new();
        for scenario in builtin_scenarios() {
            registry
                .push(scenario)
                .expect("built-in scenario names are unique");
        }
        registry
    }

    /// Loads a registry from TOML manifest text (a sequence of
    /// `[[scenario]]` tables; see `scenarios/extra.toml` in the repository
    /// for the format).
    pub fn from_toml_str(text: &str) -> Result<Self, ManifestError> {
        let doc = toml::parse(text).map_err(|e| ManifestError::new(e.to_string()))?;
        let tables = doc.tables("scenario");
        if tables.is_empty() {
            return Err(ManifestError::new(
                "manifest defines no [[scenario]] tables",
            ));
        }
        let mut registry = Registry::new();
        for table in tables {
            registry.push(Scenario::from_toml(table)?)?;
        }
        Ok(registry)
    }

    /// Loads a registry from a TOML manifest file.
    pub fn from_toml_file(path: impl AsRef<std::path::Path>) -> Result<Self, ManifestError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            ManifestError::new(format!("cannot read manifest {}: {e}", path.display()))
        })?;
        Self::from_toml_str(&text)
    }

    /// Adds a scenario, rejecting duplicate names.
    pub fn push(&mut self, scenario: Scenario) -> Result<(), ManifestError> {
        if self.get(scenario.name()).is_some() {
            return Err(ManifestError::new(format!(
                "duplicate scenario name `{}`",
                scenario.name()
            )));
        }
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name() == name)
    }

    /// The scenarios in registry order.
    pub fn iter(&self) -> std::slice::Iter<'_, Scenario> {
        self.scenarios.iter()
    }

    /// The scenario names in registry order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.scenarios.iter().map(Scenario::name)
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// A copy with only the scenarios whose name contains `pattern`.
    pub fn filtered(&self, pattern: &str) -> Registry {
        Registry {
            scenarios: self
                .scenarios
                .iter()
                .filter(|s| s.name().contains(pattern))
                .cloned()
                .collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Registry {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A tiny two-scenario linear manifest (one certified spiral, one
/// expected-inconclusive unstable system) shared by this crate's unit and
/// integration tests, so the fixture exists exactly once.
#[doc(hidden)]
pub const SMOKE_MANIFEST: &str = r#"
[[scenario]]
name = "smoke-stable-spiral"
expected = "certified"
[scenario.plant]
kind = "linear"
matrix = [[-1.0, 0.2], [-0.2, -1.0]]
[scenario.spec]
initial_set = [[-0.5, 0.5], [-0.5, 0.5]]
safe_region = [[-3.0, 3.0], [-3.0, 3.0]]
[scenario.config]
num_seed_traces = 8
sim_duration = 5.0

[[scenario]]
name = "smoke-unstable"
expected = "inconclusive"
[scenario.plant]
kind = "linear"
matrix = [[0.4, 0.0], [0.0, 0.4]]
[scenario.spec]
initial_set = [[-0.5, 0.5], [-0.5, 0.5]]
safe_region = [[-3.0, 3.0], [-3.0, 3.0]]
[scenario.config]
num_seed_traces = 4
sim_duration = 2.0
max_candidate_iterations = 2
"#;

/// The paper's Section 4.3 safety specification for the Dubins error
/// dynamics, optionally with a perturbed initial set or a tightened safe
/// region.
fn dubins_spec(initial: [(f64, f64); 2], safe: [(f64, f64); 2]) -> SafetySpec {
    SafetySpec::rectangular(
        IntervalBox::from_bounds(&initial),
        IntervalBox::from_bounds(&safe),
    )
}

fn builtin_scenarios() -> Vec<Scenario> {
    let pi = std::f64::consts::PI;
    let eps = 0.01;
    let paper_initial = [(-1.0, 1.0), (-pi / 16.0, pi / 16.0)];
    let paper_safe = [(-5.0, 5.0), (-(pi / 2.0 - eps), pi / 2.0 - eps)];
    let pendulum_spec = SafetySpec::rectangular(
        IntervalBox::from_bounds(&[(-0.2, 0.2), (-0.2, 0.2)]),
        IntervalBox::from_bounds(&[(-0.8, 0.8), (-2.0, 2.0)]),
    );
    let pendulum_config = VerificationConfig {
        num_seed_traces: 15,
        sim_duration: 6.0,
        ..VerificationConfig::default()
    };
    let pendulum_plant = |activation: Activation| PlantSpec::Pendulum {
        hidden_neurons: 16,
        activation,
        k_theta: 1.2,
        k_omega: 0.5,
        max_torque: 20.0,
        damping: 0.5,
    };

    vec![
        // --- The three case studies --------------------------------------
        Scenario::new(
            "dubins-paper",
            "The paper's Section 4 case study: Dubins path-following error \
             dynamics with the 2-10-1 tanh reference controller",
            PlantSpec::Dubins {
                hidden_neurons: 10,
                speed: 1.0,
            },
            dubins_spec(paper_initial, paper_safe),
            VerificationConfig::default(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "pendulum-tanh-16",
            "Torque-limited inverted pendulum stabilized by a 2-16-1 tanh \
             PD-like controller",
            pendulum_plant(Activation::Tanh),
            pendulum_spec.clone(),
            pendulum_config.clone(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "train-speed-control",
            "Train speed controller: headway error and relative speed under \
             a force-limited 2-12-1 tanh PD-like controller",
            PlantSpec::Train {
                hidden_neurons: 12,
                k_position: 1.0,
                k_velocity: 2.0,
                max_force: 5.0,
                drag: 0.5,
                mass: 1.0,
            },
            SafetySpec::rectangular(
                IntervalBox::from_bounds(&[(-0.3, 0.3), (-0.3, 0.3)]),
                IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]),
            ),
            VerificationConfig {
                num_seed_traces: 12,
                sim_duration: 8.0,
                ..VerificationConfig::default()
            },
            ExpectedVerdict::Certified,
        ),
        // --- Parameterized variants --------------------------------------
        Scenario::new(
            "dubins-perturbed-x0",
            "Dubins case study with an asymmetrically perturbed initial set \
             (shifted and widened relative to the paper's X0)",
            PlantSpec::Dubins {
                hidden_neurons: 10,
                speed: 1.0,
            },
            dubins_spec([(-0.6, 1.2), (-pi / 12.0, pi / 16.0)], paper_safe),
            VerificationConfig::default(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "dubins-tight-unsafe",
            "Dubins case study with a tightened unsafe region (the safe \
             corridor shrinks from ±5 m to ±3 m and the angle bound from \
             ±(π/2 − 0.01) to ±(π/2 − 0.2))",
            PlantSpec::Dubins {
                hidden_neurons: 10,
                speed: 1.0,
            },
            dubins_spec(
                paper_initial,
                [(-3.0, 3.0), (-(pi / 2.0 - 0.2), pi / 2.0 - 0.2)],
            ),
            VerificationConfig::default(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "dubins-wide-20",
            "Dubins case study with a doubled controller width (2-20-1), the \
             first step of the paper's Table 1 sweep",
            PlantSpec::Dubins {
                hidden_neurons: 20,
                speed: 1.0,
            },
            dubins_spec(paper_initial, paper_safe),
            VerificationConfig::default(),
            ExpectedVerdict::Certified,
        ),
        Scenario::new(
            "pendulum-logsig-16",
            "Pendulum case study with the controller re-expressed through \
             logistic-sigmoid activations (same control law via \
             tanh(z) = 2·sigmoid(2z) − 1, different symbolic closed loop)",
            pendulum_plant(Activation::Sigmoid),
            pendulum_spec,
            pendulum_config,
            ExpectedVerdict::Certified,
        ),
        // --- Canary -------------------------------------------------------
        Scenario::new(
            "linear-unstable-canary",
            "Unstable linear system that must stay inconclusive — guards the \
             regression gate against silently certifying everything",
            PlantSpec::Linear {
                matrix: vec![vec![0.3, 0.0], vec![0.0, 0.3]],
            },
            SafetySpec::rectangular(
                IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
                IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
            ),
            VerificationConfig {
                num_seed_traces: 6,
                sim_duration: 3.0,
                max_candidate_iterations: 3,
                ..VerificationConfig::default()
            },
            ExpectedVerdict::Inconclusive,
        ),
    ]
}

/// Loads the `[[family]]` tables of a TOML manifest.  Base-scenario
/// references resolve against `bases` *plus* any `[[scenario]]` tables
/// defined in the same manifest (so a manifest can declare a base and sweep
/// it in one file).  A manifest without `[[family]]` tables yields an empty
/// list — a scenarios-only manifest simply contributes no families.
///
/// # Errors
///
/// Returns a [`ManifestError`] on parse errors, unknown base references, or
/// malformed axes.
pub fn families_from_toml_str(text: &str, bases: &Registry) -> Result<Vec<Family>, ManifestError> {
    let doc = toml::parse(text).map_err(|e| ManifestError::new(e.to_string()))?;
    let mut lookup = bases.clone();
    for table in doc.tables("scenario") {
        lookup.push(Scenario::from_toml(table)?)?;
    }
    doc.tables("family")
        .into_iter()
        .map(|table| Family::from_toml(table, &lookup))
        .collect()
}

/// The built-in scenario families: a handful of declarations expanding to
/// several hundred generated scenarios across all plant kinds and every
/// axis type (plant constants, initial/safe boxes, weight perturbation,
/// solver precision).  Verdict counts are pinned so CI can gate sweep
/// semantics (see [`Family::expected_counts`]).
pub fn builtin_families() -> Vec<Family> {
    let registry = Registry::builtin();
    let base = |name: &str| registry.get(name).expect("built-in scenario").clone();

    // A cheap linear base for the large sweeps: the rotation-contraction
    // system `ẋ = s·(x + 0.4 y), ẏ = s·(−0.4 x + y)` certifies for s < 0
    // and must stay inconclusive for s ≥ 0 (the family crosses the
    // boundary on purpose).
    let linear_base = Scenario::new(
        "linear-rotation-base",
        "rotation-contraction linear system (matrix_scale sweeps the \
         contraction rate; positive scales are unstable)",
        PlantSpec::Linear {
            matrix: vec![vec![1.0, 0.4], vec![-0.4, 1.0]],
        },
        SafetySpec::rectangular(
            IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
            IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
        ),
        VerificationConfig {
            num_seed_traces: 6,
            sim_duration: 3.0,
            max_candidate_iterations: 3,
            ..VerificationConfig::default()
        },
        ExpectedVerdict::Any,
    );

    vec![
        // The flagship scale family: ≥ 200 members from one declaration.
        Family::new(
            "linear-stability-sweep",
            "contraction-rate × precision × seed × X0 sweep over the \
             rotation-contraction system",
            linear_base.clone(),
        )
        .with_axis(ParamAxis::linspace(
            AxisParam::plant("matrix_scale"),
            -2.0,
            0.4,
            13,
        ))
        .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4]))
        .with_axis(ParamAxis::grid(AxisParam::Seed, vec![2018.0, 99.0]))
        .with_axis(ParamAxis::random(AxisParam::X0Hi(0), 0.3, 0.6, 4, 17))
        .with_counts(152, 56),
        // The ~24-member family CI sweeps on every run (cheap, crosses the
        // certification boundary, counts pinned).
        Family::new(
            "linear-ci-grid",
            "small contraction × X0 × precision grid for the CI gate",
            linear_base,
        )
        .with_axis(ParamAxis::grid(
            AxisParam::plant("matrix_scale"),
            vec![-1.5, -0.75, 0.25, 1.0],
        ))
        .with_axis(ParamAxis::grid(AxisParam::X0Hi(1), vec![0.4, 0.5, 0.6]))
        .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4]))
        .with_counts(12, 12),
        // NN families: one per case study, exercising the perturbation and
        // plant-constant axes with sweep-friendly configurations.
        Family::new(
            "pendulum-robustness",
            "random weight perturbations × solver precision over the \
             pendulum controller",
            Scenario::new(
                "pendulum-sweep-base",
                "2-8-1 tanh pendulum with a sweep-sized trace budget",
                PlantSpec::Pendulum {
                    hidden_neurons: 8,
                    activation: Activation::Tanh,
                    k_theta: 1.2,
                    k_omega: 0.5,
                    max_torque: 20.0,
                    damping: 0.5,
                },
                SafetySpec::rectangular(
                    IntervalBox::from_bounds(&[(-0.2, 0.2), (-0.2, 0.2)]),
                    IntervalBox::from_bounds(&[(-0.8, 0.8), (-2.0, 2.0)]),
                ),
                VerificationConfig {
                    num_seed_traces: 6,
                    sim_duration: 4.0,
                    ..VerificationConfig::default()
                },
                ExpectedVerdict::Any,
            ),
        )
        .with_weight_seed(5)
        .with_axis(ParamAxis::random(
            AxisParam::WeightPerturbation,
            0.0,
            0.08,
            5,
            5,
        ))
        .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4]))
        .with_counts(10, 0),
        Family::new(
            "dubins-speed-grid",
            "vehicle speed × solver precision over the paper's Dubins case \
             study",
            Scenario::new(
                "dubins-sweep-base",
                "paper Dubins error dynamics with a sweep-sized trace budget",
                PlantSpec::Dubins {
                    hidden_neurons: 10,
                    speed: 1.0,
                },
                base("dubins-paper").spec().clone(),
                VerificationConfig {
                    num_seed_traces: 8,
                    max_samples_per_trace: 15,
                    ..VerificationConfig::default()
                },
                ExpectedVerdict::Any,
            ),
        )
        .with_axis(ParamAxis::grid(
            AxisParam::plant("speed"),
            vec![0.8, 1.0, 1.2],
        ))
        .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-4, 1e-3]))
        .with_counts(6, 0),
        Family::new(
            "train-gain-sweep",
            "controller derivative gain × safe-corridor width over the \
             train speed controller",
            Scenario::new(
                "train-sweep-base",
                "2-12-1 train controller with a sweep-sized trace budget",
                base("train-speed-control").plant().clone(),
                base("train-speed-control").spec().clone(),
                VerificationConfig {
                    num_seed_traces: 8,
                    sim_duration: 6.0,
                    ..VerificationConfig::default()
                },
                ExpectedVerdict::Any,
            ),
        )
        .with_axis(ParamAxis::linspace(
            AxisParam::plant("k_velocity"),
            1.5,
            2.5,
            3,
        ))
        .with_axis(ParamAxis::grid(AxisParam::SafeHi(0), vec![1.5, 2.0]))
        .with_counts(6, 0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_shape() {
        let registry = Registry::builtin();
        assert!(registry.len() >= 6, "acceptance floor: 6 scenarios");
        assert!(!registry.is_empty());
        // The three case studies plus at least three parameterized variants.
        for name in [
            "dubins-paper",
            "pendulum-tanh-16",
            "train-speed-control",
            "dubins-perturbed-x0",
            "dubins-tight-unsafe",
            "dubins-wide-20",
            "pendulum-logsig-16",
            "linear-unstable-canary",
        ] {
            assert!(registry.get(name).is_some(), "missing {name}");
        }
        // Names are unique.
        let mut names: Vec<&str> = registry.names().collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry.len());
        // Every scenario builds a consistent closed loop.
        for scenario in &registry {
            let system = scenario.build_system();
            assert_eq!(system.dim(), scenario.spec().dim(), "{}", scenario.name());
        }
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut registry = Registry::builtin();
        let copy = registry.get("dubins-paper").unwrap().clone();
        let err = registry.push(copy).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn filtering_by_name() {
        let registry = Registry::builtin();
        let dubins = registry.filtered("dubins");
        assert_eq!(dubins.len(), 4);
        assert!(dubins.names().all(|n| n.contains("dubins")));
        assert!(registry.filtered("no-such-scenario").is_empty());
    }

    #[test]
    fn manifest_registry_rejects_duplicates_and_empties() {
        assert!(Registry::from_toml_str("title = \"no scenarios\"\n")
            .unwrap_err()
            .to_string()
            .contains("no [[scenario]]"));
        let duplicated = r#"
            [[scenario]]
            name = "twice"
            expected = "certified"
            [scenario.plant]
            kind = "linear"
            matrix = [[-1.0]]
            [scenario.spec]
            initial_set = [[-0.5, 0.5]]
            safe_region = [[-2.0, 2.0]]
            [[scenario]]
            name = "twice"
            expected = "certified"
            [scenario.plant]
            kind = "linear"
            matrix = [[-1.0]]
            [scenario.spec]
            initial_set = [[-0.5, 0.5]]
            safe_region = [[-2.0, 2.0]]
        "#;
        assert!(Registry::from_toml_str(duplicated)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn missing_manifest_file_errors_cleanly() {
        let err = Registry::from_toml_file("/nonexistent/scenarios.toml").unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn builtin_families_hit_the_scale_targets() {
        let families = builtin_families();
        assert!(families.len() >= 5, "a handful of declarations");
        // One single family reaches the >= 200 generated-scenario target...
        assert!(
            families.iter().any(|f| f.len() >= 200),
            "largest family: {}",
            families.iter().map(Family::len).max().unwrap()
        );
        // ...and the CI family stays sweep-sized.
        let ci = families
            .iter()
            .find(|f| f.name() == "linear-ci-grid")
            .expect("CI family exists");
        assert_eq!(ci.len(), 24);
        // Names are unique, every family pins counts consistent with its
        // size, and every family expands cleanly.
        let mut names: Vec<&str> = families.iter().map(Family::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), families.len());
        for family in &families {
            let counts = family
                .expected_counts()
                .expect("built-in families pin counts");
            assert_eq!(
                counts.certified + counts.inconclusive,
                family.len(),
                "{}",
                family.name()
            );
            let members = family
                .expand()
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert_eq!(members.len(), family.len());
            // Member names are unique and prefixed by the family.
            let mut member_names: Vec<&str> = members.iter().map(Scenario::name).collect();
            member_names.sort_unstable();
            member_names.dedup();
            assert_eq!(member_names.len(), members.len());
            assert!(member_names.iter().all(|n| n.starts_with(family.name())));
        }
    }

    #[test]
    fn families_load_from_manifests_with_local_bases() {
        let manifest = r#"
            [[scenario]]
            name = "local-base"
            expected = "any"
            [scenario.plant]
            kind = "linear"
            matrix = [[-1.0, 0.0], [0.0, -1.0]]
            [scenario.spec]
            initial_set = [[-0.5, 0.5], [-0.5, 0.5]]
            safe_region = [[-2.0, 2.0], [-2.0, 2.0]]

            [[family]]
            name = "local-family"
            base = "local-base"
            [[family.axis]]
            param = "delta"
            grid = [1e-3, 1e-4]

            [[family]]
            name = "builtin-base-family"
            base = "dubins-paper"
            [[family.axis]]
            param = "speed"
            grid = [0.9, 1.1]
        "#;
        let families = families_from_toml_str(manifest, &Registry::builtin()).unwrap();
        assert_eq!(families.len(), 2);
        assert_eq!(families[0].len(), 2);
        assert_eq!(families[0].base().name(), "local-base");
        assert_eq!(families[1].base().plant().kind(), "dubins");

        // A scenarios-only (or empty) manifest contributes no families —
        // even when a comment happens to mention the `[[family]]` syntax.
        assert!(families_from_toml_str(
            "# declare [[family]] tables to sweep\ntitle = \"none\"\n",
            &Registry::builtin()
        )
        .unwrap()
        .is_empty());
        // An unknown base reference is an error.
        let unknown = "[[family]]\nname = \"f\"\nbase = \"no-such\"\n";
        assert!(families_from_toml_str(unknown, &Registry::builtin())
            .unwrap_err()
            .to_string()
            .contains("unknown base"));
    }

    #[test]
    fn repository_family_manifest_parses() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/families.toml"
        ))
        .expect("scenarios/families.toml exists");
        let families = families_from_toml_str(&text, &Registry::builtin()).unwrap();
        assert_eq!(families.len(), 2);
        assert!(families.iter().all(|f| f.expected_counts().is_some()));
        for family in &families {
            family
                .expand()
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
        }
    }
}
