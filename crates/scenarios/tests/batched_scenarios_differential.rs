//! Registry-level proof that batched sibling evaluation is invisible to the
//! scenario reports: every built-in scenario, re-run with
//! `smt_batched_evaluation` off, must produce the same fingerprint (verdict,
//! reason, level, certificate bits, counterexample witnesses) and the same
//! deterministic counters.  Since the checked-in `SCENARIOS_expected.json`
//! baseline predates batching, this is also the proof that the CI
//! scenario-regression gate stays green with batching default-on.

use nncps_scenarios::{run_scenario, Registry, Scenario};

/// The scenario with batched evaluation forced off (everything else equal).
fn scalar_variant(scenario: &Scenario) -> Scenario {
    let mut config = scenario.config().clone();
    assert!(
        config.smt_batched_evaluation,
        "scenario `{}` must default to batched evaluation",
        scenario.name()
    );
    config.smt_batched_evaluation = false;
    Scenario::new(
        scenario.name(),
        scenario.description(),
        scenario.plant().clone(),
        scenario.spec().clone(),
        config,
        scenario.expected(),
    )
}

#[test]
fn every_builtin_scenario_is_batching_invariant() {
    let registry = Registry::builtin();
    assert!(
        registry.len() >= 8,
        "the built-in registry holds 8+ scenarios"
    );
    for scenario in &registry {
        let batched = run_scenario(scenario);
        let scalar = run_scenario(&scalar_variant(scenario));
        let name = scenario.name();
        assert_eq!(
            batched.fingerprint(),
            scalar.fingerprint(),
            "scenario `{name}`: fingerprint diverges with batching off"
        );
        assert_eq!(
            batched.verdict, scalar.verdict,
            "scenario `{name}`: verdict diverges"
        );
        assert_eq!(
            batched.counterexample_witnesses, scalar.counterexample_witnesses,
            "scenario `{name}`: counterexample witnesses diverge"
        );
        assert!(
            batched.matches_expected,
            "scenario `{name}` no longer matches its expected verdict"
        );
        // Every deterministic counter must agree; only
        // `instructions_executed` is allowed to differ (the batched sweeps
        // account for full child programs up front, the scalar path counts
        // incremental prefix extensions — both are cost instrumentation,
        // excluded from fingerprints by design).
        let (a, b) = (&batched.stats, &scalar.stats);
        assert_eq!(a.generator_iterations, b.generator_iterations, "{name}");
        assert_eq!(a.lp_solves, b.lp_solves, "{name}");
        assert_eq!(a.smt_decrease_checks, b.smt_decrease_checks, "{name}");
        assert_eq!(a.counterexamples, b.counterexamples, "{name}");
        assert_eq!(a.level_iterations, b.level_iterations, "{name}");
        assert_eq!(a.boxes_explored, b.boxes_explored, "{name}");
        assert_eq!(a.boxes_pruned, b.boxes_pruned, "{name}");
        assert_eq!(a.bisections, b.bisections, "{name}");
        assert_eq!(a.clauses_examined, b.clauses_examined, "{name}");
        assert_eq!(
            a.specialized_tape_len_sum, b.specialized_tape_len_sum,
            "{name}"
        );
        assert_eq!(a.newton_cuts, b.newton_cuts, "{name}");
    }
}
