//! Integration tests for the batch runner's report: JSON round-trip on a
//! real run, byte-identical determinism at a fixed thread count, and the
//! checked-in manifest example.

use nncps_scenarios::{run_batch, BatchOptions, BatchReport, Registry};

/// The shared two-scenario linear fixture (cheap: no NN case studies).
fn smoke_registry() -> Registry {
    Registry::from_toml_str(nncps_scenarios::SMOKE_MANIFEST).expect("smoke manifest parses")
}

#[test]
fn real_batch_report_round_trips_through_json() {
    let report = run_batch(
        &smoke_registry(),
        &BatchOptions {
            threads: 1,
            ..BatchOptions::default()
        },
    );
    assert!(report.all_match_expected());
    for include_timings in [false, true] {
        let text = report.to_json(include_timings);
        let parsed = BatchReport::from_json(&text).expect("report parses back");
        assert_eq!(
            parsed.to_json(include_timings),
            text,
            "serialize -> parse -> serialize must be the identity"
        );
    }
    // The full report round-trips structurally, including timings.
    let full = BatchReport::from_json(&report.to_json(true)).unwrap();
    assert_eq!(full, report);
}

#[test]
fn two_batch_runs_produce_byte_identical_reports_at_fixed_threads() {
    let registry = smoke_registry();
    // The determinism contract the CI scenario-regression stage relies on:
    // at a fixed thread count, everything but wall-clock timing is
    // byte-identical between runs — verdicts, witnesses, certificates,
    // solver box counts, fingerprints, and the serialized layout itself.
    for threads in [1usize, 2] {
        let options = BatchOptions {
            threads,
            ..BatchOptions::default()
        };
        let first = run_batch(&registry, &options).to_json(false);
        let second = run_batch(&registry, &options).to_json(false);
        assert_eq!(
            first, second,
            "batch runs must be deterministic (threads = {threads})"
        );
    }
}

#[test]
fn checked_in_manifest_example_loads_and_names_are_fresh() {
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/extra.toml");
    let extra = Registry::from_toml_file(manifest).expect("scenarios/extra.toml loads");
    assert!(extra.len() >= 3);
    // Manifest scenarios must not collide with built-in names, so
    // `--manifest` registries can be merged with the builtin set later.
    let builtin = Registry::builtin();
    for scenario in &extra {
        assert!(
            builtin.get(scenario.name()).is_none(),
            "manifest name `{}` collides with a built-in scenario",
            scenario.name()
        );
        // Each manifest scenario builds a well-formed closed loop.
        assert_eq!(scenario.build_system().dim(), scenario.spec().dim());
    }
}

#[test]
fn expected_baseline_stays_in_sync_with_the_builtin_registry() {
    // Cheap structural check (the full behavioural diff runs in ci.sh): the
    // checked-in baseline lists exactly the built-in scenario names, in
    // registry order.
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../SCENARIOS_expected.json");
    let baseline = std::fs::read_to_string(baseline_path)
        .expect("SCENARIOS_expected.json is checked in at the repository root");
    let parsed = nncps_scenarios::Json::parse(&baseline).expect("baseline parses");
    let names: Vec<&str> = parsed
        .get("scenarios")
        .and_then(nncps_scenarios::Json::as_array)
        .expect("baseline has a scenarios array")
        .iter()
        .map(|s| {
            s.get("name")
                .and_then(nncps_scenarios::Json::as_str)
                .unwrap()
        })
        .collect();
    let builtin = Registry::builtin();
    let registry_names: Vec<&str> = builtin.names().collect();
    assert_eq!(
        names, registry_names,
        "regenerate with: cargo run --release --bin nncps-batch -- --write-expected SCENARIOS_expected.json"
    );
}
