//! Chaos suite: every injected fault must surface as the intended
//! *structured* outcome — a `CrashedMember` row, a governed `Unknown`, or a
//! clean degradation — and must never poison sibling members or subsequent
//! warm-started runs.
//!
//! Compiled only with the `fault-injection` feature:
//!
//! ```text
//! cargo test -p nncps_scenarios --features fault-injection --test chaos
//! ```
#![cfg(feature = "fault-injection")]

use std::sync::{Mutex, MutexGuard, PoisonError};

use nncps_barrier::{Budget, ExhaustionReason};
use nncps_fault::{arm, disarm_all, FaultKind, FaultSpec, Trigger};
use nncps_scenarios::{
    run_batch, run_scenario_governed, run_sweep, AxisParam, BatchOptions, BatchReport, Family,
    ParamAxis, Registry, SweepOptions,
};

/// The fault registry is process-global, so chaos tests must not overlap.
/// (An injected panic can unwind while a test holds the guard, poisoning
/// it; recovery is safe because the guard protects no data.)
fn serial() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared two-scenario linear fixture (cheap: no NN case studies).
fn smoke_registry() -> Registry {
    Registry::from_toml_str(nncps_scenarios::SMOKE_MANIFEST).expect("smoke manifest parses")
}

fn sequential_batch() -> BatchOptions {
    BatchOptions {
        threads: 1,
        ..BatchOptions::default()
    }
}

fn clean_batch() -> BatchReport {
    disarm_all();
    run_batch(&smoke_registry(), &sequential_batch())
}

#[test]
fn injected_panics_become_crashed_rows_and_spare_siblings() {
    let _guard = serial();
    let baseline = clean_batch();
    assert!(!baseline.has_crashes());

    // One panic site at a time; `nth = 1` with a sequential run lands the
    // fault deterministically in the first member that reaches the site.
    for site in [
        nncps_fault::SITE_SOLVER_BOX_POP,
        nncps_fault::SITE_LP_PIVOT,
        nncps_fault::SITE_TAPE_COMPILE,
    ] {
        disarm_all();
        arm(site, FaultSpec::new(FaultKind::Panic, Trigger::Nth(1)));
        let report = run_batch(&smoke_registry(), &sequential_batch());
        assert_eq!(report.crashed.len(), 1, "site {site}");
        assert_eq!(report.crashed[0].scenario, "smoke-stable-spiral");
        assert!(
            report.crashed[0].payload.contains(site),
            "payload names the site: {:?}",
            report.crashed[0].payload
        );
        // The sibling member is untouched: same verdict, same fingerprint.
        assert_eq!(report.results.len(), 1, "site {site}");
        assert_eq!(report.results[0].name, "smoke-unstable");
        assert_eq!(
            report.results[0].fingerprint(),
            baseline.results[1].fingerprint(),
            "site {site}"
        );
        // The crashed row is part of the serialized report and survives a
        // structural round-trip.
        let text = report.to_json(true);
        assert!(text.contains("\"crashed\""));
        assert_eq!(BatchReport::from_json(&text).unwrap(), report);
    }

    // Disarmed again, the report returns byte-for-byte to the baseline:
    // nothing the crashes touched leaks into later runs.
    assert_eq!(clean_batch().to_json(false), baseline.to_json(false));
}

#[test]
fn warmstart_insert_panic_does_not_poison_the_sweep_cache() {
    let _guard = serial();
    disarm_all();
    let base = smoke_registry().get("smoke-stable-spiral").unwrap().clone();
    let family = Family::new("chaos-spiral", "chaos fixture", base)
        .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4, 1e-5]))
        .with_counts(3, 0);
    let options = SweepOptions {
        threads: 1,
        warm_start: true,
        ..SweepOptions::default()
    };
    let baseline = run_sweep(std::slice::from_ref(&family), &options).unwrap();
    assert_eq!(baseline.results.len(), 3);

    // The first warm-start cache insert panics: that member crashes, but
    // the shared cache stays usable (entries are pure functions of their
    // keys, built before the insert fires), so the surviving members still
    // verify and still match the clean run bit-for-bit.
    arm(
        nncps_fault::SITE_WARMSTART_INSERT,
        FaultSpec::new(FaultKind::Panic, Trigger::Nth(1)),
    );
    let report = run_sweep(std::slice::from_ref(&family), &options).unwrap();
    disarm_all();
    assert_eq!(report.crashed.len(), 1);
    assert_eq!(report.crashed[0].scenario, "chaos-spiral-000");
    assert_eq!(report.results.len(), 2);
    for survivor in &report.results {
        let clean = baseline
            .results
            .iter()
            .find(|r| r.name == survivor.name)
            .expect("survivor exists in the clean run");
        assert_eq!(survivor.fingerprint(), clean.fingerprint());
        assert_eq!(survivor.verdict, clean.verdict);
    }
    // The roll-up counts the crash and reports it instead of count drift.
    let rollup = &report.families[0];
    assert_eq!((rollup.members, rollup.crashed), (3, 1));
    let findings = rollup.findings();
    assert!(findings.iter().any(|f| f.contains("crashed member")));
    assert!(!findings.iter().any(|f| f.contains("counts drifted")));

    // A fresh warm-started sweep after the chaos run is pristine.
    let after = run_sweep(std::slice::from_ref(&family), &options).unwrap();
    assert_eq!(after.to_json(false), baseline.to_json(false));
}

#[test]
fn forced_fuel_exhaustion_surfaces_as_a_governed_unknown() {
    let _guard = serial();
    disarm_all();
    let registry = smoke_registry();
    let scenario = registry.get("smoke-stable-spiral").unwrap();
    let budget = || Budget::unlimited().with_fuel(1_000_000);
    let clean = run_scenario_governed(scenario, None, &budget());
    assert_eq!(clean.verdict, "certified");
    assert_eq!(clean.exhaustion, None);

    // The armed fault forces the (otherwise ample) fuel budget into
    // exhaustion at the first solver box pop: the verdict degrades to the
    // same structured `Unknown(Fuel)` a genuinely undersized budget yields.
    arm(
        nncps_fault::SITE_SOLVER_BOX_POP,
        FaultSpec::new(FaultKind::FuelExhaustion, Trigger::Always),
    );
    let starved = run_scenario_governed(scenario, None, &budget());
    disarm_all();
    assert_eq!(starved.verdict, "inconclusive");
    assert_eq!(starved.exhaustion, Some(ExhaustionReason::Fuel(1_000_000)));
    let reason = starved.reason.as_deref().unwrap_or_default();
    assert!(
        reason.contains("fuel budget of 1000000 instructions exhausted"),
        "{reason:?}"
    );

    // Chaos over: the same budget certifies again.
    let recovered = run_scenario_governed(scenario, None, &budget());
    assert_eq!(recovered.fingerprint(), clean.fingerprint());
}

#[test]
fn injected_sim_nan_degrades_to_a_structured_verdict() {
    let _guard = serial();
    disarm_all();
    let baseline = clean_batch();

    // Every integration step emits NaN: traces truncate at the first
    // corrupted state, so verification degrades (or survives on shorter
    // evidence) but never panics and never emits malformed JSON.
    arm(
        nncps_fault::SITE_SIM_STEP,
        FaultSpec::new(FaultKind::Nan, Trigger::Always),
    );
    let report = run_batch(&smoke_registry(), &sequential_batch());
    disarm_all();
    assert!(!report.has_crashes());
    assert_eq!(report.results.len(), 2);
    for result in &report.results {
        assert!(
            ["certified", "inconclusive", "falsified"].contains(&result.verdict.as_str()),
            "structured verdict, got {:?}",
            result.verdict
        );
    }
    let text = report.to_json(true);
    assert_eq!(
        BatchReport::from_json(&text).unwrap().to_json(true),
        text,
        "NaN corruption must not leak into the serialized report"
    );

    // And the pipeline is stateless across runs: disarmed, the batch is
    // byte-identical to the pre-chaos baseline.
    assert_eq!(clean_batch().to_json(false), baseline.to_json(false));
}
