//! Hardening tests for the hand-rolled TOML-subset and JSON parsers
//! (PR 5 satellite): edge cases the manifest/report surface can hit, plus a
//! fuzz-ish proptest that round-trips generated manifests.

use nncps_scenarios::toml::{self, TomlValue};
use nncps_scenarios::Json;
use proptest::prelude::*;

// --- TOML edge cases -------------------------------------------------------

#[test]
fn toml_numbers_with_signed_exponents() {
    let doc = toml::parse("a = -2.5e-3\nb = 1E+6\nc = 4e2\nd = -1.25E-12\ne = 0.5e+0\nf = -0.0\n")
        .unwrap();
    assert_eq!(doc.get_f64("a"), Some(-2.5e-3));
    assert_eq!(doc.get_f64("b"), Some(1e6));
    assert_eq!(doc.get_f64("c"), Some(400.0));
    assert_eq!(doc.get_f64("d"), Some(-1.25e-12));
    assert_eq!(doc.get_f64("e"), Some(0.5));
    assert_eq!(doc.get_f64("f").unwrap().to_bits(), (-0.0f64).to_bits());
}

#[test]
fn toml_trailing_comments_everywhere() {
    let doc = toml::parse(
        r##"
        a = 1            # after an integer
        [table]          # after a header
        b = [1, 2]       # after an array
        c = "x # y"      # hash inside a string is not a comment
        # a full-line comment
        [[rows]]         # after an array-of-tables header
        d = true         # after a bool
        "##,
    )
    .unwrap();
    assert_eq!(doc.get_usize("a"), Some(1));
    assert_eq!(doc.get_table("table").unwrap().get_str("c"), Some("x # y"));
    assert_eq!(doc.tables("rows")[0].get("d"), Some(&TomlValue::Bool(true)));
}

#[test]
fn toml_deep_nesting_parses_up_to_the_cap() {
    // 30 levels parse fine (the manifests use 2)...
    let deep = format!("x = {}1.5{}\n", "[".repeat(30), "]".repeat(30));
    let doc = toml::parse(&deep).unwrap();
    let mut value = doc.get("x").unwrap();
    for _ in 0..30 {
        value = &value.as_array().unwrap()[0];
    }
    assert_eq!(value.as_f64(), Some(1.5));

    // ...and pathological nesting is a clean error, not a stack overflow.
    let too_deep = format!("x = {}1{}\n", "[".repeat(200), "]".repeat(200));
    let err = toml::parse(&too_deep).unwrap_err();
    assert!(err.to_string().contains("nest"), "{err}");

    // Deep *table* paths are iterative and uncapped.
    let path: Vec<String> = (0..64).map(|i| format!("t{i}")).collect();
    let doc = toml::parse(&format!("[{}]\nleaf = 9\n", path.join("."))).unwrap();
    let mut table = &doc;
    for key in &path {
        table = table.get_table(key).unwrap();
    }
    assert_eq!(table.get_usize("leaf"), Some(9));
}

#[test]
fn toml_duplicate_keys_and_headers_error() {
    // Duplicate key in the root.
    assert!(toml::parse("a = 1\na = 2\n")
        .unwrap_err()
        .to_string()
        .contains("duplicate key"));
    // Duplicate key inside a section.
    assert!(toml::parse("[t]\na = 1\na = 2\n")
        .unwrap_err()
        .to_string()
        .contains("duplicate key"));
    // Redefining a [table] header is an error...
    assert!(toml::parse("[t]\na = 1\n[t]\nb = 2\n")
        .unwrap_err()
        .to_string()
        .contains("duplicate table header"));
    // ...including nested ones within the same array element.
    let redefined = "[[s]]\n[s.plant]\nkind = \"linear\"\n[s.plant]\nwidth = 2\n";
    assert!(toml::parse(redefined)
        .unwrap_err()
        .to_string()
        .contains("duplicate table header"));
    // But the same sub-table under *different* [[s]] elements is the normal
    // manifest layout and stays legal.
    let legal = "[[s]]\n[s.plant]\nkind = \"a\"\n[[s]]\n[s.plant]\nkind = \"b\"\n";
    let doc = toml::parse(legal).unwrap();
    assert_eq!(doc.tables("s").len(), 2);
    // Mixing [x] and [[x]] on one name is rejected in both orders.
    assert!(toml::parse("[x]\na = 1\n[[x]]\nb = 2\n").is_err());
    assert!(toml::parse("[[x]]\na = 1\n[x]\nb = 2\n").is_err());
}

#[test]
fn family_axis_tables_nest_after_subtables() {
    // The exact shape that exposed the array-tail navigation bug: a
    // [family.counts] sub-table followed by more [[family.axis]] elements.
    let doc = toml::parse(
        r#"
        [[family]]
        name = "f"
        [family.counts]
        certified = 1
        inconclusive = 0
        [[family.axis]]
        param = "delta"
        [[family.axis]]
        param = "gamma"
        [[family]]
        name = "g"
        [[family.axis]]
        param = "seed"
        "#,
    )
    .unwrap();
    let families = doc.tables("family");
    assert_eq!(families.len(), 2);
    assert_eq!(families[0].tables("axis").len(), 2);
    assert_eq!(
        families[0]
            .get_table("counts")
            .unwrap()
            .get_usize("certified"),
        Some(1)
    );
    assert_eq!(families[1].tables("axis").len(), 1);
    assert_eq!(families[1].tables("axis")[0].get_str("param"), Some("seed"));
}

// --- JSON edge cases -------------------------------------------------------

#[test]
fn json_numbers_with_negative_exponents_round_trip() {
    for text in ["-2.5e-3", "1e-300", "6.342e-3", "-0.0", "9007199254740993"] {
        let value = Json::parse(text).unwrap();
        let expected: f64 = text.parse().unwrap();
        assert_eq!(
            value.as_f64().unwrap().to_bits(),
            expected.to_bits(),
            "{text}"
        );
    }
    assert!(Json::parse("1e").is_err());
    assert!(Json::parse("--1").is_err());
    assert!(Json::parse("1.2.3").is_err());
}

#[test]
fn json_nesting_is_capped_cleanly() {
    let fine = format!("{}0{}", "[".repeat(100), "]".repeat(100));
    assert!(Json::parse(&fine).is_ok());
    let too_deep = format!("{}0{}", "[".repeat(500), "]".repeat(500));
    let err = Json::parse(&too_deep).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
    // Objects count against the same cap.
    let deep_objects = format!("{}1{}", "{\"k\": ".repeat(500), "}".repeat(500));
    assert!(Json::parse(&deep_objects).is_err());
}

#[test]
fn json_malformed_documents_error_instead_of_panicking() {
    for text in [
        "",
        "[1, 2",
        "{\"a\": }",
        "{\"a\" 1}",
        "[1 2]",
        "\"unterminated",
        "\"bad \\q escape\"",
        "\"trunc \\u12",
        "nul",
        "[1], trailing",
        "{\"a\": 1} extra",
    ] {
        assert!(Json::parse(text).is_err(), "accepted: {text}");
    }
}

// --- fuzz-ish round-trips --------------------------------------------------

/// A generated scalar and its TOML spelling.
fn render_scalar(kind: usize, number: f64, string_len: usize) -> (String, TomlValue) {
    match kind % 5 {
        0 => {
            let n = (number * 1e3) as i64;
            (format!("{n}"), TomlValue::Integer(n))
        }
        1 => (format!("{number:?}"), TomlValue::Float(number)),
        // Exponent spelling; `{:e}` output (e.g. `-3.25e-2`) parses back to
        // the same bits.
        2 => (format!("{number:e}"), TomlValue::Float(number)),
        3 => (format!("{}", number > 0.0), TomlValue::Bool(number > 0.0)),
        _ => {
            let s: String = "quoted #\\\" strings"
                .chars()
                .cycle()
                .take(string_len)
                .collect();
            let escaped = s.replace('\\', "\\\\").replace('"', "\\\"");
            (format!("\"{escaped}\""), TomlValue::String(s))
        }
    }
}

proptest! {
    /// Generated manifests — scalar values, nested numeric arrays, section
    /// tables, array-of-tables — parse back to exactly the structure they
    /// were rendered from.
    #[test]
    fn toml_round_trips_generated_manifests(
        entries in collection::vec(
            (0..5usize, -1.0e4..1.0e4f64, 1..18usize, 0..3usize),
            1..10,
        ),
        matrix in collection::vec(collection::vec(-1.0e3..1.0e3f64, 1..4), 1..4),
        sections in 0..3usize,
    ) {
        let mut text = String::new();
        // Root scalars.
        let mut expected_root = Vec::new();
        for (i, &(kind, number, string_len, comment)) in entries.iter().enumerate() {
            let (rendered, value) = render_scalar(kind, number, string_len);
            let suffix = match comment {
                0 => String::new(),
                1 => "   # trailing comment".to_string(),
                _ => "\t".to_string(),
            };
            text.push_str(&format!("key{i} = {rendered}{suffix}\n"));
            expected_root.push((format!("key{i}"), value));
        }
        // A nested numeric array (the `initial_set`-shaped payload).
        let rendered_rows: Vec<String> = matrix
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|x| format!("{x:?}")).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        text.push_str(&format!("matrix = [{}]\n", rendered_rows.join(", ")));
        // Sections and array-of-tables elements.
        for s in 0..sections {
            text.push_str(&format!("[section{s}]\ninner = {s}\n"));
            text.push_str(&format!("[[section{s}.rows]]\nid = {s}\n"));
        }

        let doc = toml::parse(&text).unwrap();
        for (key, value) in &expected_root {
            prop_assert_eq!(doc.get(key), Some(value), "key {} in\n{}", key, text);
        }
        let parsed_matrix = doc.get("matrix").unwrap().as_array().unwrap();
        prop_assert_eq!(parsed_matrix.len(), matrix.len());
        for (row, expected_row) in parsed_matrix.iter().zip(&matrix) {
            let cells = row.as_array().unwrap();
            prop_assert_eq!(cells.len(), expected_row.len());
            for (cell, expected_cell) in cells.iter().zip(expected_row) {
                prop_assert_eq!(
                    cell.as_f64().unwrap().to_bits(),
                    expected_cell.to_bits()
                );
            }
        }
        for s in 0..sections {
            let section = doc.get_table(&format!("section{s}")).unwrap();
            prop_assert_eq!(section.get_usize("inner"), Some(s));
            prop_assert_eq!(section.tables("rows")[0].get_usize("id"), Some(s));
        }
    }

    /// Generated JSON documents survive `to_string` → `parse` bit-exactly
    /// (the property the deterministic batch reports rely on).
    #[test]
    fn json_round_trips_generated_documents(
        numbers in collection::vec(-1.0e6..1.0e6f64, 1..12),
        strings in collection::vec(1..24usize, 0..4),
        nest in 0..4usize,
    ) {
        let mut fields: Vec<(String, Json)> = vec![
            ("numbers".to_string(), Json::numbers(&numbers)),
            ("exponent".to_string(), Json::Number(numbers[0] * 1e-9)),
            ("flag".to_string(), Json::Bool(numbers[0] > 0.0)),
            ("nothing".to_string(), Json::Null),
        ];
        for (i, len) in strings.iter().enumerate() {
            let s: String = "παν\"\\\n\tascii".chars().cycle().take(*len).collect();
            fields.push((format!("s{i}"), Json::String(s)));
        }
        let mut doc = Json::Object(fields);
        for _ in 0..nest {
            doc = Json::Array(vec![doc, Json::Number(numbers[0])]);
        }
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, doc, "text: {}", text);
    }
}
