//! The CMA-ES state and update equations.

use nncps_linalg::{Matrix, SymmetricEigen, Vector};
use nncps_parallel::{Budget, ExhaustionReason};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::CmaesParams;

/// Summary of one generation, recorded by [`CmaEs::optimize`] so callers can
/// plot training curves (Figure 4 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Generation {
    /// Generation index (0-based).
    pub index: usize,
    /// Best fitness in the generation.
    pub best_fitness: f64,
    /// Mean fitness of the generation.
    pub mean_fitness: f64,
    /// Step size σ after the update.
    pub sigma: f64,
}

/// Result of a full [`CmaEs::optimize`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationResult {
    /// Best candidate found across all generations.
    pub best_candidate: Vec<f64>,
    /// Fitness of the best candidate.
    pub best_fitness: f64,
    /// Number of generations executed.
    pub generations: usize,
    /// Total number of fitness evaluations.
    pub evaluations: usize,
    /// Per-generation history (best/mean fitness and step size).
    pub history: Vec<Generation>,
    /// Why the run stopped before its generation limit or fitness target,
    /// if a [`Budget`] attached via [`CmaEs::with_budget`] tripped; `None`
    /// for an ungoverned or untripped run.
    pub exhaustion: Option<ExhaustionReason>,
}

/// The `(μ/μ_w, λ)`-CMA-ES optimizer state.
///
/// See the [crate-level documentation](crate) for background and an example.
#[derive(Debug, Clone)]
pub struct CmaEs {
    params: CmaesParams,
    mean: Vector,
    sigma: f64,
    covariance: Matrix,
    path_sigma: Vector,
    path_c: Vector,
    /// Eigendecomposition of the covariance (refreshed lazily).
    eigen_basis: Matrix,
    eigen_scale: Vector,
    generation: usize,
    best_candidate: Option<(Vec<f64>, f64)>,
    budget: Budget,
}

impl CmaEs {
    /// Creates an optimizer centred at `initial_mean` with step size `sigma0`.
    ///
    /// # Panics
    ///
    /// Panics if the mean length does not match the parameter dimension or if
    /// `sigma0` is not strictly positive.
    pub fn new(initial_mean: Vec<f64>, sigma0: f64, params: CmaesParams) -> Self {
        assert_eq!(
            initial_mean.len(),
            params.dim(),
            "initial mean length must equal the search dimension"
        );
        assert!(sigma0 > 0.0, "initial step size must be positive");
        let n = params.dim();
        CmaEs {
            params,
            mean: Vector::from_vec(initial_mean),
            sigma: sigma0,
            covariance: Matrix::identity(n),
            path_sigma: Vector::zeros(n),
            path_c: Vector::zeros(n),
            eigen_basis: Matrix::identity(n),
            eigen_scale: Vector::filled(n, 1.0),
            generation: 0,
            best_candidate: None,
            budget: Budget::unlimited(),
        }
    }

    /// Attaches a resource [`Budget`] polled at every generation head of
    /// [`CmaEs::optimize`]/[`CmaEs::optimize_parallel`].
    ///
    /// A tripped budget (cancellation, expired deadline, or fuel exhausted
    /// by another governed stage) stops the run cooperatively between
    /// generations: the best candidate found so far is still returned and
    /// [`OptimizationResult::exhaustion`] records the machine-readable
    /// reason.  CMA-ES itself never consumes fuel — fuel is the δ-SAT
    /// solver's deterministic currency — so an untripped budget leaves the
    /// optimization path bit-identical to an ungoverned run.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The resource budget governing this optimizer.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The strategy parameters in use.
    pub fn params(&self) -> &CmaesParams {
        &self.params
    }

    /// Current distribution mean.
    pub fn mean(&self) -> &[f64] {
        self.mean.as_slice()
    }

    /// Current global step size σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Number of completed generations.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Best candidate and fitness seen so far, if any generation completed.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        self.best_candidate
            .as_ref()
            .map(|(x, f)| (x.as_slice(), *f))
    }

    /// Samples a population of `λ` candidate solutions.
    pub fn ask<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<Vec<f64>> {
        self.refresh_eigen();
        let n = self.params.dim();
        (0..self.params.population_size())
            .map(|_| {
                // x = m + sigma * B * (D .* z)
                let z = Vector::from_fn(n, |_| standard_normal(rng));
                let scaled = Vector::from_fn(n, |i| self.eigen_scale[i] * z[i]);
                let step = self.eigen_basis.mat_vec(&scaled);
                (0..n)
                    .map(|i| self.mean[i] + self.sigma * step[i])
                    .collect()
            })
            .collect()
    }

    /// Updates the search distribution from the evaluated population.
    ///
    /// `fitnesses[i]` must be the fitness (lower is better) of
    /// `candidates[i]` as returned by the preceding [`CmaEs::ask`] call.
    ///
    /// # Panics
    ///
    /// Panics if the numbers of candidates and fitnesses differ from the
    /// population size, or if any candidate has the wrong dimension.
    pub fn tell(&mut self, candidates: &[Vec<f64>], fitnesses: &[f64]) {
        let lambda = self.params.population_size();
        let n = self.params.dim();
        assert_eq!(candidates.len(), lambda, "candidate count mismatch");
        assert_eq!(fitnesses.len(), lambda, "fitness count mismatch");
        for c in candidates {
            assert_eq!(c.len(), n, "candidate dimension mismatch");
        }

        // Rank candidates by fitness (ascending: minimization).
        let mut order: Vec<usize> = (0..lambda).collect();
        order.sort_by(|&a, &b| {
            fitnesses[a]
                .partial_cmp(&fitnesses[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Track the best-ever candidate.
        let best_idx = order[0];
        let improved = self
            .best_candidate
            .as_ref()
            .is_none_or(|(_, f)| fitnesses[best_idx] < *f);
        if improved {
            self.best_candidate = Some((candidates[best_idx].clone(), fitnesses[best_idx]));
        }

        let mu = self.params.parent_count();
        let weights = self.params.weights().to_vec();
        let mu_eff = self.params.mu_eff();
        let old_mean = self.mean.clone();

        // Weighted recombination of the best mu candidates.
        let mut new_mean = Vector::zeros(n);
        for (k, &idx) in order.iter().take(mu).enumerate() {
            for i in 0..n {
                new_mean[i] += weights[k] * candidates[idx][i];
            }
        }

        // Mean displacement in "sigma units".
        let y_w = Vector::from_fn(n, |i| (new_mean[i] - old_mean[i]) / self.sigma);

        // --- Step-size path (CSA) -------------------------------------------------
        // p_sigma <- (1 - c_sigma) p_sigma + sqrt(c_sigma (2 - c_sigma) mu_eff) C^{-1/2} y_w
        self.refresh_eigen();
        let c_inv_sqrt_y = self.apply_inverse_sqrt(&y_w);
        let c_sigma = self.params.c_sigma();
        let coef = (c_sigma * (2.0 - c_sigma) * mu_eff).sqrt();
        for i in 0..n {
            self.path_sigma[i] = (1.0 - c_sigma) * self.path_sigma[i] + coef * c_inv_sqrt_y[i];
        }

        // Heaviside function used to stall the rank-1 update during fast
        // step-size increases.
        let expected_norm = self.params.chi_n();
        let path_norm = self.path_sigma.norm();
        let hsig_threshold = (1.4 + 2.0 / (n as f64 + 1.0))
            * expected_norm
            * (1.0 - (1.0 - c_sigma).powi(2 * (self.generation as i32 + 1))).sqrt();
        let hsig = if path_norm < hsig_threshold { 1.0 } else { 0.0 };

        // --- Covariance path ------------------------------------------------------
        let c_c = self.params.c_c();
        let coef_c = (c_c * (2.0 - c_c) * mu_eff).sqrt();
        for i in 0..n {
            self.path_c[i] = (1.0 - c_c) * self.path_c[i] + hsig * coef_c * y_w[i];
        }

        // --- Covariance matrix update (rank-1 + rank-mu) ---------------------------
        let c_1 = self.params.c_1();
        let c_mu = self.params.c_mu();
        let delta_hsig = (1.0 - hsig) * c_c * (2.0 - c_c);
        let mut new_cov = Matrix::from_fn(n, n, |i, j| {
            (1.0 - c_1 - c_mu) * self.covariance[(i, j)]
                + c_1 * (self.path_c[i] * self.path_c[j] + delta_hsig * self.covariance[(i, j)])
        });
        for (k, &idx) in order.iter().take(mu).enumerate() {
            let y_k = Vector::from_fn(n, |i| (candidates[idx][i] - old_mean[i]) / self.sigma);
            for i in 0..n {
                for j in 0..n {
                    new_cov[(i, j)] += c_mu * weights[k] * y_k[i] * y_k[j];
                }
            }
        }
        new_cov.symmetrize();
        self.covariance = new_cov;

        // --- Step-size update -------------------------------------------------------
        let d_sigma = self.params.d_sigma();
        self.sigma *= ((c_sigma / d_sigma) * (path_norm / expected_norm - 1.0)).exp();
        // Guard against numerical blow-up on pathological fitness landscapes.
        self.sigma = self.sigma.clamp(1e-12, 1e12);

        self.mean = new_mean;
        self.generation += 1;
        // Force an eigendecomposition refresh at the next ask().
        self.eigen_scale = Vector::zeros(0);
    }

    /// Runs ask/tell generations until the fitness target or the generation
    /// limit is reached, recording per-generation statistics.
    pub fn optimize<F, R>(
        &mut self,
        mut fitness: F,
        max_generations: usize,
        target_fitness: f64,
        rng: &mut R,
    ) -> OptimizationResult
    where
        F: FnMut(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        self.optimize_with(
            |candidates| candidates.iter().map(|c| fitness(c)).collect(),
            max_generations,
            target_fitness,
            rng,
        )
    }

    /// Like [`CmaEs::optimize`], but evaluates each generation's population
    /// on up to `threads` worker threads (`0` = one per available core).
    ///
    /// Fitness evaluation dominates the cost of policy search when each
    /// evaluation is a closed-loop rollout (the paper's Figure 4 training),
    /// and the λ evaluations within a generation are independent.  The
    /// fitness function must therefore be `Fn + Sync` rather than `FnMut`;
    /// sampling and the distribution update stay on the calling thread, so
    /// the optimization path is identical to the sequential one for every
    /// thread count.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_cmaes::{seeded_rng, CmaEs, CmaesParams};
    ///
    /// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
    /// let mut rng = seeded_rng(42);
    /// let mut cma = CmaEs::new(vec![2.0; 3], 0.8, CmaesParams::new(3));
    /// // threads = 0: one worker per available core.
    /// let result = cma.optimize_parallel(sphere, 80, 1e-10, &mut rng, 0);
    /// assert!(result.best_fitness < 1e-6);
    /// ```
    pub fn optimize_parallel<F, R>(
        &mut self,
        fitness: F,
        max_generations: usize,
        target_fitness: f64,
        rng: &mut R,
        threads: usize,
    ) -> OptimizationResult
    where
        F: Fn(&[f64]) -> f64 + Sync,
        R: Rng + ?Sized,
    {
        self.optimize_with(
            |candidates| evaluate_population(&fitness, candidates, threads),
            max_generations,
            target_fitness,
            rng,
        )
    }

    /// The shared ask/evaluate/tell driver behind [`CmaEs::optimize`] and
    /// [`CmaEs::optimize_parallel`]: `evaluate` maps a population to its
    /// fitness vector (in candidate order).
    fn optimize_with<E, R>(
        &mut self,
        mut evaluate: E,
        max_generations: usize,
        target_fitness: f64,
        rng: &mut R,
    ) -> OptimizationResult
    where
        E: FnMut(&[Vec<f64>]) -> Vec<f64>,
        R: Rng + ?Sized,
    {
        let mut history = Vec::new();
        let mut evaluations = 0usize;
        let mut exhaustion = None;
        for g in 0..max_generations {
            if let Some(reason) = self.budget.check() {
                exhaustion = Some(reason);
                break;
            }
            let candidates = self.ask(rng);
            let fitnesses = evaluate(&candidates);
            evaluations += fitnesses.len();
            self.tell(&candidates, &fitnesses);
            let best = fitnesses.iter().copied().fold(f64::INFINITY, f64::min);
            let mean = fitnesses.iter().sum::<f64>() / fitnesses.len() as f64;
            history.push(Generation {
                index: g,
                best_fitness: best,
                mean_fitness: mean,
                sigma: self.sigma,
            });
            if best <= target_fitness {
                break;
            }
        }
        let (best_candidate, best_fitness) = self
            .best_candidate
            .clone()
            .unwrap_or((self.mean.as_slice().to_vec(), f64::INFINITY));
        OptimizationResult {
            best_candidate,
            best_fitness,
            generations: history.len(),
            evaluations,
            history,
            exhaustion,
        }
    }

    /// Refreshes the cached eigendecomposition of the covariance matrix.
    fn refresh_eigen(&mut self) {
        if self.eigen_scale.len() == self.params.dim() {
            return;
        }
        let eig = SymmetricEigen::new(&self.covariance)
            .expect("covariance matrix eigendecomposition failed");
        let n = self.params.dim();
        self.eigen_basis = eig.eigenvectors().clone();
        self.eigen_scale = Vector::from_fn(n, |i| eig.eigenvalues()[i].max(1e-20).sqrt());
    }

    /// Applies `C^{-1/2}` to a vector using the cached eigendecomposition.
    fn apply_inverse_sqrt(&self, v: &Vector) -> Vector {
        let n = self.params.dim();
        // C^{-1/2} v = B D^{-1} B^T v
        let bt_v = self.eigen_basis.vec_mat(v);
        let scaled = Vector::from_fn(n, |i| bt_v[i] / self.eigen_scale[i]);
        self.eigen_basis.mat_vec(&scaled)
    }
}

/// Evaluates `fitness` on every candidate using up to `threads` worker
/// threads (`0` = one per available core), preserving candidate order.
///
/// The result is identical to `candidates.iter().map(|c| fitness(c))` for
/// every thread count; without the `parallel` feature it runs sequentially.
pub fn evaluate_population<F>(fitness: &F, candidates: &[Vec<f64>], threads: usize) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    nncps_parallel::parallel_map(candidates, threads, |c| fitness(c))
}

/// Creates a deterministic RNG for reproducible experiments.
///
/// This is a small convenience re-export so downstream crates (training
/// environments, benchmarks) do not need to depend on `rand_chacha` directly.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    use rand::SeedableRng;
    ChaCha8Rng::seed_from_u64(seed)
}

/// Samples a standard normal variate via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn rosenbrock(x: &[f64]) -> f64 {
        x.windows(2)
            .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
            .sum()
    }

    #[test]
    fn ask_produces_population_of_right_shape() {
        let mut rng = seeded_rng(1);
        let params = CmaesParams::new(3);
        let mut cma = CmaEs::new(vec![0.0; 3], 0.5, params.clone());
        let pop = cma.ask(&mut rng);
        assert_eq!(pop.len(), params.population_size());
        assert!(pop.iter().all(|c| c.len() == 3));
        assert_eq!(cma.generation(), 0);
        assert!(cma.best().is_none());
        assert_eq!(cma.params().dim(), 3);
    }

    #[test]
    fn sphere_function_converges() {
        let mut rng = seeded_rng(7);
        let params = CmaesParams::new(5);
        let mut cma = CmaEs::new(vec![3.0; 5], 1.0, params);
        let result = cma.optimize(sphere, 300, 1e-12, &mut rng);
        assert!(
            result.best_fitness < 1e-9,
            "did not converge: {}",
            result.best_fitness
        );
        assert!(result.best_candidate.iter().all(|x| x.abs() < 1e-3));
        assert!(result.evaluations > 0);
        assert_eq!(result.history.len(), result.generations);
    }

    #[test]
    fn rosenbrock_in_low_dimension_converges() {
        let mut rng = seeded_rng(11);
        let params = CmaesParams::new(4).with_population_size(20);
        let mut cma = CmaEs::new(vec![0.0; 4], 0.5, params);
        let result = cma.optimize(rosenbrock, 600, 1e-10, &mut rng);
        assert!(
            result.best_fitness < 1e-6,
            "rosenbrock fitness {}",
            result.best_fitness
        );
        for x in &result.best_candidate {
            assert!((x - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn shifted_ellipsoid_converges_to_shift() {
        let target = [1.5, -2.0, 0.5];
        let f = |x: &[f64]| {
            x.iter()
                .zip(target.iter())
                .enumerate()
                .map(|(i, (xi, ti))| 10f64.powi(i as i32) * (xi - ti).powi(2))
                .sum::<f64>()
        };
        let mut rng = seeded_rng(23);
        let mut cma = CmaEs::new(vec![0.0; 3], 1.0, CmaesParams::new(3));
        let result = cma.optimize(f, 400, 1e-14, &mut rng);
        for (x, t) in result.best_candidate.iter().zip(target.iter()) {
            assert!((x - t).abs() < 1e-3, "{x} vs {t}");
        }
    }

    #[test]
    fn cancelled_budget_stops_before_the_first_generation() {
        let budget = Budget::unlimited();
        budget.cancel();
        let mut rng = seeded_rng(5);
        let mut cma = CmaEs::new(vec![3.0; 3], 1.0, CmaesParams::new(3)).with_budget(budget);
        let result = cma.optimize(sphere, 100, 1e-12, &mut rng);
        assert_eq!(result.generations, 0);
        assert_eq!(result.evaluations, 0);
        assert_eq!(result.exhaustion, Some(ExhaustionReason::Cancelled));
        assert!(cma.budget().is_cancelled());
    }

    #[test]
    fn untripped_budget_leaves_the_run_identical() {
        let governed = {
            let mut rng = seeded_rng(7);
            let mut cma = CmaEs::new(vec![3.0; 5], 1.0, CmaesParams::new(5))
                .with_budget(Budget::unlimited().with_fuel(u64::MAX / 2));
            cma.optimize(sphere, 60, 1e-12, &mut rng)
        };
        let ungoverned = {
            let mut rng = seeded_rng(7);
            let mut cma = CmaEs::new(vec![3.0; 5], 1.0, CmaesParams::new(5));
            cma.optimize(sphere, 60, 1e-12, &mut rng)
        };
        assert_eq!(governed, ungoverned);
        assert_eq!(governed.exhaustion, None);
    }

    #[test]
    fn mid_run_cancellation_keeps_the_best_so_far() {
        // Run 3 generations, cancel the shared budget, resume: the resumed
        // run must stop at its first poll with the prior best intact.
        let budget = Budget::unlimited();
        let mut cma =
            CmaEs::new(vec![3.0; 3], 1.0, CmaesParams::new(3)).with_budget(budget.clone());
        let mut rng = seeded_rng(9);
        let warmup = cma.optimize(sphere, 3, f64::NEG_INFINITY, &mut rng);
        assert_eq!(warmup.generations, 3);
        budget.cancel();
        let resumed = cma.optimize(sphere, 100, f64::NEG_INFINITY, &mut rng);
        assert_eq!(resumed.generations, 0);
        assert_eq!(resumed.exhaustion, Some(ExhaustionReason::Cancelled));
        assert_eq!(resumed.best_fitness, warmup.best_fitness);
        assert_eq!(resumed.best_candidate, warmup.best_candidate);
    }

    #[test]
    fn fitness_history_is_overall_decreasing() {
        let mut rng = seeded_rng(3);
        let mut cma = CmaEs::new(vec![5.0; 4], 1.0, CmaesParams::new(4));
        let result = cma.optimize(sphere, 100, 0.0, &mut rng);
        let first = result.history.first().unwrap().best_fitness;
        let last = result.history.last().unwrap().best_fitness;
        assert!(last < first);
        // Sigma adapts and stays positive.
        assert!(result.history.iter().all(|g| g.sigma > 0.0));
        assert!(result
            .history
            .iter()
            .all(|g| g.mean_fitness >= g.best_fitness));
    }

    #[test]
    fn ask_tell_roundtrip_updates_state() {
        let mut rng = seeded_rng(5);
        let mut cma = CmaEs::new(vec![1.0, 1.0], 0.3, CmaesParams::new(2));
        let before_mean = cma.mean().to_vec();
        let pop = cma.ask(&mut rng);
        let fit: Vec<f64> = pop.iter().map(|c| sphere(c)).collect();
        cma.tell(&pop, &fit);
        assert_eq!(cma.generation(), 1);
        assert!(cma.best().is_some());
        assert_ne!(cma.mean().to_vec(), before_mean);
        assert!(cma.sigma() > 0.0);
    }

    #[test]
    fn parallel_optimize_matches_sequential_exactly() {
        let run = |threads: Option<usize>| {
            let mut rng = seeded_rng(13);
            let mut cma = CmaEs::new(vec![2.0; 4], 0.8, CmaesParams::new(4));
            match threads {
                None => cma.optimize(sphere, 40, 1e-12, &mut rng),
                Some(t) => cma.optimize_parallel(sphere, 40, 1e-12, &mut rng, t),
            }
        };
        let sequential = run(None);
        for threads in [1, 2, 0] {
            let parallel = run(Some(threads));
            assert_eq!(parallel.best_candidate, sequential.best_candidate);
            assert_eq!(parallel.best_fitness, sequential.best_fitness);
            assert_eq!(parallel.history, sequential.history);
        }
    }

    #[test]
    fn evaluate_population_preserves_order() {
        let candidates: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64, -(i as f64)]).collect();
        let expected: Vec<f64> = candidates.iter().map(|c| sphere(c)).collect();
        assert_eq!(evaluate_population(&sphere, &candidates, 0), expected);
        assert_eq!(evaluate_population(&sphere, &candidates, 3), expected);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = |seed: u64| {
            let mut rng = seeded_rng(seed);
            let mut cma = CmaEs::new(vec![2.0; 3], 0.7, CmaesParams::new(3));
            cma.optimize(sphere, 50, 0.0, &mut rng).best_fitness
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    #[should_panic(expected = "initial mean length")]
    fn wrong_mean_length_panics() {
        let _ = CmaEs::new(vec![0.0; 2], 1.0, CmaesParams::new(3));
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn non_positive_sigma_panics() {
        let _ = CmaEs::new(vec![0.0; 2], 0.0, CmaesParams::new(2));
    }

    #[test]
    #[should_panic(expected = "candidate count mismatch")]
    fn tell_with_wrong_population_panics() {
        let mut cma = CmaEs::new(vec![0.0; 2], 1.0, CmaesParams::new(2));
        cma.tell(&[vec![0.0, 0.0]], &[1.0]);
    }
}
