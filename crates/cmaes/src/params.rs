//! Strategy parameters for CMA-ES.

/// Strategy parameters of the `(μ/μ_w, λ)`-CMA-ES.
///
/// The defaults follow Hansen's standard recommendations and depend only on
/// the search-space dimension `n`:
///
/// * population size `λ = 4 + ⌊3 ln n⌋`,
/// * parent number `μ = ⌊λ/2⌋` with logarithmically decreasing weights,
/// * standard learning rates for step-size and covariance adaptation.
///
/// The paper's policy search uses a much larger population (152 individuals);
/// use [`CmaesParams::with_population_size`] to reproduce that setting.
///
/// # Examples
///
/// ```
/// use nncps_cmaes::CmaesParams;
///
/// let params = CmaesParams::new(41).with_population_size(152);
/// assert_eq!(params.population_size(), 152);
/// assert_eq!(params.parent_count(), 76);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CmaesParams {
    dim: usize,
    lambda: usize,
    mu: usize,
    weights: Vec<f64>,
    mu_eff: f64,
    c_sigma: f64,
    d_sigma: f64,
    c_c: f64,
    c_1: f64,
    c_mu: f64,
    chi_n: f64,
}

impl CmaesParams {
    /// Creates the default strategy parameters for an `dim`-dimensional search.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "search dimension must be positive");
        let lambda = 4 + (3.0 * (dim as f64).ln()).floor() as usize;
        Self::with_dim_and_lambda(dim, lambda)
    }

    /// Overrides the population size `λ` (and recomputes the dependent
    /// quantities).
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 2`.
    pub fn with_population_size(self, lambda: usize) -> Self {
        Self::with_dim_and_lambda(self.dim, lambda)
    }

    fn with_dim_and_lambda(dim: usize, lambda: usize) -> Self {
        assert!(lambda >= 2, "population size must be at least 2");
        let n = dim as f64;
        let mu = lambda / 2;
        // Logarithmic recombination weights for the best mu individuals.
        let raw: Vec<f64> = (0..mu)
            .map(|i| ((lambda as f64 + 1.0) / 2.0).ln() - ((i + 1) as f64).ln())
            .collect();
        let sum: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / sum).collect();
        let mu_eff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();

        let c_sigma = (mu_eff + 2.0) / (n + mu_eff + 5.0);
        let d_sigma =
            1.0 + 2.0 * (0.0_f64).max(((mu_eff - 1.0) / (n + 1.0)).sqrt() - 1.0) + c_sigma;
        let c_c = (4.0 + mu_eff / n) / (n + 4.0 + 2.0 * mu_eff / n);
        let c_1 = 2.0 / ((n + 1.3).powi(2) + mu_eff);
        let c_mu =
            (1.0 - c_1).min(2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((n + 2.0).powi(2) + mu_eff));
        let chi_n = n.sqrt() * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));

        CmaesParams {
            dim,
            lambda,
            mu,
            weights,
            mu_eff,
            c_sigma,
            d_sigma,
            c_c,
            c_1,
            c_mu,
            chi_n,
        }
    }

    /// Search-space dimension `n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Population size `λ`.
    pub fn population_size(&self) -> usize {
        self.lambda
    }

    /// Number of parents `μ` used for recombination.
    pub fn parent_count(&self) -> usize {
        self.mu
    }

    /// Recombination weights (length `μ`, sum 1, decreasing).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Variance-effective selection mass `μ_eff`.
    pub fn mu_eff(&self) -> f64 {
        self.mu_eff
    }

    /// Learning rate for the step-size evolution path.
    pub fn c_sigma(&self) -> f64 {
        self.c_sigma
    }

    /// Damping for the step-size update.
    pub fn d_sigma(&self) -> f64 {
        self.d_sigma
    }

    /// Learning rate for the covariance evolution path.
    pub fn c_c(&self) -> f64 {
        self.c_c
    }

    /// Rank-1 covariance learning rate.
    pub fn c_1(&self) -> f64 {
        self.c_1
    }

    /// Rank-μ covariance learning rate.
    pub fn c_mu(&self) -> f64 {
        self.c_mu
    }

    /// Expected norm of an `n`-dimensional standard normal vector.
    pub fn chi_n(&self) -> f64 {
        self.chi_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_population_size_follows_hansen_formula() {
        assert_eq!(CmaesParams::new(2).population_size(), 4 + 2);
        assert_eq!(CmaesParams::new(10).population_size(), 4 + 6);
        assert_eq!(CmaesParams::new(100).population_size(), 4 + 13);
    }

    #[test]
    fn weights_are_normalized_and_decreasing() {
        let p = CmaesParams::new(20);
        let w = p.weights();
        assert_eq!(w.len(), p.parent_count());
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(p.mu_eff() > 1.0 && p.mu_eff() <= p.parent_count() as f64 + 1e-9);
    }

    #[test]
    fn learning_rates_are_in_unit_interval() {
        for dim in [2usize, 10, 41, 401] {
            let p = CmaesParams::new(dim);
            assert!(p.c_sigma() > 0.0 && p.c_sigma() < 1.0);
            assert!(p.c_c() > 0.0 && p.c_c() < 1.0);
            assert!(p.c_1() > 0.0 && p.c_1() < 1.0);
            assert!(p.c_mu() >= 0.0 && p.c_mu() < 1.0);
            assert!(p.c_1() + p.c_mu() <= 1.0 + 1e-12);
            assert!(p.d_sigma() >= 1.0);
            assert!(p.chi_n() > 0.0);
        }
    }

    #[test]
    fn population_override_recomputes_parents() {
        let p = CmaesParams::new(41).with_population_size(152);
        assert_eq!(p.population_size(), 152);
        assert_eq!(p.parent_count(), 76);
        assert_eq!(p.dim(), 41);
        assert_eq!(p.weights().len(), 76);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dimension_panics() {
        let _ = CmaesParams::new(0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_panics() {
        let _ = CmaesParams::new(3).with_population_size(1);
    }
}
