//! Covariance Matrix Adaptation Evolution Strategy (CMA-ES).
//!
//! The paper trains its neural-network controller with a *direct policy
//! search* variant of reinforcement learning driven by CMA-ES
//! (Hansen & Ostermeier 2001; Igel 2003): the flattened network parameters
//! are the search variables and the simulation cost `J` of a closed-loop
//! rollout is the fitness.  This crate provides a from-scratch implementation
//! of the standard `(μ/μ_w, λ)`-CMA-ES:
//!
//! * weighted recombination of the best `μ` of `λ` sampled candidates,
//! * cumulative step-size adaptation (CSA) of the global step size `σ`,
//! * rank-1 and rank-μ covariance matrix updates, and
//! * eigendecomposition-based sampling (`x = m + σ · B D z`).
//!
//! The optimizer exposes the conventional *ask/tell* interface
//! ([`CmaEs::ask`] / [`CmaEs::tell`]) plus a convenience driver
//! ([`CmaEs::optimize`]) used by the training environment in the Dubins-car
//! case study.
//!
//! # Examples
//!
//! ```
//! use nncps_cmaes::{CmaEs, CmaesParams};
//! use rand::SeedableRng;
//!
//! // Minimize the sphere function in 4 dimensions.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let params = CmaesParams::new(4).with_population_size(12);
//! let mut cma = CmaEs::new(vec![2.0; 4], 1.0, params);
//! let result = cma.optimize(|x| x.iter().map(|v| v * v).sum(), 200, 1e-10, &mut rng);
//! assert!(result.best_fitness < 1e-8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod optimizer;
mod params;

pub use optimizer::{evaluate_population, seeded_rng, CmaEs, Generation, OptimizationResult};
pub use params::CmaesParams;
// Governance vocabulary for `CmaEs::with_budget` and
// `OptimizationResult::exhaustion`.
pub use nncps_parallel::{Budget, ExhaustionReason};
