//! The paper's case study: a Dubins car following a path under NN control.
//!
//! Section 4 of the paper evaluates the barrier-certificate procedure on a
//! kinematic Dubins car whose steering command is produced by a feedforward
//! neural network trained with CMA-ES policy search.  This crate contains
//! every ingredient of that case study:
//!
//! * [`DubinsCar`] — the kinematic model `ẋ = V sin θ`, `ẏ = V cos θ`,
//!   `θ̇ = u` (the paper measures the heading clockwise from the +y axis),
//! * [`Path`] / [`PathErrors`] — piecewise-linear target paths and the
//!   distance/angle error computation of Section 4.1.2,
//! * [`ErrorDynamics`] — the closed-loop error dynamics in `(d_err, θ_err)`
//!   coordinates for a straight-line path (Section 4.1.3/4.1.4), with both
//!   numeric evaluation and symbolic export for the verifier,
//! * [`TrainingEnv`] / [`train_controller`] — the CMA-ES direct policy search
//!   with the paper's quadratic cost (Section 4.2), used to regenerate the
//!   training-evolution figure.
//!
//! # Examples
//!
//! ```
//! use nncps_dubins::{ErrorDynamics, Path};
//! use nncps_nn::FeedforwardNetwork;
//! use nncps_sim::Dynamics;
//!
//! // A zero controller drives straight; the error dynamics are still defined.
//! let network = FeedforwardNetwork::paper_architecture(4);
//! let dynamics = ErrorDynamics::new(network, 1.0);
//! let dx = dynamics.derivative(&[0.5, 0.1]);
//! assert!((dx[0] - 0.1_f64.sin()).abs() < 1e-12); // d_err' = V sin(theta_err)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod car;
mod error_dynamics;
mod path;
mod reference;
mod training;

pub use car::{DubinsCar, Pose};
pub use error_dynamics::ErrorDynamics;
pub use path::{Path, PathErrors};
pub use reference::{reference_controller, REFERENCE_DISTANCE_GAIN, REFERENCE_HEADING_GAIN};
pub use training::{train_controller, TrainingEnv, TrainingOptions, TrainingOutcome};
