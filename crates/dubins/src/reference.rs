//! Deterministically constructed reference controllers of arbitrary width.
//!
//! Table 1 of the paper evaluates the verification procedure on "a number of
//! different versions of the NN controller", one per hidden-layer width from
//! 10 to 1000 neurons.  The paper's controllers were obtained by separate
//! CMA-ES training runs; since the trained weights are not published, this
//! module provides a *deterministic substitute*: a family of controllers that
//!
//! * share the paper's architecture (`2 → Nh tanh → 1 tanh`),
//! * implement a well-behaved path-following law
//!   `u ≈ tanh(k_d · d_err + k_θ · θ_err)` distributed across the `Nh` hidden
//!   neurons with small per-neuron variations (so the neurons are genuinely
//!   distinct and the verification queries grow with `Nh`), and
//! * are amenable to barrier-certificate verification for every width, which
//!   is what the scaling experiment needs.
//!
//! The substitution is recorded in `DESIGN.md`: it preserves the quantity the
//! experiment measures (how solver effort scales with network size) without
//! requiring hours of policy-search training per table row.

use nncps_linalg::{Matrix, Vector};
use nncps_nn::{network_from_weights, Activation, FeedforwardNetwork};

/// Nominal distance gain of the reference law.
pub const REFERENCE_DISTANCE_GAIN: f64 = 0.3;

/// Nominal heading gain of the reference law.
pub const REFERENCE_HEADING_GAIN: f64 = 1.5;

/// Builds the reference path-following controller with `hidden_neurons`
/// neurons in the hidden layer.
///
/// Every hidden neuron `i` computes `tanh(s_i (k_d d_err + k_θ θ_err))` with a
/// gain perturbation `s_i ∈ [0.85, 1.15]`, and the output layer averages the
/// neurons with weights `1 / (s_i Nh)` so the aggregate control law stays
/// close to `tanh(k_d d_err + k_θ θ_err)` for every width.
///
/// # Panics
///
/// Panics if `hidden_neurons` is zero.
///
/// # Examples
///
/// ```
/// use nncps_dubins::reference_controller;
///
/// let small = reference_controller(10);
/// let large = reference_controller(200);
/// assert_eq!(small.num_params(), 41);
/// assert_eq!(large.num_params(), 801);
/// // Different widths implement nearly the same control law.
/// let a = small.forward(&[1.0, -0.2])[0];
/// let b = large.forward(&[1.0, -0.2])[0];
/// assert!((a - b).abs() < 0.05);
/// ```
pub fn reference_controller(hidden_neurons: usize) -> FeedforwardNetwork {
    assert!(hidden_neurons > 0, "need at least one hidden neuron");
    let nh = hidden_neurons;
    let mut hidden_weights = Matrix::zeros(nh, 2);
    let hidden_biases = Vector::zeros(nh);
    let mut output_weights = Matrix::zeros(1, nh);
    for i in 0..nh {
        // Deterministic per-neuron perturbation in [0.85, 1.15].
        let phase = (i as f64 + 1.0) * 2.399_963; // golden-angle spacing
        let scale = 1.0 + 0.15 * phase.sin();
        hidden_weights[(i, 0)] = REFERENCE_DISTANCE_GAIN * scale;
        hidden_weights[(i, 1)] = REFERENCE_HEADING_GAIN * scale;
        // Compensate in the read-out so the aggregate stays near the nominal
        // law: for small pre-activations tanh(s z)/s ≈ z.
        output_weights[(0, i)] = 1.0 / (scale * nh as f64);
    }
    network_from_weights(
        2,
        vec![
            (hidden_weights, hidden_biases, Activation::Tanh),
            (output_weights, Vector::zeros(1), Activation::Tanh),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorDynamics;
    use nncps_sim::{Dynamics, Integrator, Simulator};

    #[test]
    fn parameter_count_matches_paper_formula() {
        for nh in [1usize, 10, 70, 300, 1000] {
            let c = reference_controller(nh);
            assert_eq!(c.num_params(), 4 * nh + 1);
        }
    }

    #[test]
    fn control_law_is_consistent_across_widths() {
        let widths = [10usize, 50, 200];
        let probes = [
            [0.0, 0.0],
            [2.0, 0.5],
            [-3.0, -1.0],
            [5.0, 1.5],
            [1.0, -0.3],
        ];
        let baseline = reference_controller(widths[0]);
        for &w in &widths[1..] {
            let other = reference_controller(w);
            for p in &probes {
                let a = baseline.forward(p)[0];
                let b = other.forward(p)[0];
                assert!((a - b).abs() < 0.1, "width {w} at {p:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn controller_steers_toward_the_path() {
        let c = reference_controller(20);
        // Left of the path (positive distance error): steer so theta_err
        // becomes negative (u > 0 makes theta_err decrease).
        assert!(c.forward(&[2.0, 0.0])[0] > 0.0);
        // Right of the path: opposite sign.
        assert!(c.forward(&[-2.0, 0.0])[0] < 0.0);
        // Aligned and on the path: no steering.
        assert!(c.forward(&[0.0, 0.0])[0].abs() < 1e-12);
    }

    #[test]
    fn closed_loop_converges_to_the_path_from_the_initial_set() {
        let dynamics = ErrorDynamics::new(reference_controller(30), 1.0);
        let sim = Simulator::new(Integrator::RungeKutta4, 0.02, 30.0);
        for &x0 in &[[1.0, 0.19], [-1.0, -0.19], [0.8, -0.15], [-0.5, 0.1]] {
            let trace = sim.simulate(&dynamics, &x0);
            let end = trace.final_state();
            assert!(
                end[0].abs() < 0.05 && end[1].abs() < 0.05,
                "did not converge from {x0:?}: {end:?}"
            );
            // The trajectory never comes close to the unsafe set.
            assert!(trace.max_abs_component(0).unwrap() < 5.0);
            assert!(trace.max_abs_component(1).unwrap() < 1.5);
        }
    }

    #[test]
    fn closed_loop_remains_well_behaved_from_extreme_domain_states() {
        // States far from X0 (but inside the domain of interest) also flow
        // toward the path — the property the decrease condition needs.
        let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
        for &state in &[[5.0, -1.5], [-5.0, 1.5], [4.0, 1.0], [-4.0, -1.2]] {
            let dx = dynamics.derivative(&state);
            // Moving toward the path: d_err and its derivative have opposite
            // signs whenever the heading points the right way.
            if state[0] > 0.0 {
                assert!(dx[0] <= 0.0 || state[1] > 0.0);
            }
            assert!(dx.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one hidden neuron")]
    fn zero_width_panics() {
        let _ = reference_controller(0);
    }
}
