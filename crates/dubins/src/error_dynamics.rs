//! Closed-loop error dynamics in `(d_err, θ_err)` coordinates.

use nncps_expr::Expr;
use nncps_nn::FeedforwardNetwork;
use nncps_sim::{Dynamics, ExprDynamics, SymbolicDynamics};

/// The closed-loop error dynamics of Section 4.1.3–4.1.4.
///
/// For a straight-line target path with constant orientation `θ_r` the
/// path-following errors evolve as
///
/// ```text
/// ḋ_err = −V sin(θ_r − θ_err) cos θ_r + V cos(θ_r − θ_err) sin θ_r
/// θ̇_err = −u,            u = h(d_err, θ_err)
/// ```
///
/// where `h` is the neural-network controller.  (Trigonometric identities
/// collapse the first equation to `V sin θ_err`, but the unsimplified form is
/// kept in the symbolic export so the verified model matches the paper's
/// presentation term by term.)
///
/// The state ordering is `x0 = d_err`, `x1 = θ_err`, matching the variable
/// indices used in all verification queries.
///
/// # Examples
///
/// ```
/// use nncps_dubins::ErrorDynamics;
/// use nncps_nn::FeedforwardNetwork;
/// use nncps_sim::Dynamics;
///
/// let controller = FeedforwardNetwork::paper_architecture(8);
/// let dynamics = ErrorDynamics::new(controller, 1.0);
/// assert_eq!(dynamics.dim(), 2);
/// let dx = dynamics.derivative(&[0.0, 0.2]);
/// assert!((dx[0] - 0.2_f64.sin()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ErrorDynamics {
    controller: FeedforwardNetwork,
    speed: f64,
    path_angle: f64,
}

impl ErrorDynamics {
    /// Creates the closed-loop error dynamics for a straight path with
    /// orientation `θ_r = 0` (the configuration used in the paper's
    /// verification experiments) and vehicle speed `speed`.
    ///
    /// # Panics
    ///
    /// Panics if the controller does not map 2 inputs to 1 output, or the
    /// speed is not strictly positive.
    pub fn new(controller: FeedforwardNetwork, speed: f64) -> Self {
        Self::with_path_angle(controller, speed, 0.0)
    }

    /// Creates the error dynamics for a straight path with an arbitrary
    /// constant orientation `path_angle` (radians, clockwise from +y).
    ///
    /// # Panics
    ///
    /// Panics if the controller does not map 2 inputs to 1 output, or the
    /// speed is not strictly positive.
    pub fn with_path_angle(controller: FeedforwardNetwork, speed: f64, path_angle: f64) -> Self {
        assert_eq!(
            controller.input_dim(),
            2,
            "controller must take (d_err, theta_err) as inputs"
        );
        assert_eq!(
            controller.output_dim(),
            1,
            "controller must produce a single steering output"
        );
        assert!(speed > 0.0, "vehicle speed must be positive");
        ErrorDynamics {
            controller,
            speed,
            path_angle,
        }
    }

    /// The neural-network controller in the loop.
    pub fn controller(&self) -> &FeedforwardNetwork {
        &self.controller
    }

    /// The constant vehicle speed `V`.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The constant path orientation `θ_r`.
    pub fn path_angle(&self) -> f64 {
        self.path_angle
    }

    /// Evaluates the controller output `u = h(d_err, θ_err)`.
    pub fn steering(&self, d_err: f64, theta_err: f64) -> f64 {
        self.controller.forward(&[d_err, theta_err])[0]
    }

    /// Exports the closed-loop vector field symbolically, with variables
    /// `x0 = d_err` and `x1 = θ_err`.
    ///
    /// This is the `f(x)` that appears inside the δ-SAT queries; because it is
    /// produced from the same network weights as [`ErrorDynamics::derivative`]
    /// the simulated and verified models coincide.
    pub fn symbolic_vector_field(&self) -> Vec<Expr> {
        let d_err = Expr::var(0);
        let theta_err = Expr::var(1);
        let theta_r = Expr::constant(self.path_angle);
        let v = Expr::constant(self.speed);
        // ḋ_err = -V sin(θr - θerr) cos(θr) + V cos(θr - θerr) sin(θr)
        let angle = theta_r.clone() - theta_err.clone();
        let d_dot = Expr::constant(-1.0) * v.clone() * angle.clone().sin() * theta_r.clone().cos()
            + v * angle.cos() * theta_r.sin();
        // θ̇_err = -u
        let u = self
            .controller
            .forward_symbolic(&[d_err, theta_err])
            .remove(0);
        let theta_dot = -u;
        vec![d_dot.simplified(), theta_dot.simplified()]
    }

    /// Wraps the symbolic vector field into simulatable [`ExprDynamics`].
    pub fn to_expr_dynamics(&self) -> ExprDynamics {
        ExprDynamics::new(self.symbolic_vector_field())
    }
}

impl SymbolicDynamics for ErrorDynamics {
    fn symbolic_vector_field(&self) -> Vec<Expr> {
        ErrorDynamics::symbolic_vector_field(self)
    }
}

impl Dynamics for ErrorDynamics {
    fn dim(&self) -> usize {
        2
    }

    fn derivative(&self, state: &[f64]) -> Vec<f64> {
        let theta_err = state[1];
        let u = self.steering(state[0], theta_err);
        let angle = self.path_angle - theta_err;
        let d_dot = -self.speed * angle.sin() * self.path_angle.cos()
            + self.speed * angle.cos() * self.path_angle.sin();
        vec![d_dot, -u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncps_cmaes::seeded_rng;
    use nncps_nn::{Activation, FeedforwardNetwork};
    use nncps_sim::{Integrator, Simulator};

    fn random_controller(hidden: usize, seed: u64) -> FeedforwardNetwork {
        let mut rng = seeded_rng(seed);
        FeedforwardNetwork::builder(2)
            .layer(hidden, Activation::Tanh)
            .layer(1, Activation::Tanh)
            .build_random(&mut rng, 0.8)
    }

    #[test]
    fn derivative_reduces_to_v_sin_theta_err_for_zero_path_angle() {
        let dynamics = ErrorDynamics::new(random_controller(6, 1), 2.0);
        for &theta_err in &[-0.7, -0.1, 0.0, 0.3, 1.2] {
            let dx = dynamics.derivative(&[0.4, theta_err]);
            assert!(
                (dx[0] - 2.0 * theta_err.sin()).abs() < 1e-12,
                "theta_err = {theta_err}"
            );
        }
    }

    #[test]
    fn theta_err_rate_is_negated_controller_output() {
        let dynamics = ErrorDynamics::new(random_controller(6, 2), 1.0);
        let state = [0.3, -0.2];
        let u = dynamics.steering(state[0], state[1]);
        let dx = dynamics.derivative(&state);
        assert!((dx[1] + u).abs() < 1e-12);
    }

    #[test]
    fn symbolic_and_numeric_vector_fields_agree() {
        let dynamics = ErrorDynamics::with_path_angle(random_controller(10, 3), 1.5, 0.4);
        let field = dynamics.symbolic_vector_field();
        assert_eq!(field.len(), 2);
        for &state in &[[0.0, 0.0], [0.5, -0.3], [-1.2, 0.7], [3.0, 1.4]] {
            let numeric = dynamics.derivative(&state);
            for k in 0..2 {
                let symbolic = field[k].eval(&state);
                assert!(
                    (numeric[k] - symbolic).abs() < 1e-10,
                    "component {k} at {state:?}: {} vs {symbolic}",
                    numeric[k]
                );
            }
        }
    }

    #[test]
    fn expr_dynamics_simulation_matches_numeric_simulation() {
        let dynamics = ErrorDynamics::new(random_controller(5, 4), 1.0);
        let expr_dynamics = dynamics.to_expr_dynamics();
        let sim = Simulator::new(Integrator::RungeKutta4, 0.01, 2.0);
        let a = sim.simulate(&dynamics, &[0.5, 0.1]);
        let b = sim.simulate(&expr_dynamics, &[0.5, 0.1]);
        for (sa, sb) in a.states().iter().zip(b.states()) {
            assert!((sa[0] - sb[0]).abs() < 1e-9);
            assert!((sa[1] - sb[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn nonzero_path_angle_matches_paper_formula() {
        let theta_r = 0.6;
        let v = 1.2;
        let dynamics = ErrorDynamics::with_path_angle(random_controller(4, 5), v, theta_r);
        let theta_err = -0.25;
        let dx = dynamics.derivative(&[0.1, theta_err]);
        let expected = -v * (theta_r - theta_err).sin() * theta_r.cos()
            + v * (theta_r - theta_err).cos() * theta_r.sin();
        assert!((dx[0] - expected).abs() < 1e-12);
        // The identity d_dot = V sin(theta_err) holds for any theta_r.
        assert!((dx[0] - v * theta_err.sin()).abs() < 1e-12);
        assert_eq!(dynamics.path_angle(), theta_r);
        assert_eq!(dynamics.speed(), v);
        assert_eq!(dynamics.controller().num_params(), 4 * 4 + 1);
    }

    #[test]
    #[should_panic(expected = "(d_err, theta_err)")]
    fn wrong_controller_input_dimension_panics() {
        let bad = FeedforwardNetwork::builder(3)
            .layer(1, Activation::Tanh)
            .build_zeroed();
        let _ = ErrorDynamics::new(bad, 1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn non_positive_speed_panics() {
        let _ = ErrorDynamics::new(random_controller(2, 6), -1.0);
    }
}
