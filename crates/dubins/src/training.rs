//! CMA-ES direct policy search for the path-following controller (Section 4.2).

use nncps_cmaes::{seeded_rng, CmaEs, CmaesParams, Generation};
use nncps_nn::{Activation, FeedforwardNetwork};
use nncps_sim::Trace;

use crate::{DubinsCar, Path};

/// Configuration of the policy search.
///
/// The defaults are a scaled-down version of the paper's setup (population
/// 152, at most 50 CMA-ES iterations) so that training completes in seconds
/// inside tests; the benchmark harness overrides them to match the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingOptions {
    /// Number of neurons in the hidden layer.
    pub hidden_neurons: usize,
    /// CMA-ES population size λ.
    pub population: usize,
    /// Maximum number of CMA-ES generations.
    pub max_generations: usize,
    /// Discrete simulation step used for the rollouts.
    pub dt: f64,
    /// Constant vehicle speed `V`.
    pub speed: f64,
    /// Initial CMA-ES step size σ₀.
    pub sigma0: f64,
    /// RNG seed for reproducible training runs.
    pub seed: u64,
    /// Worker threads for rollout evaluation (`0` = one per available core,
    /// `1` = sequential).  Candidate rollouts within a generation are
    /// independent, and the parallel evaluation preserves candidate order,
    /// so the trained controller is identical for every thread count.
    pub threads: usize,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            hidden_neurons: 10,
            population: 30,
            max_generations: 20,
            dt: 0.2,
            speed: 2.0,
            sigma0: 0.5,
            seed: 2018,
            threads: 0,
        }
    }
}

impl TrainingOptions {
    /// The paper's published settings: a hidden layer of the requested width,
    /// population size 152, and at most 50 iterations.
    pub fn paper_settings(hidden_neurons: usize) -> Self {
        TrainingOptions {
            hidden_neurons,
            population: 152,
            max_generations: 50,
            ..TrainingOptions::default()
        }
    }
}

/// Result of [`train_controller`].
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// The trained controller (best candidate found by the policy search).
    pub controller: FeedforwardNetwork,
    /// Best cost `J` attained.
    pub best_cost: f64,
    /// Per-generation training statistics (cost curve of Figure 4).
    pub history: Vec<Generation>,
}

/// The closed-loop rollout environment used as the CMA-ES fitness function.
///
/// A rollout simulates the full Dubins car (not the error dynamics) following
/// the target path from its start pose, accumulating the paper's cost
///
/// ```text
/// J = Σ_k (100 d_err_k² + 10⁵ θ_err_k² + 100 u_k²)
///     + 10³ ‖(x_end, y_end) − (x_N, y_N)‖²
/// ```
#[derive(Debug, Clone)]
pub struct TrainingEnv {
    path: Path,
    car: DubinsCar,
    dt: f64,
    steps: usize,
    template: FeedforwardNetwork,
}

impl TrainingEnv {
    /// Creates an environment for the given path and options.
    pub fn new(path: Path, options: &TrainingOptions) -> Self {
        let car = DubinsCar::new(options.speed);
        // Enough steps to traverse the path with a 25% margin.
        let steps = ((path.length() / (options.speed * options.dt)) * 1.25).ceil() as usize;
        let template = FeedforwardNetwork::builder(2)
            .layer(options.hidden_neurons, Activation::Tanh)
            .layer(1, Activation::Tanh)
            .build_zeroed();
        TrainingEnv {
            path,
            car,
            dt: options.dt,
            steps,
            template,
        }
    }

    /// The target path of the environment.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of discrete rollout steps `N`.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of controller parameters optimized by the policy search.
    pub fn num_params(&self) -> usize {
        self.template.num_params()
    }

    /// Rolls out the controller from the path start and returns the vehicle
    /// trace (`[x, y, θ]` samples) together with the accumulated cost `J`.
    pub fn rollout(&self, controller: &FeedforwardNetwork) -> (Trace, f64) {
        let start = self.path.start();
        // Initial heading aligned with the first path segment.
        let initial_errors = self.path.errors(start.0, start.1, 0.0);
        let mut state = [start.0, start.1, initial_errors.tangent_angle];
        let mut trace = Trace::new(3);
        trace.push(0.0, state.to_vec());
        let mut cost = 0.0;
        for k in 0..self.steps {
            let errors = self.path.errors(state[0], state[1], state[2]);
            let u = controller.forward(&[errors.distance, errors.angle])[0];
            cost += 100.0 * errors.distance * errors.distance
                + 1e5 * errors.angle * errors.angle
                + 100.0 * u * u;
            state = self.car.step(state, u, self.dt);
            trace.push((k + 1) as f64 * self.dt, state.to_vec());
        }
        let end = self.path.end();
        let terminal = (end.0 - state[0]).powi(2) + (end.1 - state[1]).powi(2);
        cost += 1e3 * terminal;
        (trace, cost)
    }

    /// Evaluates the cost of a flat parameter vector (the CMA-ES fitness).
    pub fn cost_of_params(&self, params: &[f64]) -> f64 {
        let controller = self.template.with_params(params);
        self.rollout(&controller).1
    }

    /// Builds a controller from a flat parameter vector using the
    /// environment's architecture.
    pub fn controller_from_params(&self, params: &[f64]) -> FeedforwardNetwork {
        self.template.with_params(params)
    }
}

/// Trains a path-following controller with CMA-ES direct policy search.
///
/// This reproduces the experiment behind Figure 4: starting from random
/// parameters, the policy search minimizes the rollout cost on the given
/// target path.
pub fn train_controller(path: Path, options: &TrainingOptions) -> TrainingOutcome {
    let env = TrainingEnv::new(path, options);
    let mut rng = seeded_rng(options.seed);
    let dim = env.num_params();
    let params = CmaesParams::new(dim).with_population_size(options.population);
    // Start from small random parameters like the paper ("random set of NN
    // parameters"); the CMA-ES mean is the origin and σ₀ covers the range.
    let mut cma = CmaEs::new(vec![0.0; dim], options.sigma0, params);
    let result = cma.optimize_parallel(
        |candidate| env.cost_of_params(candidate),
        options.max_generations,
        0.0,
        &mut rng,
        options.threads,
    );
    TrainingOutcome {
        controller: env.controller_from_params(&result.best_candidate),
        best_cost: result.best_fitness,
        history: result.history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_path() -> Path {
        Path::new(vec![(0.0, 0.0), (0.0, 12.0), (6.0, 20.0)])
    }

    fn quick_options() -> TrainingOptions {
        TrainingOptions {
            hidden_neurons: 6,
            population: 16,
            max_generations: 12,
            dt: 0.25,
            speed: 2.0,
            sigma0: 0.5,
            seed: 7,
            threads: 0,
        }
    }

    #[test]
    fn environment_dimensions_match_architecture() {
        let env = TrainingEnv::new(short_path(), &quick_options());
        assert_eq!(env.num_params(), 4 * 6 + 1);
        assert!(env.steps() > 10);
        assert_eq!(env.path().start(), (0.0, 0.0));
    }

    #[test]
    fn rollout_of_zero_controller_goes_straight() {
        let options = quick_options();
        let env = TrainingEnv::new(Path::new(vec![(0.0, 0.0), (0.0, 20.0)]), &options);
        let zero = env.controller_from_params(&vec![0.0; env.num_params()]);
        let (trace, cost) = env.rollout(&zero);
        // A zero controller on a straight path stays on the path exactly.
        assert!(trace.max_abs_component(0).unwrap() < 1e-9);
        assert!(cost.is_finite());
        assert!(trace.len() == env.steps() + 1);
    }

    #[test]
    fn cost_penalizes_leaving_the_path() {
        let options = quick_options();
        let env = TrainingEnv::new(Path::new(vec![(0.0, 0.0), (0.0, 20.0)]), &options);
        // A controller with a constant positive steering bias turns away.
        let mut biased = vec![0.0; env.num_params()];
        // Last parameter is the output bias of the tanh output layer.
        *biased.last_mut().unwrap() = 1.0;
        let zero_cost = env.cost_of_params(&vec![0.0; env.num_params()]);
        let biased_cost = env.cost_of_params(&biased);
        assert!(biased_cost > zero_cost);
    }

    #[test]
    fn training_reduces_cost_and_tracks_path() {
        let options = quick_options();
        let outcome = train_controller(short_path(), &options);
        assert!(!outcome.history.is_empty());
        let first = outcome.history.first().unwrap().best_fitness;
        let last = outcome.history.last().unwrap().best_fitness;
        assert!(
            last <= first,
            "training should not increase the best cost: {first} -> {last}"
        );
        assert!(outcome.best_cost <= first);
        // The trained controller should track the training path reasonably:
        // final position within a few meters of the path end.
        let env = TrainingEnv::new(short_path(), &options);
        let (trace, _) = env.rollout(&outcome.controller);
        let end = short_path().end();
        let fin = trace.final_state();
        let terminal_error = ((fin[0] - end.0).powi(2) + (fin[1] - end.1).powi(2)).sqrt();
        assert!(
            terminal_error < 6.0,
            "terminal error too large: {terminal_error}"
        );
    }

    #[test]
    fn training_is_reproducible_for_a_fixed_seed() {
        let options = quick_options();
        let a = train_controller(short_path(), &options);
        let b = train_controller(short_path(), &options);
        assert_eq!(a.controller, b.controller);
        assert_eq!(a.best_cost, b.best_cost);
    }

    #[test]
    fn paper_settings_match_publication() {
        let options = TrainingOptions::paper_settings(10);
        assert_eq!(options.population, 152);
        assert_eq!(options.max_generations, 50);
        assert_eq!(options.hidden_neurons, 10);
    }
}
